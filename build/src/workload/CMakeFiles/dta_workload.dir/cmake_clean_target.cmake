file(REMOVE_RECURSE
  "libdta_workload.a"
)
