# Empty dependencies file for dta_workload.
# This may be replaced when dependencies are built.
