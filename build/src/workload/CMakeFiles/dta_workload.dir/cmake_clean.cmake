file(REMOVE_RECURSE
  "CMakeFiles/dta_workload.dir/compression.cc.o"
  "CMakeFiles/dta_workload.dir/compression.cc.o.d"
  "CMakeFiles/dta_workload.dir/workload.cc.o"
  "CMakeFiles/dta_workload.dir/workload.cc.o.d"
  "libdta_workload.a"
  "libdta_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
