file(REMOVE_RECURSE
  "libdta_workloads.a"
)
