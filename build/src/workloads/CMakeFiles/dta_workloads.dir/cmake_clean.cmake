file(REMOVE_RECURSE
  "CMakeFiles/dta_workloads.dir/customer.cc.o"
  "CMakeFiles/dta_workloads.dir/customer.cc.o.d"
  "CMakeFiles/dta_workloads.dir/psoft.cc.o"
  "CMakeFiles/dta_workloads.dir/psoft.cc.o.d"
  "CMakeFiles/dta_workloads.dir/synt1.cc.o"
  "CMakeFiles/dta_workloads.dir/synt1.cc.o.d"
  "CMakeFiles/dta_workloads.dir/tpch.cc.o"
  "CMakeFiles/dta_workloads.dir/tpch.cc.o.d"
  "libdta_workloads.a"
  "libdta_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
