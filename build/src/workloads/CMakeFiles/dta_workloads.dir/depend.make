# Empty dependencies file for dta_workloads.
# This may be replaced when dependencies are built.
