# Empty dependencies file for dta_dta.
# This may be replaced when dependencies are built.
