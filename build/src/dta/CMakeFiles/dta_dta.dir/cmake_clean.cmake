file(REMOVE_RECURSE
  "CMakeFiles/dta_dta.dir/candidates.cc.o"
  "CMakeFiles/dta_dta.dir/candidates.cc.o.d"
  "CMakeFiles/dta_dta.dir/column_groups.cc.o"
  "CMakeFiles/dta_dta.dir/column_groups.cc.o.d"
  "CMakeFiles/dta_dta.dir/cost_service.cc.o"
  "CMakeFiles/dta_dta.dir/cost_service.cc.o.d"
  "CMakeFiles/dta_dta.dir/enumeration.cc.o"
  "CMakeFiles/dta_dta.dir/enumeration.cc.o.d"
  "CMakeFiles/dta_dta.dir/greedy.cc.o"
  "CMakeFiles/dta_dta.dir/greedy.cc.o.d"
  "CMakeFiles/dta_dta.dir/itw_baseline.cc.o"
  "CMakeFiles/dta_dta.dir/itw_baseline.cc.o.d"
  "CMakeFiles/dta_dta.dir/merging.cc.o"
  "CMakeFiles/dta_dta.dir/merging.cc.o.d"
  "CMakeFiles/dta_dta.dir/reduced_stats.cc.o"
  "CMakeFiles/dta_dta.dir/reduced_stats.cc.o.d"
  "CMakeFiles/dta_dta.dir/report.cc.o"
  "CMakeFiles/dta_dta.dir/report.cc.o.d"
  "CMakeFiles/dta_dta.dir/staged_baseline.cc.o"
  "CMakeFiles/dta_dta.dir/staged_baseline.cc.o.d"
  "CMakeFiles/dta_dta.dir/tuning_session.cc.o"
  "CMakeFiles/dta_dta.dir/tuning_session.cc.o.d"
  "CMakeFiles/dta_dta.dir/xml_schema.cc.o"
  "CMakeFiles/dta_dta.dir/xml_schema.cc.o.d"
  "libdta_dta.a"
  "libdta_dta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_dta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
