file(REMOVE_RECURSE
  "libdta_dta.a"
)
