
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dta/candidates.cc" "src/dta/CMakeFiles/dta_dta.dir/candidates.cc.o" "gcc" "src/dta/CMakeFiles/dta_dta.dir/candidates.cc.o.d"
  "/root/repo/src/dta/column_groups.cc" "src/dta/CMakeFiles/dta_dta.dir/column_groups.cc.o" "gcc" "src/dta/CMakeFiles/dta_dta.dir/column_groups.cc.o.d"
  "/root/repo/src/dta/cost_service.cc" "src/dta/CMakeFiles/dta_dta.dir/cost_service.cc.o" "gcc" "src/dta/CMakeFiles/dta_dta.dir/cost_service.cc.o.d"
  "/root/repo/src/dta/enumeration.cc" "src/dta/CMakeFiles/dta_dta.dir/enumeration.cc.o" "gcc" "src/dta/CMakeFiles/dta_dta.dir/enumeration.cc.o.d"
  "/root/repo/src/dta/greedy.cc" "src/dta/CMakeFiles/dta_dta.dir/greedy.cc.o" "gcc" "src/dta/CMakeFiles/dta_dta.dir/greedy.cc.o.d"
  "/root/repo/src/dta/itw_baseline.cc" "src/dta/CMakeFiles/dta_dta.dir/itw_baseline.cc.o" "gcc" "src/dta/CMakeFiles/dta_dta.dir/itw_baseline.cc.o.d"
  "/root/repo/src/dta/merging.cc" "src/dta/CMakeFiles/dta_dta.dir/merging.cc.o" "gcc" "src/dta/CMakeFiles/dta_dta.dir/merging.cc.o.d"
  "/root/repo/src/dta/reduced_stats.cc" "src/dta/CMakeFiles/dta_dta.dir/reduced_stats.cc.o" "gcc" "src/dta/CMakeFiles/dta_dta.dir/reduced_stats.cc.o.d"
  "/root/repo/src/dta/report.cc" "src/dta/CMakeFiles/dta_dta.dir/report.cc.o" "gcc" "src/dta/CMakeFiles/dta_dta.dir/report.cc.o.d"
  "/root/repo/src/dta/staged_baseline.cc" "src/dta/CMakeFiles/dta_dta.dir/staged_baseline.cc.o" "gcc" "src/dta/CMakeFiles/dta_dta.dir/staged_baseline.cc.o.d"
  "/root/repo/src/dta/tuning_session.cc" "src/dta/CMakeFiles/dta_dta.dir/tuning_session.cc.o" "gcc" "src/dta/CMakeFiles/dta_dta.dir/tuning_session.cc.o.d"
  "/root/repo/src/dta/xml_schema.cc" "src/dta/CMakeFiles/dta_dta.dir/xml_schema.cc.o" "gcc" "src/dta/CMakeFiles/dta_dta.dir/xml_schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dta_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dta_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlio/CMakeFiles/dta_xmlio.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/dta_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dta_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dta_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/dta_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/dta_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/dta_server.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dta_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
