# Empty dependencies file for dta_xmlio.
# This may be replaced when dependencies are built.
