file(REMOVE_RECURSE
  "CMakeFiles/dta_xmlio.dir/xml.cc.o"
  "CMakeFiles/dta_xmlio.dir/xml.cc.o.d"
  "libdta_xmlio.a"
  "libdta_xmlio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_xmlio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
