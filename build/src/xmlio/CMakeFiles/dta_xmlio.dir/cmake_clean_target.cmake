file(REMOVE_RECURSE
  "libdta_xmlio.a"
)
