file(REMOVE_RECURSE
  "CMakeFiles/dta_engine.dir/executor.cc.o"
  "CMakeFiles/dta_engine.dir/executor.cc.o.d"
  "libdta_engine.a"
  "libdta_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
