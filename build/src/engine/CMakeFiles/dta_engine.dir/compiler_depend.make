# Empty compiler generated dependencies file for dta_engine.
# This may be replaced when dependencies are built.
