file(REMOVE_RECURSE
  "libdta_engine.a"
)
