file(REMOVE_RECURSE
  "libdta_sql.a"
)
