file(REMOVE_RECURSE
  "CMakeFiles/dta_sql.dir/ast.cc.o"
  "CMakeFiles/dta_sql.dir/ast.cc.o.d"
  "CMakeFiles/dta_sql.dir/parser.cc.o"
  "CMakeFiles/dta_sql.dir/parser.cc.o.d"
  "CMakeFiles/dta_sql.dir/printer.cc.o"
  "CMakeFiles/dta_sql.dir/printer.cc.o.d"
  "CMakeFiles/dta_sql.dir/signature.cc.o"
  "CMakeFiles/dta_sql.dir/signature.cc.o.d"
  "CMakeFiles/dta_sql.dir/token.cc.o"
  "CMakeFiles/dta_sql.dir/token.cc.o.d"
  "CMakeFiles/dta_sql.dir/value.cc.o"
  "CMakeFiles/dta_sql.dir/value.cc.o.d"
  "libdta_sql.a"
  "libdta_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
