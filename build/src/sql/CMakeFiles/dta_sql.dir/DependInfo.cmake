
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/ast.cc" "src/sql/CMakeFiles/dta_sql.dir/ast.cc.o" "gcc" "src/sql/CMakeFiles/dta_sql.dir/ast.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/sql/CMakeFiles/dta_sql.dir/parser.cc.o" "gcc" "src/sql/CMakeFiles/dta_sql.dir/parser.cc.o.d"
  "/root/repo/src/sql/printer.cc" "src/sql/CMakeFiles/dta_sql.dir/printer.cc.o" "gcc" "src/sql/CMakeFiles/dta_sql.dir/printer.cc.o.d"
  "/root/repo/src/sql/signature.cc" "src/sql/CMakeFiles/dta_sql.dir/signature.cc.o" "gcc" "src/sql/CMakeFiles/dta_sql.dir/signature.cc.o.d"
  "/root/repo/src/sql/token.cc" "src/sql/CMakeFiles/dta_sql.dir/token.cc.o" "gcc" "src/sql/CMakeFiles/dta_sql.dir/token.cc.o.d"
  "/root/repo/src/sql/value.cc" "src/sql/CMakeFiles/dta_sql.dir/value.cc.o" "gcc" "src/sql/CMakeFiles/dta_sql.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
