# Empty dependencies file for dta_sql.
# This may be replaced when dependencies are built.
