file(REMOVE_RECURSE
  "libdta_common.a"
)
