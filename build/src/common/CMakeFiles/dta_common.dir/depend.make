# Empty dependencies file for dta_common.
# This may be replaced when dependencies are built.
