file(REMOVE_RECURSE
  "CMakeFiles/dta_common.dir/logging.cc.o"
  "CMakeFiles/dta_common.dir/logging.cc.o.d"
  "CMakeFiles/dta_common.dir/random.cc.o"
  "CMakeFiles/dta_common.dir/random.cc.o.d"
  "CMakeFiles/dta_common.dir/status.cc.o"
  "CMakeFiles/dta_common.dir/status.cc.o.d"
  "CMakeFiles/dta_common.dir/strings.cc.o"
  "CMakeFiles/dta_common.dir/strings.cc.o.d"
  "libdta_common.a"
  "libdta_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
