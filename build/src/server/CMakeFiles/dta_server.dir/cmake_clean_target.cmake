file(REMOVE_RECURSE
  "libdta_server.a"
)
