file(REMOVE_RECURSE
  "CMakeFiles/dta_server.dir/server.cc.o"
  "CMakeFiles/dta_server.dir/server.cc.o.d"
  "libdta_server.a"
  "libdta_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
