# Empty dependencies file for dta_server.
# This may be replaced when dependencies are built.
