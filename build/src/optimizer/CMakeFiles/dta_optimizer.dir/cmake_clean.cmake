file(REMOVE_RECURSE
  "CMakeFiles/dta_optimizer.dir/bound_query.cc.o"
  "CMakeFiles/dta_optimizer.dir/bound_query.cc.o.d"
  "CMakeFiles/dta_optimizer.dir/cardinality.cc.o"
  "CMakeFiles/dta_optimizer.dir/cardinality.cc.o.d"
  "CMakeFiles/dta_optimizer.dir/cost_model.cc.o"
  "CMakeFiles/dta_optimizer.dir/cost_model.cc.o.d"
  "CMakeFiles/dta_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/dta_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/dta_optimizer.dir/plan.cc.o"
  "CMakeFiles/dta_optimizer.dir/plan.cc.o.d"
  "CMakeFiles/dta_optimizer.dir/view_matching.cc.o"
  "CMakeFiles/dta_optimizer.dir/view_matching.cc.o.d"
  "libdta_optimizer.a"
  "libdta_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
