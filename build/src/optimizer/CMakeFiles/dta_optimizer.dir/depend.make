# Empty dependencies file for dta_optimizer.
# This may be replaced when dependencies are built.
