file(REMOVE_RECURSE
  "libdta_optimizer.a"
)
