
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/bound_query.cc" "src/optimizer/CMakeFiles/dta_optimizer.dir/bound_query.cc.o" "gcc" "src/optimizer/CMakeFiles/dta_optimizer.dir/bound_query.cc.o.d"
  "/root/repo/src/optimizer/cardinality.cc" "src/optimizer/CMakeFiles/dta_optimizer.dir/cardinality.cc.o" "gcc" "src/optimizer/CMakeFiles/dta_optimizer.dir/cardinality.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/optimizer/CMakeFiles/dta_optimizer.dir/cost_model.cc.o" "gcc" "src/optimizer/CMakeFiles/dta_optimizer.dir/cost_model.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/optimizer/CMakeFiles/dta_optimizer.dir/optimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/dta_optimizer.dir/optimizer.cc.o.d"
  "/root/repo/src/optimizer/plan.cc" "src/optimizer/CMakeFiles/dta_optimizer.dir/plan.cc.o" "gcc" "src/optimizer/CMakeFiles/dta_optimizer.dir/plan.cc.o.d"
  "/root/repo/src/optimizer/view_matching.cc" "src/optimizer/CMakeFiles/dta_optimizer.dir/view_matching.cc.o" "gcc" "src/optimizer/CMakeFiles/dta_optimizer.dir/view_matching.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dta_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dta_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/dta_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dta_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dta_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
