file(REMOVE_RECURSE
  "libdta_storage.a"
)
