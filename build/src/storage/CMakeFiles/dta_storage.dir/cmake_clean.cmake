file(REMOVE_RECURSE
  "CMakeFiles/dta_storage.dir/datagen.cc.o"
  "CMakeFiles/dta_storage.dir/datagen.cc.o.d"
  "CMakeFiles/dta_storage.dir/table_data.cc.o"
  "CMakeFiles/dta_storage.dir/table_data.cc.o.d"
  "libdta_storage.a"
  "libdta_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
