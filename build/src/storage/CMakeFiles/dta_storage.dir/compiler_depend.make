# Empty compiler generated dependencies file for dta_storage.
# This may be replaced when dependencies are built.
