
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/datagen.cc" "src/storage/CMakeFiles/dta_storage.dir/datagen.cc.o" "gcc" "src/storage/CMakeFiles/dta_storage.dir/datagen.cc.o.d"
  "/root/repo/src/storage/table_data.cc" "src/storage/CMakeFiles/dta_storage.dir/table_data.cc.o" "gcc" "src/storage/CMakeFiles/dta_storage.dir/table_data.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dta_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dta_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/dta_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
