# Empty compiler generated dependencies file for dta_catalog.
# This may be replaced when dependencies are built.
