file(REMOVE_RECURSE
  "libdta_catalog.a"
)
