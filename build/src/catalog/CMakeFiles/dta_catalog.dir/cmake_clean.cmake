file(REMOVE_RECURSE
  "CMakeFiles/dta_catalog.dir/physical_design.cc.o"
  "CMakeFiles/dta_catalog.dir/physical_design.cc.o.d"
  "CMakeFiles/dta_catalog.dir/schema.cc.o"
  "CMakeFiles/dta_catalog.dir/schema.cc.o.d"
  "libdta_catalog.a"
  "libdta_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
