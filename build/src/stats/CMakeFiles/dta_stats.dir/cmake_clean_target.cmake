file(REMOVE_RECURSE
  "libdta_stats.a"
)
