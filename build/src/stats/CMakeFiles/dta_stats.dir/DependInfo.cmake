
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/builder.cc" "src/stats/CMakeFiles/dta_stats.dir/builder.cc.o" "gcc" "src/stats/CMakeFiles/dta_stats.dir/builder.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/dta_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/dta_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/statistics.cc" "src/stats/CMakeFiles/dta_stats.dir/statistics.cc.o" "gcc" "src/stats/CMakeFiles/dta_stats.dir/statistics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dta_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dta_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/dta_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dta_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
