# Empty dependencies file for dta_stats.
# This may be replaced when dependencies are built.
