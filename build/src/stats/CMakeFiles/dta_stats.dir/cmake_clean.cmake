file(REMOVE_RECURSE
  "CMakeFiles/dta_stats.dir/builder.cc.o"
  "CMakeFiles/dta_stats.dir/builder.cc.o.d"
  "CMakeFiles/dta_stats.dir/histogram.cc.o"
  "CMakeFiles/dta_stats.dir/histogram.cc.o.d"
  "CMakeFiles/dta_stats.dir/statistics.cc.o"
  "CMakeFiles/dta_stats.dir/statistics.cc.o.d"
  "libdta_stats.a"
  "libdta_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
