# Empty dependencies file for xml_scripting.
# This may be replaced when dependencies are built.
