file(REMOVE_RECURSE
  "CMakeFiles/xml_scripting.dir/xml_scripting.cpp.o"
  "CMakeFiles/xml_scripting.dir/xml_scripting.cpp.o.d"
  "xml_scripting"
  "xml_scripting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_scripting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
