file(REMOVE_RECURSE
  "CMakeFiles/testserver_tuning.dir/testserver_tuning.cpp.o"
  "CMakeFiles/testserver_tuning.dir/testserver_tuning.cpp.o.d"
  "testserver_tuning"
  "testserver_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testserver_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
