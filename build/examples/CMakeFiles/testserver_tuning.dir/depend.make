# Empty dependencies file for testserver_tuning.
# This may be replaced when dependencies are built.
