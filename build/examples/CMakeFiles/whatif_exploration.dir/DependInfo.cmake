
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/whatif_exploration.cpp" "examples/CMakeFiles/whatif_exploration.dir/whatif_exploration.cpp.o" "gcc" "examples/CMakeFiles/whatif_exploration.dir/whatif_exploration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dta/CMakeFiles/dta_dta.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dta_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/dta_server.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/dta_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/dta_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dta_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dta_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dta_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/dta_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dta_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlio/CMakeFiles/dta_xmlio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
