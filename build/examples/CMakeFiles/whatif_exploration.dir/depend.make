# Empty dependencies file for whatif_exploration.
# This may be replaced when dependencies are built.
