file(REMOVE_RECURSE
  "CMakeFiles/whatif_exploration.dir/whatif_exploration.cpp.o"
  "CMakeFiles/whatif_exploration.dir/whatif_exploration.cpp.o.d"
  "whatif_exploration"
  "whatif_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
