file(REMOVE_RECURSE
  "CMakeFiles/dta_cli.dir/dta_cli.cc.o"
  "CMakeFiles/dta_cli.dir/dta_cli.cc.o.d"
  "dta_cli"
  "dta_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
