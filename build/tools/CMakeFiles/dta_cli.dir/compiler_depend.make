# Empty compiler generated dependencies file for dta_cli.
# This may be replaced when dependencies are built.
