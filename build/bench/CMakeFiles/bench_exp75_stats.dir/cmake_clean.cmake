file(REMOVE_RECURSE
  "CMakeFiles/bench_exp75_stats.dir/bench_exp75_stats.cc.o"
  "CMakeFiles/bench_exp75_stats.dir/bench_exp75_stats.cc.o.d"
  "bench_exp75_stats"
  "bench_exp75_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp75_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
