# Empty dependencies file for bench_exp75_stats.
# This may be replaced when dependencies are built.
