file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_staged.dir/bench_ablation_staged.cc.o"
  "CMakeFiles/bench_ablation_staged.dir/bench_ablation_staged.cc.o.d"
  "bench_ablation_staged"
  "bench_ablation_staged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_staged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
