file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_customer.dir/bench_table2_customer.cc.o"
  "CMakeFiles/bench_table2_customer.dir/bench_table2_customer.cc.o.d"
  "bench_table2_customer"
  "bench_table2_customer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_customer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
