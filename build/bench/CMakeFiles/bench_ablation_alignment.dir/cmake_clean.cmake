file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_alignment.dir/bench_ablation_alignment.cc.o"
  "CMakeFiles/bench_ablation_alignment.dir/bench_ablation_alignment.cc.o.d"
  "bench_ablation_alignment"
  "bench_ablation_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
