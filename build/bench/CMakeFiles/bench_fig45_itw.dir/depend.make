# Empty dependencies file for bench_fig45_itw.
# This may be replaced when dependencies are built.
