file(REMOVE_RECURSE
  "CMakeFiles/bench_fig45_itw.dir/bench_fig45_itw.cc.o"
  "CMakeFiles/bench_fig45_itw.dir/bench_fig45_itw.cc.o.d"
  "bench_fig45_itw"
  "bench_fig45_itw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig45_itw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
