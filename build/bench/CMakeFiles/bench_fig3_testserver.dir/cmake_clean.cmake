file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_testserver.dir/bench_fig3_testserver.cc.o"
  "CMakeFiles/bench_fig3_testserver.dir/bench_fig3_testserver.cc.o.d"
  "bench_fig3_testserver"
  "bench_fig3_testserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_testserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
