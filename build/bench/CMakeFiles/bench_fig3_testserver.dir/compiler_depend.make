# Empty compiler generated dependencies file for bench_fig3_testserver.
# This may be replaced when dependencies are built.
