# Empty compiler generated dependencies file for bench_exp72_tpch.
# This may be replaced when dependencies are built.
