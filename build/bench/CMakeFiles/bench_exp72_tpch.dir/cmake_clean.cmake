file(REMOVE_RECURSE
  "CMakeFiles/bench_exp72_tpch.dir/bench_exp72_tpch.cc.o"
  "CMakeFiles/bench_exp72_tpch.dir/bench_exp72_tpch.cc.o.d"
  "bench_exp72_tpch"
  "bench_exp72_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp72_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
