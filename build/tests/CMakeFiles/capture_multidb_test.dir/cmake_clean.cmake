file(REMOVE_RECURSE
  "CMakeFiles/capture_multidb_test.dir/capture_multidb_test.cc.o"
  "CMakeFiles/capture_multidb_test.dir/capture_multidb_test.cc.o.d"
  "capture_multidb_test"
  "capture_multidb_test.pdb"
  "capture_multidb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_multidb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
