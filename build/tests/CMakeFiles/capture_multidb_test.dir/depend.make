# Empty dependencies file for capture_multidb_test.
# This may be replaced when dependencies are built.
