file(REMOVE_RECURSE
  "CMakeFiles/dta_core_test.dir/dta_core_test.cc.o"
  "CMakeFiles/dta_core_test.dir/dta_core_test.cc.o.d"
  "dta_core_test"
  "dta_core_test.pdb"
  "dta_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
