# Empty compiler generated dependencies file for dta_core_test.
# This may be replaced when dependencies are built.
