# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dta_core_test.
