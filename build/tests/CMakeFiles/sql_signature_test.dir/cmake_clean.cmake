file(REMOVE_RECURSE
  "CMakeFiles/sql_signature_test.dir/sql_signature_test.cc.o"
  "CMakeFiles/sql_signature_test.dir/sql_signature_test.cc.o.d"
  "sql_signature_test"
  "sql_signature_test.pdb"
  "sql_signature_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_signature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
