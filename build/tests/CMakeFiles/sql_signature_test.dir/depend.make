# Empty dependencies file for sql_signature_test.
# This may be replaced when dependencies are built.
