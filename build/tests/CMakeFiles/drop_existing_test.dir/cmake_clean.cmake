file(REMOVE_RECURSE
  "CMakeFiles/drop_existing_test.dir/drop_existing_test.cc.o"
  "CMakeFiles/drop_existing_test.dir/drop_existing_test.cc.o.d"
  "drop_existing_test"
  "drop_existing_test.pdb"
  "drop_existing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drop_existing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
