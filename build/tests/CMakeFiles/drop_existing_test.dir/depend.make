# Empty dependencies file for drop_existing_test.
# This may be replaced when dependencies are built.
