# Empty compiler generated dependencies file for dta_session_test.
# This may be replaced when dependencies are built.
