file(REMOVE_RECURSE
  "CMakeFiles/dta_session_test.dir/dta_session_test.cc.o"
  "CMakeFiles/dta_session_test.dir/dta_session_test.cc.o.d"
  "dta_session_test"
  "dta_session_test.pdb"
  "dta_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
