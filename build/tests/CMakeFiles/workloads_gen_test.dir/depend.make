# Empty dependencies file for workloads_gen_test.
# This may be replaced when dependencies are built.
