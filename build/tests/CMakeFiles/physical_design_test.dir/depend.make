# Empty dependencies file for physical_design_test.
# This may be replaced when dependencies are built.
