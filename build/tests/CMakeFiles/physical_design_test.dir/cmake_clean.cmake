file(REMOVE_RECURSE
  "CMakeFiles/physical_design_test.dir/physical_design_test.cc.o"
  "CMakeFiles/physical_design_test.dir/physical_design_test.cc.o.d"
  "physical_design_test"
  "physical_design_test.pdb"
  "physical_design_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/physical_design_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
