# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/sql_parser_test[1]_include.cmake")
include("/root/repo/build/tests/sql_signature_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/physical_design_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/dta_core_test[1]_include.cmake")
include("/root/repo/build/tests/dta_session_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_gen_test[1]_include.cmake")
include("/root/repo/build/tests/stats_regression_test[1]_include.cmake")
include("/root/repo/build/tests/view_matching_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/drop_existing_test[1]_include.cmake")
include("/root/repo/build/tests/cardinality_test[1]_include.cmake")
include("/root/repo/build/tests/capture_multidb_test[1]_include.cmake")
