#!/usr/bin/env python3
"""Gate the derived-costing CI job on the two runs' metrics exports.

Usage: check_derived_metrics.py derived_metrics.json exact_metrics.json

Both inputs are dta-observability-v1 documents (dta_cli --metrics-json).
The recommendations are byte-compared by the workflow before this runs;
this script checks the counters:

  - The derived run must have saved real what-if calls (whatif.calls_saved
    > 0): a zero means the derivation layer silently stopped deriving, the
    end-to-end twin of the bench baseline's calls-saved floor.
  - The exact run must have saved nothing (--exact-costing prices every
    derivable miss for real) while still auditing derivations
    (whatif.derived_answers > 0), with every audited error recorded in the
    derivation.error_pct histogram.
  - Both runs must derive the same answers: the derive-or-not decision is a
    pure function of (statement, configuration fingerprint), so a
    divergence is a determinism bug, not noise.

Exit codes: 0 ok, 1 gate failure, 2 bad input.
"""

import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.stderr.write(f"check_derived_metrics: cannot read {path}: {e}\n")
        sys.exit(2)
    if doc.get("schema") != "dta-observability-v1":
        sys.stderr.write(
            f"check_derived_metrics: {path} is not a dta-observability-v1 "
            "document\n")
        sys.exit(2)
    return doc


def main():
    if len(sys.argv) != 3:
        sys.stderr.write(
            "usage: check_derived_metrics.py DERIVED.json EXACT.json\n")
        return 2
    derived = load(sys.argv[1])
    exact = load(sys.argv[2])
    dc = derived.get("counters", {})
    ec = exact.get("counters", {})
    failures = []

    saved = dc.get("whatif.calls_saved", 0)
    calls = dc.get("whatif.calls", 0)
    pct = 100.0 * saved / (saved + calls) if saved + calls else 0.0
    print(f"derived run: {calls} real what-if calls, {saved} saved "
          f"({pct:.1f}%)")
    if saved == 0:
        failures.append("the derived run saved no real what-if calls")

    if ec.get("whatif.calls_saved", 0) != 0:
        failures.append("--exact-costing must price every miss for real, "
                        f"but saved {ec['whatif.calls_saved']} calls")
    audited = ec.get("whatif.derived_answers", 0)
    print(f"exact run: {ec.get('whatif.calls', 0)} real what-if calls, "
          f"{audited} derivations audited")
    if audited == 0:
        failures.append("the exact run audited no derivations")
    errors = exact.get("histograms", {}).get("derivation.error_pct", {})
    if errors.get("count", 0) != audited:
        failures.append(
            f"derivation.error_pct recorded {errors.get('count', 0)} "
            f"errors for {audited} audited derivations")

    if dc.get("whatif.derived_answers", 0) != audited:
        failures.append(
            f"derive decisions diverged between modes: "
            f"{dc.get('whatif.derived_answers', 0)} derived answers vs "
            f"{audited} audited")

    if failures:
        for f in failures:
            sys.stderr.write(f"FAIL {f}\n")
        return 1
    print("check_derived_metrics: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
