#!/bin/sh
# Extracts the recommended <Configuration> block from a dta_cli output
# document, so scenario runs can be byte-compared with cmp(1).
set -eu
sed -n '/<Output>/,$p' "$1" | sed -n '/<Configuration/,/<\/Configuration>/p'
