// Minimal XML document model with a serializer and a parser.
//
// This is intentionally a small subset of XML sufficient for DTA's public
// input/output schema (Section 6.1 of the paper): elements, attributes,
// character data, comments (skipped on parse), and the standard five entity
// escapes. No namespaces, DTDs, or processing-instruction handling beyond
// skipping the <?xml ...?> prolog.

#ifndef DTA_XMLIO_XML_H_
#define DTA_XMLIO_XML_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dta::xml {

class Element;
using ElementPtr = std::unique_ptr<Element>;

// An XML element: name, ordered attributes, child elements and text content.
// Mixed content is simplified: all character data inside an element is
// concatenated into `text()` regardless of its position between children.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  const std::string& name() const { return name_; }
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }
  void append_text(std::string_view more) { text_.append(more); }

  // Attributes ---------------------------------------------------------
  void SetAttr(std::string key, std::string value);
  // Returns nullptr if absent.
  const std::string* FindAttr(std::string_view key) const;
  // Returns "" if absent.
  const std::string& Attr(std::string_view key) const;
  bool HasAttr(std::string_view key) const { return FindAttr(key) != nullptr; }
  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }

  // Children -----------------------------------------------------------
  Element* AddChild(std::string name);
  Element* AddChild(ElementPtr child);
  const std::vector<ElementPtr>& children() const { return children_; }
  // First child with the given name, or nullptr.
  const Element* FindChild(std::string_view name) const;
  Element* FindChild(std::string_view name);
  // All children with the given name.
  std::vector<const Element*> FindChildren(std::string_view name) const;
  // Text of the first child with the given name, or "" if absent.
  const std::string& ChildText(std::string_view name) const;

  // Convenience: adds <name>text</name>.
  Element* AddTextChild(std::string name, std::string text);

  // Serialization -------------------------------------------------------
  // Pretty-printed XML (2-space indent). With `prolog`, prepends the
  // <?xml version="1.0"?> declaration.
  std::string ToString(bool prolog = false) const;

 private:
  void Serialize(std::string* out, int depth) const;

  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<ElementPtr> children_;
};

// Escapes &, <, >, ", ' for use in attribute values / character data.
std::string Escape(std::string_view raw);
// Same, appending to `out` without materializing a temporary — the
// serializer's path for large character-data blobs (bulk checkpoint
// sections); text with nothing to escape is appended in one memcpy.
void AppendEscaped(std::string* out, std::string_view raw);

// Parses a single-rooted XML document. Returns the root element.
Result<ElementPtr> Parse(std::string_view input);

}  // namespace dta::xml

#endif  // DTA_XMLIO_XML_H_
