#include "xmlio/xml.h"

#include <cctype>

#include "common/strings.h"

namespace dta::xml {

namespace {
const std::string kEmpty;
}  // namespace

void Element::SetAttr(std::string key, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(std::move(key), std::move(value));
}

const std::string* Element::FindAttr(std::string_view key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::string& Element::Attr(std::string_view key) const {
  const std::string* v = FindAttr(key);
  return v != nullptr ? *v : kEmpty;
}

Element* Element::AddChild(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return children_.back().get();
}

Element* Element::AddChild(ElementPtr child) {
  children_.push_back(std::move(child));
  return children_.back().get();
}

const Element* Element::FindChild(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

Element* Element::FindChild(std::string_view name) {
  for (auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::FindChildren(std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

const std::string& Element::ChildText(std::string_view name) const {
  const Element* c = FindChild(name);
  return c != nullptr ? c->text() : kEmpty;
}

Element* Element::AddTextChild(std::string name, std::string text) {
  Element* c = AddChild(std::move(name));
  c->set_text(std::move(text));
  return c;
}

std::string Element::ToString(bool prolog) const {
  std::string out;
  if (prolog) out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  Serialize(&out, 0);
  return out;
}

void Element::Serialize(std::string* out, int depth) const {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->push_back('<');
  out->append(name_);
  for (const auto& [k, v] : attrs_) {
    out->push_back(' ');
    out->append(k);
    out->append("=\"");
    AppendEscaped(out, v);
    out->push_back('"');
  }
  if (children_.empty() && text_.empty()) {
    out->append("/>\n");
    return;
  }
  out->push_back('>');
  if (children_.empty()) {
    AppendEscaped(out, text_);
    out->append("</");
    out->append(name_);
    out->append(">\n");
    return;
  }
  out->push_back('\n');
  if (!text_.empty()) {
    out->append(static_cast<size_t>(depth + 1) * 2, ' ');
    AppendEscaped(out, text_);
    out->push_back('\n');
  }
  for (const auto& c : children_) {
    c->Serialize(out, depth + 1);
  }
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append("</");
  out->append(name_);
  out->append(">\n");
}

std::string Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  AppendEscaped(&out, raw);
  return out;
}

void AppendEscaped(std::string* out, std::string_view raw) {
  size_t plain = raw.find_first_of("&<>\"'");
  while (plain != std::string_view::npos) {
    out->append(raw.substr(0, plain));
    switch (raw[plain]) {
      case '&':
        out->append("&amp;");
        break;
      case '<':
        out->append("&lt;");
        break;
      case '>':
        out->append("&gt;");
        break;
      case '"':
        out->append("&quot;");
        break;
      default:
        out->append("&apos;");
        break;
    }
    raw.remove_prefix(plain + 1);
    plain = raw.find_first_of("&<>\"'");
  }
  out->append(raw);
}

namespace {

// Recursive-descent XML parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view input) : in_(input) {}

  Result<ElementPtr> ParseDocument() {
    SkipProlixa();
    if (pos_ >= in_.size() || in_[pos_] != '<') {
      return Status::InvalidArgument("xml: expected root element");
    }
    auto root = ParseElement();
    if (!root.ok()) return root.status();
    SkipProlixa();
    if (pos_ < in_.size()) {
      return Status::InvalidArgument(
          StrFormat("xml: trailing content at offset %zu", pos_));
    }
    return root;
  }

 private:
  // Skips whitespace, comments and the <?xml?> prolog.
  void SkipProlixa() {
    while (pos_ < in_.size()) {
      if (std::isspace(static_cast<unsigned char>(in_[pos_]))) {
        ++pos_;
      } else if (Peek("<?")) {
        size_t end = in_.find("?>", pos_);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 2;
      } else if (Peek("<!--")) {
        size_t end = in_.find("-->", pos_);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 3;
      } else {
        break;
      }
    }
  }

  bool Peek(std::string_view token) const {
    return in_.substr(pos_, token.size()) == token;
  }

  void SkipSpace() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (pos_ < in_.size() && IsNameChar(in_[pos_])) ++pos_;
    if (pos_ == start) {
      return Status::InvalidArgument(
          StrFormat("xml: expected name at offset %zu", start));
    }
    return std::string(in_.substr(start, pos_ - start));
  }

  Result<std::string> ParseAttrValue() {
    if (pos_ >= in_.size() || (in_[pos_] != '"' && in_[pos_] != '\'')) {
      return Status::InvalidArgument(
          StrFormat("xml: expected quoted attribute value at offset %zu",
                    pos_));
    }
    char quote = in_[pos_++];
    std::string value;
    while (pos_ < in_.size() && in_[pos_] != quote) {
      if (in_[pos_] == '&') {
        DTA_RETURN_IF_ERROR(AppendEntity(&value));
      } else {
        value.push_back(in_[pos_++]);
      }
    }
    if (pos_ >= in_.size()) {
      return Status::InvalidArgument("xml: unterminated attribute value");
    }
    ++pos_;  // closing quote
    return value;
  }

  Status AppendEntity(std::string* out) {
    size_t semi = in_.find(';', pos_);
    if (semi == std::string_view::npos || semi - pos_ > 8) {
      return Status::InvalidArgument(
          StrFormat("xml: malformed entity at offset %zu", pos_));
    }
    std::string_view ent = in_.substr(pos_ + 1, semi - pos_ - 1);
    if (ent == "amp") {
      out->push_back('&');
    } else if (ent == "lt") {
      out->push_back('<');
    } else if (ent == "gt") {
      out->push_back('>');
    } else if (ent == "quot") {
      out->push_back('"');
    } else if (ent == "apos") {
      out->push_back('\'');
    } else {
      return Status::InvalidArgument(
          StrFormat("xml: unknown entity '&%.*s;'",
                    static_cast<int>(ent.size()), ent.data()));
    }
    pos_ = semi + 1;
    return Status::Ok();
  }

  Result<ElementPtr> ParseElement() {
    // Caller guarantees in_[pos_] == '<'.
    ++pos_;
    auto name = ParseName();
    if (!name.ok()) return name.status();
    auto elem = std::make_unique<Element>(std::move(name).value());
    // Attributes.
    while (true) {
      SkipSpace();
      if (pos_ >= in_.size()) {
        return Status::InvalidArgument("xml: unterminated start tag");
      }
      if (Peek("/>")) {
        pos_ += 2;
        return elem;
      }
      if (in_[pos_] == '>') {
        ++pos_;
        break;
      }
      auto key = ParseName();
      if (!key.ok()) return key.status();
      SkipSpace();
      if (pos_ >= in_.size() || in_[pos_] != '=') {
        return Status::InvalidArgument(
            StrFormat("xml: expected '=' after attribute at offset %zu",
                      pos_));
      }
      ++pos_;
      SkipSpace();
      auto value = ParseAttrValue();
      if (!value.ok()) return value.status();
      elem->SetAttr(std::move(key).value(), std::move(value).value());
    }
    // Content.
    std::string text;
    while (true) {
      if (pos_ >= in_.size()) {
        return Status::InvalidArgument(
            StrFormat("xml: unterminated element <%s>", elem->name().c_str()));
      }
      if (Peek("<!--")) {
        size_t end = in_.find("-->", pos_);
        if (end == std::string_view::npos) {
          return Status::InvalidArgument("xml: unterminated comment");
        }
        pos_ = end + 3;
      } else if (Peek("</")) {
        pos_ += 2;
        auto close = ParseName();
        if (!close.ok()) return close.status();
        if (close.value() != elem->name()) {
          return Status::InvalidArgument(
              StrFormat("xml: mismatched close tag </%s> for <%s>",
                        close.value().c_str(), elem->name().c_str()));
        }
        SkipSpace();
        if (pos_ >= in_.size() || in_[pos_] != '>') {
          return Status::InvalidArgument("xml: malformed close tag");
        }
        ++pos_;
        // Trim pure-indentation whitespace around text content.
        std::string_view trimmed = StrTrim(text);
        elem->set_text(std::string(trimmed));
        return elem;
      } else if (in_[pos_] == '<') {
        auto child = ParseElement();
        if (!child.ok()) return child.status();
        elem->AddChild(std::move(child).value());
      } else if (in_[pos_] == '&') {
        DTA_RETURN_IF_ERROR(AppendEntity(&text));
      } else {
        text.push_back(in_[pos_++]);
      }
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

Result<ElementPtr> Parse(std::string_view input) {
  Parser parser(input);
  return parser.ParseDocument();
}

}  // namespace dta::xml
