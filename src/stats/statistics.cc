#include "stats/statistics.h"

#include <algorithm>

#include "common/strings.h"

namespace dta::stats {

StatsKey::StatsKey(std::string database_in, std::string table_in,
                   std::vector<std::string> columns_in)
    : database(ToLower(database_in)),
      table(ToLower(table_in)),
      columns(std::move(columns_in)) {
  for (std::string& c : columns) c = ToLower(c);
}

std::string StatsKey::CanonicalString() const {
  std::string out = database + "." + table + "(";
  out += StrJoin(columns, ",");
  out += ")";
  return out;
}

void StatsManager::Put(Statistics stats) {
  std::string key = stats.key.CanonicalString();
  stats_[key] = std::move(stats);
}

bool StatsManager::Contains(const StatsKey& key) const {
  return stats_.count(key.CanonicalString()) > 0;
}

const Statistics* StatsManager::Find(const StatsKey& key) const {
  auto it = stats_.find(key.CanonicalString());
  return it != stats_.end() ? &it->second : nullptr;
}

const Statistics* StatsManager::FindHistogram(std::string_view database,
                                              std::string_view table,
                                              std::string_view column) const {
  std::string db = ToLower(database);
  std::string tbl = ToLower(table);
  std::string col = ToLower(column);
  const Statistics* best = nullptr;
  for (const auto& [key, stats] : stats_) {
    if (stats.key.database != db || stats.key.table != tbl) continue;
    if (stats.key.columns.empty() || stats.key.columns[0] != col) continue;
    // Prefer the statistic with the fewest columns (most targeted).
    if (best == nullptr ||
        stats.key.columns.size() < best->key.columns.size()) {
      best = &stats;
    }
  }
  return best;
}

std::optional<double> StatsManager::DistinctCount(
    std::string_view database, std::string_view table,
    const std::vector<std::string>& columns) const {
  std::string db = ToLower(database);
  std::string tbl = ToLower(table);
  std::vector<std::string> want;
  want.reserve(columns.size());
  for (const auto& c : columns) want.push_back(ToLower(c));
  std::sort(want.begin(), want.end());
  want.erase(std::unique(want.begin(), want.end()), want.end());

  for (const auto& [key, stats] : stats_) {
    if (stats.key.database != db || stats.key.table != tbl) continue;
    if (stats.key.columns.size() < want.size()) continue;
    // Compare the leading prefix of length want.size() as a set.
    std::vector<std::string> prefix(stats.key.columns.begin(),
                                    stats.key.columns.begin() +
                                        static_cast<long>(want.size()));
    std::sort(prefix.begin(), prefix.end());
    if (prefix == want) {
      return stats.prefix_distinct[want.size() - 1];
    }
  }
  return std::nullopt;
}

std::vector<const Statistics*> StatsManager::All() const {
  std::vector<const Statistics*> out;
  out.reserve(stats_.size());
  for (const auto& [key, stats] : stats_) out.push_back(&stats);
  return out;
}

}  // namespace dta::stats
