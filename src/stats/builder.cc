#include "stats/builder.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/hash.h"
#include "common/strings.h"

namespace dta::stats {

double SimulatedCreateDurationMs(uint64_t table_rows, int table_row_bytes,
                                 size_t num_columns) {
  double data_pages =
      static_cast<double>(table_rows) * table_row_bytes /
      catalog::TableSchema::kPageBytes;
  double sample_rate =
      table_rows > 0
          ? std::min(1.0, 100000.0 / static_cast<double>(table_rows))
          : 1.0;
  double sampled_pages = std::max(1.0, data_pages * sample_rate);
  double sampled_rows = static_cast<double>(table_rows) * sample_rate;
  // I/O term dominates; the per-column term models the (small) sort/summary
  // cost that grows with statistic width.
  return 40.0 + sampled_pages * 0.25 +
         static_cast<double>(num_columns) * sampled_rows * 2e-5;
}

namespace {

// Scales a sampled distinct count up to the full table, linearly when the
// sample looks key-like and conservatively otherwise.
double ScaleDistinct(double sample_distinct, double sample_rows,
                     double table_rows) {
  if (sample_rows <= 0) return 1;
  if (sample_rows >= table_rows) return sample_distinct;
  double ratio = sample_distinct / sample_rows;
  if (ratio > 0.95) return ratio * table_rows;  // near-unique column
  // Low-cardinality columns saturate quickly; keep the sampled count.
  return std::min(table_rows,
                  sample_distinct * std::pow(table_rows / sample_rows,
                                             ratio * 0.5));
}

}  // namespace

Result<Statistics> BuildFromData(const std::string& database,
                                 const catalog::TableSchema& schema,
                                 const storage::TableData& data,
                                 const std::vector<std::string>& columns,
                                 const BuildOptions& options) {
  if (columns.empty()) {
    return Status::InvalidArgument("statistics need at least one column");
  }
  std::vector<int> col_indexes;
  col_indexes.reserve(columns.size());
  for (const auto& name : columns) {
    int idx = schema.ColumnIndex(name);
    if (idx < 0) {
      return Status::NotFound(StrFormat("column '%s' not in table '%s'",
                                        name.c_str(), schema.name().c_str()));
    }
    col_indexes.push_back(idx);
  }
  const uint64_t rows = data.row_count();
  const uint64_t sample_n = std::min<uint64_t>(rows, options.max_sample_rows);
  const uint64_t stride = sample_n > 0 ? std::max<uint64_t>(1, rows / sample_n)
                                       : 1;

  Statistics stats;
  stats.key = StatsKey(database, schema.name(), columns);
  stats.row_count = static_cast<double>(rows);

  // Prefix distinct counts via hashing sampled tuples (computed first: the
  // leading prefix's distinct count corrects the histogram's per-value
  // frequencies).
  double sample_rows = 0;
  stats.prefix_distinct.resize(columns.size());
  for (size_t len = 1; len <= columns.size(); ++len) {
    std::unordered_set<uint64_t> seen;
    sample_rows = 0;
    for (uint64_t r = 0; r < rows; r += stride) {
      uint64_t h = kFnvOffset;
      for (size_t i = 0; i < len; ++i) {
        sql::Value v = data.GetValue(r, static_cast<size_t>(col_indexes[i]));
        h = HashCombine(h, v.Hash());
      }
      seen.insert(h);
      sample_rows += 1;
    }
    stats.prefix_distinct[len - 1] = ScaleDistinct(
        static_cast<double>(seen.size()), sample_rows,
        static_cast<double>(rows));
  }

  // Leading-column histogram.
  std::vector<sql::Value> sample;
  sample.reserve(sample_n);
  for (uint64_t r = 0; r < rows; r += stride) {
    sample.push_back(data.GetValue(r, static_cast<size_t>(col_indexes[0])));
  }
  double scale = sample.empty()
                     ? 1.0
                     : static_cast<double>(rows) /
                           static_cast<double>(sample.size());
  stats.histogram =
      Histogram::Build(std::move(sample), scale, options.max_histogram_steps,
                       stats.prefix_distinct[0]);

  stats.build_duration_ms =
      SimulatedCreateDurationMs(rows, schema.RowBytes(), columns.size());
  stats.sampled_pages = static_cast<uint64_t>(
      std::max(1.0, static_cast<double>(rows) / stride * schema.RowBytes() /
                        catalog::TableSchema::kPageBytes));
  return stats;
}

Result<Statistics> SynthesizeFromSpecs(
    const std::string& database, const catalog::TableSchema& schema,
    const std::vector<storage::ColumnSpec>& column_specs,
    const std::vector<std::string>& columns, Random* rng,
    const BuildOptions& options) {
  if (columns.empty()) {
    return Status::InvalidArgument("statistics need at least one column");
  }
  if (column_specs.size() != schema.columns().size()) {
    return Status::InvalidArgument(
        StrFormat("table '%s': %zu specs for %zu columns",
                  schema.name().c_str(), column_specs.size(),
                  schema.columns().size()));
  }
  std::vector<int> col_indexes;
  for (const auto& name : columns) {
    int idx = schema.ColumnIndex(name);
    if (idx < 0) {
      return Status::NotFound(StrFormat("column '%s' not in table '%s'",
                                        name.c_str(), schema.name().c_str()));
    }
    col_indexes.push_back(idx);
  }
  const uint64_t rows = schema.row_count();
  const size_t sample_n = static_cast<size_t>(
      std::min<uint64_t>(rows, std::min<uint64_t>(options.max_sample_rows,
                                                  50000)));

  Statistics stats;
  stats.key = StatsKey(database, schema.name(), columns);
  stats.row_count = static_cast<double>(rows);

  const storage::ColumnSpec& lead =
      column_specs[static_cast<size_t>(col_indexes[0])];
  // Draw the sample across the whole table: position-dependent specs
  // (kSequential) must see positions spread over all `rows`, not just the
  // first sample_n, or the histogram would cover a sliver of the domain.
  std::vector<sql::Value> sample;
  {
    size_t n = std::max<size_t>(sample_n, 1);
    uint64_t stride = std::max<uint64_t>(1, rows / n);
    sample.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      sample.push_back(lead.Sample(static_cast<uint64_t>(i) * stride, rng));
    }
  }
  double scale =
      static_cast<double>(rows) / static_cast<double>(sample.size());
  stats.histogram =
      Histogram::Build(std::move(sample), scale, options.max_histogram_steps,
                       std::max(1.0, lead.ExpectedDistinct(rows)));

  stats.prefix_distinct.resize(columns.size());
  double acc = 1.0;
  for (size_t len = 1; len <= columns.size(); ++len) {
    const storage::ColumnSpec& spec =
        column_specs[static_cast<size_t>(col_indexes[len - 1])];
    acc *= std::max(1.0, spec.ExpectedDistinct(rows));
    stats.prefix_distinct[len - 1] =
        std::min(static_cast<double>(rows), acc);
  }

  stats.build_duration_ms =
      SimulatedCreateDurationMs(rows, schema.RowBytes(), columns.size());
  stats.sampled_pages = static_cast<uint64_t>(std::max(
      1.0, static_cast<double>(rows) *
               std::min(1.0, 100000.0 / std::max<double>(1, rows)) *
               schema.RowBytes() / catalog::TableSchema::kPageBytes));
  return stats;
}

}  // namespace dta::stats
