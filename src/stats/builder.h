// Statistics construction, from actual data (sampled) or from generator
// distribution specs (for metadata-only tables, as in the production/test
// server scenario where statistics are imported rather than recomputed).
//
// Every build reports a *simulated* create-statistics duration that models
// the paper's observation (§5.2): cost is dominated by the I/O of sampling
// the table and is nearly independent of which statistic is created.

#ifndef DTA_STATS_BUILDER_H_
#define DTA_STATS_BUILDER_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/random.h"
#include "common/status.h"
#include "stats/statistics.h"
#include "storage/datagen.h"
#include "storage/table_data.h"

namespace dta::stats {

struct BuildOptions {
  uint64_t max_sample_rows = 200000;
  int max_histogram_steps = 200;
};

// Simulated elapsed time of CREATE STATISTICS ... WITH SAMPLE on a table of
// this size. Deliberately (nearly) independent of the column count.
double SimulatedCreateDurationMs(uint64_t table_rows, int table_row_bytes,
                                 size_t num_columns);

// Builds a statistic on `columns` (ordered) of the table from its data.
Result<Statistics> BuildFromData(const std::string& database,
                                 const catalog::TableSchema& schema,
                                 const storage::TableData& data,
                                 const std::vector<std::string>& columns,
                                 const BuildOptions& options = {});

// Synthesizes a statistic from distribution specs, without data. The
// histogram is built from a fresh sample drawn from the leading column's
// spec; prefix distinct counts come from the specs' expected-distinct model.
Result<Statistics> SynthesizeFromSpecs(
    const std::string& database, const catalog::TableSchema& schema,
    const std::vector<storage::ColumnSpec>& column_specs,
    const std::vector<std::string>& columns, Random* rng,
    const BuildOptions& options = {});

}  // namespace dta::stats

#endif  // DTA_STATS_BUILDER_H_
