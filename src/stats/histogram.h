// Equi-depth histogram on a single column, modeled on SQL Server steps:
// each step has an inclusive upper boundary (RANGE_HI_KEY), the number of
// rows equal to the boundary (EQ_ROWS), and the rows / distinct values
// strictly between the previous boundary and this one (RANGE_ROWS,
// DISTINCT_RANGE_ROWS).

#ifndef DTA_STATS_HISTOGRAM_H_
#define DTA_STATS_HISTOGRAM_H_

#include <optional>
#include <string>
#include <vector>

#include "sql/value.h"

namespace dta::stats {

class Histogram {
 public:
  struct Step {
    sql::Value upper;       // inclusive upper boundary
    double eq_rows = 0;     // rows equal to `upper`
    double range_rows = 0;  // rows strictly inside (prev.upper, upper)
    double distinct_range = 0;
  };

  Histogram() = default;

  // Builds from a sample. `scale` multiplies sample counts up to table
  // cardinality (scale = table_rows / sample_rows). `max_steps` bounds the
  // number of steps (SQL Server uses up to 200).
  //
  // `expected_distinct` (when > 0) is the estimated distinct count of the
  // column over the WHOLE table. Without it, per-value frequencies from a
  // sparse sample are over-scaled: a key column sampled at 1% would look
  // like every value occurs 100 times. The correction factor
  // (sample distinct / expected distinct) fixes EQ_ROWS and
  // DISTINCT_RANGE_ROWS so per-value estimates match rows/expected_distinct.
  static Histogram Build(std::vector<sql::Value> sample, double scale,
                         int max_steps = 200, double expected_distinct = -1);

  bool empty() const { return steps_.empty(); }
  double total_rows() const { return total_rows_; }
  double distinct_count() const { return distinct_count_; }
  const std::vector<Step>& steps() const { return steps_; }
  const sql::Value& MinValue() const { return min_value_; }
  const sql::Value& MaxValue() const { return steps_.back().upper; }

  // Estimated rows with column == v.
  double EstimateEquals(const sql::Value& v) const;
  // Estimated rows in the range; nullopt bounds are unbounded.
  double EstimateRange(const std::optional<sql::Value>& lo, bool lo_inclusive,
                       const std::optional<sql::Value>& hi,
                       bool hi_inclusive) const;
  // Estimated rows matching a LIKE 'prefix%' pattern.
  double EstimateLikePrefix(const std::string& prefix) const;

  // Value below which approximately `fraction` of rows fall (equi-depth
  // quantile); used to propose range-partition boundaries.
  sql::Value ValueAtFraction(double fraction) const;

 private:
  std::vector<Step> steps_;
  sql::Value min_value_;
  double total_rows_ = 0;
  double distinct_count_ = 0;
};

}  // namespace dta::stats

#endif  // DTA_STATS_HISTOGRAM_H_
