// Multi-column statistics objects and the per-server statistics manager.
//
// Mirrors the SQL Server model the paper relies on (§5.2): a statistic on
// columns (A,B,C) carries a histogram on the LEADING column only, plus
// density (distinct count) information for each leading prefix (A), (A,B),
// (A,B,C). Density is order-insensitive: Density(A,B) == Density(B,A).

#ifndef DTA_STATS_STATISTICS_H_
#define DTA_STATS_STATISTICS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "stats/histogram.h"

namespace dta::stats {

// Identity of a statistic: table + ordered column list.
struct StatsKey {
  std::string database;
  std::string table;
  std::vector<std::string> columns;  // ordered, normalized lower-case

  StatsKey() = default;
  StatsKey(std::string database, std::string table,
           std::vector<std::string> columns);

  std::string CanonicalString() const;
  bool operator<(const StatsKey& other) const {
    return CanonicalString() < other.CanonicalString();
  }
  bool operator==(const StatsKey& other) const {
    return CanonicalString() == other.CanonicalString();
  }
};

struct Statistics {
  StatsKey key;
  Histogram histogram;  // on key.columns[0]
  // prefix_distinct[i] = estimated distinct count of columns[0..i].
  std::vector<double> prefix_distinct;
  double row_count = 0;          // table cardinality at build time
  double build_duration_ms = 0;  // simulated create-statistics duration
  uint64_t sampled_pages = 0;

  // Density of leading prefix of length `len` = 1/distinct (SQL Server
  // "all density").
  double PrefixDensity(size_t len) const {
    if (len == 0 || len > prefix_distinct.size()) return 1.0;
    double d = prefix_distinct[len - 1];
    return d > 0 ? 1.0 / d : 1.0;
  }
};

// Holds all statistics of one server; supports histogram and density lookup
// as the optimizer needs them.
class StatsManager {
 public:
  StatsManager() = default;

  // Adds or replaces.
  void Put(Statistics stats);
  bool Contains(const StatsKey& key) const;
  const Statistics* Find(const StatsKey& key) const;
  size_t size() const { return stats_.size(); }

  // Any statistic whose leading column is `column` (so its histogram
  // describes that column).
  const Statistics* FindHistogram(std::string_view database,
                                  std::string_view table,
                                  std::string_view column) const;

  // Distinct-count estimate for a set of columns, using any statistic with a
  // leading prefix that equals the set (order-insensitive). Returns nullopt
  // when no statistic provides it.
  std::optional<double> DistinctCount(
      std::string_view database, std::string_view table,
      const std::vector<std::string>& columns) const;

  // Enumerates all stored statistics (e.g. for export to a test server).
  std::vector<const Statistics*> All() const;

  void Clear() { stats_.clear(); }

 private:
  std::map<std::string, Statistics> stats_;  // key: canonical string
};

}  // namespace dta::stats

#endif  // DTA_STATS_STATISTICS_H_
