#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

namespace dta::stats {

Histogram Histogram::Build(std::vector<sql::Value> sample, double scale,
                           int max_steps, double expected_distinct) {
  Histogram h;
  if (sample.empty()) return h;
  std::sort(sample.begin(), sample.end(),
            [](const sql::Value& a, const sql::Value& b) {
              return a.Compare(b) < 0;
            });
  h.min_value_ = sample.front();
  const size_t n = sample.size();
  // Run-length encode into (value, count) pairs.
  std::vector<std::pair<sql::Value, double>> runs;
  for (size_t i = 0; i < n;) {
    size_t j = i + 1;
    while (j < n && sample[j].Compare(sample[i]) == 0) ++j;
    runs.emplace_back(sample[i], static_cast<double>(j - i) * scale);
    i = j;
  }
  // Per-value frequency correction (see header): without it, a sparse
  // sample of a near-unique column over-reports every value's frequency by
  // the sampling scale.
  double sample_distinct = static_cast<double>(runs.size());
  double eq_correction = 1.0;
  if (expected_distinct > 0 && expected_distinct > sample_distinct) {
    eq_correction = sample_distinct / expected_distinct;
  }
  h.distinct_count_ =
      expected_distinct > 0 ? std::max(expected_distinct, sample_distinct)
                            : sample_distinct;
  h.total_rows_ = static_cast<double>(n) * scale;

  // Equi-depth stepping: aim for ~total/max_steps rows per step, always
  // closing a step at a distinct value boundary.
  const double target = h.total_rows_ / std::max(1, max_steps);
  Step cur;
  double in_range_rows = 0;
  double in_range_distinct = 0;
  for (size_t r = 0; r < runs.size(); ++r) {
    const bool last = (r + 1 == runs.size());
    if (in_range_rows + runs[r].second >= target || last ||
        runs[r].second >= target) {
      // Close a step at this value.
      cur.upper = runs[r].first;
      cur.eq_rows = runs[r].second * eq_correction;
      cur.range_rows = in_range_rows;
      cur.distinct_range =
          std::min(in_range_rows, in_range_distinct / eq_correction);
      h.steps_.push_back(cur);
      cur = Step{};
      in_range_rows = 0;
      in_range_distinct = 0;
    } else {
      in_range_rows += runs[r].second;
      in_range_distinct += 1;
    }
  }
  return h;
}

double Histogram::EstimateEquals(const sql::Value& v) const {
  if (steps_.empty()) return 0;
  if (v.Compare(min_value_) < 0 || v.Compare(MaxValue()) > 0) return 0;
  for (const Step& s : steps_) {
    int cmp = v.Compare(s.upper);
    if (cmp == 0) return s.eq_rows;
    if (cmp < 0) {
      // Inside the open range of this step: uniform within distinct values.
      if (s.distinct_range <= 0) return 0;
      return s.range_rows / s.distinct_range;
    }
  }
  return 0;
}

double Histogram::EstimateRange(const std::optional<sql::Value>& lo,
                                bool lo_inclusive,
                                const std::optional<sql::Value>& hi,
                                bool hi_inclusive) const {
  if (steps_.empty()) return 0;
  // Accumulate rows <= x (with inclusivity) via a helper, then subtract.
  auto rows_below = [this](const sql::Value& x, bool inclusive) {
    // Rows with value < x (or <= x when inclusive).
    double acc = 0;
    for (const Step& s : steps_) {
      int cmp = x.Compare(s.upper);
      if (cmp > 0) {
        acc += s.range_rows + s.eq_rows;
        continue;
      }
      if (cmp == 0) {
        acc += s.range_rows + (inclusive ? s.eq_rows : 0);
        return acc;
      }
      // x falls inside this step's open range: linear interpolation over the
      // range. Interpolate on numeric distance when possible, else half.
      double frac = 0.5;
      const sql::Value* prev_upper =
          (&s == &steps_.front()) ? &min_value_ : nullptr;
      // Find the previous step's upper for interpolation.
      for (size_t i = 1; i < steps_.size(); ++i) {
        if (&steps_[i] == &s) {
          prev_upper = &steps_[i - 1].upper;
          break;
        }
      }
      if (prev_upper != nullptr && prev_upper->is_numeric() &&
          s.upper.is_numeric() && x.is_numeric()) {
        double lo_d = prev_upper->ToDouble();
        double hi_d = s.upper.ToDouble();
        if (hi_d > lo_d) {
          frac = (x.ToDouble() - lo_d) / (hi_d - lo_d);
          frac = std::clamp(frac, 0.0, 1.0);
        }
      }
      acc += s.range_rows * frac;
      return acc;
    }
    return acc;  // x above max: everything
  };

  double upper_rows =
      hi.has_value() ? rows_below(*hi, hi_inclusive) : total_rows_;
  double lower_rows = lo.has_value() ? rows_below(*lo, !lo_inclusive) : 0;
  // When lo is inclusive we must NOT count rows == lo as below.
  return std::max(0.0, upper_rows - lower_rows);
}

double Histogram::EstimateLikePrefix(const std::string& prefix) const {
  if (prefix.empty()) return total_rows_;
  // LIKE 'abc%' == range ['abc', 'abc\xff...').
  std::string hi = prefix;
  hi.push_back('\x7f');
  return EstimateRange(sql::Value::String(prefix), true,
                       sql::Value::String(hi), false);
}

sql::Value Histogram::ValueAtFraction(double fraction) const {
  if (steps_.empty()) return sql::Value::Null();
  fraction = std::clamp(fraction, 0.0, 1.0);
  double target = fraction * total_rows_;
  double acc = 0;
  for (const Step& s : steps_) {
    acc += s.range_rows + s.eq_rows;
    if (acc >= target) return s.upper;
  }
  return MaxValue();
}

}  // namespace dta::stats
