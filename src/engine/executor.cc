#include "engine/executor.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/strings.h"
#include "optimizer/view_matching.h"
#include "sql/printer.h"

namespace dta::engine {

using optimizer::BoundAtom;
using optimizer::BoundQuery;
using optimizer::PlanNode;
using optimizer::PlanOp;
using optimizer::ViewMatchInfo;

// --------------------------------------------------------------------------
// Intermediate results
// --------------------------------------------------------------------------

struct Executor::Rel {
  // Column identities: (table index, column ordinal) for base columns,
  // (kViewTable, view output ordinal) for view output, (kItemSlot, item
  // index) for final aggregated items.
  static constexpr int kViewTable = -2;
  static constexpr int kItemSlot = -3;

  std::vector<std::pair<int, int>> cols;
  std::vector<std::vector<sql::Value>> rows;
  const ViewMatchInfo* view_match = nullptr;  // set for view output rels
  bool aggregated = false;
  size_t item_count = 0;

  int SlotOf(int table, int col) const {
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i].first == table && cols[i].second == col) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

namespace {

// LIKE pattern matcher supporting % and _.
bool LikeMatch(const std::string& text, const std::string& pattern, size_t ti,
               size_t pi) {
  while (pi < pattern.size()) {
    char pc = pattern[pi];
    if (pc == '%') {
      // Try to match the rest of the pattern at every position.
      for (size_t k = ti; k <= text.size(); ++k) {
        if (LikeMatch(text, pattern, k, pi + 1)) return true;
      }
      return false;
    }
    if (ti >= text.size()) return false;
    if (pc != '_' && pc != text[ti]) return false;
    ++ti;
    ++pi;
  }
  return ti == text.size();
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  return LikeMatch(text, pattern, 0, 0);
}

sql::Value ArithValue(sql::BinaryOp op, const sql::Value& l,
                      const sql::Value& r) {
  if (l.is_null() || r.is_null()) return sql::Value::Null();
  if (op != sql::BinaryOp::kDiv && l.type() == sql::ValueType::kInt &&
      r.type() == sql::ValueType::kInt) {
    int64_t a = l.AsInt(), b = r.AsInt();
    switch (op) {
      case sql::BinaryOp::kAdd:
        return sql::Value::Int(a + b);
      case sql::BinaryOp::kSub:
        return sql::Value::Int(a - b);
      case sql::BinaryOp::kMul:
        return sql::Value::Int(a * b);
      default:
        break;
    }
  }
  double a = l.ToDouble(), b = r.ToDouble();
  switch (op) {
    case sql::BinaryOp::kAdd:
      return sql::Value::Double(a + b);
    case sql::BinaryOp::kSub:
      return sql::Value::Double(a - b);
    case sql::BinaryOp::kMul:
      return sql::Value::Double(a * b);
    case sql::BinaryOp::kDiv:
      return b == 0 ? sql::Value::Null() : sql::Value::Double(a / b);
  }
  return sql::Value::Null();
}

struct VecValueLess {
  bool operator()(const std::vector<sql::Value>& a,
                  const std::vector<sql::Value>& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

}  // namespace

// --------------------------------------------------------------------------
// Expression / predicate evaluation
// --------------------------------------------------------------------------

namespace {

// Looks up the slot of a bound (table, column) in a rel, going through the
// view column map when the rel is view output.
int ResolveSlot(const Executor::Rel& rel, int table, int col) {
  if (rel.view_match != nullptr) {
    auto it = rel.view_match->column_map.find({table, col});
    if (it == rel.view_match->column_map.end()) return -1;
    return rel.SlotOf(Executor::Rel::kViewTable, it->second);
  }
  return rel.SlotOf(table, col);
}

Result<sql::Value> EvalExpr(const sql::Expr& e, const BoundQuery& q,
                            const Executor::Rel& rel,
                            const std::vector<sql::Value>& row) {
  switch (e.kind) {
    case sql::Expr::Kind::kConst:
      return e.value;
    case sql::Expr::Kind::kColumn: {
      auto rc = optimizer::ResolveColumnRef(e.column, q);
      if (!rc.ok()) return rc.status();
      int slot = ResolveSlot(rel, rc->first, rc->second);
      if (slot < 0) {
        return Status::Internal(
            StrFormat("column '%s' not present in intermediate result",
                      e.column.column.c_str()));
      }
      return row[static_cast<size_t>(slot)];
    }
    case sql::Expr::Kind::kBinary: {
      auto l = EvalExpr(*e.left, q, rel, row);
      if (!l.ok()) return l.status();
      auto r = EvalExpr(*e.right, q, rel, row);
      if (!r.ok()) return r.status();
      return ArithValue(e.op, *l, *r);
    }
    case sql::Expr::Kind::kAggregate:
      return Status::Internal("aggregate evaluated outside aggregation");
  }
  return sql::Value::Null();
}

Result<bool> EvalAtom(const BoundAtom& atom, const BoundQuery& /*q*/,
                      const Executor::Rel& rel,
                      const std::vector<sql::Value>& row) {
  int lslot = ResolveSlot(rel, atom.table, atom.column);
  if (lslot < 0) return Status::Internal("predicate column missing in rel");
  const sql::Value& lhs = row[static_cast<size_t>(lslot)];
  const sql::Predicate& p = *atom.pred;
  auto cmp_ok = [&](sql::CompareOp op, int c) {
    switch (op) {
      case sql::CompareOp::kEq:
        return c == 0;
      case sql::CompareOp::kNe:
        return c != 0;
      case sql::CompareOp::kLt:
        return c < 0;
      case sql::CompareOp::kLe:
        return c <= 0;
      case sql::CompareOp::kGt:
        return c > 0;
      case sql::CompareOp::kGe:
        return c >= 0;
    }
    return false;
  };
  switch (p.kind) {
    case sql::Predicate::Kind::kCompare:
      return cmp_ok(p.op, lhs.Compare(p.value));
    case sql::Predicate::Kind::kBetween:
      return lhs.Compare(p.low) >= 0 && lhs.Compare(p.high) <= 0;
    case sql::Predicate::Kind::kIn:
      for (const auto& v : p.in_list) {
        if (lhs.Compare(v) == 0) return true;
      }
      return false;
    case sql::Predicate::Kind::kLike:
      if (lhs.type() != sql::ValueType::kString) return false;
      return LikeMatch(lhs.AsString(), p.like_pattern);
    case sql::Predicate::Kind::kColumnCompare: {
      int rslot = ResolveSlot(rel, atom.rhs_table, atom.rhs_column);
      if (rslot < 0) {
        return Status::Internal("rhs predicate column missing in rel");
      }
      return cmp_ok(p.op, lhs.Compare(row[static_cast<size_t>(rslot)]));
    }
  }
  return false;
}

Result<bool> EvalAtoms(const std::vector<int>& atom_ids, const BoundQuery& q,
                       const Executor::Rel& rel,
                       const std::vector<sql::Value>& row) {
  for (int a : atom_ids) {
    auto ok = EvalAtom(q.atoms[static_cast<size_t>(a)], q, rel, row);
    if (!ok.ok()) return ok.status();
    if (!*ok) return false;
  }
  return true;
}

}  // namespace

// --------------------------------------------------------------------------
// Structure materialization
// --------------------------------------------------------------------------

struct Executor::IndexData {
  const storage::TableData* data = nullptr;
  std::vector<int> key_cols;          // column ordinals
  std::vector<uint32_t> rowids;       // sorted by key
};

Executor::Executor(const catalog::Catalog& catalog, const DataSource* data)
    : catalog_(catalog), data_(data) {}

Executor::~Executor() = default;

void Executor::ClearStructureCache() {
  indexes_.clear();
  views_.clear();
}

const storage::TableData* Executor::FindData(const BoundQuery& q,
                                             int table) const {
  const optimizer::BoundTable& bt = q.tables[static_cast<size_t>(table)];
  if (data_ == nullptr) return nullptr;
  return data_->Table(bt.database->name(), bt.schema->name());
}

Result<const Executor::IndexData*> Executor::MaterializeIndex(
    const catalog::IndexDef& index) {
  std::string key = index.CanonicalName();
  auto it = indexes_.find(key);
  if (it != indexes_.end()) return it->second.get();

  auto resolved = catalog_.ResolveTable(index.database, index.table);
  if (!resolved.ok()) return resolved.status();
  const storage::TableData* data =
      data_ != nullptr ? data_->Table(resolved->database->name(),
                                      resolved->table->name())
                       : nullptr;
  if (data == nullptr) {
    return Status::FailedPrecondition(
        StrFormat("no data for table '%s' (metadata-only?)",
                  resolved->table->name().c_str()));
  }
  auto ix = std::make_unique<IndexData>();
  ix->data = data;
  for (const auto& col : index.key_columns) {
    int ci = resolved->table->ColumnIndex(col);
    if (ci < 0) {
      return Status::NotFound(StrFormat("index key column '%s' missing",
                                        col.c_str()));
    }
    ix->key_cols.push_back(ci);
  }
  ix->rowids.resize(data->row_count());
  for (size_t i = 0; i < ix->rowids.size(); ++i) {
    ix->rowids[i] = static_cast<uint32_t>(i);
  }
  std::stable_sort(ix->rowids.begin(), ix->rowids.end(),
                   [&](uint32_t a, uint32_t b) {
                     return data->CompareRows(a, b, ix->key_cols) < 0;
                   });
  const IndexData* out = ix.get();
  indexes_[key] = std::move(ix);
  return out;
}

Result<const Executor::Rel*> Executor::MaterializeView(
    const catalog::ViewDef& view) {
  std::string key = view.CanonicalName();
  auto it = views_.find(key);
  if (it != views_.end()) return it->second.get();
  if (view.definition == nullptr) {
    return Status::InvalidArgument("view has no definition");
  }
  // Execute the definition against the raw configuration.
  stats::StatsManager no_stats;
  optimizer::StatsProvider provider(&no_stats);
  optimizer::Optimizer opt(catalog_, provider, optimizer::HardwareParams());
  auto plan = opt.OptimizeSelect(*view.definition, catalog::Configuration());
  if (!plan.ok()) return plan.status();
  auto result = Execute(plan->bound, *plan->root);
  if (!result.ok()) return result.status();

  auto rel = std::make_unique<Rel>();
  rel->rows = std::move(result->rows);
  for (size_t i = 0; i < result->column_names.size(); ++i) {
    rel->cols.emplace_back(Rel::kViewTable, static_cast<int>(i));
  }
  const Rel* out = rel.get();
  views_[key] = std::move(rel);
  return out;
}

// --------------------------------------------------------------------------
// Operators
// --------------------------------------------------------------------------

Result<Executor::Rel> Executor::ExecScan(const BoundQuery& q,
                                         const PlanNode& node) {
  const storage::TableData* data = FindData(q, node.table);
  if (data == nullptr) {
    return Status::FailedPrecondition("no data for scanned table");
  }
  Rel rel;
  const auto& need =
      q.referenced_columns[static_cast<size_t>(node.table)];
  for (int c : need) rel.cols.emplace_back(node.table, c);

  std::vector<uint32_t> order;
  if (node.op == PlanOp::kIndexScan && node.index != nullptr) {
    auto ix = MaterializeIndex(*node.index);
    if (!ix.ok()) return ix.status();
    order = (*ix)->rowids;
  }
  std::vector<sql::Value> row(need.size());
  for (size_t i = 0; i < data->row_count(); ++i) {
    size_t r = order.empty() ? i : order[i];
    for (size_t c = 0; c < need.size(); ++c) {
      row[c] = data->GetValue(r, static_cast<size_t>(need[c]));
    }
    auto keep = EvalAtoms(node.atoms, q, rel, row);
    if (!keep.ok()) return keep.status();
    if (*keep) rel.rows.push_back(row);
  }
  return rel;
}

Result<Executor::Rel> Executor::ExecSeek(
    const BoundQuery& q, const PlanNode& node,
    const std::vector<sql::Value>* param_key) {
  if (node.index == nullptr) return Status::Internal("seek without index");
  auto ix_or = MaterializeIndex(*node.index);
  if (!ix_or.ok()) return ix_or.status();
  const IndexData& ix = **ix_or;
  const storage::TableData* data = ix.data;

  Rel rel;
  const auto& need =
      q.referenced_columns[static_cast<size_t>(node.table)];
  for (int c : need) rel.cols.emplace_back(node.table, c);

  // Build the probes: a common equality prefix plus an optional terminal
  // range; IN terminals expand into several equality probes.
  struct Probe {
    std::vector<sql::Value> prefix;
    std::optional<sql::Value> lo, hi;
    bool lo_incl = true, hi_incl = true;
    bool bounded = false;  // lo/hi apply to the column after the prefix
  };
  std::vector<Probe> probes;
  {
    Probe base;
    bool terminal_done = false;
    for (size_t s = 0; s < node.seek_atoms.size(); ++s) {
      const BoundAtom& atom =
          q.atoms[static_cast<size_t>(node.seek_atoms[s])];
      const sql::Predicate& p = *atom.pred;
      if (param_key != nullptr && s == 0 && atom.IsJoin()) {
        // Parameterized join probe: key supplied by the outer row.
        base.prefix.push_back((*param_key)[0]);
        continue;
      }
      if (p.IsEquality()) {
        base.prefix.push_back(p.value);
        continue;
      }
      terminal_done = true;
      switch (p.kind) {
        case sql::Predicate::Kind::kCompare:
          base.bounded = true;
          if (p.op == sql::CompareOp::kLt) {
            base.hi = p.value;
            base.hi_incl = false;
          } else if (p.op == sql::CompareOp::kLe) {
            base.hi = p.value;
          } else if (p.op == sql::CompareOp::kGt) {
            base.lo = p.value;
            base.lo_incl = false;
          } else if (p.op == sql::CompareOp::kGe) {
            base.lo = p.value;
          }
          break;
        case sql::Predicate::Kind::kBetween:
          base.bounded = true;
          base.lo = p.low;
          base.hi = p.high;
          break;
        case sql::Predicate::Kind::kLike: {
          size_t wild = p.like_pattern.find_first_of("%_");
          std::string prefix = p.like_pattern.substr(
              0, wild == std::string::npos ? p.like_pattern.size() : wild);
          base.bounded = true;
          base.lo = sql::Value::String(prefix);
          std::string hi = prefix;
          hi.push_back('\x7f');
          base.hi = sql::Value::String(hi);
          base.hi_incl = false;
          break;
        }
        case sql::Predicate::Kind::kIn: {
          for (const auto& v : p.in_list) {
            Probe pr = base;
            pr.prefix.push_back(v);
            probes.push_back(std::move(pr));
          }
          break;
        }
        default:
          break;
      }
      break;  // only one terminal
    }
    if (probes.empty()) probes.push_back(std::move(base));
    (void)terminal_done;
  }

  // Binary-search helpers over the sorted rowids.
  auto lower = [&](const std::vector<sql::Value>& key) {
    return std::lower_bound(ix.rowids.begin(), ix.rowids.end(), key,
                            [&](uint32_t rid,
                                const std::vector<sql::Value>& k) {
                              return data->CompareRowToKey(rid, ix.key_cols,
                                                           k) < 0;
                            });
  };
  auto upper = [&](const std::vector<sql::Value>& key) {
    return std::upper_bound(ix.rowids.begin(), ix.rowids.end(), key,
                            [&](const std::vector<sql::Value>& k,
                                uint32_t rid) {
                              return data->CompareRowToKey(rid, ix.key_cols,
                                                           k) > 0;
                            });
  };

  std::vector<sql::Value> row(need.size());
  for (const Probe& probe : probes) {
    auto begin = ix.rowids.begin();
    auto end = ix.rowids.end();
    if (!probe.prefix.empty() || probe.bounded) {
      std::vector<sql::Value> lo_key = probe.prefix;
      std::vector<sql::Value> hi_key = probe.prefix;
      if (probe.bounded && probe.lo.has_value()) lo_key.push_back(*probe.lo);
      if (probe.bounded && probe.hi.has_value()) hi_key.push_back(*probe.hi);
      begin = probe.bounded && probe.lo.has_value() && !probe.lo_incl
                  ? upper(lo_key)
                  : lower(lo_key);
      if (probe.bounded && probe.hi.has_value()) {
        end = probe.hi_incl ? upper(hi_key) : lower(hi_key);
      } else if (!probe.prefix.empty()) {
        end = upper(probe.prefix);
      }
    }
    for (auto it = begin; it != end; ++it) {
      size_t r = *it;
      // Unbounded-side prefix check: when bounded with only one side, rows
      // beyond the prefix could slip in; verify prefix equality.
      if (!probe.prefix.empty() &&
          data->CompareRowToKey(r, ix.key_cols, probe.prefix) != 0) {
        continue;
      }
      for (size_t c = 0; c < need.size(); ++c) {
        row[c] = data->GetValue(r, static_cast<size_t>(need[c]));
      }
      auto keep = EvalAtoms(node.atoms, q, rel, row);
      if (!keep.ok()) return keep.status();
      if (*keep) rel.rows.push_back(row);
    }
  }
  return rel;
}

Result<Executor::Rel> Executor::ExecViewScan(const BoundQuery& q,
                                             const PlanNode& node) {
  if (node.view == nullptr || node.view_match == nullptr) {
    return Status::Internal("view scan without view");
  }
  auto mat = MaterializeView(*node.view);
  if (!mat.ok()) return mat.status();
  Rel rel;
  rel.cols = (*mat)->cols;
  rel.view_match = node.view_match.get();
  for (const auto& row : (*mat)->rows) {
    auto keep = EvalAtoms(node.atoms, q, rel, row);
    if (!keep.ok()) return keep.status();
    if (*keep) rel.rows.push_back(row);
  }
  return rel;
}

namespace {

// Applies a node's residual atoms (e.g. cross-table comparisons attached
// above a join) to an already-produced rel.
Result<Executor::Rel> ApplyResidualAtoms(const std::vector<int>& atom_ids,
                                         const BoundQuery& q,
                                         Executor::Rel rel) {
  if (atom_ids.empty()) return rel;
  std::vector<std::vector<sql::Value>> kept;
  kept.reserve(rel.rows.size());
  for (auto& row : rel.rows) {
    auto ok = EvalAtoms(atom_ids, q, rel, row);
    if (!ok.ok()) return ok.status();
    if (*ok) kept.push_back(std::move(row));
  }
  rel.rows = std::move(kept);
  return rel;
}

}  // namespace

Result<Executor::Rel> Executor::ExecJoin(const BoundQuery& q,
                                         const PlanNode& node) {
  // Hash or merge join over fully materialized children; merge joins are
  // executed with the same hash algorithm (results identical; the cost
  // model, not the executor, differentiates them).
  auto left = Exec(q, *node.children[0]);
  if (!left.ok()) return left.status();
  auto right = Exec(q, *node.children[1]);
  if (!right.ok()) return right.status();

  Rel out;
  out.cols = left->cols;
  out.cols.insert(out.cols.end(), right->cols.begin(), right->cols.end());

  // Join key slots per side.
  std::vector<int> lslots, rslots;
  for (int a : node.join_atoms) {
    const BoundAtom& atom = q.atoms[static_cast<size_t>(a)];
    int l1 = left->SlotOf(atom.table, atom.column);
    int r1 = right->SlotOf(atom.rhs_table, atom.rhs_column);
    if (l1 >= 0 && r1 >= 0) {
      lslots.push_back(l1);
      rslots.push_back(r1);
      continue;
    }
    int l2 = left->SlotOf(atom.rhs_table, atom.rhs_column);
    int r2 = right->SlotOf(atom.table, atom.column);
    if (l2 >= 0 && r2 >= 0) {
      lslots.push_back(l2);
      rslots.push_back(r2);
      continue;
    }
    return Status::Internal("join key not found in children");
  }

  if (lslots.empty()) {
    // Cartesian product.
    for (const auto& lr : left->rows) {
      for (const auto& rr : right->rows) {
        std::vector<sql::Value> row = lr;
        row.insert(row.end(), rr.begin(), rr.end());
        out.rows.push_back(std::move(row));
      }
    }
    return ApplyResidualAtoms(node.atoms, q, std::move(out));
  }

  // Build on the left child (the optimizer puts the build side first).
  std::map<std::vector<sql::Value>, std::vector<size_t>, VecValueLess> table;
  std::vector<sql::Value> key(lslots.size());
  for (size_t i = 0; i < left->rows.size(); ++i) {
    for (size_t k = 0; k < lslots.size(); ++k) {
      key[k] = left->rows[i][static_cast<size_t>(lslots[k])];
    }
    table[key].push_back(i);
  }
  for (const auto& rr : right->rows) {
    for (size_t k = 0; k < rslots.size(); ++k) {
      key[k] = rr[static_cast<size_t>(rslots[k])];
    }
    auto it = table.find(key);
    if (it == table.end()) continue;
    for (size_t li : it->second) {
      std::vector<sql::Value> row = left->rows[li];
      row.insert(row.end(), rr.begin(), rr.end());
      out.rows.push_back(std::move(row));
    }
  }
  return ApplyResidualAtoms(node.atoms, q, std::move(out));
}

Result<Executor::Rel> Executor::ExecNestLoop(const BoundQuery& q,
                                             const PlanNode& node) {
  auto outer = Exec(q, *node.children[0]);
  if (!outer.ok()) return outer.status();
  const PlanNode& inner = *node.children[1];
  if (inner.op != PlanOp::kIndexSeek || inner.seek_atoms.empty()) {
    return Status::Internal("nest-loop inner must be an index seek");
  }
  const BoundAtom& seek_atom =
      q.atoms[static_cast<size_t>(inner.seek_atoms[0])];
  // Outer side column of the seek atom.
  int otab = seek_atom.table == inner.table ? seek_atom.rhs_table
                                            : seek_atom.table;
  int ocol = seek_atom.table == inner.table ? seek_atom.rhs_column
                                            : seek_atom.column;
  int oslot = outer->SlotOf(otab, ocol);
  if (oslot < 0) return Status::Internal("outer join key not available");

  Rel out;
  out.cols = outer->cols;
  bool cols_done = false;

  std::vector<sql::Value> param(1);
  for (const auto& orow : outer->rows) {
    param[0] = orow[static_cast<size_t>(oslot)];
    auto matched = ExecSeek(q, inner, &param);
    if (!matched.ok()) return matched.status();
    if (!cols_done) {
      out.cols.insert(out.cols.end(), matched->cols.begin(),
                      matched->cols.end());
      cols_done = true;
    }
    for (const auto& irow : matched->rows) {
      std::vector<sql::Value> row = orow;
      row.insert(row.end(), irow.begin(), irow.end());
      // Apply any additional join atoms beyond the seek key.
      bool keep = true;
      for (int a : node.join_atoms) {
        if (a == inner.seek_atoms[0]) continue;
        auto ok = EvalAtom(q.atoms[static_cast<size_t>(a)], q, out, row);
        if (!ok.ok()) return ok.status();
        if (!*ok) {
          keep = false;
          break;
        }
      }
      if (keep) out.rows.push_back(std::move(row));
    }
  }
  if (!cols_done) {
    // No outer rows matched anything; synthesize inner columns.
    const auto& need =
        q.referenced_columns[static_cast<size_t>(inner.table)];
    for (int c : need) out.cols.emplace_back(inner.table, c);
  }
  return ApplyResidualAtoms(node.atoms, q, std::move(out));
}

Result<Executor::Rel> Executor::ExecAggregate(const BoundQuery& q,
                                              const PlanNode& node) {
  auto child = Exec(q, *node.children[0]);
  if (!child.ok()) return child.status();
  const sql::SelectStatement& stmt = *q.stmt;

  // DISTINCT without aggregates: dedupe projected rows.
  if (q.group_by.empty() && !stmt.HasAggregates() && stmt.distinct) {
    Rel out;
    out.aggregated = true;
    out.item_count = stmt.items.size();
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      out.cols.emplace_back(Rel::kItemSlot, static_cast<int>(i));
    }
    std::map<std::vector<sql::Value>, bool, VecValueLess> seen;
    for (const auto& row : child->rows) {
      std::vector<sql::Value> proj;
      proj.reserve(stmt.items.size());
      for (const auto& item : stmt.items) {
        auto v = EvalExpr(*item.expr, q, *child, row);
        if (!v.ok()) return v.status();
        proj.push_back(std::move(v).value());
      }
      if (seen.emplace(proj, true).second) out.rows.push_back(proj);
    }
    return out;
  }

  // Group keys.
  const bool from_view = node.view_reaggregate;
  const ViewMatchInfo* vm = node.view_match.get();
  std::vector<int> key_slots;
  for (const auto& [t, c] : q.group_by) {
    int slot = ResolveSlot(*child, t, c);
    if (slot < 0) return Status::Internal("group column missing");
    key_slots.push_back(slot);
  }

  struct Acc {
    double sum = 0;
    double cnt = 0;
    bool has = false;
    sql::Value min, max;
    std::map<std::vector<sql::Value>, bool, VecValueLess> distinct;
  };
  struct Group {
    std::vector<sql::Value> rep;  // representative child row
    std::vector<Acc> accs;
  };
  std::map<std::vector<sql::Value>, Group, VecValueLess> groups;

  const size_t n_items = stmt.items.size();
  std::vector<sql::Value> key(key_slots.size());
  for (const auto& row : child->rows) {
    for (size_t k = 0; k < key_slots.size(); ++k) {
      key[k] = row[static_cast<size_t>(key_slots[k])];
    }
    auto [it, inserted] = groups.try_emplace(key);
    Group& g = it->second;
    if (inserted) {
      g.rep = row;
      g.accs.resize(n_items);
    }
    for (size_t i = 0; i < n_items; ++i) {
      const sql::Expr* e = stmt.items[i].expr.get();
      Acc& acc = g.accs[i];
      if (from_view && vm != nullptr) {
        const ViewMatchInfo::ItemSource& src = vm->item_sources[i];
        if (src.avg_sum_col >= 0) {
          int ss = child->SlotOf(Rel::kViewTable, src.avg_sum_col);
          int cs = child->SlotOf(Rel::kViewTable, src.avg_cnt_col);
          if (ss < 0 || cs < 0) return Status::Internal("avg cols missing");
          acc.sum += row[static_cast<size_t>(ss)].ToDouble();
          acc.cnt += row[static_cast<size_t>(cs)].ToDouble();
          acc.has = true;
          continue;
        }
        if (src.view_col >= 0) {
          int slot = child->SlotOf(Rel::kViewTable, src.view_col);
          if (slot < 0) return Status::Internal("view column missing");
          const sql::Value& v = row[static_cast<size_t>(slot)];
          switch (src.fold) {
            case sql::AggFunc::kSum:
            case sql::AggFunc::kCount:
            case sql::AggFunc::kAvg:
              acc.sum += v.ToDouble();
              break;
            case sql::AggFunc::kMin:
              if (!acc.has || v.Compare(acc.min) < 0) acc.min = v;
              break;
            case sql::AggFunc::kMax:
              if (!acc.has || v.Compare(acc.max) > 0) acc.max = v;
              break;
          }
          acc.has = true;
          continue;
        }
        // compute_from_columns: group column, handled at output time.
        continue;
      }
      if (e == nullptr || e->kind != sql::Expr::Kind::kAggregate) continue;
      // COUNT(*) has no argument.
      sql::Value v;
      if (e->left != nullptr) {
        auto ev = EvalExpr(*e->left, q, *child, row);
        if (!ev.ok()) return ev.status();
        v = std::move(ev).value();
        if (v.is_null()) continue;  // nulls don't aggregate
      }
      if (e->distinct) {
        acc.distinct.emplace(std::vector<sql::Value>{v}, true);
        acc.has = true;
        continue;
      }
      switch (e->agg) {
        case sql::AggFunc::kCount:
          acc.cnt += 1;
          break;
        case sql::AggFunc::kSum:
        case sql::AggFunc::kAvg:
          acc.sum += v.ToDouble();
          acc.cnt += 1;
          break;
        case sql::AggFunc::kMin:
          if (!acc.has || v.Compare(acc.min) < 0) acc.min = v;
          break;
        case sql::AggFunc::kMax:
          if (!acc.has || v.Compare(acc.max) > 0) acc.max = v;
          break;
      }
      acc.has = true;
    }
  }

  // Scalar aggregate over empty input still yields one group.
  if (groups.empty() && q.group_by.empty() &&
      (stmt.HasAggregates() || from_view)) {
    Group g;
    g.accs.resize(n_items);
    groups.emplace(std::vector<sql::Value>{}, std::move(g));
  }

  // Output: [items..., group columns...].
  Rel out;
  out.aggregated = true;
  out.item_count = n_items;
  for (size_t i = 0; i < n_items; ++i) {
    out.cols.emplace_back(Rel::kItemSlot, static_cast<int>(i));
  }
  for (const auto& [t, c] : q.group_by) out.cols.emplace_back(t, c);

  for (auto& [gkey, g] : groups) {
    std::vector<sql::Value> row;
    row.reserve(n_items + gkey.size());
    for (size_t i = 0; i < n_items; ++i) {
      const sql::Expr* e = stmt.items[i].expr.get();
      const Acc& acc = g.accs[i];
      if (from_view && vm != nullptr) {
        const ViewMatchInfo::ItemSource& src = vm->item_sources[i];
        if (src.avg_sum_col >= 0) {
          row.push_back(acc.cnt > 0
                            ? sql::Value::Double(acc.sum / acc.cnt)
                            : sql::Value::Null());
          continue;
        }
        if (src.view_col >= 0) {
          switch (src.fold) {
            case sql::AggFunc::kMin:
              row.push_back(acc.has ? acc.min : sql::Value::Null());
              break;
            case sql::AggFunc::kMax:
              row.push_back(acc.has ? acc.max : sql::Value::Null());
              break;
            default:
              // COUNT folds to an integral total; SUM stays floating.
              if (e != nullptr && e->kind == sql::Expr::Kind::kAggregate &&
                  e->agg == sql::AggFunc::kCount) {
                row.push_back(sql::Value::Int(
                    static_cast<int64_t>(std::llround(acc.sum))));
              } else {
                row.push_back(sql::Value::Double(acc.sum));
              }
              break;
          }
          continue;
        }
        auto v = g.rep.empty()
                     ? Result<sql::Value>(sql::Value::Null())
                     : EvalExpr(*e, q, *child, g.rep);
        if (!v.ok()) return v.status();
        row.push_back(std::move(v).value());
        continue;
      }
      if (e != nullptr && e->kind == sql::Expr::Kind::kAggregate) {
        if (e->distinct) {
          row.push_back(
              sql::Value::Int(static_cast<int64_t>(acc.distinct.size())));
          continue;
        }
        switch (e->agg) {
          case sql::AggFunc::kCount:
            row.push_back(sql::Value::Int(static_cast<int64_t>(acc.cnt)));
            break;
          case sql::AggFunc::kSum:
            row.push_back(acc.has ? sql::Value::Double(acc.sum)
                                  : sql::Value::Null());
            break;
          case sql::AggFunc::kAvg:
            row.push_back(acc.cnt > 0
                              ? sql::Value::Double(acc.sum / acc.cnt)
                              : sql::Value::Null());
            break;
          case sql::AggFunc::kMin:
            row.push_back(acc.has ? acc.min : sql::Value::Null());
            break;
          case sql::AggFunc::kMax:
            row.push_back(acc.has ? acc.max : sql::Value::Null());
            break;
        }
        continue;
      }
      // Plain column / expression: evaluate on the representative row.
      if (g.rep.empty()) {
        row.push_back(sql::Value::Null());
      } else {
        auto v = EvalExpr(*e, q, *child, g.rep);
        if (!v.ok()) return v.status();
        row.push_back(std::move(v).value());
      }
    }
    for (const auto& kv : gkey) row.push_back(kv);
    out.rows.push_back(std::move(row));
  }
  return out;
}

Result<Executor::Rel> Executor::ExecSort(const BoundQuery& q,
                                         const PlanNode& node) {
  auto child = Exec(q, *node.children[0]);
  if (!child.ok()) return child.status();
  Rel rel = std::move(child).value();
  std::vector<std::pair<int, bool>> keys;  // slot, ascending
  for (const auto& o : q.order_by) {
    int slot = ResolveSlot(rel, o.table, o.column);
    if (slot < 0) return Status::Internal("order column missing in rel");
    keys.emplace_back(slot, o.ascending);
  }
  std::stable_sort(rel.rows.begin(), rel.rows.end(),
                   [&](const std::vector<sql::Value>& a,
                       const std::vector<sql::Value>& b) {
                     for (const auto& [slot, asc] : keys) {
                       int c = a[static_cast<size_t>(slot)].Compare(
                           b[static_cast<size_t>(slot)]);
                       if (c != 0) return asc ? c < 0 : c > 0;
                     }
                     return false;
                   });
  return rel;
}

Result<Executor::Rel> Executor::Exec(const BoundQuery& q,
                                     const PlanNode& node) {
  switch (node.op) {
    case PlanOp::kTableScan:
    case PlanOp::kIndexScan:
      return ExecScan(q, node);
    case PlanOp::kIndexSeek:
      return ExecSeek(q, node, nullptr);
    case PlanOp::kViewScan:
      return ExecViewScan(q, node);
    case PlanOp::kHashJoin:
    case PlanOp::kMergeJoin:
      return ExecJoin(q, node);
    case PlanOp::kNestLoopJoin:
      return ExecNestLoop(q, node);
    case PlanOp::kHashAggregate:
    case PlanOp::kStreamAggregate:
      return ExecAggregate(q, node);
    case PlanOp::kSort:
      return ExecSort(q, node);
    case PlanOp::kTop: {
      auto child = Exec(q, *node.children[0]);
      if (!child.ok()) return child.status();
      Rel rel = std::move(child).value();
      size_t top = static_cast<size_t>(std::max<int64_t>(0, q.stmt->top));
      if (rel.rows.size() > top) rel.rows.resize(top);
      return rel;
    }
  }
  return Status::Internal("unknown plan operator");
}

Result<QueryResult> Executor::Execute(const BoundQuery& bound,
                                      const PlanNode& plan) {
  auto rel_or = Exec(bound, plan);
  if (!rel_or.ok()) return rel_or.status();
  Rel rel = std::move(rel_or).value();
  const sql::SelectStatement& stmt = *bound.stmt;

  QueryResult out;
  if (rel.aggregated) {
    for (size_t i = 0; i < rel.item_count; ++i) {
      const auto& item = stmt.items[i];
      out.column_names.push_back(
          !item.alias.empty() ? item.alias : sql::ExprToSql(*item.expr));
    }
    out.rows.reserve(rel.rows.size());
    for (auto& row : rel.rows) {
      row.resize(rel.item_count);
      out.rows.push_back(std::move(row));
    }
    return out;
  }

  // Non-aggregated: project select items (or star).
  if (stmt.select_star) {
    for (const auto& [t, c] : rel.cols) {
      out.column_names.push_back(bound.ColumnName(t, c));
    }
    out.rows = std::move(rel.rows);
    return out;
  }
  for (const auto& item : stmt.items) {
    out.column_names.push_back(
        !item.alias.empty() ? item.alias : sql::ExprToSql(*item.expr));
  }
  out.rows.reserve(rel.rows.size());
  for (const auto& row : rel.rows) {
    std::vector<sql::Value> proj;
    proj.reserve(stmt.items.size());
    for (const auto& item : stmt.items) {
      auto v = EvalExpr(*item.expr, bound, rel, row);
      if (!v.ok()) return v.status();
      proj.push_back(std::move(v).value());
    }
    out.rows.push_back(std::move(proj));
  }
  return out;
}

Result<QueryResult> Executor::ExecuteSelect(
    const sql::SelectStatement& stmt, const catalog::Configuration& config,
    const optimizer::Optimizer& opt) {
  auto plan = opt.OptimizeSelect(stmt, config);
  if (!plan.ok()) return plan.status();
  return Execute(plan->bound, *plan->root);
}

}  // namespace dta::engine
