// Execution engine: runs optimizer plans against actual table data.
//
// The executor exists so DTA recommendations can be *implemented* and
// queries actually executed (paper §7.2 compares optimizer-estimated against
// actual improvement). Physical structures referenced by a plan (indexes,
// materialized views) are materialized lazily and cached by canonical name:
// an index becomes a row-id permutation sorted by its key, a view becomes a
// materialized result set of its definition.
//
// Operators are materializing (each produces a full in-memory result), which
// is adequate at bench scales and keeps the engine auditable.

#ifndef DTA_ENGINE_EXECUTOR_H_
#define DTA_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/physical_design.h"
#include "common/status.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan.h"
#include "sql/ast.h"
#include "storage/table_data.h"

namespace dta::engine {

// Supplies actual data for tables. Returns nullptr for metadata-only tables
// (execution then fails, by design: you cannot run queries on a test server
// that only imported metadata).
class DataSource {
 public:
  virtual ~DataSource() = default;
  virtual const storage::TableData* Table(const std::string& database,
                                          const std::string& table) const = 0;
};

struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<std::vector<sql::Value>> rows;
};

class Executor {
 public:
  // Constructor/destructor out-of-line: members hold incomplete types.
  Executor(const catalog::Catalog& catalog, const DataSource* data);
  ~Executor();

  // Executes a previously optimized plan. `bound`, `plan` and the
  // configuration they were optimized against must outlive the call.
  Result<QueryResult> Execute(const optimizer::BoundQuery& bound,
                              const optimizer::PlanNode& plan);

  // Convenience: optimize + execute.
  Result<QueryResult> ExecuteSelect(const sql::SelectStatement& stmt,
                                    const catalog::Configuration& config,
                                    const optimizer::Optimizer& opt);

  // Drops materialized structures (e.g. after changing configurations).
  void ClearStructureCache();

  struct Rel;        // intermediate result (public for internal helpers)
  struct IndexData;  // materialized index

 private:

  Result<Rel> Exec(const optimizer::BoundQuery& q,
                   const optimizer::PlanNode& node);
  Result<Rel> ExecScan(const optimizer::BoundQuery& q,
                       const optimizer::PlanNode& node);
  Result<Rel> ExecSeek(const optimizer::BoundQuery& q,
                       const optimizer::PlanNode& node,
                       const std::vector<sql::Value>* param_key);
  Result<Rel> ExecViewScan(const optimizer::BoundQuery& q,
                           const optimizer::PlanNode& node);
  Result<Rel> ExecJoin(const optimizer::BoundQuery& q,
                       const optimizer::PlanNode& node);
  Result<Rel> ExecNestLoop(const optimizer::BoundQuery& q,
                           const optimizer::PlanNode& node);
  Result<Rel> ExecAggregate(const optimizer::BoundQuery& q,
                            const optimizer::PlanNode& node);
  Result<Rel> ExecSort(const optimizer::BoundQuery& q,
                       const optimizer::PlanNode& node);

  Result<const IndexData*> MaterializeIndex(const catalog::IndexDef& index);
  Result<const Rel*> MaterializeView(const catalog::ViewDef& view);

  const storage::TableData* FindData(const optimizer::BoundQuery& q,
                                     int table) const;

  const catalog::Catalog& catalog_;
  const DataSource* data_;

  std::map<std::string, std::unique_ptr<IndexData>> indexes_;
  std::map<std::string, std::unique_ptr<Rel>> views_;
};

}  // namespace dta::engine

#endif  // DTA_ENGINE_EXECUTOR_H_
