#include "catalog/schema.h"

#include "common/strings.h"

namespace dta::catalog {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt:
      return "int";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
  }
  return "?";
}

Result<ColumnType> ColumnTypeFromName(std::string_view name) {
  std::string lower = ToLower(name);
  if (lower == "int") return ColumnType::kInt;
  if (lower == "double") return ColumnType::kDouble;
  if (lower == "string") return ColumnType::kString;
  return Status::InvalidArgument(StrFormat("unknown column type '%s'",
                                           lower.c_str()));
}

TableSchema::TableSchema(std::string name, std::vector<Column> columns)
    : name_(ToLower(name)), columns_(std::move(columns)) {
  for (Column& c : columns_) c.name = ToLower(c.name);
}

void TableSchema::SetPrimaryKey(const std::vector<std::string>& key_columns) {
  primary_key_.clear();
  for (const std::string& name : key_columns) {
    int idx = ColumnIndex(name);
    if (idx >= 0) primary_key_.push_back(idx);
  }
}

int TableSchema::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

int TableSchema::RowBytes() const {
  int bytes = kRowHeaderBytes;
  for (const Column& c : columns_) bytes += c.width_bytes;
  return bytes;
}

uint64_t TableSchema::DataPages() const {
  uint64_t bytes = DataBytes();
  return (bytes + kPageBytes - 1) / kPageBytes;
}

Database::Database(std::string name) : name_(ToLower(name)) {}

Status Database::AddTable(TableSchema table) {
  std::string key = table.name();
  auto [it, inserted] = tables_.emplace(key, std::move(table));
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("table '%s' already exists in database '%s'", key.c_str(),
                  name_.c_str()));
  }
  return Status::Ok();
}

const TableSchema* Database::FindTable(std::string_view name) const {
  auto it = tables_.find(ToLower(name));
  return it != tables_.end() ? &it->second : nullptr;
}

TableSchema* Database::FindTableMutable(std::string_view name) {
  auto it = tables_.find(ToLower(name));
  return it != tables_.end() ? &it->second : nullptr;
}

uint64_t Database::TotalDataBytes() const {
  uint64_t total = 0;
  for (const auto& [name, table] : tables_) total += table.DataBytes();
  return total;
}

Status Catalog::AddDatabase(Database db) {
  std::string key = db.name();
  auto [it, inserted] = databases_.emplace(key, std::move(db));
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("database '%s' already exists", key.c_str()));
  }
  return Status::Ok();
}

const Database* Catalog::FindDatabase(std::string_view name) const {
  auto it = databases_.find(ToLower(name));
  return it != databases_.end() ? &it->second : nullptr;
}

Database* Catalog::FindDatabaseMutable(std::string_view name) {
  auto it = databases_.find(ToLower(name));
  return it != databases_.end() ? &it->second : nullptr;
}

Result<Catalog::ResolvedTable> Catalog::ResolveTable(
    std::string_view database, std::string_view table) const {
  if (!database.empty()) {
    const Database* db = FindDatabase(database);
    if (db == nullptr) {
      return Status::NotFound(
          StrFormat("database '%s' not found", ToLower(database).c_str()));
    }
    const TableSchema* t = db->FindTable(table);
    if (t == nullptr) {
      return Status::NotFound(StrFormat("table '%s' not found in '%s'",
                                        ToLower(table).c_str(),
                                        db->name().c_str()));
    }
    return ResolvedTable{db, t};
  }
  ResolvedTable found;
  for (const auto& [name, db] : databases_) {
    const TableSchema* t = db.FindTable(table);
    if (t != nullptr) {
      if (found.table != nullptr) {
        return Status::InvalidArgument(
            StrFormat("table '%s' is ambiguous across databases",
                      ToLower(table).c_str()));
      }
      found = ResolvedTable{&db, t};
    }
  }
  if (found.table == nullptr) {
    return Status::NotFound(
        StrFormat("table '%s' not found", ToLower(table).c_str()));
  }
  return found;
}

}  // namespace dta::catalog
