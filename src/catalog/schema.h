// Logical schema objects: columns, tables, databases, and the catalog.
//
// All identifiers are normalized to lower case at construction; lookups are
// exact-match after normalization.

#ifndef DTA_CATALOG_SCHEMA_H_
#define DTA_CATALOG_SCHEMA_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dta::catalog {

enum class ColumnType { kInt, kDouble, kString };

const char* ColumnTypeName(ColumnType type);
Result<ColumnType> ColumnTypeFromName(std::string_view name);

struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt;
  // Average stored width in bytes (8 for numerics; configured for strings).
  int width_bytes = 8;
};

// Logical description of a table: columns, cardinality, primary key.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<Column> columns);

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  uint64_t row_count() const { return row_count_; }
  void set_row_count(uint64_t n) { row_count_ = n; }

  // Ordinals of the primary-key columns (empty if none declared).
  const std::vector<int>& primary_key() const { return primary_key_; }
  void SetPrimaryKey(const std::vector<std::string>& key_columns);

  // Returns -1 if not found. `name` is matched case-insensitively.
  int ColumnIndex(std::string_view name) const;
  bool HasColumn(std::string_view name) const { return ColumnIndex(name) >= 0; }
  const Column& column(int index) const { return columns_[index]; }

  // Average bytes per row across all columns (+ fixed header overhead).
  int RowBytes() const;
  // Heap/clustered data pages at the default page size.
  uint64_t DataPages() const;
  uint64_t DataBytes() const { return row_count_ * RowBytes(); }

  static constexpr int kPageBytes = 8192;
  static constexpr int kRowHeaderBytes = 9;

 private:
  std::string name_;
  std::vector<Column> columns_;
  uint64_t row_count_ = 0;
  std::vector<int> primary_key_;
};

// A named collection of tables.
class Database {
 public:
  explicit Database(std::string name);

  const std::string& name() const { return name_; }

  // Fails if a table with the same (normalized) name exists.
  Status AddTable(TableSchema table);
  // nullptr if absent.
  const TableSchema* FindTable(std::string_view name) const;
  TableSchema* FindTableMutable(std::string_view name);
  const std::map<std::string, TableSchema>& tables() const { return tables_; }

  // Sum of data bytes across tables.
  uint64_t TotalDataBytes() const;

 private:
  std::string name_;
  std::map<std::string, TableSchema> tables_;  // key: normalized name
};

// The set of databases attached to a server. DTA can tune workloads that
// span multiple databases (paper §2.1), so lookups may search all of them.
class Catalog {
 public:
  Catalog() = default;

  Status AddDatabase(Database db);
  const Database* FindDatabase(std::string_view name) const;
  Database* FindDatabaseMutable(std::string_view name);
  const std::map<std::string, Database>& databases() const {
    return databases_;
  }

  struct ResolvedTable {
    const Database* database = nullptr;
    const TableSchema* table = nullptr;
  };
  // Resolves `table`, optionally qualified by `database`. When `database` is
  // empty, searches all databases and fails on ambiguity.
  Result<ResolvedTable> ResolveTable(std::string_view database,
                                     std::string_view table) const;

 private:
  std::map<std::string, Database> databases_;
};

}  // namespace dta::catalog

#endif  // DTA_CATALOG_SCHEMA_H_
