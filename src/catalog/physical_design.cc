#include "catalog/physical_design.h"

#include <algorithm>

#include "common/hash.h"
#include "common/strings.h"
#include "sql/printer.h"
#include "sql/signature.h"

namespace dta::catalog {

namespace {
constexpr double kFillFactor = 0.75;  // leaf page utilization
constexpr int kIndexRowOverhead = 11;  // per leaf-row bookkeeping bytes
}  // namespace

int PartitionScheme::PartitionFor(const sql::Value& v) const {
  int lo = 0, hi = static_cast<int>(boundaries.size());
  // First boundary strictly greater than v determines the partition:
  // partition i holds [b[i-1], b[i]).
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (v.Compare(boundaries[mid]) < 0) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

bool PartitionScheme::operator==(const PartitionScheme& other) const {
  if (!EqualsIgnoreCase(column, other.column)) return false;
  if (boundaries.size() != other.boundaries.size()) return false;
  for (size_t i = 0; i < boundaries.size(); ++i) {
    if (boundaries[i].Compare(other.boundaries[i]) != 0) return false;
  }
  return true;
}

std::string PartitionScheme::CanonicalString() const {
  std::string out = "p(" + ToLower(column) + ":[";
  for (size_t i = 0; i < boundaries.size(); ++i) {
    if (i > 0) out += ",";
    out += boundaries[i].ToSqlLiteral();
  }
  out += "])";
  return out;
}

std::string IndexDef::CanonicalName() const {
  std::string out = clustered ? "cix:" : "ix:";
  if (!database.empty()) out += ToLower(database) + ".";
  out += ToLower(table) + ":k=";
  for (size_t i = 0; i < key_columns.size(); ++i) {
    if (i > 0) out += ",";
    out += ToLower(key_columns[i]);
  }
  if (!included_columns.empty()) {
    // Included columns are a set; sort for stable identity.
    std::vector<std::string> inc;
    inc.reserve(included_columns.size());
    for (const auto& c : included_columns) inc.push_back(ToLower(c));
    std::sort(inc.begin(), inc.end());
    out += ":inc=" + StrJoin(inc, ",");
  }
  if (partitioning.has_value()) {
    out += ":" + partitioning->CanonicalString();
  }
  return out;
}

bool IndexDef::ContainsColumn(std::string_view column) const {
  for (const auto& c : key_columns) {
    if (EqualsIgnoreCase(c, column)) return true;
  }
  for (const auto& c : included_columns) {
    if (EqualsIgnoreCase(c, column)) return true;
  }
  return false;
}

int IndexDef::KeyPrefixMatch(const std::vector<std::string>& columns) const {
  int matched = 0;
  for (const auto& key_col : key_columns) {
    bool found = false;
    for (const auto& c : columns) {
      if (EqualsIgnoreCase(c, key_col)) {
        found = true;
        break;
      }
    }
    if (!found) break;
    ++matched;
  }
  return matched;
}

int IndexDef::LeafRowBytes(const TableSchema& schema) const {
  if (clustered) return schema.RowBytes();
  int bytes = kIndexRowOverhead + 8;  // row locator
  auto width_of = [&schema](const std::string& col) {
    int idx = schema.ColumnIndex(col);
    return idx >= 0 ? schema.column(idx).width_bytes : 8;
  };
  for (const auto& c : key_columns) bytes += width_of(c);
  for (const auto& c : included_columns) bytes += width_of(c);
  return bytes;
}

uint64_t IndexDef::LeafPages(const TableSchema& schema) const {
  if (clustered) return std::max<uint64_t>(1, schema.DataPages());
  double bytes = static_cast<double>(schema.row_count()) *
                 LeafRowBytes(schema) / kFillFactor;
  return std::max<uint64_t>(
      1, static_cast<uint64_t>(bytes / TableSchema::kPageBytes) + 1);
}

uint64_t IndexDef::EstimateBytes(const TableSchema& schema) const {
  // Clustered indexes reorganize the base data: no additional storage.
  if (clustered) return 0;
  return LeafPages(schema) * TableSchema::kPageBytes;
}

std::string ViewDef::CanonicalName() const {
  std::string out = "mv:";
  if (definition != nullptr) {
    sql::Statement stmt;
    stmt.node = definition->Clone();
    out += StrFormat("%016llx",
                     static_cast<unsigned long long>(sql::SignatureHash(stmt)));
    // Views that differ only in constants are distinct structures, so mix the
    // full (non-anonymized) text into the identity as well.
    sql::PrintOptions opts;
    opts.normalize_identifiers = true;
    out += StrFormat(
        "-%08llx",
        static_cast<unsigned long long>(HashBytes(ToSql(*definition, opts)) &
                                        0xffffffffull));
  }
  if (!clustered_key.empty()) {
    out += ":ck=";
    out += StrJoin(clustered_key, ",");
  }
  if (partitioning.has_value()) {
    out += ":" + partitioning->CanonicalString();
  }
  return out;
}

uint64_t ViewDef::EstimateBytes() const {
  double bytes = estimated_rows * estimated_row_bytes / kFillFactor;
  return static_cast<uint64_t>(bytes) + TableSchema::kPageBytes;
}

Status Configuration::AddIndex(IndexDef index) {
  std::string name = index.CanonicalName();
  for (const auto& existing : indexes_) {
    if (existing.CanonicalName() == name) {
      return Status::AlreadyExists("index already in configuration: " + name);
    }
    if (index.clustered && existing.clustered &&
        EqualsIgnoreCase(existing.table, index.table)) {
      return Status::InvalidArgument(
          StrFormat("table '%s' already has a clustered index",
                    ToLower(index.table).c_str()));
    }
  }
  indexes_.push_back(std::move(index));
  return Status::Ok();
}

Status Configuration::AddView(ViewDef view) {
  std::string name = view.CanonicalName();
  for (const auto& existing : views_) {
    if (existing.CanonicalName() == name) {
      return Status::AlreadyExists("view already in configuration: " + name);
    }
  }
  views_.push_back(std::move(view));
  return Status::Ok();
}

void Configuration::SetTablePartitioning(const std::string& table,
                                         PartitionScheme scheme) {
  table_partitioning_[ToLower(table)] = std::move(scheme);
}

void Configuration::ClearTablePartitioning(const std::string& table) {
  table_partitioning_.erase(ToLower(table));
}

bool Configuration::RemoveStructure(const std::string& canonical_name) {
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if (it->CanonicalName() == canonical_name) {
      indexes_.erase(it);
      return true;
    }
  }
  for (auto it = views_.begin(); it != views_.end(); ++it) {
    if (it->CanonicalName() == canonical_name) {
      views_.erase(it);
      return true;
    }
  }
  return false;
}

bool Configuration::ContainsStructure(const std::string& canonical_name) const {
  for (const auto& ix : indexes_) {
    if (ix.CanonicalName() == canonical_name) return true;
  }
  for (const auto& v : views_) {
    if (v.CanonicalName() == canonical_name) return true;
  }
  return false;
}

const IndexDef* Configuration::FindClusteredIndex(
    std::string_view table) const {
  for (const auto& ix : indexes_) {
    if (ix.clustered && EqualsIgnoreCase(ix.table, table)) return &ix;
  }
  return nullptr;
}

const PartitionScheme* Configuration::FindTablePartitioning(
    std::string_view table) const {
  auto it = table_partitioning_.find(ToLower(table));
  return it != table_partitioning_.end() ? &it->second : nullptr;
}

std::vector<const IndexDef*> Configuration::IndexesOnTable(
    std::string_view table) const {
  std::vector<const IndexDef*> out;
  for (const auto& ix : indexes_) {
    if (EqualsIgnoreCase(ix.table, table)) out.push_back(&ix);
  }
  return out;
}

std::vector<const ViewDef*> Configuration::ViewsReferencing(
    std::string_view table) const {
  std::vector<const ViewDef*> out;
  for (const auto& v : views_) {
    for (const auto& t : v.referenced_tables) {
      if (EqualsIgnoreCase(t, table)) {
        out.push_back(&v);
        break;
      }
    }
  }
  return out;
}

uint64_t Configuration::EstimateBytes(const Catalog& catalog) const {
  uint64_t total = 0;
  for (const auto& ix : indexes_) {
    auto resolved = catalog.ResolveTable(ix.database, ix.table);
    if (resolved.ok()) total += ix.EstimateBytes(*resolved->table);
  }
  for (const auto& v : views_) total += v.EstimateBytes();
  return total;
}

bool Configuration::IsAligned(std::string_view table) const {
  const PartitionScheme* table_scheme = FindTablePartitioning(table);
  for (const auto& ix : indexes_) {
    if (!EqualsIgnoreCase(ix.table, table)) continue;
    if (table_scheme == nullptr) {
      if (ix.partitioning.has_value()) return false;
    } else {
      if (!ix.partitioning.has_value() ||
          !(*ix.partitioning == *table_scheme)) {
        return false;
      }
    }
  }
  return true;
}

bool Configuration::IsFullyAligned() const {
  // Collect table names from indexes and partitioning declarations.
  std::vector<std::string> tables;
  for (const auto& ix : indexes_) tables.push_back(ToLower(ix.table));
  for (const auto& [t, scheme] : table_partitioning_) tables.push_back(t);
  std::sort(tables.begin(), tables.end());
  tables.erase(std::unique(tables.begin(), tables.end()), tables.end());
  for (const auto& t : tables) {
    if (!IsAligned(t)) return false;
  }
  return true;
}

std::string Configuration::Fingerprint() const {
  std::vector<std::string> parts;
  parts.reserve(indexes_.size() + views_.size() + table_partitioning_.size());
  for (const auto& ix : indexes_) parts.push_back(ix.CanonicalName());
  for (const auto& v : views_) parts.push_back(v.CanonicalName());
  for (const auto& [t, scheme] : table_partitioning_) {
    parts.push_back("tp:" + t + ":" + scheme.CanonicalString());
  }
  std::sort(parts.begin(), parts.end());
  return StrJoin(parts, "|");
}

}  // namespace dta::catalog
