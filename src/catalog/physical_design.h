// Physical design objects: range partitioning schemes, indexes, materialized
// views, and complete configurations.
//
// A `Configuration` is the unit the what-if optimizer consumes (paper §2.2):
// it fully describes the hypothetical physical design of all tables —
// clustered index / heap, nonclustered indexes, materialized views, and
// single-column range partitioning of tables, indexes and views.
//
// All objects are value types with cheap copies (view definitions are shared
// immutable pointers) because DTA's search copies configurations heavily.

#ifndef DTA_CATALOG_PHYSICAL_DESIGN_H_
#define DTA_CATALOG_PHYSICAL_DESIGN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "sql/ast.h"
#include "sql/value.h"

namespace dta::catalog {

// Single-column horizontal range partitioning (SQL Server 2005 model).
// `boundaries` are sorted split points; N boundaries define N+1 partitions
// (right-open ranges: partition i holds values in [b[i-1], b[i])).
struct PartitionScheme {
  std::string column;
  std::vector<sql::Value> boundaries;

  int PartitionCount() const {
    return static_cast<int>(boundaries.size()) + 1;
  }
  // 0-based partition index for a value.
  int PartitionFor(const sql::Value& v) const;

  bool operator==(const PartitionScheme& other) const;
  // Stable content string, e.g. "p(ship_date:[d1,d2,d3])".
  std::string CanonicalString() const;
};

// An index (clustered or nonclustered, optionally covering via included
// columns, optionally partitioned).
struct IndexDef {
  std::string database;  // optional qualifier
  std::string table;
  std::vector<std::string> key_columns;
  std::vector<std::string> included_columns;
  bool clustered = false;
  // Enforces a primary-key/unique constraint; such indexes are never dropped
  // by DTA and are part of the "raw" configuration (paper §7.1).
  bool constraint_enforcing = false;
  std::optional<PartitionScheme> partitioning;

  // Content-derived identity. Two IndexDefs with equal canonical names are
  // interchangeable.
  std::string CanonicalName() const;
  bool operator==(const IndexDef& other) const {
    return CanonicalName() == other.CanonicalName();
  }

  // True if `column` appears in the key or included list.
  bool ContainsColumn(std::string_view column) const;
  // Number of key columns that prefix-match `columns` starting at the key's
  // first column.
  int KeyPrefixMatch(const std::vector<std::string>& columns) const;

  // Additional storage the index consumes, beyond the base table.
  // Clustered indexes are non-redundant (they reorganize the heap) and cost
  // ~0 additional bytes; nonclustered leaf size is estimated from column
  // widths with a fill-factor allowance.
  uint64_t EstimateBytes(const TableSchema& schema) const;
  // Leaf pages of this index (for scan costing). For a clustered index this
  // is the table's data pages.
  uint64_t LeafPages(const TableSchema& schema) const;
  // Bytes of one leaf row.
  int LeafRowBytes(const TableSchema& schema) const;
};

// A materialized view over an SPJ(+GROUP BY) select statement, optionally
// with a clustered key and partitioning.
struct ViewDef {
  std::string name;
  std::shared_ptr<const sql::SelectStatement> definition;
  // Tables referenced by the definition (normalized names), for relevance
  // and update-cost analysis.
  std::vector<std::string> referenced_tables;
  // Filled by the candidate generator using the cardinality estimator.
  double estimated_rows = 0;
  int estimated_row_bytes = 64;
  // Optional clustered key (column aliases of the view output).
  std::vector<std::string> clustered_key;
  std::optional<PartitionScheme> partitioning;  // over an output column

  std::string CanonicalName() const;
  bool operator==(const ViewDef& other) const {
    return CanonicalName() == other.CanonicalName();
  }
  uint64_t EstimateBytes() const;
};

// A complete physical design.
class Configuration {
 public:
  Configuration() = default;

  // Adds an index; replaces nothing. Fails if an equal index exists or a
  // second clustered index is added for the same table.
  Status AddIndex(IndexDef index);
  Status AddView(ViewDef view);
  void SetTablePartitioning(const std::string& table, PartitionScheme scheme);
  void ClearTablePartitioning(const std::string& table);

  // Removes the structure with the given canonical name (index or view).
  bool RemoveStructure(const std::string& canonical_name);
  bool ContainsStructure(const std::string& canonical_name) const;

  const std::vector<IndexDef>& indexes() const { return indexes_; }
  const std::vector<ViewDef>& views() const { return views_; }
  const std::map<std::string, PartitionScheme>& table_partitioning() const {
    return table_partitioning_;
  }

  // nullptr if the table is a heap under this configuration.
  const IndexDef* FindClusteredIndex(std::string_view table) const;
  // Partitioning of the table, if any.
  const PartitionScheme* FindTablePartitioning(std::string_view table) const;
  std::vector<const IndexDef*> IndexesOnTable(std::string_view table) const;
  std::vector<const ViewDef*> ViewsReferencing(std::string_view table) const;

  // Additional storage consumed by all redundant structures.
  uint64_t EstimateBytes(const Catalog& catalog) const;

  // Alignment (paper §4): every index on `table` partitioned identically to
  // the table itself.
  bool IsAligned(std::string_view table) const;
  bool IsFullyAligned() const;

  // Deterministic content string covering every structure; used as a cache
  // key component for what-if calls.
  std::string Fingerprint() const;

  size_t StructureCount() const { return indexes_.size() + views_.size(); }

 private:
  std::vector<IndexDef> indexes_;
  std::vector<ViewDef> views_;
  std::map<std::string, PartitionScheme> table_partitioning_;
};

}  // namespace dta::catalog

#endif  // DTA_CATALOG_PHYSICAL_DESIGN_H_
