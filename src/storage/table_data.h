// In-memory column-oriented table storage for the execution substrate.
//
// Data is optional per table: the optimizer works purely from metadata and
// statistics (which is what makes the production/test-server scenario of
// paper §5.3 possible); TableData exists so that recommendations can be
// *implemented* and queries actually executed (paper §7.2).

#ifndef DTA_STORAGE_TABLE_DATA_H_
#define DTA_STORAGE_TABLE_DATA_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "sql/value.h"

namespace dta::storage {

using IntColumn = std::vector<int64_t>;
using DoubleColumn = std::vector<double>;
using StringColumn = std::vector<std::string>;
using ColumnVector = std::variant<IntColumn, DoubleColumn, StringColumn>;

class TableData {
 public:
  TableData() = default;
  // Creates empty columns matching the schema's column types.
  explicit TableData(const catalog::TableSchema& schema);

  const std::string& table_name() const { return table_name_; }
  size_t row_count() const { return row_count_; }
  size_t column_count() const { return columns_.size(); }

  // Value accessors (copying; used by generic operators).
  sql::Value GetValue(size_t row, size_t col) const;
  // Typed accessors for hot paths; caller must know the column type.
  const IntColumn& Ints(size_t col) const {
    return std::get<IntColumn>(columns_[col]);
  }
  const DoubleColumn& Doubles(size_t col) const {
    return std::get<DoubleColumn>(columns_[col]);
  }
  const StringColumn& Strings(size_t col) const {
    return std::get<StringColumn>(columns_[col]);
  }

  // Appends a row; values must match column types (ints accepted into
  // double columns).
  Status AppendRow(const std::vector<sql::Value>& values);
  // Bulk append of a typed column (replaces content); all columns must end
  // up the same length before use.
  void SetColumn(size_t col, ColumnVector data);
  void FinalizeRowCount();

  // Three-way comparison of two rows on the given columns.
  int CompareRows(size_t row_a, size_t row_b,
                  const std::vector<int>& cols) const;
  // Compares row's column values against `key` (prefix comparison over
  // key.size() columns).
  int CompareRowToKey(size_t row, const std::vector<int>& cols,
                      const std::vector<sql::Value>& key) const;

 private:
  std::string table_name_;
  std::vector<ColumnVector> columns_;
  std::vector<catalog::ColumnType> types_;
  size_t row_count_ = 0;
};

}  // namespace dta::storage

#endif  // DTA_STORAGE_TABLE_DATA_H_
