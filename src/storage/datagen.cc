#include "storage/datagen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace dta::storage {

namespace {

// Civil-date <-> day-number conversion (Howard Hinnant's algorithms).
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(d) - 1u;
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, int* m, int* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yr = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned day = doy - (153 * mp + 2) / 5 + 1;
  const unsigned month = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(yr + (month <= 2));
  *m = static_cast<int>(month);
  *d = static_cast<int>(day);
}

bool ParseIsoDate(const std::string& iso, int* y, int* m, int* d) {
  return std::sscanf(iso.c_str(), "%d-%d-%d", y, m, d) == 3;
}

}  // namespace

std::string DateString(const std::string& iso_base, int plus_days) {
  int y = 1992, m = 1, d = 1;
  ParseIsoDate(iso_base, &y, &m, &d);
  int64_t days = DaysFromCivil(y, m, d) + plus_days;
  CivilFromDays(days, &y, &m, &d);
  return StrFormat("%04d-%02d-%02d", y, m, d);
}

sql::Value ColumnSpec::Sample(uint64_t sequential_position,
                              Random* rng) const {
  switch (dist) {
    case Dist::kSequential:
      return sql::Value::Int(static_cast<int64_t>(sequential_position) + lo);
    case Dist::kUniformInt:
      return sql::Value::Int(rng->Uniform(lo, hi));
    case Dist::kZipfInt:
      return sql::Value::Int(lo + rng->Zipf(distinct, theta) - 1);
    case Dist::kUniformReal:
      return sql::Value::Double(rng->UniformReal(real_lo, real_hi));
    case Dist::kDate: {
      int offset = static_cast<int>(rng->Uniform(0, days - 1));
      return sql::Value::String(DateString(date_start, offset));
    }
    case Dist::kStringPool: {
      int64_t id = rng->Uniform(0, distinct - 1);
      return sql::Value::String(
          StrFormat("%s%06lld", prefix.c_str(), static_cast<long long>(id)));
    }
  }
  return sql::Value::Null();
}

double ColumnSpec::ExpectedDistinct(uint64_t rows) const {
  double n = static_cast<double>(rows);
  auto birthday = [n](double domain) {
    // Expected distinct values when drawing n uniform samples from `domain`.
    if (domain <= 0) return 1.0;
    return domain * (1.0 - std::exp(-n / domain));
  };
  switch (dist) {
    case Dist::kSequential:
      return n;
    case Dist::kUniformInt:
      return birthday(static_cast<double>(hi - lo + 1));
    case Dist::kZipfInt:
      // Skew reduces effective distinct count, but for catalog estimation
      // the uniform birthday bound is close enough.
      return birthday(static_cast<double>(distinct));
    case Dist::kUniformReal:
      return n;  // continuous: effectively all-distinct
    case Dist::kDate:
      return birthday(static_cast<double>(days));
    case Dist::kStringPool:
      return birthday(static_cast<double>(distinct));
  }
  return n;
}

catalog::ColumnType ColumnSpec::ValueType() const {
  switch (dist) {
    case Dist::kSequential:
    case Dist::kUniformInt:
    case Dist::kZipfInt:
      return catalog::ColumnType::kInt;
    case Dist::kUniformReal:
      return catalog::ColumnType::kDouble;
    case Dist::kDate:
    case Dist::kStringPool:
      return catalog::ColumnType::kString;
  }
  return catalog::ColumnType::kInt;
}

Result<TableData> GenerateTable(const TableGenSpec& spec, Random* rng) {
  if (spec.column_specs.size() != spec.schema.columns().size()) {
    return Status::InvalidArgument(
        StrFormat("table '%s': %zu column specs for %zu columns",
                  spec.schema.name().c_str(), spec.column_specs.size(),
                  spec.schema.columns().size()));
  }
  TableData data(spec.schema);
  // Generate column-by-column for locality.
  for (size_t c = 0; c < spec.column_specs.size(); ++c) {
    const ColumnSpec& cs = spec.column_specs[c];
    catalog::ColumnType want = spec.schema.column(static_cast<int>(c)).type;
    if (cs.ValueType() != want) {
      return Status::InvalidArgument(StrFormat(
          "table '%s' column '%s': spec produces %s but schema expects %s",
          spec.schema.name().c_str(),
          spec.schema.column(static_cast<int>(c)).name.c_str(),
          ColumnTypeName(cs.ValueType()), ColumnTypeName(want)));
    }
    switch (want) {
      case catalog::ColumnType::kInt: {
        IntColumn col;
        col.reserve(spec.rows);
        for (uint64_t r = 0; r < spec.rows; ++r) {
          col.push_back(cs.Sample(r, rng).AsInt());
        }
        data.SetColumn(c, std::move(col));
        break;
      }
      case catalog::ColumnType::kDouble: {
        DoubleColumn col;
        col.reserve(spec.rows);
        for (uint64_t r = 0; r < spec.rows; ++r) {
          col.push_back(cs.Sample(r, rng).AsDoubleStrict());
        }
        data.SetColumn(c, std::move(col));
        break;
      }
      case catalog::ColumnType::kString: {
        StringColumn col;
        col.reserve(spec.rows);
        for (uint64_t r = 0; r < spec.rows; ++r) {
          col.push_back(cs.Sample(r, rng).AsString());
        }
        data.SetColumn(c, std::move(col));
        break;
      }
    }
  }
  data.FinalizeRowCount();
  return data;
}

std::vector<sql::Value> SampleColumn(const ColumnSpec& spec, size_t n,
                                     Random* rng) {
  std::vector<sql::Value> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(spec.Sample(i, rng));
  }
  return out;
}

}  // namespace dta::storage
