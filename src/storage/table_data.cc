#include "storage/table_data.h"

#include "common/strings.h"

namespace dta::storage {

TableData::TableData(const catalog::TableSchema& schema)
    : table_name_(schema.name()) {
  columns_.reserve(schema.columns().size());
  types_.reserve(schema.columns().size());
  for (const auto& col : schema.columns()) {
    types_.push_back(col.type);
    switch (col.type) {
      case catalog::ColumnType::kInt:
        columns_.emplace_back(IntColumn{});
        break;
      case catalog::ColumnType::kDouble:
        columns_.emplace_back(DoubleColumn{});
        break;
      case catalog::ColumnType::kString:
        columns_.emplace_back(StringColumn{});
        break;
    }
  }
}

sql::Value TableData::GetValue(size_t row, size_t col) const {
  const ColumnVector& c = columns_[col];
  switch (c.index()) {
    case 0:
      return sql::Value::Int(std::get<IntColumn>(c)[row]);
    case 1:
      return sql::Value::Double(std::get<DoubleColumn>(c)[row]);
    default:
      return sql::Value::String(std::get<StringColumn>(c)[row]);
  }
}

Status TableData::AppendRow(const std::vector<sql::Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values; table '%s' has %zu columns",
                  values.size(), table_name_.c_str(), columns_.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    const sql::Value& v = values[i];
    switch (types_[i]) {
      case catalog::ColumnType::kInt:
        if (v.type() != sql::ValueType::kInt) {
          return Status::InvalidArgument(
              StrFormat("column %zu of '%s' expects int", i,
                        table_name_.c_str()));
        }
        std::get<IntColumn>(columns_[i]).push_back(v.AsInt());
        break;
      case catalog::ColumnType::kDouble:
        if (!v.is_numeric()) {
          return Status::InvalidArgument(
              StrFormat("column %zu of '%s' expects numeric", i,
                        table_name_.c_str()));
        }
        std::get<DoubleColumn>(columns_[i]).push_back(v.ToDouble());
        break;
      case catalog::ColumnType::kString:
        if (v.type() != sql::ValueType::kString) {
          return Status::InvalidArgument(
              StrFormat("column %zu of '%s' expects string", i,
                        table_name_.c_str()));
        }
        std::get<StringColumn>(columns_[i]).push_back(v.AsString());
        break;
    }
  }
  ++row_count_;
  return Status::Ok();
}

void TableData::SetColumn(size_t col, ColumnVector data) {
  columns_[col] = std::move(data);
}

void TableData::FinalizeRowCount() {
  row_count_ = 0;
  if (columns_.empty()) return;
  switch (columns_[0].index()) {
    case 0:
      row_count_ = std::get<IntColumn>(columns_[0]).size();
      break;
    case 1:
      row_count_ = std::get<DoubleColumn>(columns_[0]).size();
      break;
    default:
      row_count_ = std::get<StringColumn>(columns_[0]).size();
      break;
  }
}

int TableData::CompareRows(size_t row_a, size_t row_b,
                           const std::vector<int>& cols) const {
  for (int col : cols) {
    const ColumnVector& c = columns_[static_cast<size_t>(col)];
    int cmp = 0;
    switch (c.index()) {
      case 0: {
        const auto& v = std::get<IntColumn>(c);
        cmp = v[row_a] < v[row_b] ? -1 : (v[row_a] > v[row_b] ? 1 : 0);
        break;
      }
      case 1: {
        const auto& v = std::get<DoubleColumn>(c);
        cmp = v[row_a] < v[row_b] ? -1 : (v[row_a] > v[row_b] ? 1 : 0);
        break;
      }
      default: {
        const auto& v = std::get<StringColumn>(c);
        int r = v[row_a].compare(v[row_b]);
        cmp = r < 0 ? -1 : (r > 0 ? 1 : 0);
        break;
      }
    }
    if (cmp != 0) return cmp;
  }
  return 0;
}

int TableData::CompareRowToKey(size_t row, const std::vector<int>& cols,
                               const std::vector<sql::Value>& key) const {
  for (size_t i = 0; i < key.size() && i < cols.size(); ++i) {
    sql::Value v = GetValue(row, static_cast<size_t>(cols[i]));
    int cmp = v.Compare(key[i]);
    if (cmp != 0) return cmp;
  }
  return 0;
}

}  // namespace dta::storage
