// Synthetic data generation: per-column distribution specs, table
// generation, and date helpers. Used both to populate TableData for actual
// execution and to synthesize statistics for metadata-only ("imported")
// tables.

#ifndef DTA_STORAGE_DATAGEN_H_
#define DTA_STORAGE_DATAGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/random.h"
#include "common/status.h"
#include "sql/value.h"
#include "storage/table_data.h"

namespace dta::storage {

// Distribution of values in a generated column.
struct ColumnSpec {
  enum class Dist {
    kSequential,   // 1, 2, 3, ... (dense primary keys)
    kUniformInt,   // uniform integer in [lo, hi]
    kZipfInt,      // Zipf over [lo, lo+distinct-1] with skew `theta`
    kUniformReal,  // uniform double in [real_lo, real_hi)
    kDate,         // uniform date in [date_start, date_start + days)
    kStringPool,   // one of `distinct` strings "<prefix>000017"-style
  };

  Dist dist = Dist::kUniformInt;
  int64_t lo = 1;
  int64_t hi = 100;
  int64_t distinct = 100;     // kZipfInt / kStringPool domain size
  double theta = 0.0;         // Zipf skew
  double real_lo = 0.0;
  double real_hi = 1.0;
  std::string date_start = "1992-01-01";
  int days = 2557;            // ~7 years, the TPC-H date span
  std::string prefix = "v";   // kStringPool prefix

  static ColumnSpec Sequential() {
    ColumnSpec s;
    s.dist = Dist::kSequential;
    return s;
  }
  static ColumnSpec UniformInt(int64_t lo, int64_t hi) {
    ColumnSpec s;
    s.dist = Dist::kUniformInt;
    s.lo = lo;
    s.hi = hi;
    return s;
  }
  static ColumnSpec ZipfInt(int64_t lo, int64_t distinct, double theta) {
    ColumnSpec s;
    s.dist = Dist::kZipfInt;
    s.lo = lo;
    s.distinct = distinct;
    s.theta = theta;
    return s;
  }
  static ColumnSpec UniformReal(double lo, double hi) {
    ColumnSpec s;
    s.dist = Dist::kUniformReal;
    s.real_lo = lo;
    s.real_hi = hi;
    return s;
  }
  static ColumnSpec Date(std::string start, int days) {
    ColumnSpec s;
    s.dist = Dist::kDate;
    s.date_start = std::move(start);
    s.days = days;
    return s;
  }
  static ColumnSpec StringPool(std::string prefix, int64_t distinct) {
    ColumnSpec s;
    s.dist = Dist::kStringPool;
    s.prefix = std::move(prefix);
    s.distinct = distinct;
    return s;
  }

  // Draws one value.
  sql::Value Sample(uint64_t sequential_position, Random* rng) const;
  // Expected distinct count when drawing `rows` values.
  double ExpectedDistinct(uint64_t rows) const;
  // The catalog column type this spec produces.
  catalog::ColumnType ValueType() const;
};

// Column specs paired with a schema.
struct TableGenSpec {
  catalog::TableSchema schema;
  std::vector<ColumnSpec> column_specs;  // one per schema column
  uint64_t rows = 0;
};

// Materializes data. The schema's row_count is NOT modified; callers keep
// the catalog in sync themselves.
Result<TableData> GenerateTable(const TableGenSpec& spec, Random* rng);

// Draws `n` independent values from the spec (for synthesizing statistics of
// metadata-only tables).
std::vector<sql::Value> SampleColumn(const ColumnSpec& spec, size_t n,
                                     Random* rng);

// ISO date arithmetic. `DateString(base, k)` = base date + k days.
std::string DateString(const std::string& iso_base, int plus_days);

}  // namespace dta::storage

#endif  // DTA_STORAGE_DATAGEN_H_
