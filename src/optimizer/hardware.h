// Hardware parameters that shape the optimizer's cost model.
//
// These are first-class inputs to every what-if call because the paper's
// production/test-server scenario (§5.3) requires the test server to
// simulate the *production* server's hardware when optimizing: "the hardware
// parameters of production server that are modeled by the query optimizer
// ... need to be appropriately simulated on the test server".

#ifndef DTA_OPTIMIZER_HARDWARE_H_
#define DTA_OPTIMIZER_HARDWARE_H_

namespace dta::optimizer {

struct HardwareParams {
  int cpu_count = 4;
  double memory_mb = 4096;

  // Base device characteristics (milliseconds).
  double seq_page_ms = 0.08;
  double rand_page_ms = 0.8;
  double cpu_row_ms = 0.0004;   // per-row processing
  double hash_row_ms = 0.0009;  // per-row hash build/probe
  double cmp_row_ms = 0.0003;   // per-comparison (sorting)

  // Fraction of I/O cost retained when the working set fits in memory.
  double cached_io_fraction = 0.35;

  // Rows above which the optimizer assumes a parallel plan.
  double parallel_threshold_rows = 100000;

  static HardwareParams ProductionClass() {
    HardwareParams p;
    p.cpu_count = 16;
    p.memory_mb = 32768;
    return p;
  }
  static HardwareParams TestClass() {
    HardwareParams p;
    p.cpu_count = 2;
    p.memory_mb = 2048;
    return p;
  }
};

}  // namespace dta::optimizer

#endif  // DTA_OPTIMIZER_HARDWARE_H_
