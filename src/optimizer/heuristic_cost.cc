#include "optimizer/heuristic_cost.h"

#include <algorithm>
#include <string>
#include <vector>

namespace dta::optimizer {

namespace {

constexpr double kPageBytes = 8192.0;
// Nominal cost of touching a table the catalog cannot resolve.
constexpr double kUnknownTableCost = 10.0;

double TableScanCost(const catalog::Catalog& catalog,
                     const std::string& table, const CostModel& cm) {
  auto resolved = catalog.ResolveTable("", table);
  if (!resolved.ok()) return kUnknownTableCost;
  const catalog::TableSchema& schema = *resolved->table;
  double rows = static_cast<double>(schema.row_count());
  double bytes = static_cast<double>(schema.DataBytes());
  return cm.ScanCost(bytes / kPageBytes, rows, bytes);
}

}  // namespace

double HeuristicStatementCost(const sql::Statement& stmt,
                              const catalog::Catalog& catalog,
                              const CostModel& cost_model) {
  double cost = 0;
  switch (stmt.kind()) {
    case sql::StatementKind::kSelect: {
      const sql::SelectStatement& sel = stmt.select();
      double total_rows = 0;
      for (const auto& tr : sel.from) {
        cost += TableScanCost(catalog, tr.table, cost_model);
        auto resolved = catalog.ResolveTable("", tr.table);
        if (resolved.ok()) {
          total_rows += static_cast<double>(resolved->table->row_count());
        }
      }
      // Joins pay one hash pass over the combined inputs; aggregation and
      // ordering pay coarse per-row surcharges. All monotone in table sizes,
      // which is the only signal available without the optimizer.
      if (sel.from.size() > 1) {
        cost += cost_model.HashJoinCost(total_rows / 2, total_rows / 2, 32);
      }
      if (!sel.group_by.empty() || sel.HasAggregates()) {
        cost += cost_model.HashAggCost(total_rows,
                                       std::max(1.0, total_rows / 100.0));
      }
      if (!sel.order_by.empty()) {
        cost += cost_model.SortCost(total_rows, 32);
      }
      break;
    }
    case sql::StatementKind::kInsert: {
      const auto& ins = stmt.insert();
      auto resolved = catalog.ResolveTable("", ins.table);
      double table_bytes =
          resolved.ok()
              ? static_cast<double>(resolved->table->DataBytes())
              : kPageBytes;
      double rows = static_cast<double>(std::max<size_t>(1, ins.rows.size()));
      cost = rows * cost_model.IndexInsertCost(table_bytes);
      break;
    }
    case sql::StatementKind::kUpdate:
      cost = TableScanCost(catalog, stmt.update().table, cost_model);
      break;
    case sql::StatementKind::kDelete:
      cost = TableScanCost(catalog, stmt.del().table, cost_model);
      break;
  }
  return std::max(cost, 1e-3);
}

}  // namespace dta::optimizer
