// Name resolution: turns parsed statements into catalog-bound form the
// optimizer and executor operate on.

#ifndef DTA_OPTIMIZER_BOUND_QUERY_H_
#define DTA_OPTIMIZER_BOUND_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "sql/ast.h"

namespace dta::optimizer {

// One table occurrence in FROM.
struct BoundTable {
  const catalog::Database* database = nullptr;
  const catalog::TableSchema* schema = nullptr;
  std::string alias;  // normalized lower-case
};

// One atomic WHERE predicate with resolved column references.
struct BoundAtom {
  const sql::Predicate* pred = nullptr;
  int table = -1;   // lhs table index into BoundQuery::tables
  int column = -1;  // lhs column ordinal in that table's schema
  int rhs_table = -1;
  int rhs_column = -1;

  bool IsJoin() const { return rhs_table >= 0 && pred->IsJoin(); }
};

// A SELECT statement bound against the catalog. The statement must outlive
// the bound query (pointers into its AST are retained).
struct BoundQuery {
  const sql::SelectStatement* stmt = nullptr;
  // Optional ownership: set when the bound query must keep the statement
  // alive itself (e.g. view definitions cached inside the optimizer, which
  // can outlive any one Configuration holding the view).
  std::shared_ptr<const sql::SelectStatement> owned_stmt;
  std::vector<BoundTable> tables;
  std::vector<BoundAtom> atoms;

  std::vector<std::pair<int, int>> group_by;  // (table, column)
  struct OrderItem {
    int table;
    int column;
    bool ascending;
  };
  std::vector<OrderItem> order_by;

  // All columns of each table referenced anywhere in the statement
  // (ordinals, sorted, deduplicated). An index on table i covers the query
  // iff it contains all of referenced_columns[i].
  std::vector<std::vector<int>> referenced_columns;

  // Atom indexes that are single-table filters on table i.
  std::vector<std::vector<int>> filters_by_table;
  // Atom indexes that are equality join predicates across tables.
  std::vector<int> join_atoms;
  // Cross-table comparisons that are not equality joins; evaluated after the
  // join that makes both sides available.
  std::vector<int> post_join_atoms;

  int TableIndexByAlias(std::string_view alias) const;
  // Convenience: column name for a (table, column) pair.
  const std::string& ColumnName(int table, int column) const {
    return tables[static_cast<size_t>(table)]
        .schema->column(column)
        .name;
  }
};

// Binds a SELECT. Fails on unknown tables/columns or ambiguous unqualified
// column references.
Result<BoundQuery> BindSelect(const sql::SelectStatement& stmt,
                              const catalog::Catalog& catalog);

// Resolves a column reference against an already-bound query. Fails on
// unknown or ambiguous references.
Result<std::pair<int, int>> ResolveColumnRef(const sql::ColumnRef& ref,
                                             const BoundQuery& query);

// Bound form of INSERT/UPDATE/DELETE: the target table plus (for
// UPDATE/DELETE) filter atoms bound against it.
struct BoundDml {
  sql::StatementKind kind = sql::StatementKind::kInsert;
  const catalog::Database* database = nullptr;
  const catalog::TableSchema* table = nullptr;
  std::vector<const sql::Predicate*> filters;     // on the target table
  std::vector<int> filter_columns;                // lhs ordinals, parallel
  std::vector<int> updated_columns;               // UPDATE SET ordinals
  size_t rows_inserted = 0;                       // INSERT literal row count
};

Result<BoundDml> BindDml(const sql::Statement& stmt,
                         const catalog::Catalog& catalog);

}  // namespace dta::optimizer

#endif  // DTA_OPTIMIZER_BOUND_QUERY_H_
