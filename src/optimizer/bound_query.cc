#include "optimizer/bound_query.h"

#include <algorithm>

#include "common/strings.h"

namespace dta::optimizer {

namespace {

// Resolves a column reference to (table index, column ordinal).
Result<std::pair<int, int>> ResolveColumn(const sql::ColumnRef& ref,
                                          const BoundQuery& q) {
  if (!ref.table.empty()) {
    int t = q.TableIndexByAlias(ToLower(ref.table));
    if (t < 0) {
      return Status::NotFound(
          StrFormat("unknown table alias '%s'", ref.table.c_str()));
    }
    int c = q.tables[static_cast<size_t>(t)].schema->ColumnIndex(ref.column);
    if (c < 0) {
      return Status::NotFound(StrFormat("column '%s' not in table '%s'",
                                        ref.column.c_str(),
                                        ref.table.c_str()));
    }
    return std::make_pair(t, c);
  }
  // Unqualified: search all tables; must be unique.
  int found_t = -1, found_c = -1;
  for (size_t t = 0; t < q.tables.size(); ++t) {
    int c = q.tables[t].schema->ColumnIndex(ref.column);
    if (c >= 0) {
      if (found_t >= 0) {
        return Status::InvalidArgument(
            StrFormat("column '%s' is ambiguous", ref.column.c_str()));
      }
      found_t = static_cast<int>(t);
      found_c = c;
    }
  }
  if (found_t < 0) {
    return Status::NotFound(
        StrFormat("column '%s' not found in any FROM table",
                  ref.column.c_str()));
  }
  return std::make_pair(found_t, found_c);
}

void AddReferenced(BoundQuery* q, int table, int column) {
  auto& cols = q->referenced_columns[static_cast<size_t>(table)];
  if (std::find(cols.begin(), cols.end(), column) == cols.end()) {
    cols.push_back(column);
  }
}

Status ResolveExprColumns(const sql::Expr& e, BoundQuery* q) {
  std::vector<sql::ColumnRef> refs;
  e.CollectColumns(&refs);
  for (const auto& ref : refs) {
    auto rc = ResolveColumn(ref, *q);
    if (!rc.ok()) return rc.status();
    AddReferenced(q, rc->first, rc->second);
  }
  return Status::Ok();
}

}  // namespace

Result<std::pair<int, int>> ResolveColumnRef(const sql::ColumnRef& ref,
                                             const BoundQuery& query) {
  return ResolveColumn(ref, query);
}

int BoundQuery::TableIndexByAlias(std::string_view alias) const {
  for (size_t i = 0; i < tables.size(); ++i) {
    if (EqualsIgnoreCase(tables[i].alias, alias)) return static_cast<int>(i);
  }
  // Also accept the underlying table name when it is unambiguous.
  int found = -1;
  for (size_t i = 0; i < tables.size(); ++i) {
    if (EqualsIgnoreCase(tables[i].schema->name(), alias)) {
      if (found >= 0) return -1;
      found = static_cast<int>(i);
    }
  }
  return found;
}

Result<BoundQuery> BindSelect(const sql::SelectStatement& stmt,
                              const catalog::Catalog& catalog) {
  BoundQuery q;
  q.stmt = &stmt;
  if (stmt.from.empty()) {
    return Status::InvalidArgument("SELECT requires a FROM clause");
  }
  for (const auto& tr : stmt.from) {
    auto resolved = catalog.ResolveTable(tr.database, tr.table);
    if (!resolved.ok()) return resolved.status();
    BoundTable bt;
    bt.database = resolved->database;
    bt.schema = resolved->table;
    bt.alias = ToLower(tr.EffectiveAlias());
    q.tables.push_back(bt);
  }
  q.referenced_columns.resize(q.tables.size());
  q.filters_by_table.resize(q.tables.size());

  // Select list.
  if (stmt.select_star) {
    for (size_t t = 0; t < q.tables.size(); ++t) {
      for (size_t c = 0; c < q.tables[t].schema->columns().size(); ++c) {
        AddReferenced(&q, static_cast<int>(t), static_cast<int>(c));
      }
    }
  } else {
    for (const auto& item : stmt.items) {
      if (item.expr == nullptr) continue;
      DTA_RETURN_IF_ERROR(ResolveExprColumns(*item.expr, &q));
    }
  }

  // WHERE atoms.
  for (const auto& pred : stmt.where) {
    BoundAtom atom;
    atom.pred = &pred;
    auto lhs = ResolveColumn(pred.column, q);
    if (!lhs.ok()) return lhs.status();
    atom.table = lhs->first;
    atom.column = lhs->second;
    AddReferenced(&q, atom.table, atom.column);
    if (pred.kind == sql::Predicate::Kind::kColumnCompare) {
      auto rhs = ResolveColumn(pred.rhs_column, q);
      if (!rhs.ok()) return rhs.status();
      atom.rhs_table = rhs->first;
      atom.rhs_column = rhs->second;
      AddReferenced(&q, atom.rhs_table, atom.rhs_column);
    }
    int atom_index = static_cast<int>(q.atoms.size());
    q.atoms.push_back(atom);
    if (atom.IsJoin() && atom.table != atom.rhs_table) {
      q.join_atoms.push_back(atom_index);
    } else if (atom.rhs_table >= 0 && atom.rhs_table != atom.table) {
      // Cross-table non-equality comparison: only evaluable post-join.
      q.post_join_atoms.push_back(atom_index);
    } else {
      // Single-table predicate (including same-table column comparisons).
      q.filters_by_table[static_cast<size_t>(atom.table)].push_back(
          atom_index);
    }
  }

  // GROUP BY / ORDER BY.
  for (const auto& g : stmt.group_by) {
    auto rc = ResolveColumn(g, q);
    if (!rc.ok()) return rc.status();
    q.group_by.push_back(*rc);
    AddReferenced(&q, rc->first, rc->second);
  }
  for (const auto& o : stmt.order_by) {
    auto rc = ResolveColumn(o.column, q);
    if (!rc.ok()) return rc.status();
    q.order_by.push_back({rc->first, rc->second, o.ascending});
    AddReferenced(&q, rc->first, rc->second);
  }

  for (auto& cols : q.referenced_columns) std::sort(cols.begin(), cols.end());
  return q;
}

Result<BoundDml> BindDml(const sql::Statement& stmt,
                         const catalog::Catalog& catalog) {
  BoundDml out;
  out.kind = stmt.kind();
  const std::string* table_name = nullptr;
  const std::vector<sql::Predicate>* where = nullptr;
  switch (stmt.kind()) {
    case sql::StatementKind::kInsert:
      table_name = &stmt.insert().table;
      out.rows_inserted = stmt.insert().rows.size();
      break;
    case sql::StatementKind::kUpdate:
      table_name = &stmt.update().table;
      where = &stmt.update().where;
      break;
    case sql::StatementKind::kDelete:
      table_name = &stmt.del().table;
      where = &stmt.del().where;
      break;
    case sql::StatementKind::kSelect:
      return Status::InvalidArgument("BindDml called on SELECT");
  }
  auto resolved = catalog.ResolveTable("", *table_name);
  if (!resolved.ok()) return resolved.status();
  out.database = resolved->database;
  out.table = resolved->table;

  if (where != nullptr) {
    for (const auto& pred : *where) {
      int c = out.table->ColumnIndex(pred.column.column);
      if (c < 0) {
        return Status::NotFound(StrFormat("column '%s' not in table '%s'",
                                          pred.column.column.c_str(),
                                          out.table->name().c_str()));
      }
      out.filters.push_back(&pred);
      out.filter_columns.push_back(c);
    }
  }
  if (stmt.kind() == sql::StatementKind::kUpdate) {
    for (const auto& [col, value] : stmt.update().assignments) {
      int c = out.table->ColumnIndex(col);
      if (c < 0) {
        return Status::NotFound(StrFormat("column '%s' not in table '%s'",
                                          col.c_str(),
                                          out.table->name().c_str()));
      }
      out.updated_columns.push_back(c);
    }
  }
  return out;
}

}  // namespace dta::optimizer
