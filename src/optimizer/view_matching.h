// Materialized-view matching: decides whether a view can answer a query and
// computes the compensation (residual predicates, re-aggregation, column /
// aggregate mappings) needed on top of a view scan.
//
// Matching is deliberately conservative (whole-query replacement with exact
// join-graph equality); a failed match merely means the optimizer does not
// use the view for that query, never a wrong plan.

#ifndef DTA_OPTIMIZER_VIEW_MATCHING_H_
#define DTA_OPTIMIZER_VIEW_MATCHING_H_

#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "catalog/physical_design.h"
#include "common/status.h"
#include "optimizer/bound_query.h"

namespace dta::optimizer {

struct ViewMatchInfo {
  const catalog::ViewDef* view = nullptr;
  bool view_has_groupby = false;
  // True when the plan must (re-)aggregate view output to produce the query
  // result (q has aggregates or DISTINCT-style grouping).
  bool reaggregate = false;

  // q atom indexes to evaluate against view output rows.
  std::vector<int> residual_atoms;

  // Maps a q (table index, column ordinal) to the view-output ordinal
  // holding that base column. Every column needed by residual predicates,
  // group-by, order-by and non-aggregate select items appears here.
  std::map<std::pair<int, int>, int> column_map;

  // How each q select item is produced from view output.
  struct ItemSource {
    // >= 0: read this view output ordinal and fold with `fold` during
    // re-aggregation (kSum for SUM/COUNT folding, kMin/kMax pass-through).
    int view_col = -1;
    sql::AggFunc fold = sql::AggFunc::kSum;
    // AVG(x) over an aggregated view: computed as SUM(sum_col)/SUM(cnt_col).
    int avg_sum_col = -1;
    int avg_cnt_col = -1;
    // view_col < 0 and avg cols < 0: evaluate the item's expression against
    // view output using column_map (SPJ views / plain columns).
    bool compute_from_columns = false;
  };
  std::vector<ItemSource> item_sources;  // parallel to q.stmt->items
};

// Attempts to match `view` (whose definition has been bound as `vq`) against
// query `q`. Returns nullopt when the view cannot answer the query.
std::optional<ViewMatchInfo> MatchView(const BoundQuery& q,
                                       const BoundQuery& vq,
                                       const catalog::ViewDef& view);

}  // namespace dta::optimizer

#endif  // DTA_OPTIMIZER_VIEW_MATCHING_H_
