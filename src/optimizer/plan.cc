#include "optimizer/plan.h"

#include <algorithm>

#include "common/strings.h"
#include "sql/printer.h"

namespace dta::optimizer {

const char* PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kTableScan:
      return "TableScan";
    case PlanOp::kIndexSeek:
      return "IndexSeek";
    case PlanOp::kIndexScan:
      return "IndexScan";
    case PlanOp::kViewScan:
      return "ViewScan";
    case PlanOp::kHashJoin:
      return "HashJoin";
    case PlanOp::kMergeJoin:
      return "MergeJoin";
    case PlanOp::kNestLoopJoin:
      return "NestLoopJoin";
    case PlanOp::kSort:
      return "Sort";
    case PlanOp::kHashAggregate:
      return "HashAggregate";
    case PlanOp::kStreamAggregate:
      return "StreamAggregate";
    case PlanOp::kTop:
      return "Top";
  }
  return "?";
}

PlanNodePtr PlanNode::Clone() const {
  auto n = std::make_unique<PlanNode>();
  n->op = op;
  n->est_rows = est_rows;
  n->est_cost = est_cost;
  n->table = table;
  n->index = index;
  n->view = view;
  n->seek_atoms = seek_atoms;
  n->atoms = atoms;
  n->partitions_touched = partitions_touched;
  n->needs_lookup = needs_lookup;
  n->join_atoms = join_atoms;
  n->view_reaggregate = view_reaggregate;
  n->view_match = view_match;
  n->children.reserve(children.size());
  for (const auto& c : children) n->children.push_back(c->Clone());
  return n;
}

std::string PlanNode::Describe(const BoundQuery& q, int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += PlanOpName(op);
  if (table >= 0 && table < static_cast<int>(q.tables.size())) {
    out += " " + q.tables[static_cast<size_t>(table)].schema->name();
  }
  if (index != nullptr) out += " [" + index->CanonicalName() + "]";
  if (view != nullptr) out += " [" + view->CanonicalName() + "]";
  if (partitions_touched >= 0) {
    out += StrFormat(" parts=%d", partitions_touched);
  }
  if (needs_lookup) out += " +lookup";
  if (view_reaggregate) out += " reagg";
  if (!seek_atoms.empty()) {
    out += " seek{";
    for (size_t i = 0; i < seek_atoms.size(); ++i) {
      if (i > 0) out += " AND ";
      out += sql::PredicateToSql(
          *q.atoms[static_cast<size_t>(seek_atoms[i])].pred);
    }
    out += "}";
  }
  if (!atoms.empty()) {
    out += " filter{";
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (i > 0) out += " AND ";
      out += sql::PredicateToSql(*q.atoms[static_cast<size_t>(atoms[i])].pred);
    }
    out += "}";
  }
  out += StrFormat(" (rows=%.0f, cost=%.2f)\n", est_rows, est_cost);
  for (const auto& c : children) {
    out += c->Describe(q, indent + 1);
  }
  return out;
}

bool PlanNode::UsesStructure(const std::string& canonical_name) const {
  if (index != nullptr && index->CanonicalName() == canonical_name) {
    return true;
  }
  if (view != nullptr && view->CanonicalName() == canonical_name) return true;
  for (const auto& c : children) {
    if (c->UsesStructure(canonical_name)) return true;
  }
  return false;
}

void PlanNode::CollectUsedStructures(std::vector<std::string>* out) const {
  if (index != nullptr) out->push_back(index->CanonicalName());
  if (view != nullptr) out->push_back(view->CanonicalName());
  for (const auto& c : children) c->CollectUsedStructures(out);
}

}  // namespace dta::optimizer
