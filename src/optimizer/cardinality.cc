#include "optimizer/cardinality.h"

#include <algorithm>
#include <cmath>

namespace dta::optimizer {

namespace {

double Clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

}  // namespace

double CardinalityEstimator::TableRows(int table) const {
  return std::max<double>(
      1.0, static_cast<double>(
               q_.tables[static_cast<size_t>(table)].schema->row_count()));
}

double CardinalityEstimator::ColumnDistinct(int table, int column) const {
  const BoundTable& bt = q_.tables[static_cast<size_t>(table)];
  return std::max(1.0, stats_.DistinctCount(bt.database->name(), *bt.schema,
                                            {bt.schema->column(column).name}));
}

double CardinalityEstimator::AtomSelectivity(int atom_index) const {
  const BoundAtom& atom = q_.atoms[static_cast<size_t>(atom_index)];
  const sql::Predicate& p = *atom.pred;
  const BoundTable& bt = q_.tables[static_cast<size_t>(atom.table)];
  double rows = TableRows(atom.table);
  const std::string& col_name = bt.schema->column(atom.column).name;

  if (p.kind == sql::Predicate::Kind::kColumnCompare) {
    if (atom.rhs_table == atom.table) {
      // Same-table column comparison (e.g. a < b): fixed guess.
      return p.op == sql::CompareOp::kEq ? 0.05 : 0.30;
    }
    // Cross-table comparisons are handled by JoinSelectivity.
    return 1.0;
  }

  const stats::Statistics* s =
      stats_.Histogram(bt.database->name(), *bt.schema, col_name);
  const stats::Histogram* h =
      (s != nullptr && !s->histogram.empty()) ? &s->histogram : nullptr;
  // Histograms can be stale relative to the logical row count; normalize by
  // the histogram's own total.
  double h_rows = h != nullptr ? std::max(1.0, h->total_rows()) : rows;

  switch (p.kind) {
    case sql::Predicate::Kind::kCompare: {
      switch (p.op) {
        case sql::CompareOp::kEq:
          if (h != nullptr) return Clamp01(h->EstimateEquals(p.value) / h_rows);
          return 1.0 / std::max(1.0, ColumnDistinct(atom.table, atom.column));
        case sql::CompareOp::kNe:
          if (h != nullptr) {
            return Clamp01(1.0 - h->EstimateEquals(p.value) / h_rows);
          }
          return DefaultSelectivity::kNotEqual;
        case sql::CompareOp::kLt:
          if (h != nullptr) {
            return Clamp01(
                h->EstimateRange(std::nullopt, false, p.value, false) /
                h_rows);
          }
          return DefaultSelectivity::kRange;
        case sql::CompareOp::kLe:
          if (h != nullptr) {
            return Clamp01(
                h->EstimateRange(std::nullopt, false, p.value, true) / h_rows);
          }
          return DefaultSelectivity::kRange;
        case sql::CompareOp::kGt:
          if (h != nullptr) {
            return Clamp01(
                h->EstimateRange(p.value, false, std::nullopt, false) /
                h_rows);
          }
          return DefaultSelectivity::kRange;
        case sql::CompareOp::kGe:
          if (h != nullptr) {
            return Clamp01(
                h->EstimateRange(p.value, true, std::nullopt, false) / h_rows);
          }
          return DefaultSelectivity::kRange;
      }
      return DefaultSelectivity::kRange;
    }
    case sql::Predicate::Kind::kBetween:
      if (h != nullptr) {
        return Clamp01(h->EstimateRange(p.low, true, p.high, true) / h_rows);
      }
      return DefaultSelectivity::kRange * 0.5;
    case sql::Predicate::Kind::kIn: {
      if (h != nullptr) {
        double acc = 0;
        for (const auto& v : p.in_list) acc += h->EstimateEquals(v);
        return Clamp01(acc / h_rows);
      }
      double eq =
          1.0 / std::max(1.0, ColumnDistinct(atom.table, atom.column));
      return Clamp01(eq * static_cast<double>(p.in_list.size()));
    }
    case sql::Predicate::Kind::kLike: {
      // Prefix patterns translate to ranges; others get the default guess.
      size_t wild = p.like_pattern.find_first_of("%_");
      if (wild == std::string::npos) {
        // Exact match.
        if (h != nullptr) {
          return Clamp01(
              h->EstimateEquals(sql::Value::String(p.like_pattern)) / h_rows);
        }
        return 1.0 / std::max(1.0, ColumnDistinct(atom.table, atom.column));
      }
      if (wild > 0 && h != nullptr) {
        return Clamp01(
            h->EstimateLikePrefix(p.like_pattern.substr(0, wild)) / h_rows);
      }
      return DefaultSelectivity::kLike;
    }
    case sql::Predicate::Kind::kColumnCompare:
      return 1.0;  // unreachable
  }
  return 1.0;
}

double CardinalityEstimator::FilterSelectivity(
    const std::vector<int>& atom_indexes) const {
  // Independence with exponential backoff: the most selective predicate
  // applies fully, the next at sqrt, the next at 4th root, ... (guards
  // against correlated predicates crushing the estimate).
  std::vector<double> sels;
  sels.reserve(atom_indexes.size());
  for (int idx : atom_indexes) sels.push_back(AtomSelectivity(idx));
  std::sort(sels.begin(), sels.end());
  double result = 1.0;
  double exponent = 1.0;
  for (double s : sels) {
    result *= std::pow(s, exponent);
    exponent *= 0.5;
  }
  return Clamp01(result);
}

double CardinalityEstimator::JoinSelectivity(int atom_index) const {
  const BoundAtom& atom = q_.atoms[static_cast<size_t>(atom_index)];
  double dl = ColumnDistinct(atom.table, atom.column);
  double dr = ColumnDistinct(atom.rhs_table, atom.rhs_column);
  return 1.0 / std::max(1.0, std::max(dl, dr));
}

double CardinalityEstimator::GroupCardinality(
    const std::vector<std::pair<int, int>>& cols, double input_rows) const {
  if (cols.empty()) return 1.0;
  // Group columns by table: multi-column density is per-table.
  double total = 1.0;
  for (size_t t = 0; t < q_.tables.size(); ++t) {
    std::vector<std::string> names;
    for (const auto& [tab, col] : cols) {
      if (tab == static_cast<int>(t)) {
        names.push_back(q_.tables[t].schema->column(col).name);
      }
    }
    if (names.empty()) continue;
    const BoundTable& bt = q_.tables[t];
    double d =
        stats_.DistinctCount(bt.database->name(), *bt.schema, names);
    total *= std::max(1.0, d);
  }
  return std::min(total, std::max(1.0, input_rows));
}

double CardinalityEstimator::PartitionFraction(
    int table, const catalog::PartitionScheme& scheme,
    const std::vector<int>& atom_indexes, int* partitions_touched) const {
  const BoundTable& bt = q_.tables[static_cast<size_t>(table)];
  int part_col = bt.schema->ColumnIndex(scheme.column);
  int total = scheme.PartitionCount();
  int touched = total;
  for (int idx : atom_indexes) {
    const BoundAtom& atom = q_.atoms[static_cast<size_t>(idx)];
    if (atom.column != part_col || atom.rhs_table >= 0) continue;
    const sql::Predicate& p = *atom.pred;
    int t = total;
    switch (p.kind) {
      case sql::Predicate::Kind::kCompare:
        switch (p.op) {
          case sql::CompareOp::kEq:
            t = 1;
            break;
          case sql::CompareOp::kLt:
          case sql::CompareOp::kLe:
            t = scheme.PartitionFor(p.value) + 1;
            break;
          case sql::CompareOp::kGt:
          case sql::CompareOp::kGe:
            t = total - scheme.PartitionFor(p.value);
            break;
          default:
            break;
        }
        break;
      case sql::Predicate::Kind::kBetween:
        t = scheme.PartitionFor(p.high) - scheme.PartitionFor(p.low) + 1;
        break;
      case sql::Predicate::Kind::kIn: {
        std::vector<int> parts;
        for (const auto& v : p.in_list) parts.push_back(scheme.PartitionFor(v));
        std::sort(parts.begin(), parts.end());
        parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
        t = static_cast<int>(parts.size());
        break;
      }
      case sql::Predicate::Kind::kLike: {
        size_t wild = p.like_pattern.find_first_of("%_");
        if (wild > 0) {
          std::string prefix = p.like_pattern.substr(
              0, wild == std::string::npos ? p.like_pattern.size() : wild);
          std::string hi = prefix;
          hi.push_back('\x7f');
          t = scheme.PartitionFor(sql::Value::String(hi)) -
              scheme.PartitionFor(sql::Value::String(prefix)) + 1;
        }
        break;
      }
      case sql::Predicate::Kind::kColumnCompare:
        break;
    }
    touched = std::min(touched, std::max(1, t));
  }
  if (partitions_touched != nullptr) *partitions_touched = touched;
  return static_cast<double>(touched) / static_cast<double>(total);
}

}  // namespace dta::optimizer
