#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace dta::optimizer {

double CostModel::Dop(double rows) const {
  if (rows < hw_.parallel_threshold_rows) return 1.0;
  return static_cast<double>(std::max(1, hw_.cpu_count));
}

double CostModel::IoDiscount(double bytes) const {
  double memory_bytes = hw_.memory_mb * 1024.0 * 1024.0;
  if (bytes <= memory_bytes * 0.8) return hw_.cached_io_fraction;
  // Partial caching between 0.8x and 4x of memory.
  if (bytes >= memory_bytes * 4.0) return 1.0;
  double t = (bytes - memory_bytes * 0.8) / (memory_bytes * 3.2);
  return hw_.cached_io_fraction + t * (1.0 - hw_.cached_io_fraction);
}

double CostModel::ScanCost(double pages, double rows, double bytes) const {
  double io = pages * hw_.seq_page_ms * IoDiscount(bytes);
  double cpu = rows * hw_.cpu_row_ms / Dop(rows);
  return io + cpu;
}

double CostModel::SeekCost(double leaf_pages, double matched_rows,
                           double lookup_rows, double object_bytes,
                           double table_bytes, int partitions) const {
  double descend = 3.0 * hw_.rand_page_ms * IoDiscount(object_bytes) *
                   std::max(1, partitions);
  double leaf_io =
      leaf_pages * hw_.seq_page_ms * IoDiscount(object_bytes);
  double lookups = lookup_rows * hw_.rand_page_ms * IoDiscount(table_bytes);
  double cpu = matched_rows * hw_.cpu_row_ms / Dop(matched_rows);
  return descend + leaf_io + lookups + cpu;
}

double CostModel::SortCost(double rows, double row_bytes) const {
  if (rows < 2) return hw_.cmp_row_ms;
  double cmp = rows * std::log2(rows) * hw_.cmp_row_ms / Dop(rows);
  double bytes = rows * row_bytes;
  double memory_bytes = hw_.memory_mb * 1024.0 * 1024.0;
  double spill = 0;
  if (bytes > memory_bytes * 0.25) {
    // One spill pass: write + read.
    double pages = bytes / 8192.0;
    spill = 2.0 * pages * hw_.seq_page_ms;
  }
  return cmp + spill;
}

double CostModel::HashJoinCost(double build_rows, double probe_rows,
                               double build_row_bytes) const {
  double cpu = (build_rows + probe_rows) * hw_.hash_row_ms /
               Dop(build_rows + probe_rows);
  double build_bytes = build_rows * build_row_bytes;
  double memory_bytes = hw_.memory_mb * 1024.0 * 1024.0;
  double spill = 0;
  if (build_bytes > memory_bytes * 0.25) {
    double pages = (build_bytes + probe_rows * build_row_bytes) / 8192.0;
    spill = 2.0 * pages * hw_.seq_page_ms;
  }
  return cpu + spill;
}

double CostModel::MergeJoinCost(double left_rows, double right_rows) const {
  return (left_rows + right_rows) * hw_.cpu_row_ms /
         Dop(left_rows + right_rows);
}

double CostModel::NestLoopCost(double outer_rows,
                               double inner_cost_per_probe) const {
  return outer_rows * inner_cost_per_probe +
         outer_rows * hw_.cpu_row_ms / Dop(outer_rows);
}

double CostModel::HashAggCost(double rows, double groups) const {
  return rows * hw_.hash_row_ms / Dop(rows) +
         groups * hw_.cpu_row_ms;
}

double CostModel::StreamAggCost(double rows) const {
  return rows * hw_.cpu_row_ms / Dop(rows);
}

double CostModel::FilterCost(double rows) const {
  return rows * hw_.cpu_row_ms * 0.5 / Dop(rows);
}

double CostModel::IndexInsertCost(double table_bytes) const {
  // Descend + leaf write.
  return 1.5 * hw_.rand_page_ms * IoDiscount(table_bytes);
}

double CostModel::IndexDeleteCost(double table_bytes) const {
  return 1.5 * hw_.rand_page_ms * IoDiscount(table_bytes);
}

double CostModel::ViewMaintenanceCost(double delta_rows, double view_rows,
                                      int joined_tables) const {
  // Incremental maintenance: per delta row, join against the other view
  // tables (seek each) and update the view's storage.
  double per_row = 2.0 * hw_.rand_page_ms +
                   static_cast<double>(std::max(0, joined_tables - 1)) *
                       1.5 * hw_.rand_page_ms;
  double touch = delta_rows * per_row;
  // Aggregated views also re-aggregate the touched groups.
  double agg = delta_rows * hw_.hash_row_ms + std::log2(view_rows + 2);
  return touch + agg;
}

}  // namespace dta::optimizer
