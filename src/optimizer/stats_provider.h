// Statistics access layer for the optimizer.
//
// Wraps a StatsManager and (a) serves histogram / distinct-count lookups,
// (b) records every *missing* statistic that the optimizer would have wanted
// — the "required statistics" discovery that drives both reduced statistics
// creation (paper §5.2) and statistics import in the production/test-server
// scenario (§5.3).

#ifndef DTA_OPTIMIZER_STATS_PROVIDER_H_
#define DTA_OPTIMIZER_STATS_PROVIDER_H_

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "stats/statistics.h"

namespace dta::optimizer {

class StatsProvider {
 public:
  explicit StatsProvider(const stats::StatsManager* manager)
      : manager_(manager) {}

  // When set, every lookup that had to fall back to a heuristic records the
  // statistic it wanted. The recorder is thread-local: each thread sets its
  // own recorder around an optimization and observes only its own misses,
  // so concurrent what-if calls through a shared provider do not race or
  // cross-contaminate.
  void set_missing_recorder(std::set<stats::StatsKey>* recorder) {
    tls_missing_ = recorder;
  }

  // Histogram describing `column` (leading column of some statistic), or
  // nullptr with the miss recorded.
  const stats::Statistics* Histogram(const std::string& database,
                                     const catalog::TableSchema& table,
                                     const std::string& column) const {
    const stats::Statistics* s =
        manager_ != nullptr
            ? manager_->FindHistogram(database, table.name(), column)
            : nullptr;
    if (s == nullptr) RecordMissing(database, table.name(), {column});
    return s;
  }

  // Distinct-count estimate for a column group; falls back to a heuristic
  // when no density information exists (and records the miss).
  double DistinctCount(const std::string& database,
                       const catalog::TableSchema& table,
                       const std::vector<std::string>& columns) const {
    if (manager_ != nullptr) {
      auto d = manager_->DistinctCount(database, table.name(), columns);
      if (d.has_value()) return std::max(1.0, *d);
    }
    RecordMissing(database, table.name(), columns);
    return FallbackDistinct(table, columns);
  }

  // Heuristic used when no statistics exist: primary keys are unique,
  // everything else gets a sublinear guess.
  static double FallbackDistinct(const catalog::TableSchema& table,
                                 const std::vector<std::string>& columns) {
    double rows = static_cast<double>(table.row_count());
    if (rows < 1) return 1;
    if (columns.size() == 1 && table.primary_key().size() == 1) {
      int pk = table.primary_key()[0];
      if (table.ColumnIndex(columns[0]) == pk) return rows;
    }
    double guess = std::pow(rows, 0.6);
    // Wider groups are more distinct.
    guess *= std::pow(2.0, static_cast<double>(columns.size()) - 1);
    return std::min(rows, std::max(10.0, guess));
  }

  const stats::StatsManager* manager() const { return manager_; }

 private:
  void RecordMissing(const std::string& database, const std::string& table,
                     const std::vector<std::string>& columns) const {
    if (tls_missing_ != nullptr) {
      tls_missing_->insert(stats::StatsKey(database, table, columns));
    }
  }

  const stats::StatsManager* manager_;
  inline static thread_local std::set<stats::StatsKey>* tls_missing_ =
      nullptr;
};

}  // namespace dta::optimizer

#endif  // DTA_OPTIMIZER_STATS_PROVIDER_H_
