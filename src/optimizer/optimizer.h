// The cost-based query optimizer with a what-if interface.
//
// Given a statement and a (possibly hypothetical) Configuration, produces a
// physical plan and its estimated cost. This is the component DTA is
// "in-sync" with (paper §2.2): every candidate configuration is priced by
// the same cost model that would execute it, so recommendations, if
// implemented, are actually used.
//
// The optimizer supports:
//   - access-path selection: heap/clustered scans, clustered seeks,
//     covering/non-covering nonclustered index seeks and scans,
//     single-column range partition elimination on tables and indexes;
//   - left-deep join-order search (dynamic programming up to 12 relations,
//     greedy beyond) with hash, merge, and index-nested-loop joins;
//   - materialized-view matching with residual predicates and
//     re-aggregation;
//   - stream/hash aggregation, DISTINCT, ORDER BY, TOP;
//   - maintenance costing of INSERT/UPDATE/DELETE against every index and
//     materialized view the statement affects.

#ifndef DTA_OPTIMIZER_OPTIMIZER_H_
#define DTA_OPTIMIZER_OPTIMIZER_H_

#include <map>
#include <memory>
#include <string>

#include "catalog/physical_design.h"
#include "catalog/schema.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "optimizer/bound_query.h"
#include "optimizer/cardinality.h"
#include "optimizer/cost_model.h"
#include "optimizer/hardware.h"
#include "optimizer/plan.h"
#include "optimizer/stats_provider.h"

namespace dta::optimizer {

class Optimizer {
 public:
  Optimizer(const catalog::Catalog& catalog, const StatsProvider& stats,
            const HardwareParams& hardware)
      : catalog_(catalog), stats_(stats), cm_(hardware) {}

  struct QueryPlan {
    // Bound form of the statement (plans point into it). The statement
    // itself is owned by the caller and must outlive this object, as must
    // the Configuration optimized against.
    BoundQuery bound;
    PlanNodePtr root;
    double cost = 0;
  };

  // Optimizes a SELECT against the configuration.
  Result<QueryPlan> OptimizeSelect(const sql::SelectStatement& stmt,
                                   const catalog::Configuration& config) const;

  // Estimated cost of any statement (SELECT or DML) under the configuration.
  Result<double> CostStatement(const sql::Statement& stmt,
                               const catalog::Configuration& config) const;

  // Estimated cost of INSERT/UPDATE/DELETE: row location plus maintenance of
  // every affected index and materialized view.
  Result<double> CostDml(const sql::Statement& stmt,
                         const catalog::Configuration& config) const;

  const CostModel& cost_model() const { return cm_; }
  const catalog::Catalog& catalog() const { return catalog_; }

  // Attaches (or clears, with nullptr) profiling counters: statements
  // costed and access paths considered. Counts only — never timings — so
  // they are deterministic at any thread count. Must not race concurrent
  // costing; the server attaches metrics before the tuner fans out.
  void set_metrics(MetricsRegistry* metrics) {
    m_statements_ = metrics != nullptr
                        ? metrics->GetCounter("optimizer.statements_costed")
                        : nullptr;
    m_access_paths_ = metrics != nullptr
                          ? metrics->GetCounter("optimizer.access_paths")
                          : nullptr;
  }

 private:
  struct AccessPath {
    PlanNodePtr node;
    double rows = 0;    // output rows (after filters)
    double cost = 0;
    // Output ordering: column ordinals of the scanned table (empty if
    // unordered / order destroyed).
    std::vector<int> order_cols;
  };

  // All viable access paths for table `t` of the bound query.
  std::vector<AccessPath> BuildAccessPaths(
      const BoundQuery& q, const CardinalityEstimator& est,
      const catalog::Configuration& config, int t) const;

  // Cheapest inner-side seek path for an index-nested-loop join into table
  // `t` on the join atom; returns nullopt when no usable index exists.
  std::optional<AccessPath> InnerSeekPath(const BoundQuery& q,
                                          const CardinalityEstimator& est,
                                          const catalog::Configuration& config,
                                          int t, int join_atom) const;

  // Joins, aggregation, ordering on top of base paths.
  Result<QueryPlan> PlanQueryBlock(BoundQuery q,
                                   const catalog::Configuration& config) const;

  // Best whole-query replacement using a materialized view, if any.
  std::optional<AccessPath> BestViewPlan(
      const BoundQuery& q, const CardinalityEstimator& est,
      const catalog::Configuration& config) const;

  // Binds a view definition (cached by canonical name).
  const BoundQuery* BoundView(const catalog::ViewDef& view) const
      EXCLUDES(view_bind_mu_);

  const catalog::Catalog& catalog_;
  const StatsProvider& stats_;
  CostModel cm_;

  // Guarded by view_bind_mu_: costing is const and runs concurrently from
  // the tuner's worker pool; map values are unique_ptrs, so pointers handed
  // out remain stable after the lock is released.
  mutable Mutex view_bind_mu_;
  mutable std::map<std::string, std::unique_ptr<BoundQuery>> view_bind_cache_
      GUARDED_BY(view_bind_mu_);

  // Profiling counters (null when no registry is attached). The Counter
  // objects are atomic, so const costing paths may increment through them
  // concurrently.
  Counter* m_statements_ = nullptr;
  Counter* m_access_paths_ = nullptr;
};

}  // namespace dta::optimizer

#endif  // DTA_OPTIMIZER_OPTIMIZER_H_
