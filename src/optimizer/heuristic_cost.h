// Catalog-only fallback cost estimate for graceful degradation.
//
// When a statement's what-if optimizer calls fail persistently (server
// outage, injected permanent fault), the tuner falls back to this estimate
// instead of aborting the session. It models the configuration-independent
// floor — a full scan of every referenced table plus coarse aggregation and
// DML surcharges — from catalog metadata alone, so it needs no statistics,
// no data, and cannot fail. Because the estimate ignores the hypothetical
// configuration, a degraded statement contributes the same cost to every
// candidate design: it stops steering the search (honest, given we know
// nothing) without poisoning the comparison between configurations.

#ifndef DTA_OPTIMIZER_HEURISTIC_COST_H_
#define DTA_OPTIMIZER_HEURISTIC_COST_H_

#include "catalog/schema.h"
#include "optimizer/cost_model.h"
#include "sql/ast.h"

namespace dta::optimizer {

// Deterministic, total (never fails). Tables missing from the catalog
// contribute a fixed nominal cost.
double HeuristicStatementCost(const sql::Statement& stmt,
                              const catalog::Catalog& catalog,
                              const CostModel& cost_model);

}  // namespace dta::optimizer

#endif  // DTA_OPTIMIZER_HEURISTIC_COST_H_
