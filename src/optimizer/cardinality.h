// Cardinality and selectivity estimation over bound queries, using
// histograms and density information with standard independence /
// containment assumptions.

#ifndef DTA_OPTIMIZER_CARDINALITY_H_
#define DTA_OPTIMIZER_CARDINALITY_H_

#include <vector>

#include "catalog/physical_design.h"
#include "optimizer/bound_query.h"
#include "optimizer/stats_provider.h"

namespace dta::optimizer {

// Default selectivities when no statistics apply (SQL Server-inspired magic
// numbers).
struct DefaultSelectivity {
  static constexpr double kEquality = 0.05;
  static constexpr double kRange = 0.30;
  static constexpr double kLike = 0.10;
  static constexpr double kNotEqual = 0.90;
};

class CardinalityEstimator {
 public:
  CardinalityEstimator(const BoundQuery& query, const StatsProvider& stats)
      : q_(query), stats_(stats) {}

  double TableRows(int table) const;

  // Selectivity of one non-join atom against its table.
  double AtomSelectivity(int atom_index) const;

  // Combined selectivity of a set of filter atoms on one table
  // (independence with exponential backoff on the 3rd+ predicate).
  double FilterSelectivity(const std::vector<int>& atom_indexes) const;

  // Join selectivity of an equality join atom: 1/max(d_left, d_right).
  double JoinSelectivity(int atom_index) const;

  // Distinct count of a set of (table, column) pairs, capped by input_rows.
  // Uses multi-column density when available, else combines per-column
  // distincts with exponential backoff.
  double GroupCardinality(const std::vector<std::pair<int, int>>& cols,
                          double input_rows) const;

  // Fraction of partitions a set of filter atoms touches under `scheme` on
  // `table`, and the number touched.
  double PartitionFraction(int table, const catalog::PartitionScheme& scheme,
                           const std::vector<int>& atom_indexes,
                           int* partitions_touched) const;

  // Distinct values of a single column.
  double ColumnDistinct(int table, int column) const;

 private:
  const BoundQuery& q_;
  const StatsProvider& stats_;
};

}  // namespace dta::optimizer

#endif  // DTA_OPTIMIZER_CARDINALITY_H_
