#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "optimizer/view_matching.h"

namespace dta::optimizer {

namespace {

constexpr double kPostJoinCompareSelectivity = 0.30;
constexpr double kPerPartitionOverheadMs = 0.05;
constexpr int kDpTableLimit = 12;

double PageBytes() { return catalog::TableSchema::kPageBytes; }

// Ordered column prefix check: true when `prefix` (ordinals) appears at the
// start of `order` in the same sequence.
bool IsOrderedPrefix(const std::vector<int>& order,
                     const std::vector<int>& prefix) {
  if (prefix.size() > order.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (order[i] != prefix[i]) return false;
  }
  return true;
}

// True when the first prefix.size() columns of `order` form the same *set*
// as `prefix` (sufficient for stream aggregation).
bool CoversAsSetPrefix(const std::vector<int>& order,
                       const std::vector<int>& group_cols) {
  if (group_cols.size() > order.size()) return false;
  std::vector<int> a(order.begin(),
                     order.begin() + static_cast<long>(group_cols.size()));
  std::vector<int> b = group_cols;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace

// --------------------------------------------------------------------------
// Access paths
// --------------------------------------------------------------------------

namespace {

struct SargResult {
  std::vector<int> seek_atoms;
  double selectivity = 1.0;
};

// Walks the index key columns left to right, consuming one predicate per
// column: equality predicates allow continuing to the next key column; a
// range / IN / LIKE-prefix predicate is consumed and terminates the walk.
SargResult SargablePrefix(const catalog::TableSchema& schema,
                          const std::vector<std::string>& key_columns,
                          const BoundQuery& q, const CardinalityEstimator& est,
                          const std::vector<int>& filter_atoms) {
  SargResult out;
  for (const std::string& key_col : key_columns) {
    int ci = schema.ColumnIndex(key_col);
    if (ci < 0) break;
    int chosen = -1;
    bool is_equality = false;
    for (int a : filter_atoms) {
      const BoundAtom& atom = q.atoms[static_cast<size_t>(a)];
      if (atom.column != ci || atom.rhs_table >= 0) continue;
      const sql::Predicate& p = *atom.pred;
      if (p.IsEquality()) {
        chosen = a;
        is_equality = true;
        break;  // equality is the best option for this column
      }
      bool seekable =
          p.IsRange() || p.kind == sql::Predicate::Kind::kIn ||
          (p.kind == sql::Predicate::Kind::kLike &&
           p.like_pattern.find_first_of("%_") != 0);
      if (seekable && chosen < 0) chosen = a;
    }
    if (chosen < 0) break;
    out.seek_atoms.push_back(chosen);
    out.selectivity *= est.AtomSelectivity(chosen);
    if (!is_equality) break;
  }
  return out;
}

std::vector<int> RemoveAtoms(const std::vector<int>& all,
                             const std::vector<int>& remove) {
  std::vector<int> out;
  for (int a : all) {
    if (std::find(remove.begin(), remove.end(), a) == remove.end()) {
      out.push_back(a);
    }
  }
  return out;
}

std::vector<int> KeyOrdinals(const catalog::TableSchema& schema,
                             const std::vector<std::string>& cols) {
  std::vector<int> out;
  for (const auto& c : cols) {
    int ci = schema.ColumnIndex(c);
    if (ci < 0) break;
    out.push_back(ci);
  }
  return out;
}

// True when the index (plus the clustering key available as row locator)
// contains every referenced column of the table.
bool Covers(const catalog::IndexDef& ix, const catalog::IndexDef* clustered,
            const catalog::TableSchema& schema,
            const std::vector<int>& need_cols) {
  for (int c : need_cols) {
    const std::string& name = schema.column(c).name;
    if (ix.ContainsColumn(name)) continue;
    if (clustered != nullptr && clustered != &ix) {
      bool in_locator = false;
      for (const auto& kc : clustered->key_columns) {
        if (EqualsIgnoreCase(kc, name)) {
          in_locator = true;
          break;
        }
      }
      if (in_locator) continue;
    }
    return false;
  }
  return true;
}

// True when any filter atom references `column_name` of the table but is not
// among `seek_atoms` (partition elimination still applies to it).
bool HasNonSeekPredOn(const catalog::TableSchema& schema,
                      const std::string& column_name, const BoundQuery& q,
                      const std::vector<int>& filters,
                      const std::vector<int>& seek_atoms) {
  int ci = schema.ColumnIndex(column_name);
  if (ci < 0) return false;
  for (int a : filters) {
    if (std::find(seek_atoms.begin(), seek_atoms.end(), a) !=
        seek_atoms.end()) {
      continue;
    }
    if (q.atoms[static_cast<size_t>(a)].column == ci &&
        q.atoms[static_cast<size_t>(a)].rhs_table < 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<Optimizer::AccessPath> Optimizer::BuildAccessPaths(
    const BoundQuery& q, const CardinalityEstimator& est,
    const catalog::Configuration& config, int t) const {
  std::vector<AccessPath> paths;
  const BoundTable& bt = q.tables[static_cast<size_t>(t)];
  const catalog::TableSchema& schema = *bt.schema;
  const std::vector<int>& filters =
      q.filters_by_table[static_cast<size_t>(t)];
  const std::vector<int>& need_cols =
      q.referenced_columns[static_cast<size_t>(t)];

  const double rows = est.TableRows(t);
  const double filter_sel = est.FilterSelectivity(filters);
  const double out_rows = std::max(0.01, rows * filter_sel);
  const double data_pages = static_cast<double>(schema.DataPages());
  const double data_bytes = static_cast<double>(schema.DataBytes());

  const catalog::IndexDef* clustered =
      config.FindClusteredIndex(schema.name());
  const catalog::PartitionScheme* tpart =
      config.FindTablePartitioning(schema.name());

  // ---- Path 1: base scan (heap or clustered index), with partition
  // elimination when the table is range partitioned.
  {
    int parts = 1;
    double pfrac = 1.0;
    if (tpart != nullptr) {
      pfrac = est.PartitionFraction(t, *tpart, filters, &parts);
    }
    AccessPath p;
    p.node = std::make_unique<PlanNode>();
    p.node->op = PlanOp::kTableScan;
    p.node->table = t;
    p.node->atoms = filters;
    p.node->partitions_touched = tpart != nullptr ? parts : -1;
    p.rows = out_rows;
    p.cost = cm_.ScanCost(data_pages * pfrac, rows * pfrac, data_bytes) +
             cm_.FilterCost(rows * pfrac) +
             (parts - 1) * kPerPartitionOverheadMs;
    if (clustered != nullptr) {
      p.order_cols = KeyOrdinals(schema, clustered->key_columns);
      if (parts > 1) {
        // Per-partition sorted runs must be merged to present a global
        // order.
        p.cost += rows * pfrac * cm_.hardware().cmp_row_ms *
                  std::log2(static_cast<double>(parts) + 1);
      }
    }
    p.node->est_rows = p.rows;
    p.node->est_cost = p.cost;
    paths.push_back(std::move(p));
  }

  // ---- Path 2: clustered index seek.
  if (clustered != nullptr) {
    SargResult sarg =
        SargablePrefix(schema, clustered->key_columns, q, est, filters);
    if (!sarg.seek_atoms.empty()) {
      int parts = 1;
      const catalog::PartitionScheme* scheme =
          clustered->partitioning.has_value() ? &*clustered->partitioning
                                              : tpart;
      double extra_frac = 1.0;
      if (scheme != nullptr) {
        extra_frac =
            est.PartitionFraction(t, *scheme, filters, &parts);
        if (!HasNonSeekPredOn(schema, scheme->column, q, filters,
                              sarg.seek_atoms)) {
          // Elimination already subsumed by the seek (or no predicate on
          // the partitioning column at all).
          extra_frac = 1.0;
        }
      }
      double matched = std::max(0.01, rows * sarg.selectivity * extra_frac);
      double leaf_pages =
          std::max(1.0, data_pages * sarg.selectivity * extra_frac);
      AccessPath p;
      p.node = std::make_unique<PlanNode>();
      p.node->op = PlanOp::kIndexSeek;
      p.node->table = t;
      p.node->index = clustered;
      p.node->seek_atoms = sarg.seek_atoms;
      p.node->atoms = RemoveAtoms(filters, sarg.seek_atoms);
      p.node->partitions_touched = scheme != nullptr ? parts : -1;
      p.rows = out_rows * extra_frac;
      p.cost = cm_.SeekCost(leaf_pages, matched, 0, data_bytes, data_bytes,
                            parts) +
               cm_.FilterCost(matched);
      p.order_cols = KeyOrdinals(schema, clustered->key_columns);
      p.node->est_rows = p.rows;
      p.node->est_cost = p.cost;
      paths.push_back(std::move(p));
    }
  }

  // ---- Path 3: nonclustered indexes.
  for (const catalog::IndexDef* ix : config.IndexesOnTable(schema.name())) {
    if (ix->clustered) continue;
    bool covering = Covers(*ix, clustered, schema, need_cols);
    SargResult sarg =
        SargablePrefix(schema, ix->key_columns, q, est, filters);
    double leaf_total = static_cast<double>(ix->LeafPages(schema));
    double obj_bytes = leaf_total * PageBytes();

    int parts = 1;
    double pfrac = 1.0;
    if (ix->partitioning.has_value()) {
      pfrac = est.PartitionFraction(t, *ix->partitioning, filters, &parts);
      if (!sarg.seek_atoms.empty() &&
          !HasNonSeekPredOn(schema, ix->partitioning->column, q, filters,
                            sarg.seek_atoms)) {
        pfrac = 1.0;
      }
    }

    if (!sarg.seek_atoms.empty()) {
      double matched = std::max(0.01, rows * sarg.selectivity * pfrac);
      double leaf_pages =
          std::max(1.0, leaf_total * sarg.selectivity * pfrac);
      AccessPath p;
      p.node = std::make_unique<PlanNode>();
      p.node->op = PlanOp::kIndexSeek;
      p.node->table = t;
      p.node->index = ix;
      p.node->seek_atoms = sarg.seek_atoms;
      p.node->atoms = RemoveAtoms(filters, sarg.seek_atoms);
      p.node->partitions_touched =
          ix->partitioning.has_value() ? parts : -1;
      p.node->needs_lookup = !covering;
      p.rows = out_rows * pfrac;
      double lookups = covering ? 0 : matched;
      p.cost = cm_.SeekCost(leaf_pages, matched, lookups, obj_bytes,
                            data_bytes, parts) +
               cm_.FilterCost(matched);
      p.order_cols = KeyOrdinals(schema, ix->key_columns);
      p.node->est_rows = p.rows;
      p.node->est_cost = p.cost;
      paths.push_back(std::move(p));
    } else if (covering && leaf_total < data_pages) {
      // Covering index scan: narrower than the base table.
      AccessPath p;
      p.node = std::make_unique<PlanNode>();
      p.node->op = PlanOp::kIndexScan;
      p.node->table = t;
      p.node->index = ix;
      p.node->atoms = filters;
      p.node->partitions_touched =
          ix->partitioning.has_value() ? parts : -1;
      p.rows = out_rows * pfrac;
      p.cost = cm_.ScanCost(leaf_total * pfrac, rows * pfrac, obj_bytes) +
               cm_.FilterCost(rows * pfrac) +
               (parts - 1) * kPerPartitionOverheadMs;
      p.order_cols = KeyOrdinals(schema, ix->key_columns);
      if (parts > 1) {
        p.cost += rows * pfrac * cm_.hardware().cmp_row_ms *
                  std::log2(static_cast<double>(parts) + 1);
      }
      p.node->est_rows = p.rows;
      p.node->est_cost = p.cost;
      paths.push_back(std::move(p));
    }
  }

  if (m_access_paths_ != nullptr) m_access_paths_->Increment(paths.size());
  return paths;
}

std::optional<Optimizer::AccessPath> Optimizer::InnerSeekPath(
    const BoundQuery& q, const CardinalityEstimator& est,
    const catalog::Configuration& config, int t, int join_atom) const {
  const BoundAtom& atom = q.atoms[static_cast<size_t>(join_atom)];
  int join_col = atom.table == t ? atom.column : atom.rhs_column;
  const BoundTable& bt = q.tables[static_cast<size_t>(t)];
  const catalog::TableSchema& schema = *bt.schema;
  const std::string& join_col_name = schema.column(join_col).name;
  const std::vector<int>& filters =
      q.filters_by_table[static_cast<size_t>(t)];
  const std::vector<int>& need_cols =
      q.referenced_columns[static_cast<size_t>(t)];

  const double rows = est.TableRows(t);
  const double d = std::max(1.0, est.ColumnDistinct(t, join_col));
  const double per_probe_rows = rows / d;
  const double data_bytes = static_cast<double>(schema.DataBytes());
  const catalog::IndexDef* clustered =
      config.FindClusteredIndex(schema.name());

  std::optional<AccessPath> best;
  auto consider = [&](const catalog::IndexDef* ix) {
    if (ix->key_columns.empty() ||
        !EqualsIgnoreCase(ix->key_columns[0], join_col_name)) {
      return;
    }
    bool covering =
        ix->clustered || Covers(*ix, clustered, schema, need_cols);
    double leaf_total = ix->clustered
                            ? static_cast<double>(schema.DataPages())
                            : static_cast<double>(ix->LeafPages(schema));
    double obj_bytes = leaf_total * PageBytes();
    double leaf_pages = std::max(0.05, leaf_total / d);
    double lookups = covering ? 0 : per_probe_rows;
    double cost = cm_.SeekCost(leaf_pages, per_probe_rows, lookups, obj_bytes,
                               data_bytes) +
                  cm_.FilterCost(per_probe_rows);
    if (!best.has_value() || cost < best->cost) {
      AccessPath p;
      p.node = std::make_unique<PlanNode>();
      p.node->op = PlanOp::kIndexSeek;
      p.node->table = t;
      p.node->index = ix;
      p.node->seek_atoms = {join_atom};
      p.node->atoms = filters;
      p.node->needs_lookup = !covering;
      p.rows = per_probe_rows * est.FilterSelectivity(filters);
      p.cost = cost;
      p.node->est_rows = p.rows;
      p.node->est_cost = p.cost;
      best = std::move(p);
    }
  };
  for (const catalog::IndexDef* ix : config.IndexesOnTable(schema.name())) {
    consider(ix);
  }
  return best;
}

// --------------------------------------------------------------------------
// View plans
// --------------------------------------------------------------------------

const BoundQuery* Optimizer::BoundView(const catalog::ViewDef& view) const {
  std::string key = view.CanonicalName();
  MutexLock lock(view_bind_mu_);
  auto it = view_bind_cache_.find(key);
  if (it != view_bind_cache_.end()) return it->second.get();
  if (view.definition == nullptr) return nullptr;
  auto bound = BindSelect(*view.definition, catalog_);
  if (!bound.ok()) {
    view_bind_cache_[key] = nullptr;
    return nullptr;
  }
  auto owned = std::make_unique<BoundQuery>(std::move(bound).value());
  // The cache may outlive the ViewDef instance that was bound (a different
  // instance with the same canonical name can be queried later): keep the
  // definition alive.
  owned->owned_stmt = view.definition;
  const BoundQuery* out = owned.get();
  view_bind_cache_[key] = std::move(owned);
  return out;
}

std::optional<Optimizer::AccessPath> Optimizer::BestViewPlan(
    const BoundQuery& q, const CardinalityEstimator& est,
    const catalog::Configuration& config) const {
  std::optional<AccessPath> best;
  for (const catalog::ViewDef& view : config.views()) {
    const BoundQuery* vq = BoundView(view);
    if (vq == nullptr) continue;
    auto match = MatchView(q, *vq, view);
    if (!match.has_value()) continue;

    double vrows = std::max(1.0, view.estimated_rows);
    double vpages =
        std::max(1.0, static_cast<double>(view.EstimateBytes()) / PageBytes());
    double residual_sel = est.FilterSelectivity(match->residual_atoms);
    double out_rows = std::max(0.01, vrows * residual_sel);

    // Indexed-view seek: a materialized aggregated view carries a unique
    // clustered index on its GROUP BY columns (as SQL Server requires for
    // indexed views), so residual predicates on a prefix of those columns
    // become seeks instead of a full view scan.
    double seek_fraction = 1.0;
    if (!vq->group_by.empty() && !match->residual_atoms.empty()) {
      // Output ordinals of the view's group-by columns, in key order.
      std::vector<int> key_ordinals;
      for (const auto& [vt, vc] : vq->group_by) {
        int ordinal = -1;
        for (size_t i = 0; i < vq->stmt->items.size(); ++i) {
          const sql::Expr* e = vq->stmt->items[i].expr.get();
          if (e == nullptr || e->kind != sql::Expr::Kind::kColumn) continue;
          auto rc = ResolveColumnRef(e->column, *vq);
          if (rc.ok() && rc->first == vt && rc->second == vc) {
            ordinal = static_cast<int>(i);
            break;
          }
        }
        if (ordinal < 0) break;
        key_ordinals.push_back(ordinal);
      }
      for (int key_ord : key_ordinals) {
        int chosen = -1;
        bool is_eq = false;
        for (int a : match->residual_atoms) {
          const BoundAtom& atom = q.atoms[static_cast<size_t>(a)];
          if (atom.rhs_table >= 0) continue;
          auto it = match->column_map.find({atom.table, atom.column});
          if (it == match->column_map.end() || it->second != key_ord) {
            continue;
          }
          if (atom.pred->IsEquality()) {
            chosen = a;
            is_eq = true;
            break;
          }
          if (atom.pred->IsRange() && chosen < 0) chosen = a;
        }
        if (chosen < 0) break;
        seek_fraction *= est.AtomSelectivity(chosen);
        if (!is_eq) break;
      }
      seek_fraction = std::clamp(seek_fraction, 0.0, 1.0);
    }

    AccessPath p;
    p.node = std::make_unique<PlanNode>();
    p.node->op = PlanOp::kViewScan;
    p.node->view = &view;
    p.node->atoms = match->residual_atoms;
    p.node->view_match = std::make_shared<ViewMatchInfo>(*match);
    p.rows = out_rows;
    if (seek_fraction < 1.0) {
      p.cost = cm_.SeekCost(std::max(1.0, vpages * seek_fraction),
                            vrows * seek_fraction, 0,
                            static_cast<double>(view.EstimateBytes()),
                            static_cast<double>(view.EstimateBytes())) +
               cm_.FilterCost(vrows * seek_fraction);
    } else {
      p.cost = cm_.ScanCost(vpages, vrows,
                            static_cast<double>(view.EstimateBytes())) +
               cm_.FilterCost(vrows);
    }
    p.node->est_rows = p.rows;
    p.node->est_cost = p.cost;

    if (match->reaggregate) {
      double groups =
          q.group_by.empty()
              ? 1.0
              : est.GroupCardinality(q.group_by, out_rows);
      auto agg = std::make_unique<PlanNode>();
      agg->op = PlanOp::kHashAggregate;
      agg->view_reaggregate = true;
      agg->view_match = p.node->view_match;
      agg->est_rows = groups;
      agg->est_cost = p.cost + cm_.HashAggCost(out_rows, groups);
      agg->children.push_back(std::move(p.node));
      p.node = std::move(agg);
      p.rows = groups;
      p.cost = p.node->est_cost;
    }
    if (!best.has_value() || p.cost < best->cost) best = std::move(p);
  }
  return best;
}

// --------------------------------------------------------------------------
// Join ordering and final assembly
// --------------------------------------------------------------------------

namespace {

// Average output row width of the referenced columns of tables in `mask`.
double RowBytesOf(const BoundQuery& q, uint32_t mask) {
  double bytes = 16;
  for (size_t t = 0; t < q.tables.size(); ++t) {
    if ((mask & (1u << t)) == 0) continue;
    for (int c : q.referenced_columns[t]) {
      bytes += q.tables[t].schema->column(c).width_bytes;
    }
  }
  return bytes;
}

}  // namespace

Result<Optimizer::QueryPlan> Optimizer::PlanQueryBlock(
    BoundQuery q, const catalog::Configuration& config) const {
  CardinalityEstimator est(q, stats_);
  const size_t n = q.tables.size();
  if (n > 31) return Status::InvalidArgument("too many tables in FROM");

  // Per-table access paths.
  std::vector<std::vector<AccessPath>> table_paths(n);
  for (size_t t = 0; t < n; ++t) {
    table_paths[t] =
        BuildAccessPaths(q, est, config, static_cast<int>(t));
    if (table_paths[t].empty()) {
      return Status::Internal("no access path for table");
    }
  }
  auto cheapest = [&](size_t t) -> const AccessPath& {
    const AccessPath* best = &table_paths[t][0];
    for (const auto& p : table_paths[t]) {
      if (p.cost < best->cost) best = &p;
    }
    return *best;
  };

  struct DpEntry {
    bool valid = false;
    double rows = 0;
    double cost = 0;
    PlanNodePtr plan;
    // Ordering info survives only for single-table plans.
    std::vector<int> order_cols;
    int single_table = -1;
  };

  DpEntry final_entry;

  if (n == 1) {
    // Choose among all paths later (ordering matters for aggregation);
    // stash the whole set by picking at aggregation time. For now take the
    // cheapest and remember alternatives via table_paths.
    const AccessPath& p = cheapest(0);
    final_entry.valid = true;
    final_entry.rows = p.rows;
    final_entry.cost = p.cost;
    final_entry.plan = p.node->Clone();
    final_entry.order_cols = p.order_cols;
    final_entry.single_table = 0;
  } else {
    const size_t full = (1u << n) - 1;
    const bool use_dp = n <= kDpTableLimit;
    std::vector<DpEntry> dp;
    if (use_dp) dp.resize(1u << n);

    auto join_step = [&](const DpEntry& left, uint32_t left_mask, size_t t,
                         DpEntry* out) {
      // Connecting equality join atoms.
      std::vector<int> connecting;
      for (int a : q.join_atoms) {
        const BoundAtom& atom = q.atoms[static_cast<size_t>(a)];
        uint32_t lbit = 1u << atom.table;
        uint32_t rbit = 1u << atom.rhs_table;
        uint32_t tbit = 1u << t;
        if (((left_mask & lbit) != 0 && rbit == tbit) ||
            ((left_mask & rbit) != 0 && lbit == tbit)) {
          connecting.push_back(a);
        }
      }
      double join_sel = 1.0;
      for (int a : connecting) join_sel *= est.JoinSelectivity(a);

      const AccessPath& right = cheapest(t);
      double out_rows =
          std::max(0.01, left.rows * right.rows * join_sel);

      // Hash join: build on the smaller input.
      {
        bool build_left = left.rows <= right.rows;
        double build_rows = build_left ? left.rows : right.rows;
        double probe_rows = build_left ? right.rows : left.rows;
        double build_bytes =
            build_left ? RowBytesOf(q, left_mask) : RowBytesOf(q, 1u << t);
        double cost = left.cost + right.cost +
                      cm_.HashJoinCost(build_rows, probe_rows, build_bytes);
        if (!out->valid || cost < out->cost) {
          auto node = std::make_unique<PlanNode>();
          node->op = PlanOp::kHashJoin;
          node->join_atoms = connecting;
          node->est_rows = out_rows;
          node->est_cost = cost;
          if (build_left) {
            node->children.push_back(left.plan->Clone());
            node->children.push_back(right.node->Clone());
          } else {
            node->children.push_back(right.node->Clone());
            node->children.push_back(left.plan->Clone());
          }
          out->valid = true;
          out->rows = out_rows;
          out->cost = cost;
          out->plan = std::move(node);
          out->order_cols.clear();
          out->single_table = -1;
        }
      }

      // Index nested-loop join (inner = new table) on one eq join atom.
      for (int a : connecting) {
        auto inner = InnerSeekPath(q, est, config, static_cast<int>(t), a);
        if (!inner.has_value()) continue;
        double cost = left.cost + cm_.NestLoopCost(left.rows, inner->cost);
        if (cost < out->cost || !out->valid) {
          auto node = std::make_unique<PlanNode>();
          node->op = PlanOp::kNestLoopJoin;
          node->join_atoms = connecting;
          node->est_rows = out_rows;
          node->est_cost = cost;
          node->children.push_back(left.plan->Clone());
          node->children.push_back(inner->node->Clone());
          out->valid = true;
          out->rows = out_rows;
          out->cost = cost;
          out->plan = std::move(node);
          out->order_cols.clear();
          out->single_table = -1;
        }
      }

      // Merge join: both sides single-table paths already ordered on the
      // join columns.
      if (left.single_table >= 0 && connecting.size() == 1) {
        const BoundAtom& atom =
            q.atoms[static_cast<size_t>(connecting[0])];
        int lcol = atom.table == left.single_table ? atom.column
                                                   : atom.rhs_column;
        int rcol =
            atom.table == static_cast<int>(t) ? atom.column : atom.rhs_column;
        if (!left.order_cols.empty() && left.order_cols[0] == lcol) {
          for (const AccessPath& rp : table_paths[t]) {
            if (rp.order_cols.empty() || rp.order_cols[0] != rcol) continue;
            double cost = left.cost + rp.cost +
                          cm_.MergeJoinCost(left.rows, rp.rows);
            if (cost < out->cost || !out->valid) {
              auto node = std::make_unique<PlanNode>();
              node->op = PlanOp::kMergeJoin;
              node->join_atoms = connecting;
              node->est_rows = out_rows;
              node->est_cost = cost;
              node->children.push_back(left.plan->Clone());
              node->children.push_back(rp.node->Clone());
              out->valid = true;
              out->rows = out_rows;
              out->cost = cost;
              out->plan = std::move(node);
              out->order_cols.clear();
              out->single_table = -1;
            }
          }
        }
      }
    };

    if (use_dp) {
      for (size_t t = 0; t < n; ++t) {
        DpEntry& e = dp[1u << t];
        const AccessPath& p = cheapest(t);
        e.valid = true;
        e.rows = p.rows;
        e.cost = p.cost;
        e.plan = p.node->Clone();
        e.order_cols = p.order_cols;
        e.single_table = static_cast<int>(t);
      }
      for (uint32_t mask = 1; mask <= full; ++mask) {
        if (!dp[mask].valid) continue;
        // Prefer connected extensions; allow cartesian only when no table
        // connects.
        bool any_connected = false;
        for (size_t t = 0; t < n; ++t) {
          if ((mask & (1u << t)) != 0) continue;
          for (int a : q.join_atoms) {
            const BoundAtom& atom = q.atoms[static_cast<size_t>(a)];
            uint32_t tb = 1u << t;
            if (((1u << atom.table) == tb &&
                 (mask & (1u << atom.rhs_table)) != 0) ||
                ((1u << atom.rhs_table) == tb &&
                 (mask & (1u << atom.table)) != 0)) {
              any_connected = true;
              break;
            }
          }
          if (any_connected) break;
        }
        for (size_t t = 0; t < n; ++t) {
          if ((mask & (1u << t)) != 0) continue;
          if (any_connected) {
            bool connected = false;
            for (int a : q.join_atoms) {
              const BoundAtom& atom = q.atoms[static_cast<size_t>(a)];
              uint32_t tb = 1u << t;
              if (((1u << atom.table) == tb &&
                   (mask & (1u << atom.rhs_table)) != 0) ||
                  ((1u << atom.rhs_table) == tb &&
                   (mask & (1u << atom.table)) != 0)) {
                connected = true;
                break;
              }
            }
            if (!connected) continue;
          }
          join_step(dp[mask], mask, t, &dp[mask | (1u << t)]);
        }
      }
      final_entry = std::move(dp[full]);
    } else {
      // Greedy left-deep chain: start from the smallest table, repeatedly
      // join the connected table with the smallest output.
      std::vector<bool> used(n, false);
      size_t start = 0;
      for (size_t t = 1; t < n; ++t) {
        if (cheapest(t).rows < cheapest(start).rows) start = t;
      }
      DpEntry cur;
      const AccessPath& sp = cheapest(start);
      cur.valid = true;
      cur.rows = sp.rows;
      cur.cost = sp.cost;
      cur.plan = sp.node->Clone();
      cur.order_cols = sp.order_cols;
      cur.single_table = static_cast<int>(start);
      used[start] = true;
      uint32_t mask = 1u << start;
      for (size_t step = 1; step < n; ++step) {
        DpEntry best_next;
        size_t best_t = n;
        for (size_t t = 0; t < n; ++t) {
          if (used[t]) continue;
          DpEntry cand;
          join_step(cur, mask, t, &cand);
          if (cand.valid && (best_t == n || cand.cost < best_next.cost)) {
            best_next = std::move(cand);
            best_t = t;
          }
        }
        if (best_t == n) {
          return Status::Internal("greedy join ordering failed");
        }
        cur = std::move(best_next);
        used[best_t] = true;
        mask |= 1u << best_t;
      }
      final_entry = std::move(cur);
    }
  }

  if (!final_entry.valid) {
    return Status::Internal("join enumeration produced no plan");
  }

  double rows = final_entry.rows;
  double cost = final_entry.cost;
  PlanNodePtr root = std::move(final_entry.plan);

  // Post-join cross-table comparisons.
  if (!q.post_join_atoms.empty()) {
    for (int a : q.post_join_atoms) {
      root->atoms.push_back(a);
      rows *= kPostJoinCompareSelectivity;
    }
    cost += cm_.FilterCost(rows);
    root->est_rows = rows;
    root->est_cost = cost;
  }

  const sql::SelectStatement& stmt = *q.stmt;
  bool has_aggs = stmt.HasAggregates();
  std::vector<int> order_cols = final_entry.order_cols;
  int single_table = final_entry.single_table;

  // Aggregation.
  if (!q.group_by.empty() || has_aggs) {
    double groups =
        q.group_by.empty() ? 1.0 : est.GroupCardinality(q.group_by, rows);
    bool stream = false;
    if (!q.group_by.empty() && single_table >= 0) {
      std::vector<int> gcols;
      bool all_single = true;
      for (const auto& [t, c] : q.group_by) {
        if (t != single_table) {
          all_single = false;
          break;
        }
        gcols.push_back(c);
      }
      stream = all_single && CoversAsSetPrefix(order_cols, gcols);
      // A better single-table path might enable streaming: revisit paths.
      if (!stream && all_single) {
        for (const AccessPath& p : table_paths[static_cast<size_t>(
                 single_table)]) {
          if (!CoversAsSetPrefix(p.order_cols, gcols)) continue;
          double stream_cost = p.cost + cm_.StreamAggCost(p.rows);
          double hash_cost = cost + cm_.HashAggCost(rows, groups);
          if (stream_cost < hash_cost) {
            root = p.node->Clone();
            rows = p.rows;
            cost = p.cost;
            order_cols = p.order_cols;
            stream = true;
          }
          break;
        }
      }
    } else if (q.group_by.empty()) {
      stream = true;  // scalar aggregate
    }
    auto agg = std::make_unique<PlanNode>();
    agg->op = stream ? PlanOp::kStreamAggregate : PlanOp::kHashAggregate;
    cost += stream ? cm_.StreamAggCost(rows) : cm_.HashAggCost(rows, groups);
    rows = groups;
    agg->est_rows = rows;
    agg->est_cost = cost;
    agg->children.push_back(std::move(root));
    root = std::move(agg);
    if (!stream) order_cols.clear();
    // Grouped output ordering: stream agg preserves it.
    if (stream && q.group_by.empty()) order_cols.clear();
  } else if (stmt.distinct) {
    // DISTINCT == grouping on the output columns.
    std::vector<std::pair<int, int>> cols;
    for (const auto& item : stmt.items) {
      if (item.expr == nullptr) continue;
      std::vector<sql::ColumnRef> refs;
      item.expr->CollectColumns(&refs);
      for (const auto& ref : refs) {
        auto rc = ResolveColumnRef(ref, q);
        if (rc.ok()) cols.push_back(*rc);
      }
    }
    double groups = est.GroupCardinality(cols, rows);
    auto agg = std::make_unique<PlanNode>();
    agg->op = PlanOp::kHashAggregate;
    cost += cm_.HashAggCost(rows, groups);
    rows = groups;
    agg->est_rows = rows;
    agg->est_cost = cost;
    agg->children.push_back(std::move(root));
    root = std::move(agg);
    order_cols.clear();
  }

  // ORDER BY.
  if (!stmt.order_by.empty()) {
    bool satisfied = false;
    if (single_table >= 0 && root->op != PlanOp::kHashAggregate) {
      std::vector<int> ocols;
      bool all_single = true;
      bool all_asc = true;
      for (const auto& o : q.order_by) {
        if (o.table != single_table) all_single = false;
        if (!o.ascending) all_asc = false;
        ocols.push_back(o.column);
      }
      satisfied = all_single && all_asc && IsOrderedPrefix(order_cols, ocols);
    }
    if (!satisfied) {
      auto sort = std::make_unique<PlanNode>();
      sort->op = PlanOp::kSort;
      cost += cm_.SortCost(rows, RowBytesOf(q, (1u << q.tables.size()) - 1));
      sort->est_rows = rows;
      sort->est_cost = cost;
      sort->children.push_back(std::move(root));
      root = std::move(sort);
    }
  }

  // TOP.
  if (stmt.top >= 0) {
    auto top = std::make_unique<PlanNode>();
    top->op = PlanOp::kTop;
    rows = std::min(rows, static_cast<double>(stmt.top));
    cost += 0.01;
    top->est_rows = rows;
    top->est_cost = cost;
    top->children.push_back(std::move(root));
    root = std::move(top);
  }

  // Materialized-view alternative: whole-query replacement.
  auto view_alt = BestViewPlan(q, est, config);
  if (view_alt.has_value()) {
    double vcost = view_alt->cost;
    double vrows = view_alt->rows;
    PlanNodePtr vroot = std::move(view_alt->node);
    if (!stmt.order_by.empty()) {
      auto sort = std::make_unique<PlanNode>();
      sort->op = PlanOp::kSort;
      vcost += cm_.SortCost(vrows, 64);
      sort->est_rows = vrows;
      sort->est_cost = vcost;
      sort->children.push_back(std::move(vroot));
      vroot = std::move(sort);
    }
    if (stmt.top >= 0) {
      auto top = std::make_unique<PlanNode>();
      top->op = PlanOp::kTop;
      vrows = std::min(vrows, static_cast<double>(stmt.top));
      vcost += 0.01;
      top->est_rows = vrows;
      top->est_cost = vcost;
      top->children.push_back(std::move(vroot));
      vroot = std::move(top);
    }
    if (vcost < cost) {
      root = std::move(vroot);
      cost = vcost;
      rows = vrows;
    }
  }

  QueryPlan out;
  out.bound = std::move(q);
  out.root = std::move(root);
  out.cost = cost;
  return out;
}

Result<Optimizer::QueryPlan> Optimizer::OptimizeSelect(
    const sql::SelectStatement& stmt,
    const catalog::Configuration& config) const {
  auto bound = BindSelect(stmt, catalog_);
  if (!bound.ok()) return bound.status();
  return PlanQueryBlock(std::move(bound).value(), config);
}

// --------------------------------------------------------------------------
// DML costing
// --------------------------------------------------------------------------

namespace {

// Columns of `table` referenced by a view definition (by bound analysis).
std::vector<int> ViewColumnsOfTable(const BoundQuery& vq,
                                    const catalog::TableSchema& table) {
  for (size_t t = 0; t < vq.tables.size(); ++t) {
    if (vq.tables[t].schema == &table ||
        vq.tables[t].schema->name() == table.name()) {
      return vq.referenced_columns[t];
    }
  }
  return {};
}

}  // namespace

Result<double> Optimizer::CostDml(const sql::Statement& stmt,
                                  const catalog::Configuration& config) const {
  auto bound = BindDml(stmt, catalog_);
  if (!bound.ok()) return bound.status();
  const BoundDml& dml = *bound;
  const catalog::TableSchema& table = *dml.table;
  double table_bytes = static_cast<double>(table.DataBytes());

  double cost = 0;
  double affected = 0;

  if (dml.kind == sql::StatementKind::kInsert) {
    affected = static_cast<double>(std::max<size_t>(1, dml.rows_inserted));
    // Base row write (heap or clustered).
    cost += affected * cm_.IndexInsertCost(table_bytes);
  } else {
    // Locate the affected rows: optimize a synthetic single-table SELECT
    // with the same predicates (indexes get credit for cheap location).
    sql::SelectStatement locate;
    sql::TableRef tr;
    tr.table = table.name();
    locate.from.push_back(tr);
    for (const sql::Predicate* p : dml.filters) {
      locate.where.push_back(*p);
    }
    if (dml.filters.empty()) {
      locate.select_star = true;
    } else {
      for (const sql::Predicate* p : dml.filters) {
        sql::SelectItem item;
        item.expr = sql::Expr::Column(p->column);
        locate.items.push_back(std::move(item));
      }
    }
    auto plan = OptimizeSelect(locate, config);
    if (!plan.ok()) return plan.status();
    affected = std::max(1.0, plan->root->est_rows);
    cost += plan->cost;
    // Touch each affected base row.
    cost += affected * cm_.hardware().rand_page_ms *
            cm_.IoDiscount(table_bytes);
  }

  // Index maintenance.
  for (const catalog::IndexDef* ix : config.IndexesOnTable(table.name())) {
    double ix_bytes = static_cast<double>(ix->LeafPages(table)) * PageBytes();
    switch (dml.kind) {
      case sql::StatementKind::kInsert:
        cost += affected * cm_.IndexInsertCost(ix_bytes);
        break;
      case sql::StatementKind::kDelete:
        cost += affected * cm_.IndexDeleteCost(ix_bytes);
        break;
      case sql::StatementKind::kUpdate: {
        bool touched = false;
        for (int c : dml.updated_columns) {
          if (ix->ContainsColumn(table.column(c).name)) {
            touched = true;
            break;
          }
        }
        // Updating the partitioning column moves rows across partitions.
        if (!touched && ix->partitioning.has_value()) {
          for (int c : dml.updated_columns) {
            if (EqualsIgnoreCase(ix->partitioning->column,
                                 table.column(c).name)) {
              touched = true;
              break;
            }
          }
        }
        if (touched) {
          cost += affected *
                  (cm_.IndexDeleteCost(ix_bytes) + cm_.IndexInsertCost(ix_bytes));
        }
        break;
      }
      case sql::StatementKind::kSelect:
        break;
    }
  }

  // Materialized-view maintenance.
  for (const catalog::ViewDef* v : config.ViewsReferencing(table.name())) {
    bool touched = true;
    if (dml.kind == sql::StatementKind::kUpdate) {
      touched = false;
      const BoundQuery* vq = BoundView(*v);
      if (vq != nullptr) {
        std::vector<int> vcols = ViewColumnsOfTable(*vq, table);
        for (int c : dml.updated_columns) {
          if (std::find(vcols.begin(), vcols.end(), c) != vcols.end()) {
            touched = true;
            break;
          }
        }
      } else {
        touched = true;  // unknown definition: be conservative
      }
    }
    if (touched) {
      cost += cm_.ViewMaintenanceCost(
          affected, std::max(1.0, v->estimated_rows),
          static_cast<int>(v->referenced_tables.size()));
    }
  }

  return cost;
}

Result<double> Optimizer::CostStatement(
    const sql::Statement& stmt, const catalog::Configuration& config) const {
  if (m_statements_ != nullptr) m_statements_->Increment();
  if (stmt.is_select()) {
    auto plan = OptimizeSelect(stmt.select(), config);
    if (!plan.ok()) return plan.status();
    return plan->cost;
  }
  return CostDml(stmt, config);
}

}  // namespace dta::optimizer
