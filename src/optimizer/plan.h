// Physical plan tree produced by the optimizer and consumed by the executor.
//
// Plan nodes reference (do not own) index/view definitions inside the
// Configuration they were optimized against, and predicates inside the bound
// query: both must outlive the plan.

#ifndef DTA_OPTIMIZER_PLAN_H_
#define DTA_OPTIMIZER_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/physical_design.h"
#include "optimizer/bound_query.h"

namespace dta::optimizer {

enum class PlanOp {
  kTableScan,        // heap or clustered-index scan (with residual filters)
  kIndexSeek,        // seek on seek_atoms, residual atoms applied on rows
  kIndexScan,        // full leaf scan of a (covering) nonclustered index
  kViewScan,         // scan a materialized view (+ residual filters)
  kHashJoin,         // children: [build, probe]
  kMergeJoin,        // children already sorted on the join keys
  kNestLoopJoin,     // children: [outer, inner]; inner re-seeks per row
  kSort,
  kHashAggregate,
  kStreamAggregate,  // input sorted on the group columns
  kTop,
};

const char* PlanOpName(PlanOp op);

struct PlanNode;
using PlanNodePtr = std::unique_ptr<PlanNode>;

// Defined in view_matching.h; describes how a materialized view substitutes
// for (part of) a query, including column and aggregate mappings.
struct ViewMatchInfo;

struct PlanNode {
  PlanOp op = PlanOp::kTableScan;
  double est_rows = 0;   // output cardinality
  double est_cost = 0;   // cumulative cost including children

  // Scans.
  int table = -1;                              // BoundQuery table index
  const catalog::IndexDef* index = nullptr;    // kIndexSeek / kIndexScan
  const catalog::ViewDef* view = nullptr;      // kViewScan
  std::vector<int> seek_atoms;  // atoms used as B-tree seek bounds
  std::vector<int> atoms;       // residual predicate atoms applied here
  int partitions_touched = -1;  // >=0 when partition elimination applied
  bool needs_lookup = false;    // nonclustered seek that fetches base rows

  // Joins.
  std::vector<int> join_atoms;

  // Aggregation / sort: group and order specifications are taken from the
  // bound query (group_by / order_by); `view_reaggregate` marks aggregation
  // that re-aggregates pre-aggregated view output.
  bool view_reaggregate = false;
  // Set on kViewScan nodes (and propagated to the re-aggregation node):
  // column/aggregate mappings the executor needs.
  std::shared_ptr<const ViewMatchInfo> view_match;

  std::vector<PlanNodePtr> children;

  PlanNodePtr Clone() const;

  // One-line-per-node indented description (for reports and tests), e.g.
  //   HashJoin (rows=120, cost=85.2)
  //     IndexSeek lineitem ix:lineitem:k=l_shipdate (rows=5000, ...)
  std::string Describe(const BoundQuery& q, int indent = 0) const;

  // True if any node in the tree uses the structure with this canonical
  // name (index or view).
  bool UsesStructure(const std::string& canonical_name) const;
  // Collects canonical names of all indexes/views used in the tree.
  void CollectUsedStructures(std::vector<std::string>* out) const;
};

}  // namespace dta::optimizer

#endif  // DTA_OPTIMIZER_PLAN_H_
