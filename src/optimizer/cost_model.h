// Operator-level cost formulas. Costs are in abstract "optimizer cost
// units" calibrated to roughly milliseconds of elapsed time on the simulated
// hardware, so workload costs and execution durations are comparable.

#ifndef DTA_OPTIMIZER_COST_MODEL_H_
#define DTA_OPTIMIZER_COST_MODEL_H_

#include "optimizer/hardware.h"

namespace dta::optimizer {

class CostModel {
 public:
  explicit CostModel(const HardwareParams& hw) : hw_(hw) {}

  const HardwareParams& hardware() const { return hw_; }

  // Degree of parallelism credited for an operator over `rows` input rows.
  double Dop(double rows) const;

  // Multiplier applied to I/O cost given the working-set size: data that
  // fits comfortably in memory is mostly cached.
  double IoDiscount(double bytes) const;

  // Sequential scan of `pages` pages producing `rows` rows (`bytes` = size
  // of the scanned object, for cache modeling).
  double ScanCost(double pages, double rows, double bytes) const;

  // B-tree seek: descent + `leaf_pages` sequential leaf pages +
  // `lookup_rows` random row lookups into the base table of `table_bytes`.
  // `partitions` > 1 adds per-partition descent overhead.
  double SeekCost(double leaf_pages, double matched_rows, double lookup_rows,
                  double object_bytes, double table_bytes,
                  int partitions = 1) const;

  double SortCost(double rows, double row_bytes) const;
  double HashJoinCost(double build_rows, double probe_rows,
                      double build_row_bytes) const;
  double MergeJoinCost(double left_rows, double right_rows) const;
  // Per-outer-row cost is supplied by the caller (inner seek cost).
  double NestLoopCost(double outer_rows, double inner_cost_per_probe) const;
  double HashAggCost(double rows, double groups) const;
  double StreamAggCost(double rows) const;
  double FilterCost(double rows) const;

  // DML maintenance primitives.
  double IndexInsertCost(double table_bytes) const;   // one row into an index
  double IndexDeleteCost(double table_bytes) const;
  double ViewMaintenanceCost(double delta_rows, double view_rows,
                             int joined_tables) const;

 private:
  HardwareParams hw_;
};

}  // namespace dta::optimizer

#endif  // DTA_OPTIMIZER_COST_MODEL_H_
