#include "optimizer/view_matching.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "common/strings.h"

namespace dta::optimizer {

namespace {

// Canonical identity of a bound column: "schematable.column".
std::string ColId(const BoundQuery& q, int table, int column) {
  return q.tables[static_cast<size_t>(table)].schema->name() + "." +
         q.ColumnName(table, column);
}

// Canonical string of an expression with all column refs resolved to
// schema-table names (so exprs from different queries compare structurally).
// Returns empty string when a reference fails to resolve.
std::string CanonicalExpr(const sql::Expr& e, const BoundQuery& q) {
  switch (e.kind) {
    case sql::Expr::Kind::kConst:
      return e.value.ToSqlLiteral();
    case sql::Expr::Kind::kColumn: {
      auto rc = ResolveColumnRef(e.column, q);
      if (!rc.ok()) return "";
      return ColId(q, rc->first, rc->second);
    }
    case sql::Expr::Kind::kBinary: {
      std::string l = CanonicalExpr(*e.left, q);
      std::string r = CanonicalExpr(*e.right, q);
      if (l.empty() || r.empty()) return "";
      const char* op = e.op == sql::BinaryOp::kAdd   ? "+"
                       : e.op == sql::BinaryOp::kSub ? "-"
                       : e.op == sql::BinaryOp::kMul ? "*"
                                                     : "/";
      return "(" + l + op + r + ")";
    }
    case sql::Expr::Kind::kAggregate: {
      std::string arg = e.left != nullptr ? CanonicalExpr(*e.left, q) : "*";
      if (arg.empty()) return "";
      const char* fn = e.agg == sql::AggFunc::kCount ? "COUNT"
                       : e.agg == sql::AggFunc::kSum ? "SUM"
                       : e.agg == sql::AggFunc::kAvg ? "AVG"
                       : e.agg == sql::AggFunc::kMin ? "MIN"
                                                     : "MAX";
      return std::string(fn) + (e.distinct ? "{D}" : "") + "(" + arg + ")";
    }
  }
  return "";
}

// Closed/open range over one column; eq renders as [v, v].
struct AtomRange {
  std::optional<sql::Value> lo, hi;
  bool lo_incl = true, hi_incl = true;
  bool valid = false;
};

AtomRange RangeOf(const sql::Predicate& p) {
  AtomRange r;
  if (p.kind == sql::Predicate::Kind::kCompare) {
    switch (p.op) {
      case sql::CompareOp::kEq:
        r = {p.value, p.value, true, true, true};
        break;
      case sql::CompareOp::kLt:
        r = {std::nullopt, p.value, true, false, true};
        break;
      case sql::CompareOp::kLe:
        r = {std::nullopt, p.value, true, true, true};
        break;
      case sql::CompareOp::kGt:
        r = {p.value, std::nullopt, false, true, true};
        break;
      case sql::CompareOp::kGe:
        r = {p.value, std::nullopt, true, true, true};
        break;
      default:
        break;
    }
  } else if (p.kind == sql::Predicate::Kind::kBetween) {
    r = {p.low, p.high, true, true, true};
  }
  return r;
}

// True when `inner` range is contained in `outer`.
bool RangeContained(const AtomRange& inner, const AtomRange& outer) {
  if (!inner.valid || !outer.valid) return false;
  if (outer.lo.has_value()) {
    if (!inner.lo.has_value()) return false;
    int c = inner.lo->Compare(*outer.lo);
    if (c < 0) return false;
    if (c == 0 && inner.lo_incl && !outer.lo_incl) return false;
  }
  if (outer.hi.has_value()) {
    if (!inner.hi.has_value()) return false;
    int c = inner.hi->Compare(*outer.hi);
    if (c > 0) return false;
    if (c == 0 && inner.hi_incl && !outer.hi_incl) return false;
  }
  return true;
}

// Exact structural equality of two predicates on an already-matched column.
bool SamePredicate(const sql::Predicate& a, const sql::Predicate& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case sql::Predicate::Kind::kCompare:
      return a.op == b.op && a.value.Compare(b.value) == 0;
    case sql::Predicate::Kind::kBetween:
      return a.low.Compare(b.low) == 0 && a.high.Compare(b.high) == 0;
    case sql::Predicate::Kind::kIn: {
      if (a.in_list.size() != b.in_list.size()) return false;
      for (size_t i = 0; i < a.in_list.size(); ++i) {
        if (a.in_list[i].Compare(b.in_list[i]) != 0) return false;
      }
      return true;
    }
    case sql::Predicate::Kind::kLike:
      return a.like_pattern == b.like_pattern;
    case sql::Predicate::Kind::kColumnCompare:
      return a.op == b.op;
  }
  return false;
}

}  // namespace

std::optional<ViewMatchInfo> MatchView(const BoundQuery& q,
                                       const BoundQuery& vq,
                                       const catalog::ViewDef& view) {
  if (q.stmt->distinct) return std::nullopt;
  if (vq.stmt->distinct || vq.stmt->top >= 0 || !vq.stmt->order_by.empty()) {
    return std::nullopt;
  }
  if (q.stmt->select_star || vq.stmt->select_star) return std::nullopt;

  // --- Table sets must match exactly (no self-joins on either side).
  std::map<std::string, int> q_by_name, v_by_name;
  for (size_t i = 0; i < q.tables.size(); ++i) {
    if (!q_by_name.emplace(q.tables[i].schema->name(), i).second) {
      return std::nullopt;
    }
  }
  for (size_t i = 0; i < vq.tables.size(); ++i) {
    if (!v_by_name.emplace(vq.tables[i].schema->name(), i).second) {
      return std::nullopt;
    }
  }
  if (q_by_name.size() != v_by_name.size()) return std::nullopt;
  for (const auto& [name, vi] : v_by_name) {
    if (q_by_name.count(name) == 0) return std::nullopt;
  }

  // --- Join graphs must be identical (as sets of column-name pairs).
  auto join_set = [](const BoundQuery& bq) {
    std::set<std::string> out;
    for (int a : bq.join_atoms) {
      const BoundAtom& atom = bq.atoms[static_cast<size_t>(a)];
      std::string l = ColId(bq, atom.table, atom.column);
      std::string r = ColId(bq, atom.rhs_table, atom.rhs_column);
      if (r < l) std::swap(l, r);
      out.insert(l + "=" + r);
    }
    return out;
  };
  if (join_set(q) != join_set(vq)) return std::nullopt;

  // --- Filters.
  ViewMatchInfo info;
  info.view = &view;
  std::set<size_t> exactly_matched_q;
  // Every view filter must be matched or subsumed by the query's filters,
  // otherwise the view excludes rows the query needs.
  for (size_t va = 0; va < vq.atoms.size(); ++va) {
    const BoundAtom& vatom = vq.atoms[va];
    if (vatom.IsJoin()) continue;
    std::string vcol = ColId(vq, vatom.table, vatom.column);
    bool satisfied = false;
    for (size_t qa = 0; qa < q.atoms.size(); ++qa) {
      const BoundAtom& qatom = q.atoms[qa];
      if (qatom.IsJoin()) continue;
      if (ColId(q, qatom.table, qatom.column) != vcol) continue;
      if (SamePredicate(*qatom.pred, *vatom.pred)) {
        satisfied = true;
        exactly_matched_q.insert(qa);
        break;
      }
      if (RangeContained(RangeOf(*qatom.pred), RangeOf(*vatom.pred))) {
        satisfied = true;  // the (tighter) q atom becomes a residual
        break;
      }
    }
    if (!satisfied) return std::nullopt;
  }
  // Remaining q filters are residuals.
  for (size_t qa = 0; qa < q.atoms.size(); ++qa) {
    if (q.atoms[qa].IsJoin()) continue;
    if (exactly_matched_q.count(qa) > 0) continue;
    info.residual_atoms.push_back(static_cast<int>(qa));
  }

  // --- Column map from view output (plain-column select items only).
  for (size_t i = 0; i < vq.stmt->items.size(); ++i) {
    const sql::Expr* e = vq.stmt->items[i].expr.get();
    if (e == nullptr || e->kind != sql::Expr::Kind::kColumn) continue;
    auto rc = ResolveColumnRef(e->column, vq);
    if (!rc.ok()) return std::nullopt;
    const std::string& tname =
        vq.tables[static_cast<size_t>(rc->first)].schema->name();
    int q_table = q_by_name.at(tname);
    info.column_map[{q_table, rc->second}] = static_cast<int>(i);
  }

  auto col_available = [&info](int table, int column) {
    return info.column_map.count({table, column}) > 0;
  };

  // Residual predicate columns must be available.
  for (int ra : info.residual_atoms) {
    const BoundAtom& atom = q.atoms[static_cast<size_t>(ra)];
    if (!col_available(atom.table, atom.column)) return std::nullopt;
    if (atom.rhs_table >= 0 && !col_available(atom.rhs_table,
                                              atom.rhs_column)) {
      return std::nullopt;
    }
  }
  // Group-by and order-by columns must be available.
  for (const auto& [t, c] : q.group_by) {
    if (!col_available(t, c)) return std::nullopt;
  }
  for (const auto& o : q.order_by) {
    if (!col_available(o.table, o.column)) return std::nullopt;
  }

  info.view_has_groupby = !vq.group_by.empty();
  bool q_has_aggs = q.stmt->HasAggregates();
  info.reaggregate = q_has_aggs || !q.group_by.empty();

  if (info.view_has_groupby) {
    // An aggregated view cannot answer a plain SPJ query.
    if (!q_has_aggs && q.group_by.empty()) return std::nullopt;
    // The query's group columns must be among the view's group columns
    // (available in column_map is necessary; also check membership in Gv).
    std::set<std::string> gv;
    for (const auto& [t, c] : vq.group_by) gv.insert(ColId(vq, t, c));
    for (const auto& [t, c] : q.group_by) {
      if (gv.count(ColId(q, t, c)) == 0) return std::nullopt;
    }
    // Map aggregate items onto view aggregate outputs.
    // Precompute canonical strings of view items.
    std::vector<std::string> v_item_canon(vq.stmt->items.size());
    for (size_t i = 0; i < vq.stmt->items.size(); ++i) {
      if (vq.stmt->items[i].expr != nullptr) {
        v_item_canon[i] = CanonicalExpr(*vq.stmt->items[i].expr, vq);
      }
    }
    auto find_view_item = [&](const std::string& canon) {
      for (size_t i = 0; i < v_item_canon.size(); ++i) {
        if (!canon.empty() && v_item_canon[i] == canon) {
          return static_cast<int>(i);
        }
      }
      return -1;
    };
    for (const auto& item : q.stmt->items) {
      const sql::Expr* e = item.expr.get();
      if (e == nullptr) return std::nullopt;
      ViewMatchInfo::ItemSource src;
      if (e->kind == sql::Expr::Kind::kAggregate) {
        if (e->distinct) return std::nullopt;  // COUNT(DISTINCT) not foldable
        std::string canon = CanonicalExpr(*e, q);
        if (canon.empty()) return std::nullopt;
        if (e->agg == sql::AggFunc::kAvg) {
          // AVG(x) = SUM(sum_x) / SUM(count) from the view.
          std::string arg = CanonicalExpr(*e->left, q);
          int sum_col = find_view_item("SUM(" + arg + ")");
          int cnt_col = find_view_item("COUNT(*)");
          if (sum_col < 0 || cnt_col < 0) return std::nullopt;
          src.avg_sum_col = sum_col;
          src.avg_cnt_col = cnt_col;
        } else {
          int vi = find_view_item(canon);
          if (vi < 0) return std::nullopt;
          src.view_col = vi;
          switch (e->agg) {
            case sql::AggFunc::kCount:
            case sql::AggFunc::kSum:
              src.fold = sql::AggFunc::kSum;
              break;
            case sql::AggFunc::kMin:
              src.fold = sql::AggFunc::kMin;
              break;
            case sql::AggFunc::kMax:
              src.fold = sql::AggFunc::kMax;
              break;
            default:
              return std::nullopt;
          }
        }
      } else {
        // Non-aggregate item: every referenced column must be available.
        std::vector<sql::ColumnRef> refs;
        e->CollectColumns(&refs);
        for (const auto& ref : refs) {
          auto rc = ResolveColumnRef(ref, q);
          if (!rc.ok() || !col_available(rc->first, rc->second)) {
            return std::nullopt;
          }
        }
        src.compute_from_columns = true;
      }
      info.item_sources.push_back(src);
    }
  } else {
    // SPJ view: every item is computed from mapped columns.
    for (const auto& item : q.stmt->items) {
      const sql::Expr* e = item.expr.get();
      if (e == nullptr) return std::nullopt;
      if (e->kind == sql::Expr::Kind::kAggregate && e->distinct) {
        return std::nullopt;
      }
      std::vector<sql::ColumnRef> refs;
      e->CollectColumns(&refs);
      for (const auto& ref : refs) {
        auto rc = ResolveColumnRef(ref, q);
        if (!rc.ok() || !col_available(rc->first, rc->second)) {
          return std::nullopt;
        }
      }
      ViewMatchInfo::ItemSource src;
      src.compute_from_columns = true;
      info.item_sources.push_back(src);
    }
  }
  return info;
}

}  // namespace dta::optimizer
