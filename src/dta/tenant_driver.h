// Fleet-scale multi-tenant tuning driver.
//
// A tuning fleet serves many databases at once: each tenant brings its own
// workload, storage budget, and deadline, and the what-if costing capacity
// they draw on is shared. This driver runs N independent TuningSessions
// concurrently — one thread per tenant — with:
//
//   * per-tenant constraints: each TenantSpec carries its own TuningOptions
//     (storage_bytes, time_limit_ms, shards, fault spec, ...);
//   * admission control: an AdmissionController bounds the combined
//     concurrent what-if calls across tenants (and per tenant), dispatching
//     waiting tenants weighted-fair so one greedy workload cannot starve
//     the rest;
//   * per-tenant metrics namespaces: every session profiles into a private
//     MetricsRegistry, merged serially after the tenant threads join into
//     the shared registry under "tenant.<name>." — so the merged export is
//     deterministic whenever each tenant's is.
//
// Isolation contract: tenants share *capacity*, never *state*. Each tenant
// tunes its own server (its own catalog, statistics, cost caches, and —
// when sharded — its own replica fleet), so admission control only delays
// calls, never changes what any call returns. Recommendations for every
// tenant are therefore byte-identical at any (threads x shards x tenants)
// combination, with or without injected fail-slow faults: the same
// argument as the shard router's (routing and scheduling choose *when and
// where* work runs, never *what* it computes), applied one level up.

#ifndef DTA_DTA_TENANT_DRIVER_H_
#define DTA_DTA_TENANT_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "dta/cost_service.h"
#include "dta/stream/continuous.h"
#include "dta/tuning_session.h"
#include "server/server.h"
#include "workload/workload.h"

namespace dta::tuner {

// Bounds concurrent what-if calls across tenants. Each tenant registers
// once; every real what-if call its session makes passes through
// Acquire/Release (via AdmittedBackend below). When more calls contend than
// `total_capacity` admits, waiting tenants are dispatched weighted-fair:
// the eligible waiter with the smallest virtual time (admitted calls /
// weight) goes first, so a tenant with twice the weight gets twice the
// calls under sustained contention — and a light tenant is never starved
// behind a heavy one.
class AdmissionController {
 public:
  struct Options {
    // Combined concurrent what-if calls across all tenants. Clamped to
    // >= 1.
    int total_capacity = 8;
    // Concurrent what-if calls any one tenant may hold. Clamped to
    // [1, total_capacity].
    int per_tenant_capacity = 4;
  };

  explicit AdmissionController(Options options);

  // Registers a tenant and returns its id (dense, registration order).
  // `weight` must be > 0 (clamped to a small positive floor otherwise).
  // Not thread-safe against Acquire/Release — register every tenant before
  // the sessions start.
  int RegisterTenant(const std::string& name, double weight) EXCLUDES(mu_);

  // Blocks until the tenant may start one what-if call. Fairness is decided
  // at admission time among the tenants *currently waiting*.
  void Acquire(int tenant) EXCLUDES(mu_);
  void Release(int tenant) EXCLUDES(mu_);

  const Options& options() const { return options_; }
  size_t tenant_count() const EXCLUDES(mu_);
  // Calls the tenant was admitted for (== its real backend calls).
  size_t admitted(int tenant) const EXCLUDES(mu_);
  // Peak combined in-flight calls (never exceeds total_capacity).
  size_t peak_inflight() const EXCLUDES(mu_);
  // Times an Acquire had to wait. Scheduling-dependent: surfaced for tests
  // and reports, never exported as a metric.
  size_t waits() const EXCLUDES(mu_);

 private:
  struct Tenant {
    std::string name;
    double weight = 1;
    int inflight GUARDED_BY(mu_) = 0;
    int waiting GUARDED_BY(mu_) = 0;
    size_t admitted GUARDED_BY(mu_) = 0;
    // Weighted-fair virtual time: admitted / weight. The eligible waiter
    // with the smallest vtime is admitted first (ties: lowest tenant id).
    double vtime GUARDED_BY(mu_) = 0;
  };

  // True when `tenant` may be admitted right now: capacity free, under its
  // per-tenant cap, and no eligible waiter is ahead of it in vtime order.
  bool CanAdmit(int tenant) const REQUIRES(mu_);

  Options options_;
  mutable Mutex mu_;
  CondVar cv_;
  std::vector<std::unique_ptr<Tenant>> tenants_ GUARDED_BY(mu_);
  int total_inflight_ GUARDED_BY(mu_) = 0;
  size_t peak_inflight_ GUARDED_BY(mu_) = 0;
  size_t waits_ GUARDED_BY(mu_) = 0;
};

// CostBackend decorator: every call a tenant's CostService makes to the
// real backend (single server or shard router) first passes admission.
// Admission only delays the call — the inner backend still decides where it
// runs and what it returns — so wrapping preserves the backend determinism
// contract verbatim.
class AdmittedBackend : public CostBackend {
 public:
  AdmittedBackend(CostBackend* inner, AdmissionController* admission,
                  int tenant)
      : inner_(inner), admission_(admission), tenant_(tenant) {}

  Result<server::Server::WhatIfResult> WhatIfCost(
      const WhatIfCall& call) override {
    admission_->Acquire(tenant_);
    auto r = inner_->WhatIfCost(call);
    admission_->Release(tenant_);
    return r;
  }

  server::Server* primary() const override { return inner_->primary(); }

 private:
  CostBackend* inner_;
  AdmissionController* admission_;
  int tenant_;
};

// One tenant's tuning job: its name (metrics namespace and report label),
// its workload, its options (constraints, topology, faults), and its
// admission weight.
struct TenantSpec {
  std::string name;
  const workload::Workload* workload = nullptr;
  TuningOptions options;
  double weight = 1;
};

struct TenantOutcome {
  std::string name;
  Status status;        // the session's terminal status
  TuningResult result;  // valid only when status is ok
};

struct TenantDriverOptions {
  AdmissionController::Options admission;
  // Shared registry the per-tenant namespaces merge into (optional).
  MetricsRegistry* metrics = nullptr;
  // Observability clock handed to every session (null = real monotonic
  // clock; tests inject a FakeClock for byte-stable exports).
  const Clock* clock = nullptr;
};

// Continuous-service parameters shared by every tenant of a RunContinuous
// fleet: the capture every tenant ingests, the retune cadence, and the
// stream-state bounds (see dta/stream/continuous.h for semantics).
struct ContinuousFleetSpec {
  std::string capture;   // full capture text, fed to every tenant
  std::string feedback;  // feedback file contents (consumed before feeding)
  size_t retune_interval_events = 0;
  double retune_interval_ms = 0;
  size_t max_templates = 256;
  double decay = 1.0;
  uint64_t quarantine_rounds = 3;
  // When non-empty, tenant `name` checkpoints (and resumes from) the delta
  // log at "<prefix>.tenant.<name>" — per-tenant logs, never shared.
  std::string checkpoint_prefix;
  size_t compact_threshold_bytes = 256 * 1024;
};

struct ContinuousTenantOutcome {
  std::string name;
  Status status;  // the service's terminal status
  std::string delta_text;
  uint64_t rounds = 0;
  bool resumed = false;
  catalog::Configuration recommendation;
};

// Runs every tenant's session concurrently and returns their outcomes in
// tenant order. `servers[i]` is tenant i's production server; tenants and
// servers must align. A tenant whose session fails reports its status in
// its outcome — one sick tenant never aborts the fleet.
class TenantDriver {
 public:
  explicit TenantDriver(TenantDriverOptions options)
      : options_(options) {}

  Result<std::vector<TenantOutcome>> Run(
      const std::vector<TenantSpec>& tenants,
      const std::vector<server::Server*>& servers);

  // Continuous-service mode: every tenant runs its own ContinuousTuner over
  // the same capture stream, against its own server, under the shared
  // admission controller — one thread per tenant, per-round parallelism
  // inside each tenant's sessions. TenantSpec::workload is ignored (the
  // capture IS the workload); everything else (options, weight, name)
  // applies as in Run. The isolation argument carries over verbatim: each
  // tenant's per-round delta text is byte-identical to a standalone
  // ContinuousTuner run at any (threads x shards x tenants) combination.
  Result<std::vector<ContinuousTenantOutcome>> RunContinuous(
      const std::vector<TenantSpec>& tenants,
      const std::vector<server::Server*>& servers,
      const ContinuousFleetSpec& fleet);

  // Admission accounting of the last Run (valid until the next Run).
  size_t admission_waits() const { return admission_waits_; }
  size_t admission_peak_inflight() const { return admission_peak_; }

 private:
  // Shared validation and admission wiring for Run/RunContinuous.
  Status ValidateTenants(const std::vector<TenantSpec>& tenants,
                         const std::vector<server::Server*>& servers,
                         bool require_workloads) const;

  TenantDriverOptions options_;
  size_t admission_waits_ = 0;
  size_t admission_peak_ = 0;
};

}  // namespace dta::tuner

#endif  // DTA_DTA_TENANT_DRIVER_H_
