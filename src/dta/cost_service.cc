#include "dta/cost_service.h"

#include <algorithm>

#include "common/strings.h"

namespace dta::tuner {

namespace {

std::set<std::string> TablesOf(const sql::Statement& stmt) {
  std::set<std::string> out;
  switch (stmt.kind()) {
    case sql::StatementKind::kSelect:
      for (const auto& tr : stmt.select().from) {
        out.insert(ToLower(tr.table));
      }
      break;
    case sql::StatementKind::kInsert:
      out.insert(ToLower(stmt.insert().table));
      break;
    case sql::StatementKind::kUpdate:
      out.insert(ToLower(stmt.update().table));
      break;
    case sql::StatementKind::kDelete:
      out.insert(ToLower(stmt.del().table));
      break;
  }
  return out;
}

}  // namespace

CostService::CostService(server::Server* server,
                         const optimizer::HardwareParams* simulate_hardware,
                         const workload::Workload* workload)
    : server_(server),
      simulate_hardware_(simulate_hardware),
      workload_(workload) {
  statement_tables_.reserve(workload->size());
  for (const auto& ws : workload->statements()) {
    statement_tables_.push_back(TablesOf(ws.stmt));
  }
  cache_.resize(workload->size());
}

std::string CostService::RelevantFingerprint(
    size_t index, const catalog::Configuration& config) const {
  const std::set<std::string>& tables = statement_tables_[index];
  std::vector<std::string> parts;
  for (const auto& ix : config.indexes()) {
    if (tables.count(ToLower(ix.table)) > 0) {
      parts.push_back(ix.CanonicalName());
    }
  }
  for (const auto& v : config.views()) {
    for (const auto& t : v.referenced_tables) {
      if (tables.count(ToLower(t)) > 0) {
        parts.push_back(v.CanonicalName());
        break;
      }
    }
  }
  for (const auto& [table, scheme] : config.table_partitioning()) {
    if (tables.count(table) > 0) {
      parts.push_back("tp:" + table + ":" + scheme.CanonicalString());
    }
  }
  std::sort(parts.begin(), parts.end());
  return StrJoin(parts, "|");
}

Result<double> CostService::StatementCost(
    size_t index, const catalog::Configuration& config) {
  std::string fp = RelevantFingerprint(index, config);
  auto& cache = cache_[index];
  auto it = cache.find(fp);
  if (it != cache.end()) {
    ++hits_;
    return it->second;
  }
  auto r = server_->WhatIfCost(workload_->statements()[index].stmt, config,
                               simulate_hardware_);
  ++calls_;
  if (!r.ok()) return r.status();
  for (const auto& key : r->missing_stats) missing_.insert(key);
  cache.emplace(std::move(fp), r->cost);
  return r->cost;
}

Result<double> CostService::WorkloadCost(
    const catalog::Configuration& config) {
  double total = 0;
  for (size_t i = 0; i < workload_->size(); ++i) {
    auto c = StatementCost(i, config);
    if (!c.ok()) return c.status();
    total += *c * workload_->statements()[i].weight;
  }
  return total;
}

void CostService::ClearCache() {
  for (auto& c : cache_) c.clear();
}

}  // namespace dta::tuner
