#include "dta/cost_service.h"

#include <algorithm>

#include "common/strings.h"

namespace dta::tuner {

namespace {

std::set<std::string> TablesOf(const sql::Statement& stmt) {
  std::set<std::string> out;
  switch (stmt.kind()) {
    case sql::StatementKind::kSelect:
      for (const auto& tr : stmt.select().from) {
        out.insert(ToLower(tr.table));
      }
      break;
    case sql::StatementKind::kInsert:
      out.insert(ToLower(stmt.insert().table));
      break;
    case sql::StatementKind::kUpdate:
      out.insert(ToLower(stmt.update().table));
      break;
    case sql::StatementKind::kDelete:
      out.insert(ToLower(stmt.del().table));
      break;
  }
  return out;
}

}  // namespace

CostService::CostService(server::Server* server,
                         const optimizer::HardwareParams* simulate_hardware,
                         const workload::Workload* workload)
    : server_(server),
      simulate_hardware_(simulate_hardware),
      workload_(workload) {
  statement_tables_.reserve(workload->size());
  for (const auto& ws : workload->statements()) {
    statement_tables_.push_back(TablesOf(ws.stmt));
  }
  shards_.reserve(workload->size());
  for (size_t i = 0; i < workload->size(); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string CostService::RelevantFingerprint(
    size_t index, const catalog::Configuration& config) const {
  const std::set<std::string>& tables = statement_tables_[index];
  std::vector<std::string> parts;
  for (const auto& ix : config.indexes()) {
    if (tables.count(ToLower(ix.table)) > 0) {
      parts.push_back(ix.CanonicalName());
    }
  }
  for (const auto& v : config.views()) {
    for (const auto& t : v.referenced_tables) {
      if (tables.count(ToLower(t)) > 0) {
        parts.push_back(v.CanonicalName());
        break;
      }
    }
  }
  for (const auto& [table, scheme] : config.table_partitioning()) {
    if (tables.count(table) > 0) {
      parts.push_back("tp:" + table + ":" + scheme.CanonicalString());
    }
  }
  std::sort(parts.begin(), parts.end());
  return StrJoin(parts, "|");
}

Result<double> CostService::StatementCost(
    size_t index, const catalog::Configuration& config) {
  std::string fp = RelevantFingerprint(index, config);
  Shard& shard = *shards_[index];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.cache.find(fp);
    if (it != shard.cache.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Cache miss: price outside the lock (the what-if call dominates; holding
  // the shard lock across it would serialize enumeration).
  auto r = server_->WhatIfCost(workload_->statements()[index].stmt, config,
                               simulate_hardware_);
  calls_.fetch_add(1, std::memory_order_relaxed);
  if (!r.ok()) return r.status();
  if (!r->missing_stats.empty()) {
    std::lock_guard<std::mutex> lock(missing_mu_);
    for (const auto& key : r->missing_stats) missing_.insert(key);
  }
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.cache.emplace(std::move(fp), r->cost);
  }
  return r->cost;
}

Result<double> CostService::WorkloadCost(const catalog::Configuration& config,
                                         ThreadPool* pool) {
  const size_t n = workload_->size();
  std::vector<double> costs(n, 0.0);
  std::vector<Status> statuses(n);
  ParallelFor(pool, n, [&](size_t i) {
    auto c = StatementCost(i, config);
    if (!c.ok()) {
      statuses[i] = c.status();
      return;
    }
    costs[i] = *c;
  });
  // Serial reduction in statement order: the total is bit-identical no
  // matter how many threads priced the statements.
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!statuses[i].ok()) return statuses[i];
    total += costs[i] * workload_->statements()[i].weight;
  }
  return total;
}

std::set<stats::StatsKey> CostService::missing_stats() const {
  std::lock_guard<std::mutex> lock(missing_mu_);
  return missing_;
}

void CostService::ClearMissingStats() {
  std::lock_guard<std::mutex> lock(missing_mu_);
  missing_.clear();
}

void CostService::ClearCache() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->cache.clear();
  }
}

}  // namespace dta::tuner
