#include "dta/cost_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/hash.h"
#include "common/strings.h"
#include "optimizer/heuristic_cost.h"

namespace dta::tuner {

namespace {

std::set<std::string> TablesOf(const sql::Statement& stmt) {
  std::set<std::string> out;
  switch (stmt.kind()) {
    case sql::StatementKind::kSelect:
      for (const auto& tr : stmt.select().from) {
        out.insert(ToLower(tr.table));
      }
      break;
    case sql::StatementKind::kInsert:
      out.insert(ToLower(stmt.insert().table));
      break;
    case sql::StatementKind::kUpdate:
      out.insert(ToLower(stmt.update().table));
      break;
    case sql::StatementKind::kDelete:
      out.insert(ToLower(stmt.del().table));
      break;
  }
  return out;
}

// [-1, 1) from a 64-bit hash, for deterministic backoff jitter.
double HashToSignedUnit(uint64_t h) {
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h ^= h >> 31;
  return static_cast<double>(h >> 11) * (2.0 / 9007199254740992.0) - 1.0;
}

}  // namespace

CostService::CostService(server::Server* server,
                         const optimizer::HardwareParams* simulate_hardware,
                         const workload::Workload* workload, Config config)
    : owned_backend_(std::make_unique<SingleServerBackend>(server)),
      backend_(owned_backend_.get()),
      simulate_hardware_(simulate_hardware),
      workload_(workload),
      config_(std::move(config)) {
  Init();
}

CostService::CostService(CostBackend* backend,
                         const optimizer::HardwareParams* simulate_hardware,
                         const workload::Workload* workload, Config config)
    : backend_(backend),
      simulate_hardware_(simulate_hardware),
      workload_(workload),
      config_(std::move(config)) {
  Init();
}

void CostService::Init() {
  clock_ = config_.clock != nullptr ? config_.clock
                                    : MonotonicClock::Instance();
  if (config_.metrics != nullptr) {
    MetricsRegistry* m = config_.metrics;
    m_lookups_ = m->GetCounter("whatif.lookups");
    m_hits_ = m->GetCounter("whatif.cache_hits");
    m_calls_ = m->GetCounter("whatif.calls");
    m_retries_ = m->GetCounter("whatif.retries");
    m_degraded_ = m->GetCounter("whatif.degraded_calls");
    m_latency_ = m->GetHistogram("whatif.latency_ms");
    m_simulated_ = m->GetHistogram("whatif.simulated_ms");
    m_attempts_ = m->GetHistogram("whatif.attempts");
    if (config_.derived.enabled) {
      m_derived_ = m->GetCounter("whatif.derived_answers");
      m_fallbacks_ = m->GetCounter("whatif.derivation_fallbacks");
      m_saved_ = m->GetCounter("whatif.calls_saved");
      if (config_.derived.exact) {
        m_derivation_error_ = m->GetHistogram("derivation.error_pct");
      }
    }
  }
  statement_tables_.reserve(workload_->size());
  for (const auto& ws : workload_->statements()) {
    statement_tables_.push_back(TablesOf(ws.stmt));
  }
  shards_.reserve(workload_->size());
  for (size_t i = 0; i < workload_->size(); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

// Allocation-light twin of CollectRelevant + FingerprintOf
// (dta/derived_cost.cc): lookups (cache hits included) run this on every
// call, so it builds part strings without copying structure definitions.
// The relevance conditions must stay identical to CollectRelevant's — the
// derived path decomposes exactly the structures fingerprinted here.
std::string CostService::RelevantFingerprint(
    size_t index, const catalog::Configuration& config) const {
  const std::set<std::string>& tables = statement_tables_[index];
  std::vector<std::string> parts;
  for (const auto& ix : config.indexes()) {
    if (tables.count(ToLower(ix.table)) > 0) {
      parts.push_back(ix.CanonicalName());
    }
  }
  for (const auto& v : config.views()) {
    for (const auto& t : v.referenced_tables) {
      if (tables.count(ToLower(t)) > 0) {
        parts.push_back(v.CanonicalName());
        break;
      }
    }
  }
  for (const auto& [table, scheme] : config.table_partitioning()) {
    if (tables.count(table) > 0) {
      parts.push_back("tp:" + table + ":" + scheme.CanonicalString());
    }
  }
  std::sort(parts.begin(), parts.end());
  return StrJoin(parts, "|");
}

void CostService::RecordAttempts(int attempts) {
  size_t bucket = std::min<size_t>(static_cast<size_t>(attempts),
                                   kRetryHistogramBuckets) -
                  1;
  attempt_histogram_[bucket].fetch_add(1, std::memory_order_relaxed);
  if (m_attempts_ != nullptr) {
    m_attempts_->Observe(static_cast<double>(attempts));
  }
}

Result<CostService::Entry> CostService::PriceWithRetries(
    size_t index, const catalog::Configuration& config,
    const std::string& fingerprint) {
  const sql::Statement& stmt = workload_->statements()[index].stmt;
  // The fault key identifies the *logical* call — statement plus relevant
  // fingerprint — so injected outcomes are independent of which full
  // configuration races a given shard entry first and of the thread count.
  uint64_t fault_key = HashCombine(
      HashBytes(workload_->statements()[index].text), HashBytes(fingerprint));
  if (fault_key == 0) fault_key = 1;

  const RetryPolicy& retry = config_.retry;
  const int max_attempts = std::max(1, retry.max_attempts);
  calls_.fetch_add(1, std::memory_order_relaxed);
  if (m_calls_ != nullptr) m_calls_->Increment();
  WhatIfCall call;
  call.stmt = &stmt;
  call.text = &workload_->statements()[index].text;
  call.config = &config;
  call.simulate_hardware = simulate_hardware_;
  call.call_key = fault_key;
  Status last;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    auto r = backend_->WhatIfCost(call);
    if (r.ok()) {
      RecordAttempts(attempt);
      // The server's simulated optimization duration is deterministic in
      // the statement and configuration, so this histogram is identical
      // run-to-run even under a real wall clock.
      if (m_simulated_ != nullptr) m_simulated_->Observe(r->simulated_ms);
      if (!r->missing_stats.empty()) {
        MutexLock lock(missing_mu_);
        for (const auto& key : r->missing_stats) missing_.insert(key);
      }
      return Entry{r->cost, false};
    }
    last = r.status();
    if (!IsTransientCode(last.code())) {
      // Permanent: retrying is futile.
      RecordAttempts(attempt);
      break;
    }
    if (attempt == max_attempts) {
      RecordAttempts(attempt);
      break;
    }
    double backoff =
        std::min(retry.max_backoff_ms,
                 retry.initial_backoff_ms *
                     std::pow(retry.backoff_multiplier, attempt - 1));
    backoff *= 1.0 + retry.jitter_fraction *
                         HashToSignedUnit(HashCombine(
                             fault_key, static_cast<uint64_t>(attempt)));
    backoff = std::max(0.0, backoff);
    if (config_.remaining_ms != nullptr) {
      // Deadline-capped retries: never sleep past the session budget — a
      // retry we cannot afford is treated as exhausted.
      double remaining = config_.remaining_ms();
      if (remaining <= backoff) {
        RecordAttempts(attempt);
        last = Status::DeadlineExceeded(
            "session time budget exhausted while retrying what-if call");
        break;
      }
    }
    if (backoff > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff));
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (m_retries_ != nullptr) m_retries_->Increment();
  }

  if (!config_.degrade_on_failure) return last;
  // Graceful degradation: a configuration-independent heuristic estimate
  // stands in, and the statement is flagged for the report.
  degraded_.fetch_add(1, std::memory_order_relaxed);
  if (m_degraded_ != nullptr) m_degraded_->Increment();
  {
    MutexLock lock(degraded_mu_);
    degraded_statements_.insert(index);
  }
  const optimizer::HardwareParams& hw =
      simulate_hardware_ != nullptr ? *simulate_hardware_
                                    : backend_->primary()->hardware();
  double cost = optimizer::HeuristicStatementCost(
      stmt, backend_->primary()->catalog(), optimizer::CostModel(hw));
  return Entry{cost, true};
}

Result<double> CostService::StatementCost(
    size_t index, const catalog::Configuration& config) {
  auto entry = CachedEntry(index, config, /*allow_derive=*/true);
  if (!entry.ok()) return entry.status();
  return entry->cost;
}

Result<CostService::Entry> CostService::CachedEntry(
    size_t index, const catalog::Configuration& config, bool allow_derive) {
  if (m_lookups_ != nullptr) m_lookups_->Increment();
  std::string fp = RelevantFingerprint(index, config);
  Shard& shard = *shards_[index];
  {
    MutexLock lock(shard.mu);
    bool waited = false;
    for (;;) {
      auto it = shard.cache.find(fp);
      if (it != shard.cache.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (m_hits_ != nullptr) m_hits_->Increment();
        if (waited) dedup_waits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
      // First thread to miss claims the pricing; later arrivals wait for
      // the result instead of duplicating the what-if call, which keeps
      // whatif_calls() exact at any thread count.
      if (shard.inflight.insert(fp).second) break;
      waited = true;
      shard.cv.Wait(shard.mu);
    }
  }
  // Price outside the lock (the what-if call dominates; holding the shard
  // lock across it would serialize enumeration — and the derived path
  // re-enters CachedEntry for its atoms).
  const double t0 = clock_->NowMs();
  auto priced = PriceOrDerive(index, config, fp, allow_derive);
  if (m_latency_ != nullptr) m_latency_->Observe(clock_->NowMs() - t0);
  {
    MutexLock lock(shard.mu);
    shard.inflight.erase(fp);
    if (priced.ok()) shard.cache.emplace(std::move(fp), *priced);
    shard.cv.NotifyAll();
  }
  return priced;
}

Result<CostService::Entry> CostService::PriceOrDerive(
    size_t index, const catalog::Configuration& config,
    const std::string& fingerprint, bool allow_derive) {
  if (allow_derive && config_.derived.enabled) {
    const sql::Statement& stmt = workload_->statements()[index].stmt;
    RelevantSet relevant = CollectRelevant(statement_tables_[index], config);
    Decomposition decomp = DecomposeConfiguration(
        stmt.kind(), relevant, config_.derived.max_atoms);
    // The bounded singleton approximation is only worth pricing atoms for
    // when a nonzero error bound can admit its answer.
    const bool derivable =
        decomp.outcome == Decomposition::Outcome::kDerivable ||
        (decomp.outcome == Decomposition::Outcome::kTooManyAtoms &&
         config_.derived.error_bound_pct > 0);
    if (derivable) {
      // Price the atoms through the normal cached path (allow_derive off:
      // atoms decompose trivially, so this recursion is one level deep and
      // every atom lands in the cache priced exactly once per session).
      std::vector<double> atom_costs;
      atom_costs.reserve(decomp.atoms.size());
      bool degraded_atom = false;
      for (const auto& atom : decomp.atoms) {
        auto atom_entry = CachedEntry(index, atom, /*allow_derive=*/false);
        if (!atom_entry.ok()) return atom_entry.status();
        degraded_atom |= atom_entry->degraded;
        atom_costs.push_back(atom_entry->cost);
      }
      bool usable = !degraded_atom;
      if (usable && decomp.outcome == Decomposition::Outcome::kTooManyAtoms) {
        // Bounded singleton approximation: only admitted when its a-priori
        // error estimate fits under the configured bound.
        const double estimate = BoundedErrorEstimatePct(decomp, atom_costs);
        usable = estimate <= config_.derived.error_bound_pct;
      }
      if (usable) {
        const double derived_cost = CombineAtomCosts(atom_costs);
        derived_answers_.fetch_add(1, std::memory_order_relaxed);
        if (m_derived_ != nullptr) m_derived_->Increment();
        if (!config_.derived.exact) {
          calls_saved_.fetch_add(1, std::memory_order_relaxed);
          if (m_saved_ != nullptr) m_saved_->Increment();
          return Entry{derived_cost, false, true};
        }
        // Exact mode: make the real call anyway, record the derivation
        // error, and publish the real cost (the derivation is the thing
        // under test, not the answer).
        auto real = PriceWithRetries(index, config, fingerprint);
        if (!real.ok()) return real.status();
        double error_pct = 0;
        if (real->cost > 0) {
          error_pct = 100.0 * std::abs(derived_cost - real->cost) / real->cost;
        } else if (derived_cost != real->cost) {
          error_pct = 100.0;
        }
        if (m_derivation_error_ != nullptr) {
          m_derivation_error_->Observe(error_pct);
        }
        if (error_pct > config_.derived.error_bound_pct) {
          errors_exceeded_.fetch_add(1, std::memory_order_relaxed);
        }
        return *real;
      }
    }
    if (derivable ||
        decomp.outcome == Decomposition::Outcome::kTooManyAtoms ||
        decomp.outcome == Decomposition::Outcome::kUnsupportedStatement) {
      // A non-trivial variable set that derivation could not serve: the
      // real call below is a derivation fallback.
      derivation_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      if (m_fallbacks_ != nullptr) m_fallbacks_->Increment();
    }
  }
  return PriceWithRetries(index, config, fingerprint);
}

Result<double> CostService::WorkloadCost(const catalog::Configuration& config,
                                         ThreadPool* pool) {
  const size_t n = workload_->size();
  std::vector<double> costs(n, 0.0);
  std::vector<Status> statuses(n);
  ParallelFor(pool, n, [&](size_t i) {
    auto c = StatementCost(i, config);
    if (!c.ok()) {
      statuses[i] = c.status();
      return;
    }
    costs[i] = *c;
  });
  // Serial reduction in statement order: the total is bit-identical no
  // matter how many threads priced the statements.
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!statuses[i].ok()) return statuses[i];
    total += costs[i] * workload_->statements()[i].weight;
  }
  return total;
}

std::set<stats::StatsKey> CostService::missing_stats() const {
  MutexLock lock(missing_mu_);
  return missing_;
}

void CostService::ClearMissingStats() {
  MutexLock lock(missing_mu_);
  missing_.clear();
}

void CostService::SeedMissingStats(const std::set<stats::StatsKey>& keys) {
  MutexLock lock(missing_mu_);
  for (const auto& key : keys) missing_.insert(key);
}

std::set<size_t> CostService::degraded_statements() const {
  MutexLock lock(degraded_mu_);
  return degraded_statements_;
}

void CostService::SeedDegradedStatements(const std::set<size_t>& statements) {
  MutexLock lock(degraded_mu_);
  degraded_statements_.insert(statements.begin(), statements.end());
}

std::array<size_t, kRetryHistogramBuckets> CostService::retry_histogram()
    const {
  std::array<size_t, kRetryHistogramBuckets> out{};
  for (size_t i = 0; i < kRetryHistogramBuckets; ++i) {
    out[i] = attempt_histogram_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<CostService::CacheEntry> CostService::ExportCache() const {
  std::vector<CacheEntry> out;
  // Deterministic export order — shards in statement order, entries in the
  // shard map's (ordered) fingerprint order — so a checkpoint written from
  // the same cache state is byte-identical at any thread count.
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    MutexLock lock(shard.mu);
    for (const auto& [fp, entry] : shard.cache) {
      out.push_back(
          CacheEntry{i, fp, entry.cost, entry.degraded, entry.derived});
    }
  }
  return out;
}

void CostService::ImportCache(const std::vector<CacheEntry>& entries) {
  for (const auto& e : entries) {
    if (e.statement >= shards_.size()) continue;
    Shard& shard = *shards_[e.statement];
    MutexLock lock(shard.mu);
    shard.cache.insert_or_assign(e.fingerprint,
                                 Entry{e.cost, e.degraded, e.derived});
    if (e.degraded) {
      MutexLock dlock(degraded_mu_);
      degraded_statements_.insert(e.statement);
    }
  }
}

void CostService::ClearCache() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    shard.cache.clear();
  }
}

}  // namespace dta::tuner
