#include "dta/xml_schema.h"

#include <bit>
#include <cstdint>
#include <cstdlib>

#include "common/strings.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace dta::tuner {

namespace {

// Doubles render with human-friendly (lossy) formats in the display
// attributes; a bit-pattern companion attribute carries the exact value.
// Readers prefer the companion when present, so a configuration survives an
// XML round trip bit-exactly — the socket costing transport ships
// configurations this way, and a worker pricing a rounded EstimatedRows
// would return a subtly different cost than the in-process backend.
// Documents without the companion (hand-written, or from older versions)
// fall back to the display value.
std::string DoubleBits(double v) {
  return StrFormat("%llu",
                   static_cast<unsigned long long>(
                       std::bit_cast<uint64_t>(v)));
}
double DoubleFromBits(const std::string& bits, double fallback) {
  if (bits.empty()) return fallback;
  return std::bit_cast<double>(
      static_cast<uint64_t>(std::strtoull(bits.c_str(), nullptr, 10)));
}

void PartitioningToXml(const catalog::PartitionScheme& scheme,
                       xml::Element* parent) {
  xml::Element* p = parent->AddChild("Partitioning");
  p->SetAttr("Column", scheme.column);
  for (const auto& b : scheme.boundaries) {
    xml::Element* be = p->AddChild("Boundary");
    switch (b.type()) {
      case sql::ValueType::kInt:
        be->SetAttr("Type", "int");
        break;
      case sql::ValueType::kDouble:
        be->SetAttr("Type", "double");
        be->SetAttr("Bits", DoubleBits(b.AsDoubleStrict()));
        break;
      default:
        be->SetAttr("Type", "string");
        break;
    }
    be->set_text(b.ToDisplayString());
  }
}

Result<catalog::PartitionScheme> PartitioningFromXml(const xml::Element& p) {
  catalog::PartitionScheme scheme;
  scheme.column = ToLower(p.Attr("Column"));
  if (scheme.column.empty()) {
    return Status::InvalidArgument("Partitioning missing Column attribute");
  }
  for (const xml::Element* be : p.FindChildren("Boundary")) {
    const std::string& type = be->Attr("Type");
    if (type == "int") {
      scheme.boundaries.push_back(
          sql::Value::Int(std::strtoll(be->text().c_str(), nullptr, 10)));
    } else if (type == "double") {
      scheme.boundaries.push_back(sql::Value::Double(DoubleFromBits(
          be->Attr("Bits"), std::strtod(be->text().c_str(), nullptr))));
    } else {
      scheme.boundaries.push_back(sql::Value::String(be->text()));
    }
  }
  return scheme;
}

const char* BoolStr(bool b) { return b ? "true" : "false"; }
bool ParseBool(const std::string& s, bool fallback) {
  if (s.empty()) return fallback;
  return EqualsIgnoreCase(s, "true") || s == "1";
}

}  // namespace

xml::ElementPtr ConfigurationToXml(const catalog::Configuration& config) {
  auto root = std::make_unique<xml::Element>("Configuration");
  for (const auto& ix : config.indexes()) {
    xml::Element* e = root->AddChild("Index");
    if (!ix.database.empty()) e->SetAttr("Database", ix.database);
    e->SetAttr("Table", ix.table);
    e->SetAttr("Clustered", BoolStr(ix.clustered));
    if (ix.constraint_enforcing) e->SetAttr("ConstraintEnforcing", "true");
    for (const auto& k : ix.key_columns) e->AddTextChild("KeyColumn", k);
    for (const auto& c : ix.included_columns) {
      e->AddTextChild("IncludedColumn", c);
    }
    if (ix.partitioning.has_value()) PartitioningToXml(*ix.partitioning, e);
  }
  for (const auto& v : config.views()) {
    xml::Element* e = root->AddChild("View");
    e->SetAttr("EstimatedRows", StrFormat("%.2f", v.estimated_rows));
    e->SetAttr("EstimatedRowsBits", DoubleBits(v.estimated_rows));
    e->SetAttr("EstimatedRowBytes", StrFormat("%d", v.estimated_row_bytes));
    if (v.definition != nullptr) {
      e->AddTextChild("Definition", sql::ToSql(*v.definition));
    }
    for (const auto& ck : v.clustered_key) {
      e->AddTextChild("ClusteredKeyColumn", ck);
    }
    if (v.partitioning.has_value()) PartitioningToXml(*v.partitioning, e);
  }
  for (const auto& [table, scheme] : config.table_partitioning()) {
    xml::Element* e = root->AddChild("TablePartitioning");
    e->SetAttr("Table", table);
    PartitioningToXml(scheme, e);
  }
  return root;
}

Result<catalog::Configuration> ConfigurationFromXml(
    const xml::Element& elem) {
  catalog::Configuration config;
  for (const xml::Element* e : elem.FindChildren("Index")) {
    catalog::IndexDef ix;
    ix.database = ToLower(e->Attr("Database"));
    ix.table = ToLower(e->Attr("Table"));
    if (ix.table.empty()) {
      return Status::InvalidArgument("Index missing Table attribute");
    }
    ix.clustered = ParseBool(e->Attr("Clustered"), false);
    ix.constraint_enforcing =
        ParseBool(e->Attr("ConstraintEnforcing"), false);
    for (const xml::Element* k : e->FindChildren("KeyColumn")) {
      ix.key_columns.push_back(ToLower(k->text()));
    }
    for (const xml::Element* c : e->FindChildren("IncludedColumn")) {
      ix.included_columns.push_back(ToLower(c->text()));
    }
    if (ix.key_columns.empty()) {
      return Status::InvalidArgument("Index requires at least one KeyColumn");
    }
    const xml::Element* p = e->FindChild("Partitioning");
    if (p != nullptr) {
      auto scheme = PartitioningFromXml(*p);
      if (!scheme.ok()) return scheme.status();
      ix.partitioning = std::move(scheme).value();
    }
    DTA_RETURN_IF_ERROR(config.AddIndex(std::move(ix)));
  }
  for (const xml::Element* e : elem.FindChildren("View")) {
    catalog::ViewDef v;
    const std::string& def_text = e->ChildText("Definition");
    if (def_text.empty()) {
      return Status::InvalidArgument("View missing Definition");
    }
    auto parsed = sql::ParseStatement(def_text);
    if (!parsed.ok()) return parsed.status();
    if (!parsed->is_select()) {
      return Status::InvalidArgument("View definition must be a SELECT");
    }
    v.definition =
        std::make_shared<sql::SelectStatement>(parsed->select().Clone());
    for (const auto& tr : v.definition->from) {
      v.referenced_tables.push_back(ToLower(tr.table));
    }
    v.estimated_rows =
        DoubleFromBits(e->Attr("EstimatedRowsBits"),
                       std::strtod(e->Attr("EstimatedRows").c_str(), nullptr));
    int row_bytes = atoi(e->Attr("EstimatedRowBytes").c_str());
    if (row_bytes > 0) v.estimated_row_bytes = row_bytes;
    for (const xml::Element* ck : e->FindChildren("ClusteredKeyColumn")) {
      v.clustered_key.push_back(ToLower(ck->text()));
    }
    const xml::Element* p = e->FindChild("Partitioning");
    if (p != nullptr) {
      auto scheme = PartitioningFromXml(*p);
      if (!scheme.ok()) return scheme.status();
      v.partitioning = std::move(scheme).value();
    }
    DTA_RETURN_IF_ERROR(config.AddView(std::move(v)));
  }
  for (const xml::Element* e : elem.FindChildren("TablePartitioning")) {
    const std::string table = ToLower(e->Attr("Table"));
    const xml::Element* p = e->FindChild("Partitioning");
    if (table.empty() || p == nullptr) {
      return Status::InvalidArgument(
          "TablePartitioning requires Table and Partitioning");
    }
    auto scheme = PartitioningFromXml(*p);
    if (!scheme.ok()) return scheme.status();
    config.SetTablePartitioning(table, std::move(scheme).value());
  }
  return config;
}

namespace {

xml::ElementPtr TuningOptionsToXml(const TuningOptions& o) {
  auto e = std::make_unique<xml::Element>("TuningOptions");
  e->SetAttr("Indexes", BoolStr(o.tune_indexes));
  e->SetAttr("MaterializedViews", BoolStr(o.tune_materialized_views));
  e->SetAttr("Partitioning", BoolStr(o.tune_partitioning));
  e->SetAttr("Alignment", BoolStr(o.require_alignment));
  e->SetAttr("WorkloadCompression", BoolStr(o.workload_compression));
  e->SetAttr("ReducedStatistics", BoolStr(o.reduced_statistics));
  if (o.num_threads != 0) {
    e->SetAttr("Threads", StrFormat("%d", o.num_threads));
  }
  if (o.storage_bytes.has_value()) {
    e->SetAttr("StorageBytes",
               StrFormat("%llu",
                         static_cast<unsigned long long>(*o.storage_bytes)));
  }
  if (o.time_limit_ms.has_value()) {
    e->SetAttr("TimeLimitMs", StrFormat("%.0f", *o.time_limit_ms));
  }
  if (!o.fault_spec.empty()) e->SetAttr("FaultSpec", o.fault_spec);
  if (!o.derived_costing) e->SetAttr("DerivedCosting", BoolStr(false));
  if (o.exact_costing) e->SetAttr("ExactCosting", BoolStr(true));
  if (o.derivation_error_bound_pct != 0) {
    e->SetAttr("DerivationErrorBoundPct",
               StrFormat("%.4f", o.derivation_error_bound_pct));
  }
  if (o.user_specified.StructureCount() > 0 ||
      !o.user_specified.table_partitioning().empty()) {
    xml::Element* u = e->AddChild("UserSpecifiedConfiguration");
    auto cfg = ConfigurationToXml(o.user_specified);
    // Move children of the serialized configuration under the wrapper.
    u->AddChild(std::move(cfg));
  }
  return e;
}

Result<TuningOptions> TuningOptionsFromXml(const xml::Element& e) {
  TuningOptions o;
  o.tune_indexes = ParseBool(e.Attr("Indexes"), true);
  o.tune_materialized_views = ParseBool(e.Attr("MaterializedViews"), true);
  o.tune_partitioning = ParseBool(e.Attr("Partitioning"), true);
  o.require_alignment = ParseBool(e.Attr("Alignment"), false);
  o.workload_compression = ParseBool(e.Attr("WorkloadCompression"), true);
  o.reduced_statistics = ParseBool(e.Attr("ReducedStatistics"), true);
  if (e.HasAttr("Threads")) {
    o.num_threads = atoi(e.Attr("Threads").c_str());
  }
  if (e.HasAttr("StorageBytes")) {
    o.storage_bytes = strtoull(e.Attr("StorageBytes").c_str(), nullptr, 10);
  }
  if (e.HasAttr("TimeLimitMs")) {
    o.time_limit_ms = std::strtod(e.Attr("TimeLimitMs").c_str(), nullptr);
  }
  if (e.HasAttr("FaultSpec")) o.fault_spec = e.Attr("FaultSpec");
  o.derived_costing = ParseBool(e.Attr("DerivedCosting"), true);
  o.exact_costing = ParseBool(e.Attr("ExactCosting"), false);
  if (e.HasAttr("DerivationErrorBoundPct")) {
    o.derivation_error_bound_pct =
        std::strtod(e.Attr("DerivationErrorBoundPct").c_str(), nullptr);
  }
  const xml::Element* u = e.FindChild("UserSpecifiedConfiguration");
  if (u != nullptr) {
    const xml::Element* cfg = u->FindChild("Configuration");
    if (cfg != nullptr) {
      auto parsed = ConfigurationFromXml(*cfg);
      if (!parsed.ok()) return parsed.status();
      o.user_specified = std::move(parsed).value();
    }
  }
  return o;
}

xml::ElementPtr WorkloadToXml(const workload::Workload& w) {
  auto e = std::make_unique<xml::Element>("Workload");
  for (const auto& ws : w.statements()) {
    xml::Element* s = e->AddChild("Statement");
    if (ws.weight != 1.0) s->SetAttr("Weight", StrFormat("%.4f", ws.weight));
    s->set_text(ws.text);
  }
  return e;
}

Result<workload::Workload> WorkloadFromXml(const xml::Element& e) {
  workload::Workload w;
  for (const xml::Element* s : e.FindChildren("Statement")) {
    auto stmt = sql::ParseStatement(s->text());
    if (!stmt.ok()) return stmt.status();
    double weight = 1.0;
    if (s->HasAttr("Weight")) {
      weight = std::strtod(s->Attr("Weight").c_str(), nullptr);
    }
    w.Add(std::move(stmt).value(), weight);
  }
  return w;
}

xml::ElementPtr InputToXmlElement(const TuningInput& input) {
  auto in = std::make_unique<xml::Element>("Input");
  xml::Element* server = in->AddChild("Server");
  server->SetAttr("Name", input.server_name);
  in->AddChild(WorkloadToXml(input.workload));
  in->AddChild(TuningOptionsToXml(input.options));
  return in;
}

}  // namespace

std::string TuningInputToXml(const TuningInput& input) {
  xml::Element root("DTAXML");
  root.AddChild(InputToXmlElement(input));
  return root.ToString(/*prolog=*/true);
}

Result<TuningInput> TuningInputFromXml(const std::string& xml_text) {
  auto parsed = xml::Parse(xml_text);
  if (!parsed.ok()) return parsed.status();
  const xml::Element& root = **parsed;
  if (root.name() != "DTAXML") {
    return Status::InvalidArgument("not a DTAXML document");
  }
  const xml::Element* in = root.FindChild("Input");
  if (in == nullptr) {
    return Status::InvalidArgument("DTAXML missing <Input>");
  }
  TuningInput input;
  const xml::Element* server = in->FindChild("Server");
  if (server != nullptr) input.server_name = server->Attr("Name");
  const xml::Element* w = in->FindChild("Workload");
  if (w == nullptr) {
    return Status::InvalidArgument("DTAXML input missing <Workload>");
  }
  auto workload = WorkloadFromXml(*w);
  if (!workload.ok()) return workload.status();
  input.workload = std::move(workload).value();
  const xml::Element* opts = in->FindChild("TuningOptions");
  if (opts != nullptr) {
    auto parsed_opts = TuningOptionsFromXml(*opts);
    if (!parsed_opts.ok()) return parsed_opts.status();
    input.options = std::move(parsed_opts).value();
  }
  return input;
}

std::string TuningOutputToXml(const TuningInput& input,
                              const catalog::Configuration& recommendation,
                              const Report& report) {
  xml::Element root("DTAXML");
  root.AddChild(InputToXmlElement(input));
  xml::Element* out = root.AddChild("Output");
  out->AddChild(ConfigurationToXml(recommendation));
  out->AddChild(report.ToXml());
  return root.ToString(/*prolog=*/true);
}

Result<catalog::Configuration> RecommendationFromXml(
    const std::string& xml_text) {
  auto parsed = xml::Parse(xml_text);
  if (!parsed.ok()) return parsed.status();
  const xml::Element* out = (*parsed)->FindChild("Output");
  if (out == nullptr) {
    return Status::InvalidArgument("DTAXML missing <Output>");
  }
  const xml::Element* cfg = out->FindChild("Configuration");
  if (cfg == nullptr) {
    return Status::InvalidArgument("DTAXML output missing <Configuration>");
  }
  return ConfigurationFromXml(*cfg);
}

}  // namespace dta::tuner
