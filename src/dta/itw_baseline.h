// Baseline: a reimplementation of the previous-generation tool — the Index
// Tuning Wizard of SQL Server 2000 ([2], built on [3]/[8]) — used by the
// paper's end-to-end comparison (§7.6, Figures 4 and 5).
//
// Relative to DTA, ITW:
//   * tunes indexes and materialized views only (no partitioning);
//   * has no workload compression: every statement is tuned;
//   * has no column-group restriction and generates candidates eagerly
//     (more structures per statement, wider per-query search);
//   * creates candidate statistics naively (no reduced creation).
// These differences are exactly the paper's explanation for DTA's better
// running time at comparable (slightly better) quality.

#ifndef DTA_DTA_ITW_BASELINE_H_
#define DTA_DTA_ITW_BASELINE_H_

#include "dta/tuning_options.h"
#include "dta/tuning_session.h"

namespace dta::tuner {

// Options preset reproducing ITW's behaviour in this codebase.
TuningOptions ItwOptions();

// Runs an ITW-style tuning session.
Result<TuningResult> TuneWithItw(server::Server* production,
                                 const workload::Workload& workload);

}  // namespace dta::tuner

#endif  // DTA_DTA_ITW_BASELINE_H_
