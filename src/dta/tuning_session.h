// End-to-end tuning driver: the orchestration of Figure 1 of the paper.
//
//   workload -> [compression §5.1] -> current-cost pass -> column-group
//   restriction -> candidate generation + reduced statistics creation §5.2
//   -> per-statement candidate selection (Greedy(m,k)) -> merging ->
//   enumeration (Greedy(m,k), storage bound, alignment §4) -> recommendation
//   + report.
//
// When a test server is supplied (§5.3), metadata is imported from the
// production server, statistics are created on production and imported, and
// every what-if call runs on the test server while simulating the
// production server's hardware. Only statistics creation then loads the
// production server.

#ifndef DTA_DTA_TUNING_SESSION_H_
#define DTA_DTA_TUNING_SESSION_H_

#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "catalog/physical_design.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "dta/cost_service.h"
#include "dta/report.h"
#include "dta/tuning_options.h"
#include "server/server.h"
#include "stats/statistics.h"
#include "workload/compression.h"
#include "workload/workload.h"

namespace dta::rpc {
class SocketChannel;
}  // namespace dta::rpc

namespace dta::tuner {

class AdmissionController;

// Identity a session carries when it runs as one tenant of a multi-tenant
// fleet (dta/tenant_driver.h): its name and the shared admission controller
// every real what-if call must pass through. Default-constructed (null
// admission) means single-tenant — no admission, no behavioral change.
struct TenantContext {
  std::string name;
  AdmissionController* admission = nullptr;
  int tenant_id = 0;
};

struct TuningResult {
  catalog::Configuration recommendation;

  double current_cost = 0;      // workload cost under the current design
  double recommended_cost = 0;  // workload cost under the recommendation
  double ImprovementPercent() const {
    if (current_cost <= 0) return 0;
    return 100.0 * (current_cost - recommended_cost) / current_cost;
  }

  size_t events_total = 0;  // statements before compression
  size_t events_tuned = 0;  // statements actually tuned
  double tuning_time_ms = 0;
  bool hit_time_limit = false;

  size_t whatif_calls = 0;
  size_t enumeration_evaluations = 0;
  size_t candidates_generated = 0;

  // Fault-tolerance accounting (robustness layer): retried what-if
  // attempts, pricings degraded to the heuristic estimate, and — when a
  // fault injector was active — the faults it injected.
  size_t whatif_retries = 0;
  size_t degraded_calls = 0;
  size_t injected_transient_faults = 0;
  size_t injected_permanent_faults = 0;
  // Outage faults (node death / burst windows) across every attached
  // injector, shard injectors included.
  size_t injected_outage_faults = 0;
  // True when this run restored a checkpoint and skipped completed phases.
  bool resumed = false;

  // Observability accounting: cache efficacy of the what-if cost service,
  // cross-thread pricing deduplication (scheduling dependent — surfaced
  // here, never exported as a metric), and checkpoint I/O cost.
  size_t whatif_cache_hits = 0;
  size_t whatif_dedup_waits = 0;
  size_t checkpoint_writes = 0;
  double checkpoint_ms = 0;

  // Derived costing accounting (CoPhy combine rule, dta/derived_cost.h):
  // misses answered by derivation, misses that fell back to a real call
  // despite a non-trivial decomposition, real calls avoided (0 in exact
  // mode, where the real call is made to measure the derivation error), and
  // exact-mode derivations whose error exceeded the configured bound. All
  // pure functions of the lookup set: byte-identical at any thread or shard
  // count.
  size_t derived_answers = 0;
  size_t derivation_fallbacks = 0;
  size_t whatif_calls_saved = 0;
  size_t derivation_errors_exceeded = 0;

  // Distributed costing accounting (shards > 1): the router's view of the
  // session. shard_successes equals whatif_calls minus degraded pricings —
  // every logical pricing is answered by exactly one shard or degrades; no
  // call is lost or double-priced. shard_calls[i] counts the attempts
  // routed to shard i (failed attempts included).
  int shards_used = 1;
  size_t shard_successes = 0;
  size_t shard_failovers = 0;   // failed attempts rescued by another shard
  size_t shard_exhausted = 0;   // calls that failed on every shard
  size_t shard_queue_peak = 0;  // deepest per-shard (in-flight + waiting)
  // Times the fail-slow detector demoted a shard to probe-only routing
  // (0 unless shard_slow_threshold was set). Timing dependent, like the
  // failover counter: surfaced in the report, never in gated exports.
  size_t shard_slow_demotions = 0;
  std::vector<size_t> shard_calls;

  // Parallel costing accounting: threads applied to the fan-out phases,
  // their combined wall-clock, and the work they retired (summed per-task
  // time). work / wall ~ achieved parallel speedup of the costing phases.
  int threads_used = 1;
  double parallel_wall_ms = 0;
  double parallel_work_ms = 0;
  double ParallelSpeedup() const {
    return parallel_wall_ms > 0 ? parallel_work_ms / parallel_wall_ms : 1.0;
  }

  // Statistics creation accounting (experiment 7.5).
  size_t stats_requested = 0;  // what the naive strategy would create
  size_t stats_created = 0;
  double stats_creation_ms = 0;

  // Continuous-service accounting. seeded_cache_entries counts the entries a
  // pre-tuning SetSeedCache import contributed; quarantined_candidates
  // counts pool candidates removed by options.quarantined_structures. Both
  // pure functions of the inputs — byte-identical at any thread/shard count.
  size_t seeded_cache_entries = 0;
  size_t quarantined_candidates = 0;
  // Filled only under options.export_session_state: the final what-if cost
  // cache (deterministic ExportCache order) and the keys of every statistic
  // this run created, in creation order. The continuous tuner carries these
  // across rounds.
  std::vector<CostService::CacheEntry> final_cache;
  std::vector<stats::StatsKey> created_stats;

  workload::CompressionStats compression;
  Report report;
};

struct EvaluationResult {
  double current_cost = 0;
  double evaluated_cost = 0;
  double ChangePercent() const {
    if (current_cost <= 0) return 0;
    return 100.0 * (current_cost - evaluated_cost) / current_cost;
  }
  Report report;
};

class TuningSession {
 public:
  TuningSession(server::Server* production, TuningOptions options);

  // Enables the production/test server scenario. The test server must be
  // metadata-compatible; when its catalog is empty, metadata is imported
  // from the production server automatically.
  Status UseTestServer(server::Server* test);

  // Runs the full tuning pipeline.
  Result<TuningResult> Tune(const workload::Workload& workload);

  // Exploratory analysis (paper §6.3): costs the workload under a
  // user-provided configuration vs. the current one, without tuning.
  Result<EvaluationResult> EvaluateConfiguration(
      const workload::Workload& workload,
      const catalog::Configuration& config);

  const TuningOptions& options() const { return options_; }

  // Observability hookup (all optional, all nullable). When `metrics` is
  // set, the session registers pipeline counters there, attaches it to the
  // tuning server/optimizer/cost service for per-call profiling, and
  // detaches it from the server on every exit path. When `tracer` is set,
  // each pipeline phase runs under a DTA_TRACE_PHASE span (opened and
  // closed only from the session thread, so the span tree is deterministic
  // at any thread count). `clock` times phases and pricings; null means the
  // real monotonic clock — tests inject a FakeClock so every exported
  // duration is exactly zero and the observability JSON is byte-stable.
  struct Observability {
    MetricsRegistry* metrics = nullptr;
    Tracer* tracer = nullptr;
    const Clock* clock = nullptr;
  };
  void SetObservability(Observability obs) { obs_ = obs; }

  // Multi-tenant hookup: when a context with a non-null admission
  // controller is set, every real what-if call this session's cost backend
  // makes first acquires an admission slot (and releases it after).
  // Admission only delays calls — it never changes what any call returns —
  // so tenancy preserves the session's determinism contract.
  void SetTenantContext(TenantContext tenant) {
    tenant_ = std::move(tenant);
  }

  // Test hook: invoked after every successful checkpoint write with the
  // write's 1-based ordinal. A non-ok return aborts tuning with that status,
  // simulating a crash immediately after the checkpoint landed on disk —
  // the kill-at-every-checkpoint resume tests are built on this.
  using CheckpointProbe = std::function<Status(int ordinal)>;
  void SetCheckpointProbe(CheckpointProbe probe) {
    checkpoint_probe_ = std::move(probe);
  }

  // Continuous-service hookup: cache entries imported into the cost service
  // before tuning starts (after any resume restore, which takes precedence).
  // Entries must be keyed by this workload's statement indexes; entries
  // whose statement index is out of range are skipped, matching
  // CostService::ImportCache. The continuous tuner maps its cross-round
  // memo onto the round's workload and seeds it here so unchanged
  // statements re-price from the cache instead of the optimizer.
  void SetSeedCache(std::vector<CostService::CacheEntry> entries) {
    seed_cache_ = std::move(entries);
  }

 private:
  server::Server* TuningServer() {
    return test_ != nullptr ? test_ : production_;
  }
  // Creates statistics on the production server and, in test-server mode,
  // imports them into the test server. `replicas` (the sharded backend's
  // clone fleet, possibly empty) receive the same imports so every shard
  // keeps pricing with identical information; `channels` (the socket
  // transport's worker fleet, possibly empty) receive the equivalent
  // CreateStatistics RPC — statistics builds are deterministic in the data,
  // so the worker-built statistic matches the local one. Accumulates
  // counters and logs each key it created to `created_log` (checkpointing)
  // when non-null.
  Status CreateAndImportStats(const std::vector<stats::StatsKey>& keys,
                              const std::vector<server::Server*>& replicas,
                              const std::vector<rpc::SocketChannel*>& channels,
                              TuningResult* result,
                              std::vector<stats::StatsKey>* created_log);
  // Re-creates the statistics a checkpointed run had created (statistics
  // builds are deterministic in the data, so the rebuilt statistics match
  // the originals and the restored cost cache stays valid). Counts nothing:
  // the checkpoint carries the original run's counters.
  Status RestoreStats(const std::vector<stats::StatsKey>& keys,
                      const std::vector<server::Server*>& replicas,
                      const std::vector<rpc::SocketChannel*>& channels);
  // Base configuration: constraint-enforcing indexes of the current design
  // plus the user-specified configuration.
  Result<catalog::Configuration> BaseConfiguration() const;

  server::Server* production_;
  server::Server* test_ = nullptr;
  TuningOptions options_;
  CheckpointProbe checkpoint_probe_;
  Observability obs_;
  TenantContext tenant_;
  std::vector<CostService::CacheEntry> seed_cache_;
};

}  // namespace dta::tuner

#endif  // DTA_DTA_TUNING_SESSION_H_
