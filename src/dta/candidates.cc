#include "dta/candidates.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "optimizer/bound_query.h"

namespace dta::tuner {

Candidate Candidate::MakeIndex(catalog::IndexDef index,
                               const catalog::Catalog& catalog) {
  Candidate c;
  c.kind = Kind::kIndex;
  c.index = std::move(index);
  c.name = c.index.CanonicalName();
  auto resolved = catalog.ResolveTable(c.index.database, c.index.table);
  if (resolved.ok()) {
    c.bytes = c.index.EstimateBytes(*resolved->table);
  }
  return c;
}

Candidate Candidate::MakeView(catalog::ViewDef view) {
  Candidate c;
  c.kind = Kind::kView;
  c.view = std::move(view);
  c.name = c.view.CanonicalName();
  c.bytes = c.view.EstimateBytes();
  return c;
}

Candidate Candidate::MakePartitioning(std::string database, std::string table,
                                      catalog::PartitionScheme scheme) {
  Candidate c;
  c.kind = Kind::kTablePartitioning;
  c.database = ToLower(database);
  c.table = ToLower(table);
  c.scheme = std::move(scheme);
  c.name = "tp:" + c.table + ":" + c.scheme.CanonicalString();
  c.bytes = 0;  // repartitioning is non-redundant
  return c;
}

const std::string& Candidate::TargetTable() const {
  switch (kind) {
    case Kind::kIndex:
      return index.table;
    case Kind::kTablePartitioning:
      return table;
    case Kind::kView: {
      static const std::string kEmpty;
      return view.referenced_tables.empty() ? kEmpty
                                            : view.referenced_tables[0];
    }
  }
  static const std::string kEmpty;
  return kEmpty;
}

Status Candidate::ApplyTo(catalog::Configuration* config,
                          bool aligned) const {
  switch (kind) {
    case Kind::kIndex: {
      catalog::IndexDef ix = index;
      if (aligned) {
        const catalog::PartitionScheme* scheme =
            config->FindTablePartitioning(ix.table);
        // Lazy introduction of the aligned variant: the index inherits the
        // table's partitioning (or loses its own when the table has none).
        if (scheme != nullptr) {
          ix.partitioning = *scheme;
        } else {
          ix.partitioning.reset();
        }
      }
      return config->AddIndex(std::move(ix));
    }
    case Kind::kView:
      return config->AddView(view);
    case Kind::kTablePartitioning: {
      const catalog::PartitionScheme* existing =
          config->FindTablePartitioning(table);
      if (existing != nullptr) {
        return Status::AlreadyExists("table already partitioned: " + table);
      }
      config->SetTablePartitioning(table, scheme);
      if (aligned) {
        // Re-partition the table's indexes already in the configuration.
        std::vector<catalog::IndexDef> updated;
        for (const catalog::IndexDef* ix : config->IndexesOnTable(table)) {
          catalog::IndexDef copy = *ix;
          copy.partitioning = scheme;
          updated.push_back(std::move(copy));
        }
        for (const auto& ix : updated) {
          catalog::IndexDef original = ix;
          original.partitioning.reset();
          config->RemoveStructure(original.CanonicalName());
          // Re-add, ignoring duplicates (an identical aligned index may
          // already exist).
          Status s = config->AddIndex(ix);
          if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
        }
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unknown candidate kind");
}

namespace {

using optimizer::BoundQuery;

// Collects per-table candidate ingredients from a bound query.
struct TableIngredients {
  std::string database;
  std::string table;
  std::vector<std::string> eq_cols;     // equality / IN predicate columns
  std::vector<std::string> range_cols;  // range / LIKE predicate columns
  std::vector<std::string> join_cols;
  std::vector<std::string> group_cols;  // this table's GROUP BY columns
  std::vector<std::string> order_cols;
  std::vector<std::string> output_cols;  // all referenced columns
  uint64_t row_count = 0;
};

void PushUnique(std::vector<std::string>* v, const std::string& s) {
  if (std::find(v->begin(), v->end(), s) == v->end()) v->push_back(s);
}

std::vector<TableIngredients> CollectIngredients(const BoundQuery& q) {
  std::vector<TableIngredients> out(q.tables.size());
  for (size_t t = 0; t < q.tables.size(); ++t) {
    out[t].database = q.tables[t].database->name();
    out[t].table = q.tables[t].schema->name();
    out[t].row_count = q.tables[t].schema->row_count();
    for (int c : q.referenced_columns[t]) {
      out[t].output_cols.push_back(q.ColumnName(static_cast<int>(t), c));
    }
  }
  for (const auto& atom : q.atoms) {
    const std::string& col = q.ColumnName(atom.table, atom.column);
    auto& ing = out[static_cast<size_t>(atom.table)];
    if (atom.IsJoin()) {
      PushUnique(&ing.join_cols, col);
      PushUnique(&out[static_cast<size_t>(atom.rhs_table)].join_cols,
                 q.ColumnName(atom.rhs_table, atom.rhs_column));
      continue;
    }
    if (atom.rhs_table >= 0) continue;  // cross-column compare
    const sql::Predicate& p = *atom.pred;
    if (p.IsEquality() || p.kind == sql::Predicate::Kind::kIn) {
      PushUnique(&ing.eq_cols, col);
    } else if (p.IsRange() || p.kind == sql::Predicate::Kind::kLike) {
      PushUnique(&ing.range_cols, col);
    }
  }
  for (const auto& [t, c] : q.group_by) {
    PushUnique(&out[static_cast<size_t>(t)].group_cols, q.ColumnName(t, c));
  }
  for (const auto& o : q.order_by) {
    PushUnique(&out[static_cast<size_t>(o.table)].order_cols,
               q.ColumnName(o.table, o.column));
  }
  return out;
}

// Builds an index candidate if its key passes the interesting-group filter.
void TryAddIndex(const TableIngredients& ing,
                 const std::vector<std::string>& key,
                 const std::vector<std::string>& includes, bool clustered,
                 const InterestingColumnGroups& groups,
                 const catalog::Catalog& catalog, std::set<std::string>* seen,
                 std::vector<Candidate>* out) {
  if (key.empty()) return;
  // Reject keys with repeated columns (composed variants can collide).
  for (size_t i = 0; i < key.size(); ++i) {
    for (size_t j = i + 1; j < key.size(); ++j) {
      if (EqualsIgnoreCase(key[i], key[j])) return;
    }
  }
  // Keys must form an interesting column-group.
  if (!groups.Contains(ing.database, ing.table, key)) return;
  catalog::IndexDef ix;
  ix.database = ing.database;
  ix.table = ing.table;
  ix.key_columns = key;
  ix.clustered = clustered;
  if (!clustered) {
    for (const auto& c : includes) {
      if (std::find(key.begin(), key.end(), c) == key.end()) {
        ix.included_columns.push_back(c);
      }
    }
  }
  Candidate cand = Candidate::MakeIndex(std::move(ix), catalog);
  if (seen->insert(cand.name).second) out->push_back(std::move(cand));
}

// Proposes a range-partitioning scheme over `column` using equi-fraction
// histogram boundaries.
std::optional<catalog::PartitionScheme> ProposeScheme(
    const StatsFetcher& fetch, const std::string& database,
    const std::string& table, const std::string& column, int max_boundaries) {
  auto stats = fetch(stats::StatsKey(database, table, {column}));
  if (!stats.ok()) return std::nullopt;
  const stats::Histogram& h = (*stats)->histogram;
  if (h.empty() || h.distinct_count() < 4) return std::nullopt;
  catalog::PartitionScheme scheme;
  scheme.column = column;
  int parts = std::min<int>(max_boundaries + 1,
                            static_cast<int>(h.distinct_count()));
  for (int i = 1; i < parts; ++i) {
    sql::Value b = h.ValueAtFraction(static_cast<double>(i) / parts);
    if (scheme.boundaries.empty() ||
        scheme.boundaries.back().Compare(b) < 0) {
      scheme.boundaries.push_back(std::move(b));
    }
  }
  if (scheme.boundaries.empty()) return std::nullopt;
  return scheme;
}

// Materialized-view candidates for a bound SELECT.
void AddViewCandidates(const sql::SelectStatement& stmt, const BoundQuery& q,
                       server::Server* server, bool prefer_general,
                       std::set<std::string>* seen,
                       std::vector<Candidate>* out) {
  if (stmt.select_star || stmt.distinct) return;
  bool has_group = !stmt.group_by.empty();
  bool has_aggs = stmt.HasAggregates();
  bool is_join = stmt.from.size() >= 2;
  if (!has_group && !has_aggs && !is_join) return;
  // Aggregates with DISTINCT cannot be folded from a view.
  for (const auto& item : stmt.items) {
    if (item.expr != nullptr && item.expr->IsAggregate() &&
        item.expr->distinct) {
      return;
    }
  }

  auto estimate_and_emit = [&](sql::SelectStatement def) {
    catalog::ViewDef v;
    v.definition =
        std::make_shared<sql::SelectStatement>(std::move(def));
    for (const auto& tr : v.definition->from) {
      v.referenced_tables.push_back(ToLower(tr.table));
    }
    auto plan = server->WhatIfPlan(*v.definition, catalog::Configuration());
    if (!plan.ok()) return;
    v.estimated_rows = std::max(1.0, plan->root->est_rows);
    int bytes = 16;
    for (const auto& item : v.definition->items) {
      bytes += 12;
      (void)item;
    }
    v.estimated_row_bytes = bytes;
    Candidate cand = Candidate::MakeView(std::move(v));
    if (seen->insert(cand.name).second) out->push_back(std::move(cand));
  };

  // Does the statement carry single-table predicates whose constants would
  // be baked into an exact view?
  bool has_constant_preds = false;
  for (const auto& p : stmt.where) {
    if (p.kind != sql::Predicate::Kind::kColumnCompare) {
      has_constant_preds = true;
      break;
    }
  }

  // V1: the statement itself (minus ORDER BY / TOP). Skipped for
  // compression representatives whose constants would over-fit the view to
  // one cluster member.
  if (!(prefer_general && has_constant_preds)) {
    sql::SelectStatement def = stmt.Clone();
    def.order_by.clear();
    def.top = -1;
    estimate_and_emit(std::move(def));
  }

  // V2: generalized — drop single-table predicates, exposing their columns
  // through GROUP BY so queries with different constants match.
  if (has_group || has_aggs) {
    sql::SelectStatement def = stmt.Clone();
    def.order_by.clear();
    def.top = -1;
    std::vector<sql::Predicate> kept;
    std::vector<sql::ColumnRef> exposed;
    for (auto& p : def.where) {
      if (p.kind == sql::Predicate::Kind::kColumnCompare) {
        kept.push_back(std::move(p));
      } else {
        exposed.push_back(p.column);
      }
    }
    if (!exposed.empty()) {
      def.where = std::move(kept);
      for (const auto& col : exposed) {
        bool in_group = false;
        for (const auto& g : def.group_by) {
          if (EqualsIgnoreCase(g.column, col.column) &&
              EqualsIgnoreCase(g.table, col.table)) {
            in_group = true;
            break;
          }
        }
        if (!in_group) {
          def.group_by.push_back(col);
          sql::SelectItem item;
          item.expr = sql::Expr::Column(col);
          def.items.push_back(std::move(item));
        }
      }
      // A generalized view must aggregate (otherwise it is just the join).
      if (!def.group_by.empty()) {
        estimate_and_emit(std::move(def));
      }
    }
  }
  (void)q;
}

}  // namespace

Result<std::vector<Candidate>> GenerateCandidatesForStatement(
    const sql::Statement& stmt, server::Server* server,
    const InterestingColumnGroups& groups, const TuningOptions& options,
    const StatsFetcher& fetch_stats, double statement_weight) {
  std::vector<Candidate> out;
  std::set<std::string> seen;
  const catalog::Catalog& catalog = server->catalog();
  StatsFetcher fetch = fetch_stats;
  if (fetch == nullptr) {
    fetch = [server](const stats::StatsKey& key) {
      return server->GetOrCreateStatistics(key);
    };
  }

  if (!stmt.is_select()) {
    // DML: an index over the WHERE columns speeds up row location.
    if (!options.tune_indexes) return out;
    auto dml = optimizer::BindDml(stmt, catalog);
    if (!dml.ok()) return dml.status();
    if (dml->filter_columns.empty()) return out;
    TableIngredients ing;
    ing.database = dml->database->name();
    ing.table = dml->table->name();
    std::vector<std::string> key;
    for (size_t i = 0; i < dml->filters.size(); ++i) {
      const sql::Predicate& p = *dml->filters[i];
      const std::string& col =
          dml->table->column(dml->filter_columns[i]).name;
      if (p.IsEquality() || p.kind == sql::Predicate::Kind::kIn) {
        PushUnique(&key, col);
      }
    }
    for (size_t i = 0; i < dml->filters.size(); ++i) {
      const sql::Predicate& p = *dml->filters[i];
      if (p.IsRange() || p.kind == sql::Predicate::Kind::kLike) {
        PushUnique(&key,
                   dml->table->column(dml->filter_columns[i]).name);
        break;
      }
    }
    TryAddIndex(ing, key, {}, /*clustered=*/false, groups, catalog, &seen,
                &out);
    return out;
  }

  const sql::SelectStatement& sel = stmt.select();
  auto bound = optimizer::BindSelect(sel, catalog);
  if (!bound.ok()) return bound.status();
  const BoundQuery& q = *bound;
  std::vector<TableIngredients> ingredients = CollectIngredients(q);

  for (const TableIngredients& ing : ingredients) {
    if (!options.tune_indexes) break;
    // K1: equality columns + one range column.
    std::vector<std::string> k1 = ing.eq_cols;
    if (!ing.range_cols.empty()) k1.push_back(ing.range_cols[0]);
    TryAddIndex(ing, k1, {}, false, groups, catalog, &seen, &out);
    // K2: K1 covering.
    TryAddIndex(ing, k1, ing.output_cols, false, groups, catalog, &seen,
                &out);
    // K1 with the equality prefix reversed: a different index (leading
    // column changes seek opportunities) over the same column set — also
    // the source of the density overlap reduced statistics creation
    // exploits (paper §5.2, Example 3).
    if (ing.eq_cols.size() >= 2) {
      std::vector<std::string> k1r(ing.eq_cols.rbegin(),
                                   ing.eq_cols.rend());
      if (!ing.range_cols.empty()) k1r.push_back(ing.range_cols[0]);
      TryAddIndex(ing, k1r, {}, false, groups, catalog, &seen, &out);
    }
    // K1 extended with every range column (deep range keys let later key
    // columns filter within the leading range; also the overlap source for
    // reduced statistics on range-heavy workloads).
    if (ing.range_cols.size() >= 2) {
      std::vector<std::string> k1x = ing.eq_cols;
      for (size_t r = 0; r < ing.range_cols.size() && r < 3; ++r) {
        k1x.push_back(ing.range_cols[r]);
      }
      TryAddIndex(ing, k1x, ing.output_cols, false, groups, catalog, &seen,
                  &out);
    }
    // K3: group columns (covering) — enables stream aggregation.
    TryAddIndex(ing, ing.group_cols, ing.output_cols, false, groups, catalog,
                &seen, &out);
    // Group columns extended with the selection column: the grouped scan
    // can seek first.
    if (!ing.group_cols.empty() &&
        (!ing.eq_cols.empty() || !ing.range_cols.empty())) {
      std::vector<std::string> gk = ing.eq_cols;
      for (const auto& g : ing.group_cols) PushUnique(&gk, g);
      if (!ing.range_cols.empty()) gk.push_back(ing.range_cols[0]);
      TryAddIndex(ing, gk, ing.output_cols, false, groups, catalog, &seen,
                  &out);
    }
    // K4: order columns.
    if (ing.order_cols != ing.group_cols) {
      TryAddIndex(ing, ing.order_cols, ing.output_cols, false, groups,
                  catalog, &seen, &out);
    }
    // Join columns: one narrow index per join column (covering).
    for (const auto& jc : ing.join_cols) {
      TryAddIndex(ing, {jc}, ing.output_cols, false, groups, catalog, &seen,
                  &out);
    }
    // Clustered variants (non-redundant storage).
    if (!k1.empty()) {
      TryAddIndex(ing, k1, {}, true, groups, catalog, &seen, &out);
    }
    if (!ing.group_cols.empty()) {
      TryAddIndex(ing, ing.group_cols, {}, true, groups, catalog, &seen,
                  &out);
    }
  }

  // Range partitioning candidates.
  if (options.tune_partitioning) {
    for (const TableIngredients& ing : ingredients) {
      if (ing.row_count < 5000) continue;  // not worth partitioning
      std::vector<std::string> part_cols = ing.range_cols;
      for (const auto& c : ing.eq_cols) PushUnique(&part_cols, c);
      for (const auto& col : part_cols) {
        if (!groups.Contains(ing.database, ing.table, {col})) continue;
        auto scheme = ProposeScheme(fetch, ing.database, ing.table, col,
                                    options.max_partition_boundaries);
        if (!scheme.has_value()) continue;
        Candidate cand = Candidate::MakePartitioning(ing.database, ing.table,
                                                     std::move(*scheme));
        if (seen.insert(cand.name).second) out.push_back(std::move(cand));
      }
    }
  }

  // Materialized views.
  if (options.tune_materialized_views) {
    AddViewCandidates(sel, q, server, /*prefer_general=*/statement_weight > 1,
                      &seen, &out);
  }

  // Cap per-statement candidates. Indexes are generated first and are the
  // most numerous; truncate them while always keeping views and
  // partitionings (few, and qualitatively different options).
  const size_t cap = static_cast<size_t>(options.max_candidates_per_statement);
  if (out.size() > cap) {
    std::vector<Candidate> kept;
    size_t non_index = 0;
    for (const auto& c : out) {
      if (c.kind != Candidate::Kind::kIndex) ++non_index;
    }
    size_t index_budget = cap > non_index ? cap - non_index : 0;
    for (auto& c : out) {
      if (c.kind == Candidate::Kind::kIndex) {
        if (index_budget == 0) continue;
        --index_budget;
      }
      kept.push_back(std::move(c));
    }
    out = std::move(kept);
  }
  return out;
}

}  // namespace dta::tuner
