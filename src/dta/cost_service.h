// Cached what-if costing of a workload against a tuning server.
//
// DTA makes thousands of what-if calls during search; most configurations
// differ from previously priced ones only in structures irrelevant to a
// given statement. The cost service keys each statement's cached cost by
// the fingerprint of the *relevant* subset of the configuration (structures
// touching the statement's tables), so adding a candidate re-prices only
// affected statements.
//
// The service is thread-safe: the cache is sharded per statement with a
// per-shard mutex, counters are atomic, and the missing-statistics set is
// mutex-guarded, so the tuner's worker pool can hammer StatementCost
// concurrently. What-if calls run outside any lock; two threads racing on
// the same cold (statement, fingerprint) pair may both price it — the
// optimizer is deterministic, so both compute the same cost and one insert
// wins (whatif_calls() can exceed the serial count, cached values cannot
// diverge).

#ifndef DTA_DTA_COST_SERVICE_H_
#define DTA_DTA_COST_SERVICE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "catalog/physical_design.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "optimizer/hardware.h"
#include "server/server.h"
#include "stats/statistics.h"
#include "workload/workload.h"

namespace dta::tuner {

class CostService {
 public:
  // `server` performs the what-if calls (the test server in §5.3 mode).
  // When `simulate_hardware` is set, its parameters are simulated in every
  // call (the production server's hardware). The workload must outlive the
  // service.
  CostService(server::Server* server,
              const optimizer::HardwareParams* simulate_hardware,
              const workload::Workload* workload);

  // Optimizer-estimated cost of statement i under the configuration
  // (cached; weight NOT applied). Safe to call from many threads.
  Result<double> StatementCost(size_t index,
                               const catalog::Configuration& config);

  // Sum over statements of weight * cost. When `pool` is given, statements
  // are priced in parallel; the reduction is performed serially in
  // statement order, so the total is bit-identical to the serial sum.
  Result<double> WorkloadCost(const catalog::Configuration& config,
                              ThreadPool* pool = nullptr);

  // Statistics the optimizer wanted but could not find, accumulated across
  // all calls (drives reduced statistics creation and test-server import).
  // Returns a snapshot; safe to call concurrently with StatementCost.
  std::set<stats::StatsKey> missing_stats() const;
  void ClearMissingStats();

  // Number of actual what-if optimizer invocations (cache misses).
  size_t whatif_calls() const {
    return calls_.load(std::memory_order_relaxed);
  }
  size_t cache_hits() const { return hits_.load(std::memory_order_relaxed); }

  // Invalidate everything (e.g. after statistics changed). Must not run
  // concurrently with StatementCost.
  void ClearCache();

  const workload::Workload& workload() const { return *workload_; }
  server::Server* server() { return server_; }

 private:
  // One cache shard per statement: selection work for a statement stays on
  // one thread, so shards keep lock contention confined to enumeration,
  // where different subsets price the same statement concurrently.
  struct Shard {
    std::mutex mu;
    std::map<std::string, double> cache;
  };

  std::string RelevantFingerprint(size_t index,
                                  const catalog::Configuration& config) const;

  server::Server* server_;
  const optimizer::HardwareParams* simulate_hardware_;
  const workload::Workload* workload_;

  // Lower-cased table names referenced by each statement.
  std::vector<std::set<std::string>> statement_tables_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex missing_mu_;
  std::set<stats::StatsKey> missing_;
  std::atomic<size_t> calls_{0};
  std::atomic<size_t> hits_{0};
};

}  // namespace dta::tuner

#endif  // DTA_DTA_COST_SERVICE_H_
