// Cached what-if costing of a workload against a tuning server.
//
// DTA makes thousands of what-if calls during search; most configurations
// differ from previously priced ones only in structures irrelevant to a
// given statement. The cost service keys each statement's cached cost by
// the fingerprint of the *relevant* subset of the configuration (structures
// touching the statement's tables), so adding a candidate re-prices only
// affected statements.

#ifndef DTA_DTA_COST_SERVICE_H_
#define DTA_DTA_COST_SERVICE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/physical_design.h"
#include "common/status.h"
#include "optimizer/hardware.h"
#include "server/server.h"
#include "stats/statistics.h"
#include "workload/workload.h"

namespace dta::tuner {

class CostService {
 public:
  // `server` performs the what-if calls (the test server in §5.3 mode).
  // When `simulate_hardware` is set, its parameters are simulated in every
  // call (the production server's hardware). The workload must outlive the
  // service.
  CostService(server::Server* server,
              const optimizer::HardwareParams* simulate_hardware,
              const workload::Workload* workload);

  // Optimizer-estimated cost of statement i under the configuration
  // (cached; weight NOT applied).
  Result<double> StatementCost(size_t index,
                               const catalog::Configuration& config);

  // Sum over statements of weight * cost.
  Result<double> WorkloadCost(const catalog::Configuration& config);

  // Statistics the optimizer wanted but could not find, accumulated across
  // all calls (drives reduced statistics creation and test-server import).
  const std::set<stats::StatsKey>& missing_stats() const { return missing_; }
  void ClearMissingStats() { missing_.clear(); }

  // Number of actual what-if optimizer invocations (cache misses).
  size_t whatif_calls() const { return calls_; }
  size_t cache_hits() const { return hits_; }

  // Invalidate everything (e.g. after statistics changed).
  void ClearCache();

  const workload::Workload& workload() const { return *workload_; }
  server::Server* server() { return server_; }

 private:
  std::string RelevantFingerprint(size_t index,
                                  const catalog::Configuration& config) const;

  server::Server* server_;
  const optimizer::HardwareParams* simulate_hardware_;
  const workload::Workload* workload_;

  // Lower-cased table names referenced by each statement.
  std::vector<std::set<std::string>> statement_tables_;
  std::vector<std::map<std::string, double>> cache_;
  std::set<stats::StatsKey> missing_;
  size_t calls_ = 0;
  size_t hits_ = 0;
};

}  // namespace dta::tuner

#endif  // DTA_DTA_COST_SERVICE_H_
