// Cached, fault-tolerant what-if costing of a workload against a tuning
// server.
//
// DTA makes thousands of what-if calls during search; most configurations
// differ from previously priced ones only in structures irrelevant to a
// given statement. The cost service keys each statement's cached cost by
// the fingerprint of the *relevant* subset of the configuration (structures
// touching the statement's tables), so adding a candidate re-prices only
// affected statements.
//
// The service is thread-safe: the cache is sharded per statement with a
// per-shard mutex, counters are atomic, and the missing-statistics set is
// mutex-guarded, so the tuner's worker pool can hammer StatementCost
// concurrently. What-if calls run outside any lock; a cold (statement,
// fingerprint) pair is priced exactly once — the first thread to miss marks
// the pair in-flight and later arrivals block on the shard's condition
// variable until the price lands, so whatif_calls() is identical at any
// thread count.
//
// Robustness (production servers fail): each what-if call runs under a
// retry policy — transient failures (Unavailable/DeadlineExceeded) retry
// with exponential backoff and deterministic jitter, bounded by the policy's
// attempt cap and the remaining session time budget. Permanent failures, or
// exhausted retries, degrade gracefully: the statement's cost falls back to
// the catalog-only heuristic estimate, the cache entry is marked degraded,
// and counters (retry histogram, degraded calls/statements) feed the report
// instead of the whole session aborting.

#ifndef DTA_DTA_COST_SERVICE_H_
#define DTA_DTA_COST_SERVICE_H_

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "catalog/physical_design.h"
#include "common/clock.h"
#include "dta/derived_cost.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "dta/tuning_options.h"
#include "optimizer/hardware.h"
#include "server/server.h"
#include "stats/statistics.h"
#include "workload/workload.h"

namespace dta::tuner {

// Calls that took N attempts land in bucket N - 1; the last bucket also
// absorbs anything beyond the histogram size.
inline constexpr size_t kRetryHistogramBuckets = 8;

// One logical what-if call as it crosses the backend seam. In-process
// backends cost `*stmt` directly; a socket transport serializes `*text`
// (the statement's original SQL, which the worker re-parses with the same
// parser) so the AST never needs a wire encoding. All pointers are borrowed
// and must outlive the call.
struct WhatIfCall {
  const sql::Statement* stmt = nullptr;
  // Original SQL text of the statement; null only on internal call sites
  // that are guaranteed to stay in-process (tests driving a router
  // directly).
  const std::string* text = nullptr;
  const catalog::Configuration* config = nullptr;
  const optimizer::HardwareParams* simulate_hardware = nullptr;
  // Identifies the logical call (hash of statement text + relevant
  // fingerprint, never 0): fault injectors key their deterministic
  // decisions on it and routers hash it for shard placement.
  uint64_t call_key = 0;
};

// Where what-if calls physically execute. CostService is written against
// this seam, so pricing can run on one server (SingleServerBackend below),
// fan out across a fleet of in-process test-server replicas, or cross
// sockets to cost_server worker processes (ShardRouter, dta/shard_router.h)
// without the caching, dedup, or retry layers knowing the difference.
// Backends must be deterministic — the same (statement, configuration) call
// returns the same cost wherever it executes — which is what keeps
// recommendations bit-identical across backend topologies.
class CostBackend {
 public:
  virtual ~CostBackend() = default;

  // Mirrors server::Server::WhatIfCost. Must be safe for concurrent calls.
  virtual Result<server::Server::WhatIfResult> WhatIfCost(
      const WhatIfCall& call) = 0;

  // The server whose catalog and hardware stand in for the backend's shared
  // state: heuristic degradation, plan reports, and catalog resolution all
  // read from it. Every replica behind a backend is a clone of it.
  virtual server::Server* primary() const = 0;
};

// Default backend: every call prices on one server.
class SingleServerBackend : public CostBackend {
 public:
  explicit SingleServerBackend(server::Server* server) : server_(server) {}

  Result<server::Server::WhatIfResult> WhatIfCost(
      const WhatIfCall& call) override {
    return server_->WhatIfCost(*call.stmt, *call.config,
                               call.simulate_hardware, call.call_key);
  }

  server::Server* primary() const override { return server_; }

 private:
  server::Server* server_;
};

class CostService {
 public:
  // Fault-tolerance knobs; the default is retry-with-degradation and no
  // session deadline.
  struct Config {
    RetryPolicy retry;
    bool degrade_on_failure = true;
    // Remaining session time budget (ms); bounds per-call retry backoff.
    // Null means unbounded.
    std::function<double()> remaining_ms;
    // Observability (optional). When `metrics` is set, every pricing feeds
    // the what-if latency/attempt histograms and the lookup/hit/call
    // counters; all registered quantities are thread-count invariant, so a
    // metrics export is byte-identical at any concurrency. `clock` times
    // the pricings (null means the real monotonic clock) — tests inject a
    // FakeClock for deterministic latency output.
    MetricsRegistry* metrics = nullptr;
    const Clock* clock = nullptr;
    // Derived costing (dta/derived_cost.h): answer cache misses from
    // memoized atomic-configuration costs via the CoPhy combine rule when
    // the decomposition is valid, falling back to a real what-if call
    // otherwise. Derivation decisions are a pure function of the
    // (statement, fingerprint) pair — atoms are priced through the normal
    // cached/deduplicated path — so enabling it preserves the bit-identical
    // recommendation contract at any (threads × shards) combination.
    DerivedCostOptions derived;
  };

  // `server` performs the what-if calls (the test server in §5.3 mode).
  // When `simulate_hardware` is set, its parameters are simulated in every
  // call (the production server's hardware). The workload must outlive the
  // service.
  CostService(server::Server* server,
              const optimizer::HardwareParams* simulate_hardware,
              const workload::Workload* workload, Config config);
  CostService(server::Server* server,
              const optimizer::HardwareParams* simulate_hardware,
              const workload::Workload* workload)
      : CostService(server, simulate_hardware, workload, Config()) {}
  // Pluggable-backend form: what-if calls go wherever `backend` routes them
  // (e.g. a ShardRouter fleet). The backend must outlive the service.
  CostService(CostBackend* backend,
              const optimizer::HardwareParams* simulate_hardware,
              const workload::Workload* workload, Config config);

  // Optimizer-estimated cost of statement i under the configuration
  // (cached; weight NOT applied). Safe to call from many threads.
  Result<double> StatementCost(size_t index,
                               const catalog::Configuration& config);

  // Sum over statements of weight * cost. When `pool` is given, statements
  // are priced in parallel; the reduction is performed serially in
  // statement order, so the total is bit-identical to the serial sum.
  Result<double> WorkloadCost(const catalog::Configuration& config,
                              ThreadPool* pool = nullptr);

  // Statistics the optimizer wanted but could not find, accumulated across
  // all calls (drives reduced statistics creation and test-server import).
  // Returns a snapshot; safe to call concurrently with StatementCost.
  std::set<stats::StatsKey> missing_stats() const EXCLUDES(missing_mu_);
  void ClearMissingStats() EXCLUDES(missing_mu_);
  // Pre-populates the missing-statistics set (checkpoint resume).
  void SeedMissingStats(const std::set<stats::StatsKey>& keys)
      EXCLUDES(missing_mu_);

  // Number of logical what-if pricings (cache misses). Exact at any thread
  // count: racing threads on a cold pair block instead of double-pricing.
  size_t whatif_calls() const {
    return calls_.load(std::memory_order_relaxed);
  }
  size_t cache_hits() const { return hits_.load(std::memory_order_relaxed); }

  // Lookups that found the (statement, fingerprint) pair already being
  // priced by another thread and blocked for its result. Scheduling
  // dependent (always 0 when serial), so it is surfaced here and in
  // TuningResult but deliberately NOT registered as a metric — the metrics
  // export stays identical at any thread count.
  size_t dedup_waits() const {
    return dedup_waits_.load(std::memory_order_relaxed);
  }

  // ---- Derived-costing accounting ----------------------------------------
  // Cache misses answered by the CoPhy combine rule (exact mode included,
  // where the derivation is checked against a real call). Like
  // whatif_calls(), a pure function of the lookup set: identical at any
  // thread or shard count.
  size_t derived_answers() const {
    return derived_answers_.load(std::memory_order_relaxed);
  }
  // Misses whose decomposition was non-trivial but could not be used (DML
  // maintenance costs, too many atoms, error bound exceeded, or a degraded
  // atom): they were priced by a real what-if call instead.
  size_t derivation_fallbacks() const {
    return derivation_fallbacks_.load(std::memory_order_relaxed);
  }
  // Real what-if calls avoided: one per derived answer outside exact mode
  // (in exact mode the real call is made anyway, so nothing is saved).
  size_t whatif_calls_saved() const {
    return calls_saved_.load(std::memory_order_relaxed);
  }
  // Exact mode only: derivations whose measured error exceeded
  // Config::derived.error_bound_pct.
  size_t derivation_errors_exceeded() const {
    return errors_exceeded_.load(std::memory_order_relaxed);
  }

  // Clock used for pricing latency (the injected one, or the real
  // monotonic clock). Phase code shares it so all timings in one session
  // come from one source.
  const Clock* clock() const { return clock_; }

  // ---- Fault-tolerance accounting ---------------------------------------
  // Failed attempts that were retried.
  size_t whatif_retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  // Pricings that fell back to the heuristic estimate.
  size_t degraded_calls() const {
    return degraded_.load(std::memory_order_relaxed);
  }
  // Statement indexes with at least one degraded pricing (snapshot).
  std::set<size_t> degraded_statements() const EXCLUDES(degraded_mu_);
  // Pre-populates the degraded-statement set (checkpoint resume). Needed
  // because the flag outlives the cache entries that caused it: ClearCache
  // drops degraded entries from earlier phases, and a resumed session may
  // answer the same misses by derivation without re-firing the fault.
  void SeedDegradedStatements(const std::set<size_t>& statements)
      EXCLUDES(degraded_mu_);
  // retry_histogram()[n] = pricings that needed n + 1 attempts.
  std::array<size_t, kRetryHistogramBuckets> retry_histogram() const;

  // ---- Checkpointing ----------------------------------------------------
  // Snapshot/restore of the cache for crash-safe session checkpoints. Must
  // not run concurrently with StatementCost. Entries are keyed by statement
  // index + fingerprint; callers guarantee the workload matches.
  struct CacheEntry {
    size_t statement = 0;
    std::string fingerprint;
    double cost = 0;
    bool degraded = false;
    // Cost was derived from atomic-configuration results instead of a real
    // what-if call (the atoms themselves are ordinary entries).
    bool derived = false;
  };
  std::vector<CacheEntry> ExportCache() const;
  void ImportCache(const std::vector<CacheEntry>& entries)
      EXCLUDES(degraded_mu_);

  // Invalidate everything (e.g. after statistics changed). Must not run
  // concurrently with StatementCost.
  void ClearCache();

  const workload::Workload& workload() const { return *workload_; }
  server::Server* server() { return backend_->primary(); }
  CostBackend* backend() { return backend_; }

 private:
  struct Entry {
    double cost = 0;
    bool degraded = false;
    bool derived = false;
  };
  // One cache shard per statement: selection work for a statement stays on
  // one thread, so shards keep lock contention confined to enumeration,
  // where different subsets price the same statement concurrently. The
  // in-flight set + condition variable deduplicate racing cold misses.
  //
  // Protocol (statically checked under clang -Wthread-safety): `cache` and
  // `inflight` are only touched under `mu`; the first thread to miss a
  // (statement, fingerprint) pair inserts it into `inflight`, prices it
  // *outside* the lock, then re-locks to publish the entry, clear the
  // in-flight mark, and NotifyAll the waiters parked on `cv`.
  struct Shard {
    Mutex mu;
    CondVar cv;
    std::map<std::string, Entry> cache GUARDED_BY(mu);
    std::set<std::string> inflight GUARDED_BY(mu);
  };

  std::string RelevantFingerprint(size_t index,
                                  const catalog::Configuration& config) const;
  // The cached-entry protocol behind StatementCost: look up / claim
  // in-flight / price / publish, returning the full entry. Atom pricings
  // recurse through here with `allow_derive` false, which terminates the
  // recursion (atoms decompose trivially) and lands every atom in the
  // ordinary cache, memoized and checkpointed like any entry.
  Result<Entry> CachedEntry(size_t index, const catalog::Configuration& config,
                            bool allow_derive)
      EXCLUDES(missing_mu_, degraded_mu_);
  // Prices one claimed (statement, fingerprint) pair: by derivation when
  // enabled, eligible, and valid; by a real what-if call otherwise.
  Result<Entry> PriceOrDerive(size_t index,
                              const catalog::Configuration& config,
                              const std::string& fingerprint,
                              bool allow_derive)
      EXCLUDES(missing_mu_, degraded_mu_);
  // Prices one cold (statement, fingerprint) pair: what-if call with
  // retry/backoff/deadline, falling back to the heuristic estimate when the
  // failure is persistent and degradation is enabled. Runs outside any
  // shard lock (the what-if call dominates; holding a shard lock across it
  // would serialize enumeration and deadlock the in-flight protocol).
  Result<Entry> PriceWithRetries(size_t index,
                                 const catalog::Configuration& config,
                                 const std::string& fingerprint)
      EXCLUDES(missing_mu_, degraded_mu_);
  void RecordAttempts(int attempts);
  void Init();

  // Declared before backend_ so the Server* constructors can point backend_
  // at the owned wrapper in the member-init list.
  std::unique_ptr<SingleServerBackend> owned_backend_;
  CostBackend* backend_;
  const optimizer::HardwareParams* simulate_hardware_;
  const workload::Workload* workload_;
  Config config_;

  // Lower-cased table names referenced by each statement.
  std::vector<std::set<std::string>> statement_tables_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable Mutex missing_mu_;
  std::set<stats::StatsKey> missing_ GUARDED_BY(missing_mu_);
  mutable Mutex degraded_mu_;
  std::set<size_t> degraded_statements_ GUARDED_BY(degraded_mu_);
  std::atomic<size_t> calls_{0};
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> dedup_waits_{0};
  std::atomic<size_t> retries_{0};
  std::atomic<size_t> degraded_{0};
  std::atomic<size_t> derived_answers_{0};
  std::atomic<size_t> derivation_fallbacks_{0};
  std::atomic<size_t> calls_saved_{0};
  std::atomic<size_t> errors_exceeded_{0};
  std::array<std::atomic<size_t>, kRetryHistogramBuckets> attempt_histogram_{};

  // Metrics handles (null when Config::metrics is unset); resolved once in
  // the constructor so the hot path never locks the registry.
  const Clock* clock_;
  Counter* m_lookups_ = nullptr;
  Counter* m_hits_ = nullptr;
  Counter* m_calls_ = nullptr;
  Counter* m_retries_ = nullptr;
  Counter* m_degraded_ = nullptr;
  Counter* m_derived_ = nullptr;
  Counter* m_fallbacks_ = nullptr;
  Counter* m_saved_ = nullptr;
  Histogram* m_latency_ = nullptr;
  Histogram* m_simulated_ = nullptr;
  Histogram* m_attempts_ = nullptr;
  Histogram* m_derivation_error_ = nullptr;
};

}  // namespace dta::tuner

#endif  // DTA_DTA_COST_SERVICE_H_
