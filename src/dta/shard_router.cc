#include "dta/shard_router.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/strings.h"

namespace dta::tuner {

namespace {

// splitmix64 avalanche: rendezvous scores must differ across shards even
// for call keys that differ in few bits.
uint64_t AvalancheMix(uint64_t h) {
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

uint64_t RendezvousScore(uint64_t key, size_t shard) {
  return AvalancheMix(
      HashCombine(key, 0x7368617264ull + static_cast<uint64_t>(shard)));
}

// Smoothing factor for the per-shard latency EWMA: heavy enough that a
// latency spike registers within a few calls, light enough that one outlier
// does not demote a healthy shard.
constexpr double kEwmaAlpha = 0.25;

}  // namespace

bool ShardFaultSpec::Enabled() const {
  for (const auto& [index, spec] : per_shard) {
    if (spec.Enabled()) return true;
  }
  return false;
}

Result<ShardFaultSpec> ShardFaultSpec::Parse(const std::string& text) {
  ShardFaultSpec out;
  for (const std::string& part : StrSplit(text, ';')) {
    if (part.empty()) continue;
    const size_t colon = part.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          "shard fault spec entry missing ':' (want <shard>:<spec>): " +
          part);
    }
    // Strict index parse: plain digits only (strtol alone would accept
    // leading whitespace or a '+' sign and mask a typo'd spec).
    const std::string index_text = part.substr(0, colon);
    bool digits = !index_text.empty();
    for (char c : index_text) {
      if (c < '0' || c > '9') digits = false;
    }
    char* end = nullptr;
    const long index =
        digits ? std::strtol(index_text.c_str(), &end, 10) : -1;
    if (!digits || end != index_text.c_str() + index_text.size() ||
        index < 0) {
      return Status::InvalidArgument(
          "shard fault spec has a bad shard index: " + part);
    }
    auto spec = FaultSpec::Parse(part.substr(colon + 1));
    if (!spec.ok()) return spec.status();
    if (!out.per_shard.emplace(static_cast<int>(index), *spec).second) {
      return Status::InvalidArgument(StrFormat(
          "shard fault spec targets shard %ld twice", index));
    }
  }
  return out;
}

std::string ShardFaultSpec::ToString() const {
  std::vector<std::string> parts;
  for (const auto& [index, spec] : per_shard) {
    parts.push_back(StrFormat("%d:", index) + spec.ToString());
  }
  return StrJoin(parts, ";");
}

ShardRouter::ShardRouter(std::vector<server::Server*> servers,
                         ShardRouterOptions options)
    : options_(options) {
  DTA_CHECK(!servers.empty(), "ShardRouter needs at least one server");
  primary_ = servers[0];
  std::vector<rpc::ShardChannel*> channels;
  channels.reserve(servers.size());
  owned_channels_.reserve(servers.size());
  for (server::Server* server : servers) {
    owned_channels_.push_back(std::make_unique<rpc::InprocChannel>(server));
    channels.push_back(owned_channels_.back().get());
  }
  InitShards(channels);
}

ShardRouter::ShardRouter(server::Server* primary,
                         std::vector<std::unique_ptr<rpc::ShardChannel>> channels,
                         ShardRouterOptions options)
    : options_(options) {
  DTA_CHECK(!channels.empty(), "ShardRouter needs at least one channel");
  DTA_CHECK(primary != nullptr, "async ShardRouter needs a primary server");
  primary_ = primary;
  owned_channels_ = std::move(channels);
  std::vector<rpc::ShardChannel*> raw;
  raw.reserve(owned_channels_.size());
  for (const auto& channel : owned_channels_) {
    // Fleets are homogeneous: the event-driven path drives every shard
    // through Submit; a synchronous channel has no Submit worth queuing.
    DTA_CHECK(channel->async(),
              "async ShardRouter requires asynchronous channels");
    raw.push_back(channel.get());
  }
  InitShards(raw);
  rpc::CompletionQueueOptions queue_options;
  queue_options.max_inflight_per_shard = options_.max_inflight_per_shard;
  queue_options.attempt_timeout_ms = options_.attempt_timeout_ms;
  queue_options.metrics = options_.metrics;
  rpc::CompletionQueueHooks hooks;
  hooks.admit = [this](size_t shard, int pass) {
    return pass != 0 || AdmitForPass(*shards_[shard]);
  };
  hooks.outcome = [this](size_t shard, bool ok) {
    RecordOutcome(*shards_[shard], ok);
    if (!ok) {
      // Async accounting counts every failed attempt as a failover hop
      // (the call moved on without a worker thread waiting in it).
      failovers_.fetch_add(1, std::memory_order_relaxed);
      if (m_failovers_ != nullptr) m_failovers_->Increment();
    }
  };
  hooks.latency = [this](size_t shard, double latency_ms) {
    RecordLatency(*shards_[shard], latency_ms);
  };
  queue_ = std::make_unique<rpc::CompletionQueue>(raw, std::move(hooks),
                                                  queue_options);
}

ShardRouter::~ShardRouter() = default;

void ShardRouter::InitShards(
    const std::vector<rpc::ShardChannel*>& channels) {
  // Clamp rather than abort: a zero probe_interval or window means "the
  // most aggressive legal setting", not a crash. The clamped values are
  // visible through options() so callers and tests see what actually runs.
  options_.max_inflight_per_shard =
      std::max(1, options_.max_inflight_per_shard);
  options_.unhealthy_after = std::max(1, options_.unhealthy_after);
  options_.probe_interval = std::max(1, options_.probe_interval);
  options_.slow_min_samples = std::max(1, options_.slow_min_samples);
  options_.slow_floor_ms = std::max(0.0, options_.slow_floor_ms);
  if (options_.clock == nullptr) options_.clock = MonotonicClock::Instance();
  shards_.reserve(channels.size());
  for (size_t i = 0; i < channels.size(); ++i) {
    auto shard = std::make_unique<Shard>();
    shard->channel = channels[i];
    if (options_.metrics != nullptr) {
      shard->m_calls =
          options_.metrics->GetCounter(StrFormat("shard.%zu.calls", i));
      shard->m_failures =
          options_.metrics->GetCounter(StrFormat("shard.%zu.failures", i));
      shard->m_queue_peak =
          options_.metrics->GetGauge(StrFormat("shard.%zu.queue_peak", i));
    }
    shards_.push_back(std::move(shard));
  }
  if (options_.metrics != nullptr) {
    m_failovers_ = options_.metrics->GetCounter("shard.router.failovers");
    m_exhausted_ = options_.metrics->GetCounter("shard.router.exhausted");
    m_slow_demotions_ =
        options_.metrics->GetCounter("shard.router.slow_demotions");
  }
}

std::vector<size_t> ShardRouter::RankShards(uint64_t key) const {
  std::vector<std::pair<uint64_t, size_t>> scored;
  scored.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    scored.emplace_back(RendezvousScore(key, i), i);
  }
  std::sort(scored.begin(), scored.end(),
            [](const std::pair<uint64_t, size_t>& a,
               const std::pair<uint64_t, size_t>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<size_t> order;
  order.reserve(scored.size());
  for (const auto& [score, index] : scored) order.push_back(index);
  return order;
}

bool ShardRouter::AdmitForPass(Shard& shard) {
  MutexLock shard_lock(shard.mu);
  // A shard demoted for slowness is routed around exactly like an unhealthy
  // one: same skip counter, same probe cadence, same recovery path.
  if (shard.healthy && !shard.slow) return true;
  if (++shard.skipped_since_down >= options_.probe_interval) {
    shard.skipped_since_down = 0;
    return true;  // recovery probe
  }
  return false;
}

void ShardRouter::AcquireSlot(Shard& shard) {
  MutexLock shard_lock(shard.mu);
  ++shard.waiting;
  shard.queue_peak = std::max(
      shard.queue_peak, static_cast<size_t>(shard.inflight + shard.waiting));
  if (shard.m_queue_peak != nullptr) {
    shard.m_queue_peak->Set(static_cast<double>(shard.queue_peak));
  }
  while (shard.inflight >= options_.max_inflight_per_shard) {
    shard.cv.Wait(shard.mu);
  }
  --shard.waiting;
  ++shard.inflight;
  shard.inflight_peak =
      std::max(shard.inflight_peak, static_cast<size_t>(shard.inflight));
}

void ShardRouter::ReleaseSlot(Shard& shard) {
  MutexLock shard_lock(shard.mu);
  --shard.inflight;
  shard.cv.NotifyOne();  // exactly one slot freed
}

void ShardRouter::RecordOutcome(Shard& shard, bool ok) {
  MutexLock shard_lock(shard.mu);
  ++shard.calls;
  if (shard.m_calls != nullptr) shard.m_calls->Increment();
  if (ok) {
    shard.consecutive_failures = 0;
    shard.healthy = true;
    return;
  }
  ++shard.failures;
  if (shard.m_failures != nullptr) shard.m_failures->Increment();
  if (++shard.consecutive_failures >= options_.unhealthy_after &&
      shard.healthy) {
    shard.healthy = false;
    shard.skipped_since_down = 0;
  }
}

double ShardRouter::FleetMedianEwma() {
  std::vector<double> ewmas;
  ewmas.reserve(shards_.size());
  for (const auto& s : shards_) {
    MutexLock shard_lock(s->mu);
    if (s->latency_samples >=
        static_cast<size_t>(options_.slow_min_samples)) {
      ewmas.push_back(s->latency_ewma);
    }
  }
  // A fleet needs at least two measured shards before "slower than the
  // fleet" means anything; a fleet of one is never slow.
  if (ewmas.size() < 2) return 0;
  std::sort(ewmas.begin(), ewmas.end());
  // Lower middle: with half the fleet slow, the median must still reflect
  // the fast half or the detector grades the sick shards on a curve.
  return ewmas[(ewmas.size() - 1) / 2];
}

void ShardRouter::RecordLatency(Shard& shard, double latency_ms) {
  if (options_.slow_threshold <= 0) return;
  {
    MutexLock shard_lock(shard.mu);
    shard.latency_ewma =
        shard.latency_samples == 0
            ? latency_ms
            : kEwmaAlpha * latency_ms +
                  (1.0 - kEwmaAlpha) * shard.latency_ewma;
    ++shard.latency_samples;
    if (shard.latency_samples <
        static_cast<size_t>(options_.slow_min_samples)) {
      return;
    }
  }
  // Judged against the fleet, one shard lock at a time (never two at once).
  // The verdict can race with concurrent updates, but demotion is
  // routing-only, so a late or spurious flip costs latency, never
  // correctness.
  const double median = FleetMedianEwma();
  if (median <= 0) return;
  const double limit =
      std::max(options_.slow_threshold * median, options_.slow_floor_ms);
  MutexLock shard_lock(shard.mu);
  const bool is_slow = shard.latency_ewma > limit;
  if (is_slow && !shard.slow) {
    shard.slow = true;
    shard.skipped_since_down = 0;
    slow_demotions_.fetch_add(1, std::memory_order_relaxed);
    if (m_slow_demotions_ != nullptr) m_slow_demotions_->Increment();
  } else if (!is_slow && shard.slow) {
    shard.slow = false;  // probes brought the EWMA back under the limit
  }
}

Result<server::Server::WhatIfResult> ShardRouter::TryShard(
    Shard& shard, const WhatIfCall& call) {
  const bool detect = options_.slow_threshold > 0;
  AcquireSlot(shard);
  // Latency is measured around the server call alone — queue wait above is
  // the router's own back-pressure, not the shard's slowness.
  const double t0 = detect ? options_.clock->NowMs() : 0;
  auto r = shard.channel->Call(call);
  const double latency_ms = detect ? options_.clock->NowMs() - t0 : 0;
  ReleaseSlot(shard);
  RecordOutcome(shard, r.ok());
  if (detect && r.ok()) RecordLatency(shard, latency_ms);
  return r;
}

Result<server::Server::WhatIfResult> ShardRouter::WhatIfCost(
    const WhatIfCall& call) {
  if (queue_ != nullptr) {
    // Event-driven path: the completion queue owns per-shard in-flight
    // tracking, timeouts, and requeues; this thread parks on a condvar
    // until its own result is ready, never inside a shard attempt.
    auto r = queue_->Execute(call, RankShards(call.call_key));
    if (r.ok()) {
      successes_.fetch_add(1, std::memory_order_relaxed);
    } else {
      exhausted_.fetch_add(1, std::memory_order_relaxed);
      if (m_exhausted_ != nullptr) m_exhausted_->Increment();
    }
    return r;
  }
  return WhatIfCostSync(call);
}

Result<server::Server::WhatIfResult> ShardRouter::WhatIfCostSync(
    const WhatIfCall& call) {
  const std::vector<size_t> order = RankShards(call.call_key);
  std::vector<bool> tried(shards_.size(), false);
  Status last = Status::Unavailable("no shard available");
  size_t failed_attempts = 0;
  // Pass 0 walks the rendezvous order over healthy shards (plus due
  // probes); pass 1 retries the shards pass 0 routed around — one extra
  // attempt at a sick shard is cheaper than failing the call up into the
  // retry/degradation machinery.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t index : order) {
      Shard& shard = *shards_[index];
      if (pass == 0 && !AdmitForPass(shard)) continue;
      if (tried[index]) continue;
      tried[index] = true;
      auto r = TryShard(shard, call);
      if (r.ok()) {
        successes_.fetch_add(1, std::memory_order_relaxed);
        if (failed_attempts > 0) {
          failovers_.fetch_add(failed_attempts, std::memory_order_relaxed);
          if (m_failovers_ != nullptr) {
            m_failovers_->Increment(failed_attempts);
          }
        }
        return r;
      }
      last = r.status();
      ++failed_attempts;
    }
  }
  // Every shard failed this call. Surface the last failure; the counters
  // record failovers that never found a live shard separately.
  if (failed_attempts > 0) {
    failovers_.fetch_add(failed_attempts - 1, std::memory_order_relaxed);
    if (m_failovers_ != nullptr && failed_attempts > 1) {
      m_failovers_->Increment(failed_attempts - 1);
    }
  }
  exhausted_.fetch_add(1, std::memory_order_relaxed);
  if (m_exhausted_ != nullptr) m_exhausted_->Increment();
  return last;
}

size_t ShardRouter::calls(size_t shard) const {
  MutexLock shard_lock(shards_[shard]->mu);
  return shards_[shard]->calls;
}

size_t ShardRouter::failures(size_t shard) const {
  MutexLock shard_lock(shards_[shard]->mu);
  return shards_[shard]->failures;
}

size_t ShardRouter::queue_peak(size_t shard) const {
  MutexLock shard_lock(shards_[shard]->mu);
  return shards_[shard]->queue_peak;
}

size_t ShardRouter::inflight_peak(size_t shard) const {
  MutexLock shard_lock(shards_[shard]->mu);
  return shards_[shard]->inflight_peak;
}

bool ShardRouter::healthy(size_t shard) const {
  MutexLock shard_lock(shards_[shard]->mu);
  return shards_[shard]->healthy;
}

bool ShardRouter::slow(size_t shard) const {
  MutexLock shard_lock(shards_[shard]->mu);
  return shards_[shard]->slow;
}

double ShardRouter::latency_ewma_ms(size_t shard) const {
  MutexLock shard_lock(shards_[shard]->mu);
  return shards_[shard]->latency_ewma;
}

}  // namespace dta::tuner
