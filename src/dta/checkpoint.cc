#include "dta/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/hash.h"
#include "common/strings.h"
#include "dta/xml_schema.h"
#include "xmlio/xml.h"

namespace dta::tuner {

namespace {

// Costs must survive serialization bit-exactly (resume promises the
// identical recommendation); C99 hex-float notation round-trips doubles
// without rounding and strtod parses it back.
std::string HexDouble(double v) { return StrFormat("%a", v); }
double ParseDouble(const std::string& s) {
  return std::strtod(s.c_str(), nullptr);
}

const char* BoolStr(bool b) { return b ? "true" : "false"; }
bool ParseBool(const std::string& s) {
  return EqualsIgnoreCase(s, "true") || s == "1";
}

uint64_t ParseU64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

void StatsKeyToXml(const stats::StatsKey& key, xml::Element* parent) {
  xml::Element* e = parent->AddChild("Stats");
  e->SetAttr("Database", key.database);
  e->SetAttr("Table", key.table);
  for (const auto& c : key.columns) e->AddTextChild("Column", c);
}

stats::StatsKey StatsKeyFromXml(const xml::Element& e) {
  std::vector<std::string> columns;
  for (const xml::Element* c : e.FindChildren("Column")) {
    columns.push_back(c->text());
  }
  return stats::StatsKey(e.Attr("Database"), e.Attr("Table"),
                         std::move(columns));
}

void CandidateToXml(const Candidate& cand, xml::Element* parent) {
  xml::Element* e = parent->AddChild("Candidate");
  catalog::Configuration one;
  switch (cand.kind) {
    case Candidate::Kind::kIndex:
      (void)one.AddIndex(cand.index);
      break;
    case Candidate::Kind::kView:
      (void)one.AddView(cand.view);
      // The public configuration schema rounds EstimatedRows for
      // readability; the checkpoint needs the exact value (it feeds cost
      // estimates).
      e->SetAttr("ViewEstimatedRows", HexDouble(cand.view.estimated_rows));
      break;
    case Candidate::Kind::kTablePartitioning:
      // SetTablePartitioning keys by table only; carry the database here.
      e->SetAttr("Database", cand.database);
      one.SetTablePartitioning(cand.table, cand.scheme);
      break;
  }
  e->AddChild(ConfigurationToXml(one));
}

Result<Candidate> CandidateFromXml(const xml::Element& e,
                                   const catalog::Catalog& catalog) {
  const xml::Element* cfg_elem = e.FindChild("Configuration");
  if (cfg_elem == nullptr) {
    return Status::InvalidArgument("Candidate missing <Configuration>");
  }
  auto cfg = ConfigurationFromXml(*cfg_elem);
  if (!cfg.ok()) return cfg.status();
  if (!cfg->indexes().empty()) {
    return Candidate::MakeIndex(cfg->indexes()[0], catalog);
  }
  if (!cfg->views().empty()) {
    catalog::ViewDef view = cfg->views()[0];
    if (e.HasAttr("ViewEstimatedRows")) {
      view.estimated_rows = ParseDouble(e.Attr("ViewEstimatedRows"));
    }
    return Candidate::MakeView(std::move(view));
  }
  if (!cfg->table_partitioning().empty()) {
    const auto& [table, scheme] = *cfg->table_partitioning().begin();
    return Candidate::MakePartitioning(e.Attr("Database"), table, scheme);
  }
  return Status::InvalidArgument("Candidate carries no structure");
}

}  // namespace

// snprintf-free formatting for the bulk cache encoder: a checkpoint write
// formats thousands of entries, and the printf machinery is the single
// largest cost once the document itself is small. AppendHexDouble emits the
// same class of C99 hex-float literal as %a — strtod round-trips it
// bit-exactly, which is all the checkpoint format requires — and falls back
// to snprintf for the non-normal classes that never appear in cost data.
void AppendU64(std::string* out, uint64_t v) {
  char buf[20];
  char* p = buf + sizeof buf;
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  out->append(p, static_cast<size_t>(buf + sizeof buf - p));
}

void AppendHexDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  const uint64_t mant = bits & ((uint64_t{1} << 52) - 1);
  const int biased = static_cast<int>((bits >> 52) & 0x7ff);
  if (biased == 0 || biased == 0x7ff) {
    if ((bits << 1) == 0) {  // +/- zero
      out->append(bits >> 63 ? "-0x0p+0" : "0x0p+0");
      return;
    }
    char buf[40];  // subnormal / inf / nan
    out->append(buf, static_cast<size_t>(
                         std::snprintf(buf, sizeof buf, "%a", v)));
    return;
  }
  if (bits >> 63) out->push_back('-');
  out->append("0x1");
  if (mant != 0) {
    out->push_back('.');
    static const char kHex[] = "0123456789abcdef";
    uint64_t m = mant;
    int nibbles = 13;
    while ((m & 0xf) == 0) {
      m >>= 4;
      --nibbles;
    }
    for (int i = 0; i < nibbles; ++i) {
      out->push_back(kHex[(mant >> (48 - 4 * i)) & 0xf]);
    }
  }
  out->push_back('p');
  const int e = biased - 1023;
  out->push_back(e < 0 ? '-' : '+');
  AppendU64(out, static_cast<uint64_t>(e < 0 ? -e : e));
}

uint64_t WorkloadFingerprint(const workload::Workload& workload) {
  uint64_t h = HashBytes("dta-workload");
  for (const auto& ws : workload.statements()) {
    h = HashCombine(h, HashBytes(ws.text));
    h = HashCombine(h, HashBytes(StrFormat("%a", ws.weight)));
  }
  return h;
}

uint64_t OptionsFingerprint(const TuningOptions& o) {
  // Every option that can change the recommendation, in a fixed order.
  // num_threads, shards, shard_max_inflight, the transport section
  // (transport, socket_endpoints, rpc_attempt_timeout_ms), the checkpoint
  // paths, and checkpoint_budget_pct are excluded on purpose: results are
  // invariant to thread count and shard/transport topology (a 4-shard
  // checkpoint legitimately resumes on 2 shards, and an inproc checkpoint
  // resumes over sockets), and where a snapshot lives — or how often round
  // snapshots are written — does not change what it resumes to.
  // shard_fault_spec IS included: per-shard faults can degrade pricings and
  // so can change the recommendation, exactly like fault_spec.
  // derived_costing and derivation_error_bound_pct are included (they decide
  // which cache entries hold derived costs); exact_costing is not — exact
  // mode publishes real costs, which any mode can safely resume from.
  // quarantined_structures IS included (a quarantine filters the candidate
  // pool and so changes the recommendation); export_session_state is not —
  // it only adds output fields to the result.
  std::ostringstream out;
  out << o.tune_indexes << '|' << o.tune_materialized_views << '|'
      << o.tune_partitioning << '|' << o.require_alignment << '|'
      << (o.storage_bytes.has_value() ? StrFormat("%llu",
                                                  static_cast<unsigned long long>(
                                                      *o.storage_bytes))
                                      : "-")
      << '|'
      << (o.time_limit_ms.has_value() ? StrFormat("%a", *o.time_limit_ms)
                                      : "-")
      << '|' << o.keep_existing_structures << '|' << o.workload_compression
      << '|' << o.reduced_statistics << '|' << o.fault_spec << '|'
      << o.shard_fault_spec << '|' << o.retry.max_attempts << '|'
      << StrFormat("%a", o.retry.initial_backoff_ms)
      << '|' << StrFormat("%a", o.retry.backoff_multiplier) << '|'
      << StrFormat("%a", o.retry.max_backoff_ms) << '|'
      << StrFormat("%a", o.retry.jitter_fraction) << '|'
      << o.degrade_on_failure << '|' << o.derived_costing << '|'
      << StrFormat("%a", o.derivation_error_bound_pct) << '|'
      << o.candidate_selection_m << '|'
      << o.candidate_selection_k << '|' << o.max_candidates_per_statement
      << '|' << o.enumeration_m << '|' << o.enumeration_k << '|'
      << StrFormat("%a", o.min_improvement_fraction) << '|'
      << o.max_enumeration_candidates << '|'
      << StrFormat("%a", o.column_group_cost_fraction) << '|'
      << o.max_column_group_size << '|' << o.enable_merging << '|'
      << o.lazy_alignment << '|' << o.max_partition_boundaries << '|'
      << ConfigurationToXml(o.user_specified)->ToString();
  for (const auto& name : o.quarantined_structures) out << '|' << name;
  return HashBytes(out.str());
}

std::string CheckpointToXml(const SessionCheckpoint& ckpt) {
  xml::Element root("DTACheckpoint");
  root.SetAttr("Version", "2");
  root.SetAttr("WorkloadFingerprint",
               StrFormat("%llu", static_cast<unsigned long long>(
                                     ckpt.workload_fingerprint)));
  root.SetAttr("OptionsFingerprint",
               StrFormat("%llu", static_cast<unsigned long long>(
                                     ckpt.options_fingerprint)));
  root.SetAttr("Phase", StrFormat("%d", ckpt.phase));
  root.SetAttr("Shards", StrFormat("%d", ckpt.shards));
  root.SetAttr("Transport", ckpt.transport);
  root.SetAttr("StatsRequested", StrFormat("%zu", ckpt.stats_requested));
  root.SetAttr("StatsCreated", StrFormat("%zu", ckpt.stats_created));
  root.SetAttr("StatsCreationMs", HexDouble(ckpt.stats_creation_ms));
  root.SetAttr("CandidatesGenerated",
               StrFormat("%zu", ckpt.candidates_generated));

  xml::Element* costs = root.AddChild("CurrentCosts");
  for (double c : ckpt.current_costs) costs->AddTextChild("Cost", HexDouble(c));

  xml::Element* missing = root.AddChild("MissingStats");
  for (const auto& key : ckpt.missing_stats) StatsKeyToXml(key, missing);
  xml::Element* created = root.AddChild("CreatedStats");
  for (const auto& key : ckpt.created_stats) StatsKeyToXml(key, created);

  // Entries arrive from CostService::ExportCache already in deterministic
  // (statement index, fingerprint) order — per-shard std::map iteration,
  // shards walked in statement order — so the checkpoint document is
  // byte-identical across runs and thread counts. Keep that contract if the
  // cache container ever changes (dta_lint's unordered-output rule guards
  // this file against unordered-container iteration).
  //
  // The cache dominates the document (thousands of entries; everything else
  // is tens of elements) and a checkpoint lands after every phase and
  // enumeration round, so this section is bulk-encoded as one text blob —
  // one "statement cost flags shared suffix" line per entry — instead of
  // an element per entry (format version 2). `flags` is bit 0 = degraded,
  // bit 1 = derived (documents written before derived costing carry plain
  // 0/1 degraded values, which decode identically). Fingerprints are
  // front-coded:
  // `shared` is the prefix length reused from the previous line's decoded
  // fingerprint, and `suffix` is the remainder. Consecutive fingerprints
  // sort together and share long configuration prefixes, so this shrinks
  // the document severalfold and keeps a full checkpoint write in the
  // low-millisecond range — which is what lets the checkpoint_budget_pct
  // amortization hold checkpoint overhead under 1% of tuning wall-clock.
  // The suffix is the final field and runs to end-of-line, so any
  // characters short of a newline are safe; an empty suffix may leave a
  // space the parser's outer trim eats on the last line, which decodes
  // identically (empty either way).
  std::string cache_blob;
  cache_blob.reserve(ckpt.cache.size() * 48);
  const std::string* prev = nullptr;
  for (const auto& entry : ckpt.cache) {
    const std::string& fp = entry.fingerprint;
    size_t shared = 0;
    if (prev != nullptr) {
      const size_t limit = std::min(prev->size(), fp.size());
      while (shared < limit && (*prev)[shared] == fp[shared]) ++shared;
    }
    AppendU64(&cache_blob, entry.statement);
    cache_blob.push_back(' ');
    AppendHexDouble(&cache_blob, entry.cost);
    cache_blob.push_back(' ');
    AppendU64(&cache_blob, (entry.degraded ? 1u : 0u) |
                               (entry.derived ? 2u : 0u));
    cache_blob.push_back(' ');
    AppendU64(&cache_blob, shared);
    cache_blob.push_back(' ');
    cache_blob.append(fp.data() + shared, fp.size() - shared);
    cache_blob.push_back('\n');
    prev = &fp;
  }
  if (!cache_blob.empty()) cache_blob.pop_back();
  root.AddTextChild("CostCache", std::move(cache_blob));

  if (!ckpt.degraded_statements.empty()) {
    // std::set iteration order makes this deterministic.
    std::string degraded;
    for (size_t i : ckpt.degraded_statements) {
      if (!degraded.empty()) degraded.push_back(' ');
      AppendU64(&degraded, i);
    }
    root.AddTextChild("DegradedStatements", std::move(degraded));
  }

  if (ckpt.phase >= kCheckpointPoolReady) {
    xml::Element* pool = root.AddChild("CandidatePool");
    for (const auto& cand : ckpt.pool) CandidateToXml(cand, pool);
  }

  if (ckpt.phase >= kCheckpointEnumeration) {
    xml::Element* en = root.AddChild("Enumeration");
    en->SetAttr("Phase1Done", BoolStr(ckpt.enumeration.phase1_done));
    en->SetAttr("Cost", HexDouble(ckpt.enumeration.cost));
    for (const auto& name : ckpt.enumeration.chosen) {
      en->AddTextChild("Chosen", name);
    }
    for (int s : ckpt.enumeration.strikes) {
      en->AddTextChild("Strike", StrFormat("%d", s));
    }
  }
  return root.ToString(/*prolog=*/true);
}

Result<SessionCheckpoint> CheckpointFromXml(const std::string& xml_text,
                                            const catalog::Catalog& catalog) {
  auto parsed = xml::Parse(xml_text);
  if (!parsed.ok()) return parsed.status();
  const xml::Element& root = **parsed;
  if (root.name() != "DTACheckpoint") {
    return Status::InvalidArgument("not a DTACheckpoint document");
  }
  if (root.Attr("Version") != "2") {
    return Status::InvalidArgument(
        "DTACheckpoint version mismatch (expected 2, got '" +
        root.Attr("Version") + "')");
  }
  SessionCheckpoint ckpt;
  ckpt.workload_fingerprint = ParseU64(root.Attr("WorkloadFingerprint"));
  ckpt.options_fingerprint = ParseU64(root.Attr("OptionsFingerprint"));
  ckpt.phase = std::atoi(root.Attr("Phase").c_str());
  if (ckpt.phase < kCheckpointCurrentCosts ||
      ckpt.phase > kCheckpointEnumeration) {
    return Status::InvalidArgument("DTACheckpoint has an unknown phase");
  }
  // Absent on documents written before shard topologies existed: those were
  // single-server sessions.
  const std::string shards_attr = root.Attr("Shards");
  ckpt.shards = shards_attr.empty() ? 1 : std::atoi(shards_attr.c_str());
  if (ckpt.shards < 1) {
    return Status::InvalidArgument(
        "DTACheckpoint records an invalid shard topology (Shards='" +
        shards_attr + "'); refusing to resume");
  }
  // Informational, absent on older documents (all of which were inproc).
  const std::string transport_attr = root.Attr("Transport");
  ckpt.transport = transport_attr.empty() ? "inproc" : transport_attr;
  ckpt.stats_requested =
      static_cast<size_t>(ParseU64(root.Attr("StatsRequested")));
  ckpt.stats_created =
      static_cast<size_t>(ParseU64(root.Attr("StatsCreated")));
  ckpt.stats_creation_ms = ParseDouble(root.Attr("StatsCreationMs"));
  ckpt.candidates_generated =
      static_cast<size_t>(ParseU64(root.Attr("CandidatesGenerated")));

  if (const xml::Element* costs = root.FindChild("CurrentCosts")) {
    for (const xml::Element* c : costs->FindChildren("Cost")) {
      ckpt.current_costs.push_back(ParseDouble(c->text()));
    }
  }
  if (const xml::Element* missing = root.FindChild("MissingStats")) {
    for (const xml::Element* s : missing->FindChildren("Stats")) {
      ckpt.missing_stats.insert(StatsKeyFromXml(*s));
    }
  }
  if (const xml::Element* created = root.FindChild("CreatedStats")) {
    for (const xml::Element* s : created->FindChildren("Stats")) {
      ckpt.created_stats.push_back(StatsKeyFromXml(*s));
    }
  }
  if (const xml::Element* cache = root.FindChild("CostCache")) {
    // Inverse of the front-coded bulk encoding above: one entry per line,
    // the fingerprint reassembled from the previous entry's prefix plus the
    // suffix running from the fourth space to end-of-line (possibly empty —
    // the base configuration fingerprints to the empty string).
    const std::string& blob = cache->text();
    const char* p = blob.c_str();
    const char* end = p + blob.size();
    std::string prev_fp;
    while (p < end) {
      char* q = nullptr;
      CostService::CacheEntry entry;
      entry.statement = static_cast<size_t>(std::strtoull(p, &q, 10));
      entry.cost = std::strtod(q, &q);
      const long flags = std::strtol(q, &q, 10);
      entry.degraded = (flags & 1) != 0;
      entry.derived = (flags & 2) != 0;
      const size_t shared =
          static_cast<size_t>(std::strtoull(q, &q, 10));
      if (q < end && *q == ' ') ++q;
      const char* nl = static_cast<const char*>(
          std::memchr(q, '\n', static_cast<size_t>(end - q)));
      if (nl == nullptr) nl = end;
      if (q > nl || shared > prev_fp.size()) {
        return Status::InvalidArgument("DTACheckpoint has a malformed "
                                       "CostCache line");
      }
      entry.fingerprint.assign(prev_fp, 0, shared);
      entry.fingerprint.append(q, static_cast<size_t>(nl - q));
      prev_fp = entry.fingerprint;
      ckpt.cache.push_back(std::move(entry));
      p = nl + 1;
    }
  }
  // Absent on documents written before degraded-statement carry-over (and
  // on fault-free sessions).
  if (const xml::Element* degraded = root.FindChild("DegradedStatements")) {
    const char* p = degraded->text().c_str();
    char* q = nullptr;
    for (size_t i = std::strtoull(p, &q, 10); p != q;
         i = std::strtoull(p, &q, 10)) {
      ckpt.degraded_statements.insert(i);
      p = q;
    }
  }
  if (const xml::Element* pool = root.FindChild("CandidatePool")) {
    for (const xml::Element* c : pool->FindChildren("Candidate")) {
      auto cand = CandidateFromXml(*c, catalog);
      if (!cand.ok()) return cand.status();
      ckpt.pool.push_back(std::move(cand).value());
    }
  }
  if (const xml::Element* en = root.FindChild("Enumeration")) {
    ckpt.enumeration.phase1_done = ParseBool(en->Attr("Phase1Done"));
    ckpt.enumeration.cost = ParseDouble(en->Attr("Cost"));
    for (const xml::Element* c : en->FindChildren("Chosen")) {
      ckpt.enumeration.chosen.push_back(c->text());
    }
    for (const xml::Element* s : en->FindChildren("Strike")) {
      ckpt.enumeration.strikes.push_back(std::atoi(s->text().c_str()));
    }
  }
  return ckpt;
}

Status SaveCheckpoint(const std::string& path,
                      const SessionCheckpoint& checkpoint) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot write checkpoint file: " + tmp);
    }
    out << CheckpointToXml(checkpoint);
    out.flush();
    if (!out) {
      return Status::Internal("short write to checkpoint file: " + tmp);
    }
  }
  // Atomic replace: a crash between write and rename leaves the previous
  // checkpoint intact; a crash mid-write only corrupts the .tmp file.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename checkpoint into place: " + path);
  }
  return Status::Ok();
}

Result<SessionCheckpoint> LoadCheckpoint(const std::string& path,
                                         const catalog::Catalog& catalog) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open checkpoint file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return CheckpointFromXml(buffer.str(), catalog);
}

// ---- Delta log (format v3) ------------------------------------------------

namespace {

std::string EncodeDeltaRecord(const char* kind, const std::string& payload) {
  std::string record("DTAS3 ");
  record += kind;
  record.push_back(' ');
  AppendU64(&record, payload.size());
  record.push_back(' ');
  AppendU64(&record, HashBytes(payload));
  record.push_back('\n');
  record += payload;
  record.push_back('\n');
  return record;
}

// Parses one record at [*p, end). On success advances *p past the record and
// fills kind/payload. Any malformation — bad magic, unknown kind, header
// fields that are not numbers, payload running past EOF, missing trailing
// newline, checksum mismatch — returns false with *p untouched; the caller
// treats everything from *p on as a torn tail.
bool DecodeDeltaRecord(const char** p, const char* end, std::string* kind,
                       std::string* payload) {
  const char* cur = *p;
  const char* nl = static_cast<const char*>(
      std::memchr(cur, '\n', static_cast<size_t>(end - cur)));
  if (nl == nullptr) return false;
  const std::string header(cur, static_cast<size_t>(nl - cur));
  // "DTAS3 <kind> <payload-bytes> <fnv64-checksum>"
  if (header.rfind("DTAS3 ", 0) != 0) return false;
  const size_t kind_start = 6;
  const size_t kind_end = header.find(' ', kind_start);
  if (kind_end == std::string::npos) return false;
  const std::string k = header.substr(kind_start, kind_end - kind_start);
  if (k != "base" && k != "seg") return false;
  char* q = nullptr;
  const char* num = header.c_str() + kind_end + 1;
  const uint64_t bytes = std::strtoull(num, &q, 10);
  if (q == num || *q != ' ') return false;
  num = q + 1;
  const uint64_t checksum = std::strtoull(num, &q, 10);
  if (q == num || *q != '\0') return false;
  const char* body = nl + 1;
  if (bytes > static_cast<uint64_t>(end - body)) return false;
  // Every record ends in a newline of its own, so a crash that truncates the
  // payload mid-write is detected even when the payload's declared length
  // happens to fit in the remaining bytes.
  if (static_cast<uint64_t>(end - body) == bytes ||
      body[bytes] != '\n') {
    return false;
  }
  std::string pl(body, static_cast<size_t>(bytes));
  if (HashBytes(pl) != checksum) return false;
  *kind = k;
  *payload = std::move(pl);
  *p = body + bytes + 1;
  return true;
}

}  // namespace

Status WriteDeltaBase(const std::string& path, const std::string& base) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      return Status::Internal("cannot write delta log file: " + tmp);
    }
    out << EncodeDeltaRecord("base", base);
    out.flush();
    if (!out) {
      return Status::Internal("short write to delta log file: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename delta log into place: " + path);
  }
  return Status::Ok();
}

Status AppendDeltaSegment(const std::string& path, const std::string& segment,
                          size_t* appended_bytes) {
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) {
      return Status::FailedPrecondition(
          "delta log has no base record yet (WriteDeltaBase first): " + path);
    }
  }
  const std::string record = EncodeDeltaRecord("seg", segment);
  std::ofstream out(path, std::ios::app | std::ios::binary);
  if (!out) {
    return Status::Internal("cannot append to delta log file: " + path);
  }
  out << record;
  out.flush();
  if (!out) {
    return Status::Internal("short append to delta log file: " + path);
  }
  if (appended_bytes != nullptr) *appended_bytes = record.size();
  return Status::Ok();
}

Result<DeltaLogContents> ReadDeltaLog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open delta log file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const char* p = text.c_str();
  const char* end = p + text.size();

  DeltaLogContents contents;
  std::string kind;
  std::string payload;
  if (!DecodeDeltaRecord(&p, end, &kind, &payload) || kind != "base") {
    // The base is written atomically, so a file without a valid leading base
    // record was never a valid delta log — unlike a torn appended tail,
    // there is nothing to salvage.
    return Status::InvalidArgument(
        "delta log has no valid base record: " + path);
  }
  contents.base = std::move(payload);
  while (p < end) {
    if (!DecodeDeltaRecord(&p, end, &kind, &payload) || kind != "seg") {
      // Torn or corrupt tail (crash mid-append): drop it and everything
      // after it — the framing is lost from here on.
      contents.dropped_records = 1;
      break;
    }
    contents.segments.push_back(std::move(payload));
  }
  return contents;
}

}  // namespace dta::tuner
