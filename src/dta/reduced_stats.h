// Reduced statistics creation (paper §5.2): given the set of statistics DTA
// wants (one per candidate index key, plus singletons the optimizer asked
// for), find a smallest subset whose creation yields the same histogram and
// density information.
//
// A statistic on columns (A,B,C) provides a histogram on A and densities for
// the prefix sets {A}, {A,B}, {A,B,C}; density is order-insensitive
// (Density(A,B) == Density(B,A)). The greedy set-cover of the paper picks,
// at each step, the remaining statistic covering the most still-needed
// H-list (histogram column) and D-list (density set) entries.

#ifndef DTA_DTA_REDUCED_STATS_H_
#define DTA_DTA_REDUCED_STATS_H_

#include <set>
#include <vector>

#include "stats/statistics.h"

namespace dta::tuner {

struct StatsCreationPlan {
  // Statistics to actually create (subset of the request).
  std::vector<stats::StatsKey> to_create;
  // |requested| — what the naive strategy would create.
  size_t naive_count = 0;
};

// `already_present` statistics contribute their information for free and
// are never re-created.
StatsCreationPlan PlanReducedStatistics(
    const std::set<stats::StatsKey>& requested,
    const std::vector<const stats::Statistics*>& already_present = {});

}  // namespace dta::tuner

#endif  // DTA_DTA_REDUCED_STATS_H_
