// Inputs that control a tuning session (paper §2.1): the feature set to
// tune, manageability (alignment) and storage constraints, an optional time
// bound, a user-specified partial configuration, and the scalability knobs
// (workload compression §5.1, reduced statistics §5.2).

#ifndef DTA_DTA_TUNING_OPTIONS_H_
#define DTA_DTA_TUNING_OPTIONS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "catalog/physical_design.h"

namespace dta::tuner {

// Retry policy for what-if optimizer calls (robustness layer). A transient
// failure (Unavailable/DeadlineExceeded) is retried with exponential backoff
// and deterministic jitter, capped by `max_attempts` and by the remaining
// session time budget; any other failure — or exhausting the retries — makes
// the cost service degrade to the heuristic estimate instead of aborting the
// session.
struct RetryPolicy {
  int max_attempts = 4;           // total attempts, including the first
  double initial_backoff_ms = 1;  // sleep before the second attempt
  double backoff_multiplier = 2;
  double max_backoff_ms = 64;
  double jitter_fraction = 0.5;  // +/- fraction of the backoff, hash-derived
};

struct TuningOptions {
  // ---- Feature set (paper §3: DBAs may restrict tuning to a subset).
  bool tune_indexes = true;
  bool tune_materialized_views = true;
  bool tune_partitioning = true;

  // ---- Manageability (paper §4): every table and all of its indexes must
  // be partitioned identically.
  bool require_alignment = false;

  // ---- Constraints.
  // Upper bound on total storage of the recommended physical design.
  std::optional<uint64_t> storage_bytes;
  // Upper bound on tuning wall-clock time (ms).
  std::optional<double> time_limit_ms;

  // ---- Customization (paper §6.2): structures that must be part of the
  // recommendation (evaluated, never dropped).
  catalog::Configuration user_specified;

  // When true, existing non-constraint structures of the current design are
  // kept unconditionally; when false (DTA's default behaviour), they become
  // ordinary candidates — re-recommended only when they pay for themselves,
  // so DTA effectively recommends DROPs of harmful structures.
  bool keep_existing_structures = false;

  // ---- DBA feedback (semi-automatic tuning; continuous service mode).
  // Canonical names of structures a DBA has rejected: candidates with these
  // names are removed from the enumeration pool before search, so they
  // cannot appear in the recommendation. The continuous tuner fills this
  // from `reject` feedback lines for the quarantine horizon. Included in
  // the options fingerprint — a different quarantine set legitimately
  // changes the recommendation.
  std::vector<std::string> quarantined_structures;

  // ---- Scalability features.
  bool workload_compression = true;
  bool reduced_statistics = true;
  // Worker threads for what-if costing fan-out (current-cost pass,
  // per-statement candidate selection, greedy-round evaluations). 0 means
  // "auto" (std::thread::hardware_concurrency()); 1 restores fully serial
  // tuning, bit-for-bit. Recommendations, costs, and the what-if call
  // counter are identical at any thread count (cold misses are deduplicated
  // in-flight, so a (statement, fingerprint) pair is priced exactly once);
  // only wall-clock time varies.
  int num_threads = 0;
  int ResolvedNumThreads() const {
    if (num_threads > 0) return num_threads;
    unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
  }

  // ---- Distributed costing (sharded what-if backend).
  // Number of costing shards. 1 prices every what-if call on the tuning
  // server alone; N > 1 clones the tuning server into N - 1 deep replicas
  // and fans calls across all N via rendezvous hashing on the call key
  // (dta/shard_router.h), with failover between shards on node failure.
  // Recommendations, costs, and whatif_calls are byte-identical at any
  // shard count — only wall-clock and per-shard load vary — so `shards` is
  // excluded from the checkpoint options fingerprint and a checkpoint
  // written under one topology resumes under another.
  int shards = 1;
  // Per-shard fault injection: ";"-separated "<shard>:<FaultSpec>" entries,
  // e.g. "1:down_after=30;2:transient=0.2,seed=9". Shard 0 is the tuning
  // server itself (targeting it here conflicts with `fault_spec` below).
  // Empty disables per-shard injection.
  std::string shard_fault_spec;
  // Bound on concurrent what-if calls admitted per shard (back-pressure;
  // callers past the bound block). 0 means "auto": twice the resolved
  // thread count, at least 4.
  int shard_max_inflight = 0;
  // Latency-based fail-slow isolation: a shard whose successful-call latency
  // EWMA exceeds this multiple of the fleet-median EWMA is demoted to
  // probe-only routing until it recovers (dta/shard_router.h). 0 (default)
  // disables the detector. Demotion is routing-only — recommendations stay
  // byte-identical with the detector on or off — so, like `shards`, this is
  // excluded from the checkpoint options fingerprint.
  double shard_slow_threshold = 0;

  // ---- Costing transport.
  // kInproc routes what-if calls to in-process server replicas through
  // synchronous channels (the original sharded-costing mode). kSocket
  // connects every shard to a cost_server worker process over a Unix
  // socket (dta/rpc/transport.h) and drives calls through the event-driven
  // completion queue — timeouts and worker failures requeue the statement
  // on another shard instead of parking a worker thread in backoff.
  // Transport is pure topology: recommendations are byte-identical under
  // either value (and across transport switches on resume), so, like
  // `shards`, everything in this section is excluded from the checkpoint
  // options fingerprint.
  enum class Transport { kInproc, kSocket };
  Transport transport = Transport::kInproc;
  // Socket transport only: one worker socket path per shard. Size must
  // equal `shards`; validated by the session.
  std::vector<std::string> socket_endpoints;
  // Socket transport only: per-attempt budget (ms) before the completion
  // queue abandons an in-flight request and requeues the call elsewhere.
  // 0 means the router default.
  double rpc_attempt_timeout_ms = 0;

  // ---- Derived costing (CoPhy-style atomic-configuration derivation).
  // When true (default), cache misses whose configuration decomposes into
  // per-access-path atomic configurations are answered by the combine rule
  // over memoized atom costs instead of a real what-if call
  // (dta/derived_cost.h). Derivation decisions are a pure function of the
  // (statement, fingerprint) pair, so recommendations and all derived
  // counters stay byte-identical at any (threads × shards) combination.
  bool derived_costing = true;
  // Exactness gate: price every derivable miss both ways, record the
  // derivation error distribution (derivation.error_pct histogram), and use
  // the real cost. Verifies the combine rule; saves nothing.
  bool exact_costing = false;
  // Maximum tolerated derivation error, percent. 0 (default) demands exact
  // derivations: only full decompositions are used and, in exact mode, any
  // measured error counts as exceeded. A nonzero bound additionally admits
  // the bounded singleton approximation for decompositions with too many
  // atoms when its a-priori error estimate fits under the bound.
  double derivation_error_bound_pct = 0;

  // ---- Robustness (fault tolerance of the what-if costing path).
  // Fault injection scenario for the tuning server's what-if interface, as a
  // FaultSpec string ("seed=42,transient=0.1,permanent=0.01,latency_ms=0.5");
  // empty disables injection. Used by tests, benches, and the CI fault
  // profile to script optimizer-call failures.
  std::string fault_spec;
  // Retry/backoff/deadline policy for transient what-if failures.
  RetryPolicy retry;
  // When true (default), statements whose what-if calls fail persistently
  // fall back to the catalog-only heuristic estimate and are marked degraded
  // in the report; when false, the first persistent failure aborts tuning.
  bool degrade_on_failure = true;

  // ---- Crash safety (checkpoint/resume).
  // When set, the session serializes its progress (cost cache, phase
  // outputs, greedy round state) to this path after every phase and every
  // enumeration round, via an atomic tmp-file + rename.
  std::string checkpoint_path;
  // When set, the session restores the checkpoint at this path before
  // tuning and skips completed work; the final recommendation is
  // bit-identical to an uninterrupted run.
  std::string resume_path;
  // Caps the wall-clock fraction spent writing enumeration-round progress
  // checkpoints: a round snapshot is only written once enough time has
  // passed since the previous write to amortize that write's cost under
  // this percentage (elapsed * pct/100 >= previous write's duration), so
  // total progress-checkpoint time stays below pct% of tuning wall-clock
  // by construction. Phase-boundary checkpoints always write — resume
  // correctness never depends on round snapshots, they only shrink the
  // redo window after a crash. 0 disables throttling and checkpoints every
  // round (maximal crash granularity; what the resume tests exercise).
  double checkpoint_budget_pct = 0;
  // When true, TuningResult additionally carries the session's final what-if
  // cost cache and the keys of every statistic it created
  // (TuningResult::final_cache / created_stats). The continuous tuner uses
  // this to seed the next round's session so steady-state rounds re-price
  // only what actually changed. Pure output — excluded from the options
  // fingerprint (it cannot change the recommendation).
  bool export_session_state = false;

  // ---- Search parameters.
  // Greedy(m,k) for per-query candidate selection.
  int candidate_selection_m = 2;
  int candidate_selection_k = 3;
  int max_candidates_per_statement = 12;
  // Greedy(m,k) for final enumeration.
  int enumeration_m = 1;
  int enumeration_k = 20;
  // Enumeration stops when a greedy round improves workload cost by less
  // than this fraction (a structure with negligible benefit is not worth
  // its storage, maintenance, or the what-if calls to keep considering it).
  double min_improvement_fraction = 0.004;
  // The global candidate pool entering enumeration is capped to the best
  // candidates by per-query benefit (keeps what-if call volume bounded on
  // large workloads).
  int max_enumeration_candidates = 40;
  // Column-group restriction: groups below this fraction of total workload
  // cost are pruned (§2.2); <= 0 disables the restriction.
  double column_group_cost_fraction = 0.005;
  int max_column_group_size = 3;
  // Merging step on/off (§2.2).
  bool enable_merging = true;
  // Lazy (vs eager) introduction of aligned candidate variants (§4).
  bool lazy_alignment = true;
  // Range partitioning fan-out for proposed schemes.
  int max_partition_boundaries = 8;

  // Convenience presets ---------------------------------------------------
  static TuningOptions IndexesOnly() {
    TuningOptions o;
    o.tune_materialized_views = false;
    o.tune_partitioning = false;
    return o;
  }
  static TuningOptions IndexesAndViews() {
    TuningOptions o;
    o.tune_partitioning = false;
    return o;
  }
};

}  // namespace dta::tuner

#endif  // DTA_DTA_TUNING_OPTIONS_H_
