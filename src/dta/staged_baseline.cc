#include "dta/staged_baseline.h"

namespace dta::tuner {

Result<StagedResult> TuneStaged(server::Server* production,
                                const workload::Workload& workload,
                                const TuningOptions& base_options) {
  StagedResult out;

  // Stage 1: partitioning only.
  TuningOptions stage1 = base_options;
  stage1.tune_indexes = false;
  stage1.tune_materialized_views = false;
  stage1.tune_partitioning = true;
  {
    TuningSession session(production, stage1);
    auto r = session.Tune(workload);
    if (!r.ok()) return r.status();
    out.partitioning_stage = std::move(r).value();
  }

  // Stage 2: indexes, with stage 1's choices locked in.
  TuningOptions stage2 = base_options;
  stage2.tune_indexes = true;
  stage2.tune_materialized_views = false;
  stage2.tune_partitioning = false;
  stage2.user_specified = out.partitioning_stage.recommendation;
  {
    TuningSession session(production, stage2);
    auto r = session.Tune(workload);
    if (!r.ok()) return r.status();
    out.index_stage = std::move(r).value();
  }

  // Stage 3: materialized views, with stages 1+2 locked in.
  TuningOptions stage3 = base_options;
  stage3.tune_indexes = false;
  stage3.tune_materialized_views = true;
  stage3.tune_partitioning = false;
  stage3.user_specified = out.index_stage.recommendation;
  {
    TuningSession session(production, stage3);
    auto r = session.Tune(workload);
    if (!r.ok()) return r.status();
    out.view_stage = std::move(r).value();
  }

  out.final_configuration = out.view_stage.recommendation;
  out.current_cost = out.view_stage.current_cost;
  out.final_cost = out.view_stage.recommended_cost;
  out.total_tuning_ms = out.partitioning_stage.tuning_time_ms +
                        out.index_stage.tuning_time_ms +
                        out.view_stage.tuning_time_ms;
  return out;
}

}  // namespace dta::tuner
