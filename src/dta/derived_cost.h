// CoPhy-style derived what-if costing (PAPERS.md: "CoPhy: A Scalable,
// Portable, and Interactive Index Advisor for Large Workloads").
//
// Most configurations DTA prices differ from one another only in which of a
// handful of per-table candidate indexes are present. Because the optimizer
// picks exactly one access path per table (optimizer.cc: BuildAccessPaths +
// per-table path selection) and treats a materialized view as a whole-query
// alternative, the cost of a statement under a rich configuration can be
// *derived* from the costs of much smaller "atomic" configurations:
//
//   cost(stmt, ctx ∪ V) = min over atoms A of cost(stmt, A)
//
// where `ctx` is the fixed context every atom shares (clustered and
// constraint-enforcing indexes, table partitioning — the table organization,
// which affects every access path), `V` is the set of variable structures
// (nonclustered non-constraint indexes and materialized views), and the
// atoms are
//
//   - every one-index-per-table combination of the variable indexes
//     (including "no index" per table, so the bare context is an atom), and
//   - ctx ∪ {v} for each relevant view v (a view either replaces the whole
//     query or is unused, and its replacement cost does not depend on which
//     indexes exist).
//
// Atoms are ordinary configurations: the cost service prices them through
// its normal cached/deduplicated path, so each atom is priced at most once
// per session regardless of thread or shard count, and derived answers are
// a pure function of the (statement, fingerprint) pair — never of arrival
// order. DML statements are excluded: their cost mixes a min (the locate
// plan) with additive per-structure maintenance and does not decompose.
//
// When the one-per-table combination count explodes, the decomposition
// reports kTooManyAtoms; the caller either falls back to a real what-if
// call or (when a nonzero --derivation-error-bound allows it) answers from
// the singleton atoms with an explicit error estimate.

#ifndef DTA_DTA_DERIVED_COST_H_
#define DTA_DTA_DERIVED_COST_H_

#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "catalog/physical_design.h"
#include "sql/ast.h"

namespace dta::tuner {

// Knobs for the derived-cost layer (CostService::Config embeds one).
struct DerivedCostOptions {
  // Master switch. Off: every cache miss makes a real what-if call.
  bool enabled = false;
  // Exactness gate: price every derivable miss BOTH ways, record the
  // derivation error (|derived - real| / real) in the "derivation.error_pct"
  // histogram, and publish the real cost. Costs more than plain costing;
  // exists to verify the combine rule, not to save calls.
  bool exact = false;
  // Maximum tolerated derivation error, percent. In exact mode, errors
  // above the bound are counted (derivation_errors_exceeded). In normal
  // mode a nonzero bound additionally admits the bounded singleton
  // approximation when the decomposition has too many atoms, as long as its
  // a-priori error estimate stays under the bound.
  double error_bound_pct = 0;
  // Decompositions with more atoms than this fall back (kTooManyAtoms).
  size_t max_atoms = 64;
};

// The subset of a configuration relevant to one statement: exactly the
// structures CostService keys its cache fingerprints on. Collected once per
// miss and shared by fingerprinting and decomposition so the two can never
// disagree about relevance.
struct RelevantSet {
  std::vector<catalog::IndexDef> indexes;  // sorted by CanonicalName
  std::vector<catalog::ViewDef> views;     // sorted by CanonicalName
  // (table, scheme) pairs in table order.
  std::vector<std::pair<std::string, catalog::PartitionScheme>> partitioning;
};

// Structures of `config` relevant to a statement touching `statement_tables`
// (lower-cased table names).
RelevantSet CollectRelevant(const std::set<std::string>& statement_tables,
                            const catalog::Configuration& config);

// Cache fingerprint of a relevant set: the sorted canonical part strings
// joined with "|". Byte-compatible with checkpoints written by earlier
// versions (this is the former CostService::RelevantFingerprint).
std::string FingerprintOf(const RelevantSet& relevant);

struct Decomposition {
  enum class Outcome {
    // The configuration is its own atom (at most one variable index per
    // table and no view/index mix): derivation would not save anything.
    kTrivial,
    // Valid decomposition; `atoms` holds the atomic configurations.
    kDerivable,
    // DML statement with a non-trivial variable set: maintenance cost is
    // additive per structure and does not decompose into a min.
    kUnsupportedStatement,
    // The one-per-table combination count exceeds max_atoms; `atoms` holds
    // the bounded singleton atoms instead (context first, then one atom per
    // variable structure).
    kTooManyAtoms,
  };
  Outcome outcome = Outcome::kTrivial;
  // Atomic configurations, in a deterministic order that is a pure function
  // of the relevant set. For kDerivable the first atom is the bare context.
  std::vector<catalog::Configuration> atoms;
  // Index ranges of `atoms` (bounded form): atom 0 is the context and
  // variable_group_atoms[g] lists the atom indexes of group g's singletons
  // (groups are per-table index groups, then each view as its own group).
  std::vector<std::vector<size_t>> variable_group_atoms;
};

// Decomposes the relevant set for one statement. `statement_kind` decides
// DML handling; `max_atoms` bounds the one-per-table combination count.
Decomposition DecomposeConfiguration(sql::StatementKind statement_kind,
                                     const RelevantSet& relevant,
                                     size_t max_atoms);

// The combine rule: the derived cost is the minimum over atom costs.
double CombineAtomCosts(const std::vector<double>& atom_costs);

// A-priori error estimate (percent) for the bounded singleton
// approximation: the derived answer is U = min over atom costs (an upper
// bound on the true cost); the estimate compares U against the additive
// lower bound L = context_cost - sum over groups of (context_cost - best
// atom in the group), clamped at zero. `atom_costs` must be parallel to
// Decomposition::atoms of a kTooManyAtoms decomposition.
double BoundedErrorEstimatePct(const Decomposition& decomposition,
                               const std::vector<double>& atom_costs);

}  // namespace dta::tuner

#endif  // DTA_DTA_DERIVED_COST_H_
