#include "dta/tuning_session.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "dta/candidates.h"
#include "dta/checkpoint.h"
#include "dta/column_groups.h"
#include "dta/cost_service.h"
#include "dta/enumeration.h"
#include "dta/greedy.h"
#include "dta/merging.h"
#include "dta/reduced_stats.h"
#include "dta/rpc/transport.h"
#include "dta/shard_router.h"
#include "dta/tenant_driver.h"

namespace dta::tuner {

namespace {

// Detaches a fault injector from the tuning server on every exit path of
// Tune (there are many early returns; a dangling injector pointer on the
// server would outlive the session).
struct FaultInjectorGuard {
  server::Server* server = nullptr;
  ~FaultInjectorGuard() {
    if (server != nullptr) server->set_fault_injector(nullptr);
  }
};

// Same discipline for the metrics registry: the server must not keep
// profiling into a registry that dies with the session.
struct ServerMetricsGuard {
  server::Server* server = nullptr;
  ~ServerMetricsGuard() {
    if (server != nullptr) server->SetMetrics(nullptr);
  }
};

// Builds one statistic on every socket worker (a no-op on workers that
// already hold it). A failed RPC is retried: the channel reconnects on the
// next request, so a severed connection heals here instead of leaving one
// worker pricing with less information than the fleet — which would break
// the bit-identity contract. A worker that stays unreachable is fatal for
// the same reason.
Status MirrorStatToWorkers(const std::vector<rpc::SocketChannel*>& channels,
                           const stats::StatsKey& key) {
  constexpr int kAttempts = 3;
  for (rpc::SocketChannel* channel : channels) {
    Status s;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      s = channel->CreateStatistics(key);
      if (s.ok()) break;
    }
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace

TuningSession::TuningSession(server::Server* production,
                             TuningOptions options)
    : production_(production), options_(std::move(options)) {}

Status TuningSession::UseTestServer(server::Server* test) {
  if (test == nullptr) {
    test_ = nullptr;
    return Status::Ok();
  }
  if (test->catalog().databases().empty()) {
    return Status::FailedPrecondition(
        "test server has no databases; create it with "
        "Server::FromMetadataScript(production->ScriptMetadata(), ...)");
  }
  // Sanity: every production database must exist on the test server.
  for (const auto& [name, db] : production_->catalog().databases()) {
    if (test->catalog().FindDatabase(name) == nullptr) {
      return Status::FailedPrecondition(
          StrFormat("test server lacks database '%s'", name.c_str()));
    }
  }
  test_ = test;
  return Status::Ok();
}

Status TuningSession::CreateAndImportStats(
    const std::vector<stats::StatsKey>& keys,
    const std::vector<server::Server*>& replicas,
    const std::vector<rpc::SocketChannel*>& channels, TuningResult* result,
    std::vector<stats::StatsKey>* created_log) {
  for (const auto& key : keys) {
    if (production_->HasStatistics(key)) {
      // Already on production: only import (free) when in test mode.
    } else {
      auto duration = production_->CreateStatistics(key);
      if (!duration.ok()) {
        // Tables without data/specs cannot produce statistics; skip — the
        // optimizer falls back to heuristics for them. Socket workers run
        // on the same data, so their builds fail identically and the fleet
        // stays in lockstep without a mirror call.
        continue;
      }
      result->stats_created += 1;
      result->stats_creation_ms += *duration;
      if (created_log != nullptr) created_log->push_back(key);
    }
    const stats::Statistics* s = production_->stats_manager().Find(key);
    if (s == nullptr) continue;
    if (test_ != nullptr && !test_->HasStatistics(key)) {
      test_->ImportStatistics(*s);
    }
    // Shard replicas mirror the tuning server's statistics: every shard
    // must price with identical information or the backend's bit-identity
    // contract breaks.
    for (server::Server* replica : replicas) {
      if (!replica->HasStatistics(key)) replica->ImportStatistics(*s);
    }
    DTA_RETURN_IF_ERROR(MirrorStatToWorkers(channels, key));
  }
  return Status::Ok();
}

Status TuningSession::RestoreStats(
    const std::vector<stats::StatsKey>& keys,
    const std::vector<server::Server*>& replicas,
    const std::vector<rpc::SocketChannel*>& channels) {
  for (const auto& key : keys) {
    if (!production_->HasStatistics(key)) {
      auto duration = production_->CreateStatistics(key);
      // Same tolerance as the original run: a table that cannot produce
      // statistics is skipped there too.
      if (!duration.ok()) continue;
    }
    const stats::Statistics* s = production_->stats_manager().Find(key);
    if (s == nullptr) continue;
    if (test_ != nullptr && !test_->HasStatistics(key)) {
      test_->ImportStatistics(*s);
    }
    for (server::Server* replica : replicas) {
      if (!replica->HasStatistics(key)) replica->ImportStatistics(*s);
    }
    DTA_RETURN_IF_ERROR(MirrorStatToWorkers(channels, key));
  }
  return Status::Ok();
}

Result<catalog::Configuration> TuningSession::BaseConfiguration() const {
  catalog::Configuration base;
  for (const auto& ix : production_->current_configuration().indexes()) {
    if (ix.constraint_enforcing || options_.keep_existing_structures) {
      DTA_RETURN_IF_ERROR(base.AddIndex(ix));
    }
  }
  if (options_.keep_existing_structures) {
    for (const auto& v : production_->current_configuration().views()) {
      DTA_RETURN_IF_ERROR(base.AddView(v));
    }
    for (const auto& [table, scheme] :
         production_->current_configuration().table_partitioning()) {
      base.SetTablePartitioning(table, scheme);
    }
  }
  // User-specified configuration (paper §6.2) is honored verbatim.
  for (const auto& ix : options_.user_specified.indexes()) {
    Status s = base.AddIndex(ix);
    if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
  }
  for (const auto& v : options_.user_specified.views()) {
    Status s = base.AddView(v);
    if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
  }
  for (const auto& [table, scheme] :
       options_.user_specified.table_partitioning()) {
    base.SetTablePartitioning(table, scheme);
  }
  return base;
}

Result<TuningResult> TuningSession::Tune(const workload::Workload& input) {
  // One clock for every duration in the session (phase timings, pricing
  // latency, deadline checks): the injected one, or the real monotonic
  // clock. Using a single source keeps all exported timings comparable —
  // and exactly zero under a test's FakeClock.
  const Clock* clock =
      obs_.clock != nullptr ? obs_.clock : MonotonicClock::Instance();
  auto now_ms = [clock] { return clock->NowMs(); };
  DTA_TRACE_PHASE(obs_.tracer, "tune");
  const double t_start = now_ms();
  TuningResult result;
  result.events_total = input.size();

  // ---- Worker pool for what-if costing fan-out. The pool holds one thread
  // fewer than requested because ParallelFor lets the calling thread
  // participate; num_threads == 1 therefore means no pool at all and every
  // loop below degenerates to the exact serial code path.
  const int num_threads = std::max(1, options_.ResolvedNumThreads());
  std::unique_ptr<ThreadPool> workers_storage;
  ThreadPool* workers = nullptr;
  if (num_threads > 1) {
    workers_storage = std::make_unique<ThreadPool>(num_threads - 1);
    workers = workers_storage.get();
  }
  result.threads_used = num_threads;
  // Summed per-task time of the parallel phases vs. their elapsed time.
  std::atomic<double> parallel_work_ms{0};
  auto timed = [&parallel_work_ms, &now_ms](const std::function<void()>& fn) {
    const double t0 = now_ms();
    fn();
    parallel_work_ms.fetch_add(now_ms() - t0);
  };

  auto deadline_reached = [&]() {
    return options_.time_limit_ms.has_value() &&
           now_ms() - t_start > *options_.time_limit_ms;
  };

  // ---- Workload compression (§5.1).
  workload::Workload tuned;
  {
    DTA_TRACE_PHASE(obs_.tracer, "compression");
    if (options_.workload_compression) {
      tuned = workload::CompressWorkload(input, {}, &result.compression);
    } else {
      for (const auto& ws : input.statements()) {
        tuned.Add(ws.stmt.Clone(), ws.weight);
      }
      result.compression.original_statements = input.size();
      result.compression.compressed_statements = input.size();
      result.compression.templates = input.DistinctTemplates();
    }
  }
  result.events_tuned = tuned.size();
  if (tuned.empty()) {
    return Status::InvalidArgument("workload is empty");
  }

  server::Server* tuning_server = TuningServer();
  const optimizer::HardwareParams* simulate =
      test_ != nullptr ? &production_->hardware() : nullptr;

  // ---- Observability wiring: the server (and through it the optimizer)
  // profiles per-call counters into the session's registry; detached on
  // every exit path.
  ServerMetricsGuard metrics_guard;
  if (obs_.metrics != nullptr) {
    tuning_server->SetMetrics(obs_.metrics);
    metrics_guard.server = tuning_server;
  }

  // ---- Robustness wiring. A fault injector (tests, benches, CI fault
  // profile) attaches to the tuning server for the duration of the session;
  // the cost service retries transient what-if failures under the session's
  // remaining time budget and degrades persistent ones.
  std::unique_ptr<FaultInjector> injector;
  FaultInjectorGuard injector_guard;
  if (!options_.fault_spec.empty()) {
    auto spec = FaultSpec::Parse(options_.fault_spec);
    if (!spec.ok()) return spec.status();
    if (spec->Enabled()) {
      injector = std::make_unique<FaultInjector>(*spec);
      tuning_server->set_fault_injector(injector.get());
      injector_guard.server = tuning_server;
    }
  }
  // ---- Distributed costing backend (sharded what-if, ISSUE 5). Shard 0
  // is the tuning server itself; shards 1..N-1 are bit-exact clones of it.
  // Every statistic created below is fanned out to the clones, so any shard
  // answers any what-if call with the same cost — the router only decides
  // *where* a call runs, never *what* it returns, which keeps
  // recommendations byte-identical at every (threads x shards) combination.
  const int shard_count = std::max(1, options_.shards);
  const bool socket_transport =
      options_.transport == TuningOptions::Transport::kSocket;
  if (socket_transport) {
    // Everything the session would inject into an in-process fleet lives in
    // the worker processes now: fault injectors attach there (cost_server
    // --fault-spec), admission would have to gate there. Reject the knobs
    // that would otherwise silently do nothing.
    if (tenant_.admission != nullptr) {
      return Status::InvalidArgument(
          "socket transport cannot run under multi-tenant admission; "
          "admission gates the in-process what-if path, which socket "
          "workers bypass");
    }
    if (!options_.fault_spec.empty() || !options_.shard_fault_spec.empty()) {
      return Status::InvalidArgument(
          "fault specs attach in-process injectors, which the socket "
          "transport bypasses; pass --fault-spec to the cost_server "
          "worker processes instead");
    }
    if (options_.socket_endpoints.size() !=
        static_cast<size_t>(shard_count)) {
      return Status::InvalidArgument(StrFormat(
          "socket transport needs one endpoint per shard: %d shard(s) but "
          "%d endpoint(s)",
          shard_count, static_cast<int>(options_.socket_endpoints.size())));
    }
  }
  ShardFaultSpec shard_faults;
  if (!options_.shard_fault_spec.empty()) {
    auto parsed = ShardFaultSpec::Parse(options_.shard_fault_spec);
    if (!parsed.ok()) return parsed.status();
    shard_faults = std::move(parsed).value();
  }
  for (const auto& [shard_index, spec] : shard_faults.per_shard) {
    if (shard_index >= shard_count) {
      return Status::InvalidArgument(StrFormat(
          "shard fault spec targets shard %d but only %d shard(s) exist",
          shard_index, shard_count));
    }
  }
  // Injectors are declared before the replicas they attach to: the replicas
  // go out of scope (and stop consulting their injectors) first.
  std::vector<std::unique_ptr<FaultInjector>> shard_injectors;
  std::vector<std::unique_ptr<server::Server>> shard_replicas;
  std::vector<server::Server*> replica_servers;  // clones only (stats fan-out)
  std::vector<server::Server*> shard_servers;    // shard 0 + clones (router)
  shard_servers.push_back(tuning_server);
  if (shard_count > 1 && !socket_transport) {
    for (int i = 1; i < shard_count; ++i) {
      auto replica = tuning_server->Clone(
          StrFormat("%s-shard%d", tuning_server->name().c_str(), i));
      if (!replica.ok()) return replica.status();
      // Clones profile into the same registry as shard 0: each logical call
      // is priced on exactly one shard, so counter totals stay equal to the
      // single-server run. (The clones die inside this frame, so no detach
      // guard is needed.)
      if (obs_.metrics != nullptr) (*replica)->SetMetrics(obs_.metrics);
      replica_servers.push_back(replica->get());
      shard_servers.push_back(replica->get());
      shard_replicas.push_back(std::move(replica).value());
    }
  }
  for (const auto& [shard_index, spec] : shard_faults.per_shard) {
    if (!spec.Enabled()) continue;
    if (shard_index == 0 && injector != nullptr) {
      return Status::InvalidArgument(
          "shard fault spec targets shard 0 but a fault spec already "
          "attaches an injector to the tuning server; use one or the other");
    }
    auto shard_injector = std::make_unique<FaultInjector>(spec);
    shard_servers[static_cast<size_t>(shard_index)]->set_fault_injector(
        shard_injector.get());
    // Shard 0 is the long-lived tuning server: detach on every exit path.
    if (shard_index == 0) injector_guard.server = tuning_server;
    shard_injectors.push_back(std::move(shard_injector));
  }
  SingleServerBackend single_backend(tuning_server);
  std::unique_ptr<ShardRouter> router;
  std::vector<rpc::SocketChannel*> socket_channels;  // stats fan-out
  ShardRouterOptions router_options;
  router_options.max_inflight_per_shard =
      options_.shard_max_inflight > 0 ? options_.shard_max_inflight
                                      : std::max(4, 2 * num_threads);
  // Fail-slow isolation: the detector measures shard latency on the
  // session's observability clock, so a test's FakeClock sees every
  // latency as 0 and the detector stays byte-silent.
  router_options.slow_threshold = options_.shard_slow_threshold;
  router_options.clock = clock;
  router_options.metrics = obs_.metrics;
  if (socket_transport) {
    // Every shard — including shard 0 — is a cost_server worker process;
    // the local tuning server keeps serving catalog access, degradation
    // estimates, and reports, but never prices a what-if call. The async
    // router drives all calls through the completion queue, so the
    // transport swap is also the swap from blocking retry walks to
    // event-driven requeues.
    if (options_.rpc_attempt_timeout_ms > 0) {
      router_options.attempt_timeout_ms = options_.rpc_attempt_timeout_ms;
    }
    rpc::SocketChannelOptions channel_options;
    channel_options.metrics = obs_.metrics;
    std::vector<std::unique_ptr<rpc::ShardChannel>> channels;
    for (int i = 0; i < shard_count; ++i) {
      auto channel = rpc::SocketChannel::Connect(
          StrFormat("worker%d", i), options_.socket_endpoints[i],
          channel_options);
      if (!channel.ok()) return channel.status();
      socket_channels.push_back(channel->get());
      channels.push_back(std::move(channel).value());
    }
    router = std::make_unique<ShardRouter>(tuning_server, std::move(channels),
                                           router_options);
  } else if (shard_count > 1) {
    router = std::make_unique<ShardRouter>(shard_servers, router_options);
  }
  CostBackend* cost_backend =
      router != nullptr ? static_cast<CostBackend*>(router.get())
                        : &single_backend;
  // Multi-tenant admission: wrap whatever backend was chosen so every real
  // what-if call first passes the fleet's shared admission controller.
  std::unique_ptr<AdmittedBackend> admitted_backend;
  if (tenant_.admission != nullptr) {
    admitted_backend = std::make_unique<AdmittedBackend>(
        cost_backend, tenant_.admission, tenant_.tenant_id);
    cost_backend = admitted_backend.get();
  }

  CostService::Config cost_config;
  cost_config.retry = options_.retry;
  cost_config.degrade_on_failure = options_.degrade_on_failure;
  cost_config.metrics = obs_.metrics;
  cost_config.clock = clock;
  cost_config.derived.enabled = options_.derived_costing;
  cost_config.derived.exact = options_.exact_costing;
  cost_config.derived.error_bound_pct = options_.derivation_error_bound_pct;
  if (options_.time_limit_ms.has_value()) {
    const double limit = *options_.time_limit_ms;
    cost_config.remaining_ms = [limit, t_start, clock]() {
      return limit - (clock->NowMs() - t_start);
    };
  }
  CostService costs(cost_backend, simulate, &tuned, std::move(cost_config));

  // ---- Crash safety: resume a checkpointed session and/or write
  // checkpoints as phases complete.
  const uint64_t workload_fp = WorkloadFingerprint(tuned);
  const uint64_t options_fp = OptionsFingerprint(options_);
  SessionCheckpoint resume_ckpt;
  bool resumed = false;
  if (!options_.resume_path.empty()) {
    auto loaded =
        LoadCheckpoint(options_.resume_path, tuning_server->catalog());
    if (!loaded.ok()) return loaded.status();
    if (loaded->workload_fingerprint != workload_fp ||
        loaded->options_fingerprint != options_fp) {
      return Status::FailedPrecondition(
          "checkpoint was written for a different workload or different "
          "tuning options; refusing to resume");
    }
    resume_ckpt = std::move(loaded).value();
    resumed = true;
    result.resumed = true;
  }

  // Keys of every statistic this session creates, in creation order. Seeded
  // from the checkpoint on resume so later checkpoints carry the full list.
  std::vector<stats::StatsKey> created_stats_log;
  if (resumed) {
    created_stats_log = resume_ckpt.created_stats;
    // Rebuild the interrupted run's statistics BEFORE importing its cost
    // cache: the cached costs were priced under them, and with the
    // statistics already present the stats-creation phases below become
    // no-ops that never clear the imported cache.
    DTA_RETURN_IF_ERROR(
        RestoreStats(resume_ckpt.created_stats, replica_servers,
                     socket_channels));
    costs.ImportCache(resume_ckpt.cache);
    costs.SeedMissingStats(resume_ckpt.missing_stats);
    costs.SeedDegradedStatements(resume_ckpt.degraded_statements);
    result.stats_requested = resume_ckpt.stats_requested;
    result.stats_created = resume_ckpt.stats_created;
    result.stats_creation_ms = resume_ckpt.stats_creation_ms;
    result.candidates_generated = resume_ckpt.candidates_generated;
  } else if (!seed_cache_.empty()) {
    // Continuous-service warm start: entries a previous round exported,
    // remapped by the caller onto this workload's statement indexes. A
    // resume restore takes precedence — its cache already reflects this
    // exact session's progress. ImportCache skips out-of-range statement
    // indexes, so a seed built against a differently-sized workload can
    // never mis-route an entry.
    costs.ImportCache(seed_cache_);
    result.seeded_cache_entries = seed_cache_.size();
  }

  auto base = BaseConfiguration();
  if (!base.ok()) return base.status();
  const catalog::Configuration& current =
      production_->current_configuration();

  // Serializes the session's progress to options_.checkpoint_path (atomic
  // tmp + rename). `pool`/`enum_state` are null until the matching phase.
  // Runs only from the session thread at phase boundaries, never
  // concurrently with a fanned-out costing pass: costs.ExportCache() /
  // missing_stats() take the CostService's internal locks and snapshot in a
  // deterministic (statement, fingerprint) order, so the checkpoint bytes
  // are thread-count invariant.
  int checkpoint_ordinal = 0;
  std::vector<double> current_costs(tuned.size(), 0.0);
  // Amortized throttle state (checkpoint_budget_pct): an enumeration-round
  // snapshot is skipped until the time elapsed since the last write covers
  // that write's cost under the budget. Under a FakeClock both sides are 0
  // and every round is written — the throttle never perturbs the
  // deterministic metrics exports.
  double last_ckpt_done_ms = 0;
  double last_ckpt_cost_ms = 0;
  auto write_checkpoint = [&](int phase, const std::vector<Candidate>* pool,
                              const EnumerationResume* enum_state) -> Status {
    if (options_.checkpoint_path.empty()) return Status::Ok();
    if (enum_state != nullptr && options_.checkpoint_budget_pct > 0) {
      const double elapsed = now_ms() - last_ckpt_done_ms;
      const double budget = elapsed * options_.checkpoint_budget_pct / 100.0;
      if (budget < last_ckpt_cost_ms) return Status::Ok();
    }
    DTA_TRACE_PHASE(obs_.tracer, "checkpoint");
    const double t_ckpt = now_ms();
    SessionCheckpoint ckpt;
    ckpt.workload_fingerprint = workload_fp;
    ckpt.options_fingerprint = options_fp;
    ckpt.phase = phase;
    ckpt.shards = shard_count;
    ckpt.transport = socket_transport ? "socket" : "inproc";
    ckpt.current_costs = current_costs;
    ckpt.missing_stats = costs.missing_stats();
    ckpt.created_stats = created_stats_log;
    ckpt.cache = costs.ExportCache();
    ckpt.degraded_statements = costs.degraded_statements();
    if (pool != nullptr) ckpt.pool = *pool;
    if (enum_state != nullptr) ckpt.enumeration = *enum_state;
    ckpt.stats_requested = result.stats_requested;
    ckpt.stats_created = result.stats_created;
    ckpt.stats_creation_ms = result.stats_creation_ms;
    ckpt.candidates_generated = result.candidates_generated;
    DTA_RETURN_IF_ERROR(SaveCheckpoint(options_.checkpoint_path, ckpt));
    ++checkpoint_ordinal;
    last_ckpt_done_ms = now_ms();
    last_ckpt_cost_ms = last_ckpt_done_ms - t_ckpt;
    result.checkpoint_ms += last_ckpt_cost_ms;
    if (checkpoint_probe_ != nullptr) {
      return checkpoint_probe_(checkpoint_ordinal);
    }
    return Status::Ok();
  };

  // ---- Current-cost pass. Missing statistics are recorded but NOT created
  // yet: they join the candidate-key statistics in one unified request, so
  // reduced statistics creation (§5.2) can cover a requested singleton with
  // a wider candidate statistic instead of creating both. Statements are
  // priced independently, so the pass fans out across the pool; results
  // land in their own slots and errors are surfaced in statement order.
  // A resumed session restores the pass's outputs instead of re-pricing.
  if (resumed) {
    if (resume_ckpt.current_costs.size() != tuned.size()) {
      return Status::FailedPrecondition(
          "checkpoint current-cost vector does not match the workload");
    }
    current_costs = resume_ckpt.current_costs;
  } else {
    DTA_TRACE_PHASE(obs_.tracer, "current_cost");
    const double t_phase = now_ms();
    std::vector<Status> statuses(tuned.size());
    // deadline_reached doubles as the cancel predicate: workers stop
    // claiming statements once the time budget is spent.
    ParallelFor(
        workers, tuned.size(),
        [&](size_t i) {
          timed([&] {
            auto c = costs.StatementCost(i, current);
            if (!c.ok()) {
              statuses[i] = c.status();
              return;
            }
            current_costs[i] = *c;
          });
        },
        deadline_reached);
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    if (deadline_reached()) result.hit_time_limit = true;
    result.parallel_wall_ms += now_ms() - t_phase;
    DTA_RETURN_IF_ERROR(
        write_checkpoint(kCheckpointCurrentCosts, nullptr, nullptr));
  }

  // ---- Candidate pipeline: column groups -> generation -> reduced stats
  // -> per-statement selection -> existing structures -> merging. A session
  // resumed at (or past) the pool-ready checkpoint restores the finished
  // pool instead of re-running any of it.
  std::vector<Candidate> pool;
  const bool pool_restored =
      resumed && resume_ckpt.phase >= kCheckpointPoolReady;
  if (pool_restored) {
    pool = resume_ckpt.pool;
  } else {
    // ---- Column-group restriction (§2.2).
    auto groups = [&] {
      DTA_TRACE_PHASE(obs_.tracer, "column_groups");
      return ComputeInterestingColumnGroups(
          tuned, current_costs, tuning_server->catalog(),
          options_.column_group_cost_fraction, options_.max_column_group_size);
    }();
    if (!groups.ok()) return groups.status();

    // ---- Candidate generation.
    StatsFetcher fetcher =
        [this, &result, &created_stats_log, &replica_servers,
         &socket_channels](
            const stats::StatsKey& key) -> Result<const stats::Statistics*> {
      server::Server* ts = TuningServer();
      if (const stats::Statistics* s = ts->stats_manager().Find(key);
          s != nullptr) {
        return s;
      }
      if (!production_->HasStatistics(key)) {
        auto duration = production_->CreateStatistics(key);
        if (!duration.ok()) return duration.status();
        result.stats_created += 1;
        result.stats_creation_ms += *duration;
        result.stats_requested += 1;
        created_stats_log.push_back(key);
      }
      const stats::Statistics* created =
          production_->stats_manager().Find(key);
      if (created == nullptr) return Status::Internal("statistics vanished");
      // Mirror into the shard replicas: every shard prices with the same
      // statistics or the backend's bit-identity contract breaks.
      for (server::Server* replica : replica_servers) {
        if (!replica->HasStatistics(key)) replica->ImportStatistics(*created);
      }
      DTA_RETURN_IF_ERROR(MirrorStatToWorkers(socket_channels, key));
      if (test_ != nullptr) {
        test_->ImportStatistics(*created);
        return test_->stats_manager().Find(key);
      }
      return created;
    };

    std::vector<std::vector<Candidate>> per_statement(tuned.size());
    std::map<std::string, Candidate> pool_by_name;
    std::set<stats::StatsKey> requested_stats;
    {
      DTA_TRACE_PHASE(obs_.tracer, "candidate_generation");
      for (size_t i = 0; i < tuned.size(); ++i) {
        if (deadline_reached()) {
          result.hit_time_limit = true;
          break;
        }
        auto cands = GenerateCandidatesForStatement(
            tuned.statements()[i].stmt, tuning_server, *groups, options_,
            fetcher, tuned.statements()[i].weight);
        if (!cands.ok()) return cands.status();
        for (const Candidate& c : *cands) {
          if (c.kind == Candidate::Kind::kIndex &&
              !c.index.key_columns.empty()) {
            requested_stats.insert(stats::StatsKey(
                c.index.database, c.index.table, c.index.key_columns));
          }
        }
        per_statement[i] = std::move(cands).value();
      }
    }

    // ---- Reduced statistics creation (§5.2): one unified request covering
    // the optimizer's missing statistics and the candidate index keys.
    {
      DTA_TRACE_PHASE(obs_.tracer, "reduced_stats");
      for (const auto& key : costs.missing_stats()) {
        requested_stats.insert(key);
      }
      costs.ClearMissingStats();
      // Fill database qualifiers by resolving against the catalog.
      std::set<stats::StatsKey> resolved;
      for (const auto& key : requested_stats) {
        if (!key.database.empty()) {
          resolved.insert(key);
          continue;
        }
        auto r = tuning_server->catalog().ResolveTable("", key.table);
        if (r.ok()) {
          resolved.insert(stats::StatsKey(r->database->name(), key.table,
                                          key.columns));
        }
      }
      StatsCreationPlan plan;
      if (options_.reduced_statistics) {
        plan = PlanReducedStatistics(resolved,
                                     production_->ExportStatistics());
      } else {
        for (const auto& key : resolved) {
          if (!production_->HasStatistics(key)) {
            plan.to_create.push_back(key);
          }
        }
        plan.naive_count = resolved.size();
      }
      result.stats_requested += plan.naive_count;
      DTA_RETURN_IF_ERROR(CreateAndImportStats(plan.to_create,
                                               replica_servers,
                                               socket_channels, &result,
                                               &created_stats_log));
      if (!plan.to_create.empty()) costs.ClearCache();
    }

    // ---- Candidate selection: per-statement Greedy(m,k) (§2.2). Each
    // statement's search is independent (it only prices that statement), so
    // statements fan out across the pool; the pool/benefit merge below runs
    // serially in statement order, keeping the outcome identical to the
    // serial loop.
    std::map<std::string, double> candidate_benefit;  // weighted savings
    {
      DTA_TRACE_PHASE(obs_.tracer, "candidate_selection");
      struct Selection {
        Status status;
        GreedyResult picked;
        double empty_cost = 0;
        bool ran = false;
      };
      const double t_phase = now_ms();
      std::vector<Selection> selections(tuned.size());
      ParallelFor(
          workers, tuned.size(),
          [&](size_t i) {
            if (per_statement[i].empty()) return;
            if (deadline_reached()) return;
            timed([&] {
              const std::vector<Candidate>& cands = per_statement[i];
              auto eval = [&, i](const std::vector<size_t>& subset)
                  -> Result<double> {
                std::vector<const Candidate*> chosen;
                for (size_t ci : subset) chosen.push_back(&cands[ci]);
                auto config = BuildConfiguration(*base, chosen, false);
                if (!config.ok()) return config.status();
                return costs.StatementCost(i, *config);
              };
              auto empty_cost = costs.StatementCost(i, *base);
              if (!empty_cost.ok()) {
                selections[i].status = empty_cost.status();
                return;
              }
              selections[i].picked = GreedySearch(
                  cands.size(), options_.candidate_selection_m,
                  options_.candidate_selection_k, *empty_cost, eval,
                  deadline_reached);
              selections[i].empty_cost = *empty_cost;
              selections[i].ran = true;
            });
          },
          deadline_reached);
      result.parallel_wall_ms += now_ms() - t_phase;
      for (size_t i = 0; i < tuned.size(); ++i) {
        if (per_statement[i].empty()) continue;
        if (!selections[i].status.ok()) return selections[i].status;
        if (!selections[i].ran) {
          result.hit_time_limit = true;
          continue;
        }
        const std::vector<Candidate>& cands = per_statement[i];
        result.candidates_generated += cands.size();
        const GreedyResult& picked = selections[i].picked;
        double weight = tuned.statements()[i].weight;
        double saved =
            std::max(0.0, selections[i].empty_cost - picked.cost) * weight;
        for (size_t ci : picked.chosen) {
          pool_by_name.emplace(cands[ci].name, cands[ci]);
          candidate_benefit[cands[ci].name] +=
              saved / static_cast<double>(picked.chosen.size());
        }
      }
    }

    pool.reserve(pool_by_name.size());
    for (auto& [name, cand] : pool_by_name) pool.push_back(cand);
    // Bound the pool entering enumeration: keep the best candidates by
    // accumulated per-query benefit.
    if (pool.size() >
        static_cast<size_t>(options_.max_enumeration_candidates)) {
      std::sort(pool.begin(), pool.end(),
                [&](const Candidate& a, const Candidate& b) {
                  return candidate_benefit[a.name] >
                         candidate_benefit[b.name];
                });
      pool.resize(static_cast<size_t>(options_.max_enumeration_candidates));
    }

    // ---- Existing non-constraint structures re-justify themselves: they
    // enter the pool as ordinary candidates (past the benefit cap, so they
    // are always considered). Whatever enumeration does not pick is an
    // implicit DROP recommendation.
    if (!options_.keep_existing_structures) {
      const catalog::Configuration& cur =
          production_->current_configuration();
      for (const auto& ix : cur.indexes()) {
        if (ix.constraint_enforcing) continue;
        Candidate cand = Candidate::MakeIndex(ix, tuning_server->catalog());
        if (pool_by_name.emplace(cand.name, cand).second) {
          pool.push_back(std::move(cand));
        }
      }
      for (const auto& v : cur.views()) {
        Candidate cand = Candidate::MakeView(v);
        if (pool_by_name.emplace(cand.name, cand).second) {
          pool.push_back(std::move(cand));
        }
      }
      for (const auto& [table, scheme] : cur.table_partitioning()) {
        auto resolved = tuning_server->catalog().ResolveTable("", table);
        Candidate cand = Candidate::MakePartitioning(
            resolved.ok() ? resolved->database->name() : "", table, scheme);
        if (pool_by_name.emplace(cand.name, cand).second) {
          pool.push_back(std::move(cand));
        }
      }
    }

    // ---- Merging (§2.2).
    if (options_.enable_merging && !deadline_reached()) {
      DTA_TRACE_PHASE(obs_.tracer, "merging");
      std::vector<Candidate> merged = MergeCandidatePool(pool, tuning_server);
      std::set<stats::StatsKey> merged_stats;
      for (const Candidate& c : merged) {
        if (c.kind == Candidate::Kind::kIndex) {
          auto r = tuning_server->catalog().ResolveTable(c.index.database,
                                                         c.index.table);
          if (r.ok()) {
            merged_stats.insert(stats::StatsKey(
                r->database->name(), c.index.table, c.index.key_columns));
          }
        }
        pool.push_back(c);
      }
      if (!merged_stats.empty()) {
        StatsCreationPlan plan;
        if (options_.reduced_statistics) {
          plan = PlanReducedStatistics(merged_stats,
                                       production_->ExportStatistics());
        } else {
          for (const auto& key : merged_stats) {
            if (!production_->HasStatistics(key)) {
              plan.to_create.push_back(key);
            }
          }
          plan.naive_count = merged_stats.size();
        }
        result.stats_requested += plan.naive_count;
        DTA_RETURN_IF_ERROR(CreateAndImportStats(plan.to_create,
                                                 replica_servers,
                                                 socket_channels, &result,
                                                 &created_stats_log));
        if (!plan.to_create.empty()) costs.ClearCache();
      }
    }

    // ---- DBA feedback quarantine (semi-automatic mode): rejected
    // structures leave the pool before enumeration, merged variants
    // included, so they cannot re-enter the recommendation until their
    // quarantine horizon expires. Applied before the pool checkpoint so a
    // resumed session (same options fingerprint, hence same quarantine set)
    // restores the already-filtered pool.
    if (!options_.quarantined_structures.empty()) {
      const std::set<std::string> quarantined(
          options_.quarantined_structures.begin(),
          options_.quarantined_structures.end());
      const size_t before = pool.size();
      pool.erase(std::remove_if(pool.begin(), pool.end(),
                                [&](const Candidate& c) {
                                  return quarantined.count(c.name) != 0;
                                }),
                 pool.end());
      result.quarantined_candidates = before - pool.size();
    }

    DTA_RETURN_IF_ERROR(
        write_checkpoint(kCheckpointPoolReady, &pool, nullptr));
  }

  // ---- Enumeration (§2.2, §4). The greedy rounds inside fan their
  // per-candidate evaluations out across the pool. The search checkpoints
  // itself after the exhaustive phase and every completed round; a resumed
  // session re-enters the greedy rounds exactly where the snapshot stopped.
  EnumerationResume enum_resume;
  const EnumerationResume* enum_resume_ptr = nullptr;
  if (resumed && resume_ckpt.phase >= kCheckpointEnumeration &&
      resume_ckpt.enumeration.phase1_done) {
    enum_resume = resume_ckpt.enumeration;
    enum_resume_ptr = &enum_resume;
  }
  // Checkpoint writes from inside the search report failures (and probe
  // aborts) through this sticky status; the search is stopped via its
  // should_stop predicate and the status surfaces after it returns.
  Status checkpoint_status;
  std::function<void(const EnumerationResume&)> enum_progress;
  if (!options_.checkpoint_path.empty()) {
    enum_progress = [&](const EnumerationResume& snapshot) {
      Status s = write_checkpoint(kCheckpointEnumeration, &pool, &snapshot);
      if (!s.ok() && checkpoint_status.ok()) checkpoint_status = s;
    };
  }
  auto stop_enumeration = [&]() {
    return !checkpoint_status.ok() || deadline_reached();
  };

  const double t_enum = now_ms();
  auto enum_result = [&] {
    DTA_TRACE_PHASE(obs_.tracer, "enumeration");
    return EnumerateConfiguration(&costs, pool, *base, options_,
                                  stop_enumeration, workers, enum_resume_ptr,
                                  enum_progress);
  }();
  if (!enum_result.ok()) return enum_result.status();
  if (!checkpoint_status.ok()) return checkpoint_status;
  result.parallel_wall_ms += now_ms() - t_enum;
  parallel_work_ms.fetch_add(enum_result->eval_work_ms);
  if (deadline_reached()) result.hit_time_limit = true;
  result.enumeration_evaluations = enum_result->evaluations;
  result.recommendation = std::move(enum_result->configuration);

  // ---- Final numbers and report.
  DTA_TRACE_PHASE(obs_.tracer, "report");
  auto cur_total = costs.WorkloadCost(current);
  if (!cur_total.ok()) return cur_total.status();
  auto rec_total = costs.WorkloadCost(result.recommendation);
  if (!rec_total.ok()) return rec_total.status();
  result.current_cost = *cur_total;
  result.recommended_cost = *rec_total;
  result.whatif_calls = costs.whatif_calls();
  result.whatif_cache_hits = costs.cache_hits();
  result.whatif_dedup_waits = costs.dedup_waits();
  result.derived_answers = costs.derived_answers();
  result.derivation_fallbacks = costs.derivation_fallbacks();
  result.whatif_calls_saved = costs.whatif_calls_saved();
  result.derivation_errors_exceeded = costs.derivation_errors_exceeded();
  result.checkpoint_writes = static_cast<size_t>(checkpoint_ordinal);
  result.parallel_work_ms = parallel_work_ms.load();

  // Fault-tolerance accounting.
  result.whatif_retries = costs.whatif_retries();
  result.degraded_calls = costs.degraded_calls();
  if (injector != nullptr) {
    result.injected_transient_faults = injector->transient_failures();
    result.injected_permanent_faults = injector->permanent_failures();
    result.injected_outage_faults = injector->outage_failures();
  }
  for (const auto& shard_injector : shard_injectors) {
    result.injected_transient_faults += shard_injector->transient_failures();
    result.injected_permanent_faults += shard_injector->permanent_failures();
    result.injected_outage_faults += shard_injector->outage_failures();
  }

  // Distributed costing accounting.
  result.shards_used = shard_count;
  if (router != nullptr) {
    result.shard_successes = router->successes();
    result.shard_failovers = router->failovers();
    result.shard_exhausted = router->exhausted();
    result.shard_slow_demotions = router->slow_demotions();
    for (size_t i = 0; i < router->shard_count(); ++i) {
      result.shard_calls.push_back(router->calls(i));
      result.shard_queue_peak =
          std::max(result.shard_queue_peak, router->queue_peak(i));
    }
  }

  result.report.current_total = *cur_total;
  result.report.recommended_total = *rec_total;
  result.report.threads = num_threads;
  result.report.parallel_speedup = result.ParallelSpeedup();
  result.report.shards = shard_count;
  result.report.shard_failovers = result.shard_failovers;
  result.report.shard_slow_demotions = result.shard_slow_demotions;
  result.report.whatif_retries = result.whatif_retries;
  result.report.degraded_calls = result.degraded_calls;
  {
    auto histogram = costs.retry_histogram();
    result.report.retry_histogram.assign(histogram.begin(), histogram.end());
  }
  result.report.whatif_calls = result.whatif_calls;
  result.report.whatif_cache_hits = result.whatif_cache_hits;
  result.report.derived_answers = result.derived_answers;
  result.report.derivation_fallbacks = result.derivation_fallbacks;
  result.report.whatif_calls_saved = result.whatif_calls_saved;
  result.report.checkpoint_writes = result.checkpoint_writes;
  result.report.checkpoint_ms = result.checkpoint_ms;
  if (obs_.tracer != nullptr) {
    // Completed direct children of the session's "tune" span, in pipeline
    // order ("tune" itself and the in-flight "report" span are still open).
    for (const auto& sv : obs_.tracer->Spans()) {
      if (sv.depth == 1 && sv.duration_ms >= 0) {
        result.report.phase_times.emplace_back(sv.name, sv.duration_ms);
      }
    }
  }
  for (size_t i = 0; i < tuned.size(); ++i) {
    StatementReport sr;
    sr.sql = tuned.statements()[i].text;
    sr.weight = tuned.statements()[i].weight;
    auto cc = costs.StatementCost(i, current);
    auto rc = costs.StatementCost(i, result.recommendation);
    sr.current_cost = cc.ok() ? *cc : 0;
    sr.recommended_cost = rc.ok() ? *rc : 0;
    result.report.statements.push_back(std::move(sr));
    // Structure usage from the recommended plan.
    const auto& stmt = tuned.statements()[i].stmt;
    if (stmt.is_select()) {
      auto plan =
          tuning_server->WhatIfPlan(stmt.select(), result.recommendation);
      if (plan.ok()) {
        std::vector<std::string> used;
        plan->root->CollectUsedStructures(&used);
        std::sort(used.begin(), used.end());
        used.erase(std::unique(used.begin(), used.end()), used.end());
        for (const auto& name : used) {
          result.report.structure_usage[name] += 1;
        }
      }
    }
  }
  // Statements whose pricing degraded to the heuristic estimate are flagged
  // in the report: their cost columns are estimates of estimates.
  for (size_t i : costs.degraded_statements()) {
    if (i < result.report.statements.size()) {
      result.report.statements[i].degraded = true;
    }
  }

  // Continuous-service state export: the final cache (deterministic
  // ExportCache order) and the statistics this run created, for the next
  // round's seed. Exported only on request — the cache can hold thousands
  // of entries and one-shot callers never read it.
  if (options_.export_session_state) {
    result.final_cache = costs.ExportCache();
    result.created_stats = created_stats_log;
  }

  result.tuning_time_ms = now_ms() - t_start;

  // Session-level metrics. Counters here are thread-count invariant (the
  // searches they count are deterministic); the gauges are wall-clock
  // derived, hence zero — and byte-stable — under an injected FakeClock.
  if (obs_.metrics != nullptr) {
    obs_.metrics->GetCounter("enumeration.evaluations")
        ->Increment(result.enumeration_evaluations);
    obs_.metrics->GetCounter("candidates.generated")
        ->Increment(result.candidates_generated);
    obs_.metrics->GetCounter("checkpoint.writes")
        ->Increment(result.checkpoint_writes);
    obs_.metrics->GetGauge("session.checkpoint_ms")
        ->Set(result.checkpoint_ms);
    obs_.metrics->GetGauge("session.tuning_time_ms")
        ->Set(result.tuning_time_ms);
  }
  return result;
}

Result<EvaluationResult> TuningSession::EvaluateConfiguration(
    const workload::Workload& workload,
    const catalog::Configuration& config) {
  DTA_TRACE_PHASE(obs_.tracer, "evaluate");
  server::Server* tuning_server = TuningServer();
  const optimizer::HardwareParams* simulate =
      test_ != nullptr ? &production_->hardware() : nullptr;
  ServerMetricsGuard metrics_guard;
  if (obs_.metrics != nullptr) {
    tuning_server->SetMetrics(obs_.metrics);
    metrics_guard.server = tuning_server;
  }
  // Evaluation shares the tuning path's fault tolerance: injected faults
  // (if scripted), retries, and heuristic degradation.
  std::unique_ptr<FaultInjector> injector;
  FaultInjectorGuard injector_guard;
  if (!options_.fault_spec.empty()) {
    auto spec = FaultSpec::Parse(options_.fault_spec);
    if (!spec.ok()) return spec.status();
    if (spec->Enabled()) {
      injector = std::make_unique<FaultInjector>(*spec);
      tuning_server->set_fault_injector(injector.get());
      injector_guard.server = tuning_server;
    }
  }
  CostService::Config cost_config;
  cost_config.retry = options_.retry;
  cost_config.degrade_on_failure = options_.degrade_on_failure;
  cost_config.metrics = obs_.metrics;
  cost_config.clock = obs_.clock;
  cost_config.derived.enabled = options_.derived_costing;
  cost_config.derived.exact = options_.exact_costing;
  cost_config.derived.error_bound_pct = options_.derivation_error_bound_pct;
  CostService costs(tuning_server, simulate, &workload,
                    std::move(cost_config));

  EvaluationResult out;
  const catalog::Configuration& current =
      production_->current_configuration();

  // Statements are priced independently; fan out, then reduce serially in
  // statement order (identical totals at any thread count).
  const int num_threads = std::max(1, options_.ResolvedNumThreads());
  std::unique_ptr<ThreadPool> workers_storage;
  ThreadPool* workers = nullptr;
  if (num_threads > 1) {
    workers_storage = std::make_unique<ThreadPool>(num_threads - 1);
    workers = workers_storage.get();
  }
  std::vector<double> current_costs(workload.size(), 0.0);
  std::vector<double> evaluated_costs(workload.size(), 0.0);
  std::vector<Status> statuses(workload.size());
  ParallelFor(workers, workload.size(), [&](size_t i) {
    auto cc = costs.StatementCost(i, current);
    if (!cc.ok()) {
      statuses[i] = cc.status();
      return;
    }
    auto ec = costs.StatementCost(i, config);
    if (!ec.ok()) {
      statuses[i] = ec.status();
      return;
    }
    current_costs[i] = *cc;
    evaluated_costs[i] = *ec;
  });
  for (size_t i = 0; i < workload.size(); ++i) {
    if (!statuses[i].ok()) return statuses[i];
    double w = workload.statements()[i].weight;
    out.current_cost += current_costs[i] * w;
    out.evaluated_cost += evaluated_costs[i] * w;
    StatementReport sr;
    sr.sql = workload.statements()[i].text;
    sr.weight = w;
    sr.current_cost = current_costs[i];
    sr.recommended_cost = evaluated_costs[i];
    out.report.statements.push_back(std::move(sr));
  }
  out.report.current_total = out.current_cost;
  out.report.recommended_total = out.evaluated_cost;
  return out;
}

}  // namespace dta::tuner
