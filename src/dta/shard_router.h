// Sharded what-if costing backend (distributed costing).
//
// The paper (§6) runs tuning against a *test server* so the what-if load
// never hits production; this router scales that mode out: what-if calls
// fan across N server instances — the tuning server plus N - 1 deep
// replicas (Server::Clone) — while the layers above (CostService caching,
// in-flight dedup, retry/degradation) stay unchanged behind the CostBackend
// seam.
//
// Routing: rendezvous (highest-random-weight) hashing on the logical call
// key. Every shard scores each key with a pure hash; a call routes to its
// highest-scoring live shard. Scores are independent of the shard count, so
// routing is deterministic across runs and thread counts, and losing one
// shard re-homes only the keys that shard owned — no global reshuffle.
//
// Health and failover: a failed call immediately fails over to the next
// shard in the key's rendezvous order (each such hop is counted, so tests
// can assert no call is lost or double-priced). A shard that fails
// `unhealthy_after` consecutive calls is marked unhealthy and routed
// around; it still receives a probe call every `probe_interval` skips, so a
// node that recovers (burst outage over) rejoins the rotation. When every
// candidate shard has been routed around, the router tries the full
// ranking anyway — a dead fleet behaves like a dead single server, and the
// CostService retry/degradation policy above this layer decides what
// happens next.
//
// Fail-slow isolation: crash-stop health tracking never fires for a shard
// that answers every call successfully, just 100x late — the failure mode
// that actually hurts fleets. When `slow_threshold` is set, the router
// keeps an EWMA of each shard's successful-call latency; a shard whose
// EWMA exceeds slow_threshold x the fleet median (and an absolute floor,
// so microsecond noise on an idle fleet demotes nobody) is demoted to
// probe-only routing exactly like an unhealthy shard, and recovers through
// the same probe path once its probes' EWMA decays back under the
// threshold. Demotion is routing-only: it moves calls to faster replicas,
// never changes what any call returns.
//
// Back-pressure: a bounded in-flight window per shard; callers block on the
// shard's condition variable until a slot frees. This caps the concurrent
// load any one shard absorbs (and any one slow shard can hold hostage).
//
// Transports: shards are rpc::ShardChannel instances. The original
// in-process fleet (one server::Server* per shard) wraps each server in a
// synchronous InprocChannel and keeps the exact blocking two-pass walk
// above — bit-for-bit the original behavior. A socket fleet (cost_server
// workers over rpc::SocketChannel) is asynchronous: calls run through an
// rpc::CompletionQueue that tracks in-flight requests per shard and
// requeues timeouts/failures onto the next shard in the rendezvous order,
// so no worker thread ever parks inside a slow shard's attempt. Both paths
// feed the same health, slowness, and admission bookkeeping.
//
// Determinism argument: every shard is a bit-exact replica, so a call
// returns the same cost on any shard — routing, failover, and slowness
// demotion only choose *where* a call runs, never *what* it returns.
// CostService's in-flight dedup prices each logical call exactly once
// regardless of backend, so recommendations, costs, and whatif_calls are
// byte-identical at any (threads × shards) combination; only wall-clock
// and per-shard load vary.

#ifndef DTA_DTA_SHARD_ROUTER_H_
#define DTA_DTA_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "dta/cost_service.h"
#include "dta/rpc/channel.h"
#include "dta/rpc/completion_queue.h"
#include "server/server.h"

namespace dta::tuner {

// Parsed form of "--shard-fault-spec" / TuningOptions::shard_fault_spec:
// ";"-separated "<shard index>:<FaultSpec>" entries, e.g.
//   "1:down_after=30;2:transient=0.2,seed=9"
// Shard 0 is the tuning server itself. Duplicate or negative indexes are
// rejected; whether an index fits the session's shard count is validated by
// the session (the spec alone does not know the topology).
struct ShardFaultSpec {
  std::map<int, FaultSpec> per_shard;

  bool Enabled() const;

  static Result<ShardFaultSpec> Parse(const std::string& text);
  std::string ToString() const;
};

struct ShardRouterOptions {
  // Concurrent what-if calls admitted per shard; further callers block.
  // Clamped to >= 1 at construction.
  int max_inflight_per_shard = 8;
  // Consecutive failures before a shard is marked unhealthy. Clamped to
  // >= 1 (1 = demote on the first failure).
  int unhealthy_after = 3;
  // A demoted (unhealthy or slow) shard receives a probe call after this
  // many skips. Clamped to >= 1 (1 = probe on every routing decision that
  // would have skipped it).
  int probe_interval = 16;
  // Latency-based slowness detection: a shard whose successful-call latency
  // EWMA exceeds slow_threshold x the fleet-median EWMA is demoted to
  // probe-only routing until its probes bring the EWMA back under. 0
  // disables the detector.
  double slow_threshold = 0;
  // The detector never judges a shard before it has this many latency
  // samples, and never calls a shard slow below this absolute latency (ms)
  // — an idle in-process fleet jitters by microseconds, which must not
  // demote anybody.
  int slow_min_samples = 8;
  double slow_floor_ms = 1.0;
  // Clock for latency measurement; null means the real monotonic clock.
  // Under a test's FakeClock every measured latency is 0 and the detector
  // never fires — metric exports stay byte-stable.
  const Clock* clock = nullptr;
  // Asynchronous fleets only: per-attempt budget before the completion
  // queue abandons the in-flight request (credit stays with the wire) and
  // requeues the call on the next shard. Always measured on the real
  // monotonic clock — a FakeClock deadline would never arrive.
  double attempt_timeout_ms = 30000;
  // Observability (optional): per-shard call/failure counters and
  // queue-depth gauges, plus router-level failover counters. Per-shard load
  // is scheduling dependent, so these land under "shard." names that the
  // determinism-gated exports never include.
  MetricsRegistry* metrics = nullptr;
};

class ShardRouter : public CostBackend {
 public:
  // In-process fleet: `servers[0]` is the primary (the tuning server), the
  // rest are its replicas. Each is wrapped in a synchronous InprocChannel;
  // all must outlive the router.
  ShardRouter(std::vector<server::Server*> servers,
              ShardRouterOptions options);

  // Asynchronous fleet (socket transport): every shard is a remote worker
  // behind an async channel, driven through a completion queue. `primary`
  // is the local tuning server — it serves catalog access, heuristic
  // degradation, and reports, never what-if routing.
  ShardRouter(server::Server* primary,
              std::vector<std::unique_ptr<rpc::ShardChannel>> channels,
              ShardRouterOptions options);

  ~ShardRouter() override;

  Result<server::Server::WhatIfResult> WhatIfCost(
      const WhatIfCall& call) override;

  server::Server* primary() const override { return primary_; }

  // True when calls run through the completion queue (async channels).
  bool event_driven() const { return queue_ != nullptr; }

  // Rendezvous ranking of all shards for `key`, best first. Pure function
  // of (key, shard index) — exposed for tests and deterministic by design.
  std::vector<size_t> RankShards(uint64_t key) const;

  // The options as the constructor clamped them.
  const ShardRouterOptions& options() const { return options_; }

  // ---- Accounting (tests assert the no-lost/no-double-count invariants).
  size_t shard_count() const { return shards_.size(); }
  // Calls that returned OK from some shard. Exactly one success per logical
  // pricing: CostService dedups upstream and the router stops at the first
  // shard that answers.
  size_t successes() const {
    return successes_.load(std::memory_order_relaxed);
  }
  // Failed attempts that were retried on another shard.
  size_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  // Calls that failed on every shard in their ranking.
  size_t exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }
  // Times the slowness detector demoted a shard to probe-only routing.
  size_t slow_demotions() const {
    return slow_demotions_.load(std::memory_order_relaxed);
  }
  size_t calls(size_t shard) const;
  size_t failures(size_t shard) const;
  // Deepest (in-flight + waiting) queue observed on the shard.
  size_t queue_peak(size_t shard) const;
  // Peak concurrently executing calls (never exceeds max_inflight_per_shard).
  size_t inflight_peak(size_t shard) const;
  bool healthy(size_t shard) const;
  // True while the slowness detector has the shard demoted.
  bool slow(size_t shard) const;
  // Current successful-call latency EWMA (ms; 0 before the first sample).
  double latency_ewma_ms(size_t shard) const;

  // Test hook: feeds one successful-call latency sample through the same
  // EWMA/demotion path TryShard uses, without running a call. Lets tests
  // drive the detector deterministically instead of sleeping.
  void RecordLatencyForTest(size_t shard, double latency_ms) {
    RecordLatency(*shards_[shard], latency_ms);
  }

 private:
  struct Shard {
    rpc::ShardChannel* channel = nullptr;
    Mutex mu;
    CondVar cv;
    int inflight GUARDED_BY(mu) = 0;
    int waiting GUARDED_BY(mu) = 0;
    size_t queue_peak GUARDED_BY(mu) = 0;
    size_t inflight_peak GUARDED_BY(mu) = 0;
    size_t calls GUARDED_BY(mu) = 0;
    size_t failures GUARDED_BY(mu) = 0;
    int consecutive_failures GUARDED_BY(mu) = 0;
    bool healthy GUARDED_BY(mu) = true;
    int skipped_since_down GUARDED_BY(mu) = 0;
    // Slowness detector state: EWMA of successful-call latency and the
    // demotion flag it drives.
    double latency_ewma GUARDED_BY(mu) = 0;
    size_t latency_samples GUARDED_BY(mu) = 0;
    bool slow GUARDED_BY(mu) = false;
    // Metrics handles (null without a registry); resolved once at
    // construction so the hot path never locks the registry.
    Counter* m_calls = nullptr;
    Counter* m_failures = nullptr;
    Gauge* m_queue_peak = nullptr;
  };

  // Whether to try this shard in the healthy-first pass: true when healthy
  // and not slow, or when a demoted shard is due a recovery probe.
  bool AdmitForPass(Shard& shard) EXCLUDES(shard.mu);
  // Blocks until the shard has a free in-flight slot, then claims it.
  void AcquireSlot(Shard& shard) EXCLUDES(shard.mu);
  void ReleaseSlot(Shard& shard) EXCLUDES(shard.mu);
  // Records the attempt's outcome and updates health state.
  void RecordOutcome(Shard& shard, bool ok) EXCLUDES(shard.mu);
  // Feeds a successful call's latency into the shard's EWMA and re-judges
  // its slowness against the fleet median. Takes each shard's lock one at
  // a time, never two at once.
  void RecordLatency(Shard& shard, double latency_ms) EXCLUDES(shard.mu);
  // Fleet-median latency EWMA over shards with enough samples (0 when
  // fewer than two shards qualify — a fleet of one is never "slow").
  double FleetMedianEwma();
  // One attempt on one shard: slot acquisition, the what-if call, outcome
  // accounting. Synchronous path only.
  Result<server::Server::WhatIfResult> TryShard(Shard& shard,
                                                const WhatIfCall& call);
  // Shared constructor tail: clamps options, builds Shard records and
  // metrics handles for `channels`.
  void InitShards(const std::vector<rpc::ShardChannel*>& channels);
  // Synchronous two-pass walk over the rendezvous ranking (inproc fleets).
  Result<server::Server::WhatIfResult> WhatIfCostSync(const WhatIfCall& call);

  server::Server* primary_ = nullptr;
  // Inproc mode: the router owns the channel wrappers (callers hand it raw
  // server pointers). Socket mode: ownership arrives via the constructor.
  std::vector<std::unique_ptr<rpc::ShardChannel>> owned_channels_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Event-driven dispatch for async fleets; null for inproc fleets.
  std::unique_ptr<rpc::CompletionQueue> queue_;
  ShardRouterOptions options_;
  std::atomic<size_t> successes_{0};
  std::atomic<size_t> failovers_{0};
  std::atomic<size_t> exhausted_{0};
  std::atomic<size_t> slow_demotions_{0};
  Counter* m_failovers_ = nullptr;
  Counter* m_exhausted_ = nullptr;
  Counter* m_slow_demotions_ = nullptr;
};

}  // namespace dta::tuner

#endif  // DTA_DTA_SHARD_ROUTER_H_
