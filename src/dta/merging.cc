#include "dta/merging.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"
#include "optimizer/bound_query.h"
#include "sql/printer.h"

namespace dta::tuner {

std::optional<catalog::IndexDef> MergeIndexes(const catalog::IndexDef& a,
                                              const catalog::IndexDef& b,
                                              int max_key_columns) {
  if (!EqualsIgnoreCase(a.table, b.table)) return std::nullopt;
  if (a.clustered || b.clustered) return std::nullopt;
  catalog::IndexDef merged;
  merged.database = a.database;
  merged.table = ToLower(a.table);
  merged.key_columns = a.key_columns;
  auto contains = [](const std::vector<std::string>& v,
                     const std::string& s) {
    for (const auto& x : v) {
      if (EqualsIgnoreCase(x, s)) return true;
    }
    return false;
  };
  for (const auto& kc : b.key_columns) {
    if (!contains(merged.key_columns, kc)) merged.key_columns.push_back(kc);
  }
  if (static_cast<int>(merged.key_columns.size()) > max_key_columns) {
    return std::nullopt;
  }
  for (const auto& inc : a.included_columns) {
    if (!contains(merged.key_columns, inc) &&
        !contains(merged.included_columns, inc)) {
      merged.included_columns.push_back(inc);
    }
  }
  for (const auto& inc : b.included_columns) {
    if (!contains(merged.key_columns, inc) &&
        !contains(merged.included_columns, inc)) {
      merged.included_columns.push_back(inc);
    }
  }
  // Partitioning survives only when identical.
  if (a.partitioning.has_value() && b.partitioning.has_value() &&
      *a.partitioning == *b.partitioning) {
    merged.partitioning = a.partitioning;
  }
  if (merged.CanonicalName() == a.CanonicalName() ||
      merged.CanonicalName() == b.CanonicalName()) {
    return std::nullopt;  // no new structure
  }
  return merged;
}

std::optional<catalog::PartitionScheme> MergePartitionSchemes(
    const catalog::PartitionScheme& a, const catalog::PartitionScheme& b,
    int max_boundaries) {
  if (!EqualsIgnoreCase(a.column, b.column)) return std::nullopt;
  catalog::PartitionScheme merged;
  merged.column = ToLower(a.column);
  std::vector<sql::Value> all = a.boundaries;
  all.insert(all.end(), b.boundaries.begin(), b.boundaries.end());
  std::sort(all.begin(), all.end(),
            [](const sql::Value& x, const sql::Value& y) {
              return x.Compare(y) < 0;
            });
  for (const auto& v : all) {
    if (merged.boundaries.empty() ||
        merged.boundaries.back().Compare(v) < 0) {
      merged.boundaries.push_back(v);
    }
  }
  // Thin evenly when over the cap.
  if (static_cast<int>(merged.boundaries.size()) > max_boundaries) {
    std::vector<sql::Value> thinned;
    double step = static_cast<double>(merged.boundaries.size()) /
                  max_boundaries;
    for (int i = 0; i < max_boundaries; ++i) {
      thinned.push_back(
          merged.boundaries[static_cast<size_t>(i * step)]);
    }
    merged.boundaries = std::move(thinned);
  }
  if (merged == a || merged == b) return std::nullopt;
  return merged;
}

namespace {

using optimizer::BoundQuery;

// Canonical "schematable.column" string of a column ref in a bound query.
std::string CanonCol(const sql::ColumnRef& ref, const BoundQuery& q) {
  auto rc = optimizer::ResolveColumnRef(ref, q);
  if (!rc.ok()) return "";
  return q.tables[static_cast<size_t>(rc->first)].schema->name() + "." +
         q.ColumnName(rc->first, rc->second);
}

std::string CanonExpr(const sql::Expr& e, const BoundQuery& q) {
  switch (e.kind) {
    case sql::Expr::Kind::kConst:
      return e.value.ToSqlLiteral();
    case sql::Expr::Kind::kColumn:
      return CanonCol(e.column, q);
    case sql::Expr::Kind::kBinary: {
      std::string l = CanonExpr(*e.left, q);
      std::string r = CanonExpr(*e.right, q);
      if (l.empty() || r.empty()) return "";
      const char* op = e.op == sql::BinaryOp::kAdd   ? "+"
                       : e.op == sql::BinaryOp::kSub ? "-"
                       : e.op == sql::BinaryOp::kMul ? "*"
                                                     : "/";
      return "(" + l + op + r + ")";
    }
    case sql::Expr::Kind::kAggregate: {
      std::string arg = e.left != nullptr ? CanonExpr(*e.left, q) : "*";
      if (arg.empty()) return "";
      return StrFormat("%d%s(%s)", static_cast<int>(e.agg),
                       e.distinct ? "D" : "", arg.c_str());
    }
  }
  return "";
}

std::string CanonPredicate(const sql::Predicate& p, const BoundQuery& q) {
  std::string lhs = CanonCol(p.column, q);
  if (lhs.empty()) return "";
  sql::PrintOptions opts;
  opts.normalize_identifiers = true;
  std::string rest = sql::PredicateToSql(p, opts);
  // Replace the (alias-dependent) printed lhs with the canonical one.
  size_t space = rest.find(' ');
  return lhs + (space == std::string::npos ? "" : rest.substr(space));
}

// Rewrites an expression from query `src` into the alias space of `dst`
// (tables matched by schema name). Returns nullptr on failure.
sql::ExprPtr RewriteExpr(const sql::Expr& e, const BoundQuery& src,
                         const std::map<std::string, std::string>& dst_alias) {
  switch (e.kind) {
    case sql::Expr::Kind::kConst:
      return sql::Expr::Const(e.value);
    case sql::Expr::Kind::kColumn: {
      auto rc = optimizer::ResolveColumnRef(e.column, src);
      if (!rc.ok()) return nullptr;
      const std::string& tname =
          src.tables[static_cast<size_t>(rc->first)].schema->name();
      auto it = dst_alias.find(tname);
      if (it == dst_alias.end()) return nullptr;
      return sql::Expr::Column(it->second,
                               src.ColumnName(rc->first, rc->second));
    }
    case sql::Expr::Kind::kBinary: {
      auto l = RewriteExpr(*e.left, src, dst_alias);
      auto r = RewriteExpr(*e.right, src, dst_alias);
      if (l == nullptr || r == nullptr) return nullptr;
      return sql::Expr::Binary(e.op, std::move(l), std::move(r));
    }
    case sql::Expr::Kind::kAggregate: {
      sql::ExprPtr arg;
      if (e.left != nullptr) {
        arg = RewriteExpr(*e.left, src, dst_alias);
        if (arg == nullptr) return nullptr;
      }
      return sql::Expr::Aggregate(e.agg, std::move(arg), e.distinct);
    }
  }
  return nullptr;
}

std::optional<sql::ColumnRef> RewriteColumn(
    const sql::ColumnRef& ref, const BoundQuery& src,
    const std::map<std::string, std::string>& dst_alias) {
  auto rc = optimizer::ResolveColumnRef(ref, src);
  if (!rc.ok()) return std::nullopt;
  const std::string& tname =
      src.tables[static_cast<size_t>(rc->first)].schema->name();
  auto it = dst_alias.find(tname);
  if (it == dst_alias.end()) return std::nullopt;
  return sql::ColumnRef{it->second, src.ColumnName(rc->first, rc->second)};
}

}  // namespace

std::optional<catalog::ViewDef> MergeViews(const catalog::ViewDef& a,
                                           const catalog::ViewDef& b,
                                           server::Server* server) {
  if (a.definition == nullptr || b.definition == nullptr) return std::nullopt;
  auto qa = optimizer::BindSelect(*a.definition, server->catalog());
  auto qb = optimizer::BindSelect(*b.definition, server->catalog());
  if (!qa.ok() || !qb.ok()) return std::nullopt;
  if (qa->stmt->select_star || qb->stmt->select_star) return std::nullopt;

  // Same table sets (no self-joins) and same join graphs.
  std::map<std::string, std::string> a_alias;  // schema table -> alias in a
  for (const auto& bt : qa->tables) {
    if (!a_alias.emplace(bt.schema->name(), bt.alias).second) {
      return std::nullopt;
    }
  }
  std::set<std::string> b_tables;
  for (const auto& bt : qb->tables) {
    if (!b_tables.insert(bt.schema->name()).second) return std::nullopt;
  }
  if (b_tables.size() != a_alias.size()) return std::nullopt;
  for (const auto& t : b_tables) {
    if (a_alias.count(t) == 0) return std::nullopt;
  }
  auto join_set = [](const BoundQuery& q) {
    std::set<std::string> out;
    for (int ai : q.join_atoms) {
      const auto& atom = q.atoms[static_cast<size_t>(ai)];
      std::string l = q.tables[static_cast<size_t>(atom.table)]
                          .schema->name() +
                      "." + q.ColumnName(atom.table, atom.column);
      std::string r = q.tables[static_cast<size_t>(atom.rhs_table)]
                          .schema->name() +
                      "." + q.ColumnName(atom.rhs_table, atom.rhs_column);
      if (r < l) std::swap(l, r);
      out.insert(l + "=" + r);
    }
    return out;
  };
  if (join_set(*qa) != join_set(*qb)) return std::nullopt;

  // Build the merged definition in a's alias space.
  sql::SelectStatement merged = a.definition->Clone();
  merged.order_by.clear();
  merged.top = -1;

  // Predicates: keep joins always; keep non-join predicates only when the
  // identical predicate appears in both; drop the rest, exposing columns.
  std::set<std::string> preds_a, preds_b;
  for (const auto& p : a.definition->where) {
    if (p.kind != sql::Predicate::Kind::kColumnCompare) {
      preds_a.insert(CanonPredicate(p, *qa));
    }
  }
  for (const auto& p : b.definition->where) {
    if (p.kind != sql::Predicate::Kind::kColumnCompare) {
      preds_b.insert(CanonPredicate(p, *qb));
    }
  }
  std::vector<sql::Predicate> kept;
  std::vector<sql::ColumnRef> exposed;  // in a's alias space
  for (const auto& p : merged.where) {
    if (p.kind == sql::Predicate::Kind::kColumnCompare) {
      kept.push_back(p);
      continue;
    }
    std::string canon = CanonPredicate(p, *qa);
    if (preds_b.count(canon) > 0) {
      kept.push_back(p);
    } else {
      exposed.push_back(p.column);
    }
  }
  for (const auto& p : b.definition->where) {
    if (p.kind == sql::Predicate::Kind::kColumnCompare) continue;
    if (preds_a.count(CanonPredicate(p, *qb)) == 0) {
      auto col = RewriteColumn(p.column, *qb, a_alias);
      if (!col.has_value()) return std::nullopt;
      exposed.push_back(std::move(*col));
    }
  }
  merged.where = std::move(kept);

  bool aggregated = !a.definition->group_by.empty() ||
                    !b.definition->group_by.empty() ||
                    a.definition->HasAggregates() ||
                    b.definition->HasAggregates();
  if (!aggregated && !exposed.empty()) {
    // SPJ views: exposed columns simply join the output list.
  }

  // Canonical item/group bookkeeping.
  std::set<std::string> item_canon;
  for (const auto& item : merged.items) {
    item_canon.insert(CanonExpr(*item.expr, *qa));
  }
  std::set<std::string> group_canon;
  for (const auto& g : merged.group_by) {
    group_canon.insert(CanonCol(g, *qa));
  }
  auto add_group_col = [&](const sql::ColumnRef& col) {
    // `col` is already in a's alias space.
    std::string canon = CanonCol(col, *qa);
    if (canon.empty()) return false;
    if (aggregated && group_canon.insert(canon).second) {
      merged.group_by.push_back(col);
    }
    if (item_canon.insert(canon).second) {
      sql::SelectItem item;
      item.expr = sql::Expr::Column(col);
      merged.items.push_back(std::move(item));
    }
    return true;
  };
  for (const auto& col : exposed) {
    if (!add_group_col(col)) return std::nullopt;
  }
  // b's group columns.
  for (const auto& g : b.definition->group_by) {
    auto col = RewriteColumn(g, *qb, a_alias);
    if (!col.has_value()) return std::nullopt;
    if (!add_group_col(*col)) return std::nullopt;
  }
  // b's items (aggregates and columns).
  for (const auto& item : b.definition->items) {
    std::string canon = CanonExpr(*item.expr, *qb);
    if (canon.empty()) return std::nullopt;
    if (item_canon.count(canon) > 0) continue;
    auto rewritten = RewriteExpr(*item.expr, *qb, a_alias);
    if (rewritten == nullptr) return std::nullopt;
    item_canon.insert(canon);
    sql::SelectItem si;
    si.expr = std::move(rewritten);
    merged.items.push_back(std::move(si));
  }

  // A merged aggregated view must carry COUNT(*) so folding stays possible.
  if (aggregated) {
    bool has_count_star = false;
    for (const auto& item : merged.items) {
      if (item.expr->kind == sql::Expr::Kind::kAggregate &&
          item.expr->agg == sql::AggFunc::kCount &&
          item.expr->left == nullptr) {
        has_count_star = true;
        break;
      }
    }
    if (!has_count_star) {
      sql::SelectItem si;
      si.expr = sql::Expr::Aggregate(sql::AggFunc::kCount, nullptr);
      merged.items.push_back(std::move(si));
    }
  }

  catalog::ViewDef out;
  out.definition =
      std::make_shared<sql::SelectStatement>(std::move(merged));
  for (const auto& tr : out.definition->from) {
    out.referenced_tables.push_back(ToLower(tr.table));
  }
  auto plan = server->WhatIfPlan(*out.definition, catalog::Configuration());
  if (!plan.ok()) return std::nullopt;
  out.estimated_rows = std::max(1.0, plan->root->est_rows);
  out.estimated_row_bytes =
      16 + 12 * static_cast<int>(out.definition->items.size());
  if (out.CanonicalName() == a.CanonicalName() ||
      out.CanonicalName() == b.CanonicalName()) {
    return std::nullopt;
  }
  return out;
}

std::vector<Candidate> MergeCandidatePool(const std::vector<Candidate>& pool,
                                          server::Server* server,
                                          size_t max_new) {
  std::vector<Candidate> out;
  std::set<std::string> seen;
  for (const auto& c : pool) seen.insert(c.name);

  auto emit_index = [&](catalog::IndexDef ix) {
    Candidate cand = Candidate::MakeIndex(std::move(ix), server->catalog());
    if (seen.insert(cand.name).second) out.push_back(std::move(cand));
  };

  // Indexes grouped by table.
  std::map<std::string, std::vector<const Candidate*>> by_table;
  std::map<std::string, std::vector<const Candidate*>> views;
  std::map<std::string, std::vector<const Candidate*>> parts;
  for (const auto& c : pool) {
    switch (c.kind) {
      case Candidate::Kind::kIndex:
        if (!c.index.clustered) {
          by_table[ToLower(c.index.table)].push_back(&c);
        }
        break;
      case Candidate::Kind::kView: {
        std::vector<std::string> tables = c.view.referenced_tables;
        std::sort(tables.begin(), tables.end());
        views[StrJoin(tables, ",")].push_back(&c);
        break;
      }
      case Candidate::Kind::kTablePartitioning:
        parts[c.table + "/" + ToLower(c.scheme.column)].push_back(&c);
        break;
    }
  }
  for (const auto& [table, list] : by_table) {
    for (size_t i = 0; i < list.size() && out.size() < max_new; ++i) {
      for (size_t j = i + 1; j < list.size() && out.size() < max_new; ++j) {
        auto merged = MergeIndexes(list[i]->index, list[j]->index);
        if (merged.has_value()) emit_index(std::move(*merged));
      }
    }
  }
  for (const auto& [key, list] : views) {
    for (size_t i = 0; i < list.size() && out.size() < max_new; ++i) {
      for (size_t j = i + 1; j < list.size() && out.size() < max_new; ++j) {
        auto merged = MergeViews(list[i]->view, list[j]->view, server);
        if (merged.has_value()) {
          Candidate cand = Candidate::MakeView(std::move(*merged));
          if (seen.insert(cand.name).second) out.push_back(std::move(cand));
        }
      }
    }
  }
  for (const auto& [key, list] : parts) {
    for (size_t i = 0; i < list.size() && out.size() < max_new; ++i) {
      for (size_t j = i + 1; j < list.size() && out.size() < max_new; ++j) {
        auto merged =
            MergePartitionSchemes(list[i]->scheme, list[j]->scheme);
        if (merged.has_value()) {
          Candidate cand = Candidate::MakePartitioning(
              list[i]->database, list[i]->table, std::move(*merged));
          if (seen.insert(cand.name).second) out.push_back(std::move(cand));
        }
      }
    }
  }
  return out;
}

}  // namespace dta::tuner
