// Payload encodings for the costing RPC frames (rpc/frame.h).
//
// Fixed-width integers are little-endian; doubles travel as their IEEE-754
// bit patterns (bit-exact round trip — costs must survive the wire
// unchanged or the byte-identical recommendation contract dies on
// serialization, not on costing). Strings are u32 length + bytes.
//
// The what-if request ships the statement as its original SQL text — the
// worker re-parses with the same parser, so both sides cost the identical
// AST — and the configuration as the project's DTAXML vocabulary
// (ConfigurationToXml/FromXml, dta/xml_schema.h). Statistics never travel:
// a CreateStats frame carries only the StatsKey and the worker rebuilds the
// statistic from its own (identical) data, the same determinism argument
// checkpoint resume relies on.

#ifndef DTA_DTA_RPC_WIRE_H_
#define DTA_DTA_RPC_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "optimizer/hardware.h"
#include "stats/statistics.h"

namespace dta::rpc {

// Protocol revision carried in the HELLO handshake; bump on any payload
// layout change so a stale worker fails fast instead of mis-decoding.
inline constexpr uint32_t kWireVersion = 1;

struct HelloMsg {
  uint32_t version = kWireVersion;
};

struct HelloAckMsg {
  uint32_t version = kWireVersion;
  std::string worker_name;
};

struct WhatIfRequestMsg {
  uint64_t call_key = 0;
  std::string sql;         // original statement text; worker re-parses
  std::string config_xml;  // ConfigurationToXml of the hypothetical config
  bool has_hardware = false;
  optimizer::HardwareParams hardware;  // simulated when has_hardware
};

struct WhatIfResponseMsg {
  // Status of the call on the worker (kOk carries the cost fields; any
  // other code carries only `message` and maps back to a Status).
  StatusCode code = StatusCode::kOk;
  std::string message;
  double cost = 0;
  double simulated_ms = 0;
  std::vector<stats::StatsKey> missing_stats;
};

struct CreateStatsMsg {
  stats::StatsKey key;
};

struct CreateStatsAckMsg {
  StatusCode code = StatusCode::kOk;
  std::string message;
};

std::string EncodeHello(const HelloMsg& msg);
Result<HelloMsg> DecodeHello(const std::string& payload);
std::string EncodeHelloAck(const HelloAckMsg& msg);
Result<HelloAckMsg> DecodeHelloAck(const std::string& payload);
std::string EncodeWhatIfRequest(const WhatIfRequestMsg& msg);
Result<WhatIfRequestMsg> DecodeWhatIfRequest(const std::string& payload);
std::string EncodeWhatIfResponse(const WhatIfResponseMsg& msg);
Result<WhatIfResponseMsg> DecodeWhatIfResponse(const std::string& payload);
std::string EncodeCreateStats(const CreateStatsMsg& msg);
Result<CreateStatsMsg> DecodeCreateStats(const std::string& payload);
std::string EncodeCreateStatsAck(const CreateStatsAckMsg& msg);
Result<CreateStatsAckMsg> DecodeCreateStatsAck(const std::string& payload);

// StatusCode <-> wire integer. Unknown integers decode to kInternal rather
// than failing the frame: the message still describes the failure.
uint32_t StatusCodeToWire(StatusCode code);
StatusCode StatusCodeFromWire(uint32_t raw);

}  // namespace dta::rpc

#endif  // DTA_DTA_RPC_WIRE_H_
