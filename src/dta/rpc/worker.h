// The server side of the costing RPC transport: serves one Server's what-if
// interface over a Unix socket speaking DTR1 frames.
//
// CostWorker is embeddable — the cost_server executable wraps one around a
// metadata-built server, and tests/benches run workers in-process against
// cloned warm servers, so transport behavior is exercised without process
// spawning. One connection is served at a time (the router multiplexes all
// of a shard's traffic over a single connection); when a client disconnects
// the worker loops back to accept, so a restarted tuning run can reconnect.
//
// What-if frames are dispatched to an internal thread pool (the client
// pipelines up to its per-shard window on one connection; serving serially
// would collapse that window to one). Responses carry the request id, so
// out-of-order completion is fine. CreateStats frames are a write barrier:
// the handler waits for in-flight what-ifs to drain before touching the
// statistics store, mirroring the phase structure the in-process pipeline
// relies on.

#ifndef DTA_DTA_RPC_WORKER_H_
#define DTA_DTA_RPC_WORKER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "dta/rpc/frame.h"
#include "dta/rpc/socket_util.h"
#include "server/server.h"

namespace dta::rpc {

struct CostWorkerOptions {
  // Concurrent what-if executions (the service window this worker offers).
  int threads = 4;
  // Chaos hook for transport tests: after sending this many what-if
  // responses the worker abruptly severs the active connection without
  // responding further — a deterministic stand-in for kill -9 mid-stream.
  // 0 disables.
  size_t sever_after_calls = 0;
};

class CostWorker {
 public:
  CostWorker(server::Server* server, CostWorkerOptions options);
  ~CostWorker();

  CostWorker(const CostWorker&) = delete;
  CostWorker& operator=(const CostWorker&) = delete;

  // Binds `socket_path` and starts the accept/serve thread.
  Status Listen(const std::string& socket_path);

  // Blocks until a client's kShutdown frame arrives (or Shutdown() is
  // called from another thread). The cost_server main sits here.
  void WaitForShutdown() EXCLUDES(mu_);

  // Stops serving: wakes the serve thread, closes sockets, joins.
  // Idempotent; also called by the destructor.
  void Shutdown() EXCLUDES(mu_);

  const std::string& socket_path() const { return socket_path_; }
  server::Server* server() const { return server_; }

  // What-if responses sent (successful or failed pricings both count).
  size_t whatif_frames_served() const {
    return whatif_served_.load(std::memory_order_relaxed);
  }

 private:
  void ServeLoop() EXCLUDES(mu_);
  // Serves one connection until EOF, error, shutdown, or chaos severing.
  // Returns true when the worker should keep accepting.
  bool ServeConnection(int fd) EXCLUDES(mu_);
  void HandleWhatIf(int fd, uint64_t request_id, std::string payload)
      EXCLUDES(mu_, write_mu_);
  void SendFrame(int fd, const Frame& frame) EXCLUDES(write_mu_);

  server::Server* server_;
  CostWorkerOptions options_;
  std::string socket_path_;
  OwnedFd listen_fd_;
  ThreadPool pool_;
  std::thread serve_thread_;

  // Connection write lock: pool threads and the read loop interleave
  // response frames on one fd; each frame is sent atomically under it. It
  // guards the fd's write stream, not a member, so there is nothing to
  // GUARDED_BY.
  Mutex write_mu_;  // lint: unguarded-mutex, audit-guarded

  mutable Mutex mu_;
  CondVar cv_;
  bool shutdown_ GUARDED_BY(mu_) = false;
  // In-flight what-if executions on the pool; CreateStats barriers on 0.
  int inflight_ GUARDED_BY(mu_) = 0;
  // Active connection fd, for severing from another thread (-1 when none).
  int conn_fd_ GUARDED_BY(mu_) = -1;

  std::atomic<size_t> whatif_served_{0};
};

}  // namespace dta::rpc

#endif  // DTA_DTA_RPC_WORKER_H_
