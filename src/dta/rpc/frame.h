// Length-prefixed binary framing for the costing RPC transport.
//
// Every message on a costing socket is one frame:
//
//   offset  size  field
//   0       4     magic "DTR1" (0x31525444 little-endian)
//   4       4     payload length (u32, little-endian; <= kMaxFramePayload)
//   8       4     frame type (FrameType as u32)
//   12      8     request id (u64; echoed verbatim in the response frame)
//   20      n     payload (message-specific, see rpc/wire.h)
//
// The decoder is incremental and defensive: bytes arrive in arbitrary
// chunks (short reads, torn writes), and a frame header is validated the
// moment its 20 bytes are buffered — a garbage magic, an oversized length,
// or an unknown type poisons the decoder with a clean InvalidArgument
// instead of waiting forever for payload bytes that will never come. EOF
// with a partial frame buffered is likewise a hard error (the peer died
// mid-write), which the transport surfaces as Unavailable so the completion
// queue requeues the in-flight calls instead of hanging.

#ifndef DTA_DTA_RPC_FRAME_H_
#define DTA_DTA_RPC_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace dta::rpc {

// "DTR1" as a little-endian u32: DTA RPC, wire format revision 1.
inline constexpr uint32_t kFrameMagic = 0x31525444u;
inline constexpr size_t kFrameHeaderBytes = 20;
// Upper bound on one payload. Configurations on the what-if path are a few
// KiB of XML; 16 MiB is orders of magnitude of headroom, while a garbage
// length prefix (a peer speaking another protocol, a corrupted stream) is
// rejected immediately instead of stalling the connection waiting to buffer
// gigabytes.
inline constexpr uint32_t kMaxFramePayload = 16u << 20;

enum class FrameType : uint32_t {
  kHello = 1,           // client -> worker: version handshake
  kHelloAck = 2,        // worker -> client
  kWhatIfRequest = 3,   // client -> worker: price one statement
  kWhatIfResponse = 4,  // worker -> client
  kCreateStats = 5,     // client -> worker: build one statistic by key
  kCreateStatsAck = 6,  // worker -> client
  kShutdown = 7,        // client -> worker: drain and exit
};

// True for the type values a conforming peer may send; anything else
// poisons the decoder.
bool IsKnownFrameType(uint32_t raw);

struct Frame {
  FrameType type = FrameType::kHello;
  uint64_t request_id = 0;
  std::string payload;
};

// Serializes header + payload into one contiguous buffer (a single write()
// per frame keeps frames atomic under the OS's pipe/socket semantics for
// our sizes and, more importantly, keeps the fast path to one syscall).
std::string EncodeFrame(const Frame& frame);

// Incremental frame decoder over an untrusted byte stream.
class FrameDecoder {
 public:
  // Appends bytes to the internal buffer. Validates any newly complete
  // header eagerly; a malformed header fails the stream permanently (every
  // later Feed/Next returns the same error).
  Status Feed(const char* data, size_t size);

  // Moves the next complete frame into *frame. Returns true when one was
  // available; false when more bytes are needed (or the stream is poisoned
  // — check poisoned() to distinguish).
  bool Next(Frame* frame);

  // Bytes buffered but not yet consumed as complete frames. A transport
  // that sees EOF while this is nonzero lost a frame mid-write.
  size_t pending_bytes() const { return buffer_.size() - consumed_; }
  bool poisoned() const { return !error_.ok(); }
  const Status& error() const { return error_; }

 private:
  // Validates the header starting at buffer offset `at` (requires
  // kFrameHeaderBytes buffered there).
  Status CheckHeaderAt(size_t at) const;

  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already returned as frames
  Status error_;
};

}  // namespace dta::rpc

#endif  // DTA_DTA_RPC_FRAME_H_
