// The per-shard execution channel behind ShardRouter.
//
// A channel answers one shard's what-if calls. Two families exist:
//
//   * InprocChannel — wraps a server::Server* in this process. Synchronous:
//     Call() runs the pricing on the caller's thread. This is the original
//     sharded-costing mode and stays the default for tests.
//   * SocketChannel (rpc/transport.h) — speaks DTR1 frames to a cost_server
//     worker over a Unix socket. Asynchronous: Submit() puts the request on
//     the wire and the channel's reader thread delivers the completion; the
//     router drives these through its completion queue so no worker thread
//     ever parks on a slow shard.
//
// A fleet is homogeneous: either every channel is synchronous or every
// channel is asynchronous (the router checks). Channels never decide
// routing or health — that stays in ShardRouter — they only execute.

#ifndef DTA_DTA_RPC_CHANNEL_H_
#define DTA_DTA_RPC_CHANNEL_H_

#include <functional>
#include <string>
#include <utility>

#include "common/status.h"
#include "dta/cost_service.h"
#include "server/server.h"

namespace dta::rpc {

class ShardChannel {
 public:
  virtual ~ShardChannel() = default;

  virtual const std::string& name() const = 0;

  // True when completions are delivered asynchronously via Submit();
  // false when Call() is the only entry point.
  virtual bool async() const = 0;

  // Synchronous execution on the caller's thread (inproc channels only).
  virtual Result<server::Server::WhatIfResult> Call(
      const tuner::WhatIfCall& call) = 0;

  // Asynchronous execution (socket channels only). `done` is invoked
  // exactly once, from the channel's completion thread — possibly before
  // Submit returns when the request fails to reach the wire. The borrowed
  // pointers inside `call` must stay valid until `done` runs.
  using Done = std::function<void(Result<server::Server::WhatIfResult>)>;
  virtual void Submit(const tuner::WhatIfCall& call, Done done) = 0;
};

// Synchronous channel over an in-process server replica.
class InprocChannel : public ShardChannel {
 public:
  explicit InprocChannel(server::Server* server)
      : server_(server), name_(server->name()) {}

  const std::string& name() const override { return name_; }
  bool async() const override { return false; }

  Result<server::Server::WhatIfResult> Call(
      const tuner::WhatIfCall& call) override {
    return server_->WhatIfCost(*call.stmt, *call.config,
                               call.simulate_hardware, call.call_key);
  }

  void Submit(const tuner::WhatIfCall& call, Done done) override {
    done(Call(call));
  }

  server::Server* server() const { return server_; }

 private:
  server::Server* server_;
  std::string name_;
};

}  // namespace dta::rpc

#endif  // DTA_DTA_RPC_CHANNEL_H_
