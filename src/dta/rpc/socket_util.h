// Thin POSIX wrappers for the Unix-socket costing transport: RAII fd
// ownership, listen/connect with a readiness deadline, and a short-write-
// safe send. Everything returns Status instead of errno so transport code
// reads like the rest of the tree.

#ifndef DTA_DTA_RPC_SOCKET_UTIL_H_
#define DTA_DTA_RPC_SOCKET_UTIL_H_

#include <string>
#include <utility>

#include "common/status.h"

namespace dta::rpc {

// Owns a file descriptor; closes it on destruction. Movable, not copyable.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  OwnedFd(OwnedFd&& other) noexcept : fd_(other.release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.release();
    }
    return *this;
  }
  ~OwnedFd() { Close(); }

  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Close();

 private:
  int fd_ = -1;
};

// Binds and listens on a Unix stream socket at `path` (unlinking any stale
// socket file first). Fails when the path exceeds sockaddr_un limits.
Result<OwnedFd> ListenUnix(const std::string& path);

// Connects to the Unix socket at `path`, retrying until `deadline_ms` of
// wall time has elapsed (a just-spawned worker needs a beat to bind).
Result<OwnedFd> ConnectUnix(const std::string& path, double deadline_ms);

// Writes all of `data`, looping over short writes and EINTR. SIGPIPE is
// suppressed (MSG_NOSIGNAL); a dead peer returns Unavailable.
Status SendAll(int fd, const char* data, size_t size);

// Blocking read of up to `size` bytes. Returns 0 on orderly EOF; a negative
// errno-style failure becomes Unavailable.
Result<size_t> RecvSome(int fd, char* data, size_t size);

// Bounds every blocking recv(2) on `fd` to `timeout_ms` of waiting
// (timeout_ms <= 0 restores fully blocking reads). A timed-out recv
// surfaces as Unavailable from RecvSome — this is how the handshake stays
// finite against a peer that accepts connections but never answers.
Status SetRecvTimeout(int fd, double timeout_ms);

// Asks a blocked reader on this fd to wake up: shutdown(2) both directions.
// Safe to call from another thread; the fd stays open (close still owns it).
void ShutdownFd(int fd);

}  // namespace dta::rpc

#endif  // DTA_DTA_RPC_SOCKET_UTIL_H_
