#include "dta/rpc/wire.h"

#include <cstring>

#include "common/strings.h"

namespace dta::rpc {

namespace {

// Writers append to a std::string; readers walk a cursor with bounds
// checks, so a truncated or lying payload decodes to a clean error, never
// an out-of-bounds read.
class Writer {
 public:
  void U32(uint32_t v) {
    char bytes[4];
    for (int i = 0; i < 4; ++i) {
      bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    out_.append(bytes, 4);
  }
  void U64(uint64_t v) {
    U32(static_cast<uint32_t>(v & 0xffffffffull));
    U32(static_cast<uint32_t>(v >> 32));
  }
  void F64(double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class Reader {
 public:
  explicit Reader(const std::string& payload) : data_(payload) {}

  Status U32(uint32_t* v) {
    DTA_RETURN_IF_ERROR(Need(4));
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(
                 static_cast<unsigned char>(data_[at_ + i]))
             << (8 * i);
    }
    at_ += 4;
    *v = out;
    return Status::Ok();
  }
  Status U64(uint64_t* v) {
    uint32_t lo = 0, hi = 0;
    DTA_RETURN_IF_ERROR(U32(&lo));
    DTA_RETURN_IF_ERROR(U32(&hi));
    *v = static_cast<uint64_t>(lo) | static_cast<uint64_t>(hi) << 32;
    return Status::Ok();
  }
  Status F64(double* v) {
    uint64_t bits = 0;
    DTA_RETURN_IF_ERROR(U64(&bits));
    std::memcpy(v, &bits, sizeof(bits));
    return Status::Ok();
  }
  Status Str(std::string* s) {
    uint32_t length = 0;
    DTA_RETURN_IF_ERROR(U32(&length));
    DTA_RETURN_IF_ERROR(Need(length));
    s->assign(data_, at_, length);
    at_ += length;
    return Status::Ok();
  }
  Status Done() const {
    if (at_ != data_.size()) {
      return Status::InvalidArgument(
          StrFormat("rpc payload has %zu trailing byte(s)",
                    data_.size() - at_));
    }
    return Status::Ok();
  }

 private:
  Status Need(size_t n) const {
    if (data_.size() - at_ < n) {
      return Status::InvalidArgument("rpc payload truncated");
    }
    return Status::Ok();
  }

  const std::string& data_;
  size_t at_ = 0;
};

void WriteHardware(Writer* w, const optimizer::HardwareParams& hw) {
  w->U32(static_cast<uint32_t>(hw.cpu_count));
  w->F64(hw.memory_mb);
  w->F64(hw.seq_page_ms);
  w->F64(hw.rand_page_ms);
  w->F64(hw.cpu_row_ms);
  w->F64(hw.hash_row_ms);
  w->F64(hw.cmp_row_ms);
  w->F64(hw.cached_io_fraction);
  w->F64(hw.parallel_threshold_rows);
}

Status ReadHardware(Reader* r, optimizer::HardwareParams* hw) {
  uint32_t cpu_count = 0;
  DTA_RETURN_IF_ERROR(r->U32(&cpu_count));
  hw->cpu_count = static_cast<int>(cpu_count);
  DTA_RETURN_IF_ERROR(r->F64(&hw->memory_mb));
  DTA_RETURN_IF_ERROR(r->F64(&hw->seq_page_ms));
  DTA_RETURN_IF_ERROR(r->F64(&hw->rand_page_ms));
  DTA_RETURN_IF_ERROR(r->F64(&hw->cpu_row_ms));
  DTA_RETURN_IF_ERROR(r->F64(&hw->hash_row_ms));
  DTA_RETURN_IF_ERROR(r->F64(&hw->cmp_row_ms));
  DTA_RETURN_IF_ERROR(r->F64(&hw->cached_io_fraction));
  DTA_RETURN_IF_ERROR(r->F64(&hw->parallel_threshold_rows));
  return Status::Ok();
}

void WriteStatsKey(Writer* w, const stats::StatsKey& key) {
  w->Str(key.database);
  w->Str(key.table);
  w->U32(static_cast<uint32_t>(key.columns.size()));
  for (const std::string& column : key.columns) w->Str(column);
}

Status ReadStatsKey(Reader* r, stats::StatsKey* key) {
  DTA_RETURN_IF_ERROR(r->Str(&key->database));
  DTA_RETURN_IF_ERROR(r->Str(&key->table));
  uint32_t columns = 0;
  DTA_RETURN_IF_ERROR(r->U32(&columns));
  key->columns.clear();
  key->columns.reserve(columns);
  for (uint32_t i = 0; i < columns; ++i) {
    std::string column;
    DTA_RETURN_IF_ERROR(r->Str(&column));
    key->columns.push_back(std::move(column));
  }
  return Status::Ok();
}

}  // namespace

uint32_t StatusCodeToWire(StatusCode code) {
  return static_cast<uint32_t>(code);
}

StatusCode StatusCodeFromWire(uint32_t raw) {
  switch (static_cast<StatusCode>(raw)) {
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kOutOfRange:
    case StatusCode::kUnimplemented:
    case StatusCode::kInternal:
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kAborted:
      return static_cast<StatusCode>(raw);
  }
  return StatusCode::kInternal;
}

std::string EncodeHello(const HelloMsg& msg) {
  Writer w;
  w.U32(msg.version);
  return w.Take();
}

Result<HelloMsg> DecodeHello(const std::string& payload) {
  Reader r(payload);
  HelloMsg msg;
  DTA_RETURN_IF_ERROR(r.U32(&msg.version));
  DTA_RETURN_IF_ERROR(r.Done());
  return msg;
}

std::string EncodeHelloAck(const HelloAckMsg& msg) {
  Writer w;
  w.U32(msg.version);
  w.Str(msg.worker_name);
  return w.Take();
}

Result<HelloAckMsg> DecodeHelloAck(const std::string& payload) {
  Reader r(payload);
  HelloAckMsg msg;
  DTA_RETURN_IF_ERROR(r.U32(&msg.version));
  DTA_RETURN_IF_ERROR(r.Str(&msg.worker_name));
  DTA_RETURN_IF_ERROR(r.Done());
  return msg;
}

std::string EncodeWhatIfRequest(const WhatIfRequestMsg& msg) {
  Writer w;
  w.U64(msg.call_key);
  w.U32(msg.has_hardware ? 1 : 0);
  if (msg.has_hardware) WriteHardware(&w, msg.hardware);
  w.Str(msg.sql);
  w.Str(msg.config_xml);
  return w.Take();
}

Result<WhatIfRequestMsg> DecodeWhatIfRequest(const std::string& payload) {
  Reader r(payload);
  WhatIfRequestMsg msg;
  DTA_RETURN_IF_ERROR(r.U64(&msg.call_key));
  uint32_t has_hardware = 0;
  DTA_RETURN_IF_ERROR(r.U32(&has_hardware));
  msg.has_hardware = has_hardware != 0;
  if (msg.has_hardware) {
    DTA_RETURN_IF_ERROR(ReadHardware(&r, &msg.hardware));
  }
  DTA_RETURN_IF_ERROR(r.Str(&msg.sql));
  DTA_RETURN_IF_ERROR(r.Str(&msg.config_xml));
  DTA_RETURN_IF_ERROR(r.Done());
  return msg;
}

std::string EncodeWhatIfResponse(const WhatIfResponseMsg& msg) {
  Writer w;
  w.U32(StatusCodeToWire(msg.code));
  w.Str(msg.message);
  if (msg.code == StatusCode::kOk) {
    w.F64(msg.cost);
    w.F64(msg.simulated_ms);
    w.U32(static_cast<uint32_t>(msg.missing_stats.size()));
    for (const stats::StatsKey& key : msg.missing_stats) {
      WriteStatsKey(&w, key);
    }
  }
  return w.Take();
}

Result<WhatIfResponseMsg> DecodeWhatIfResponse(const std::string& payload) {
  Reader r(payload);
  WhatIfResponseMsg msg;
  uint32_t code = 0;
  DTA_RETURN_IF_ERROR(r.U32(&code));
  msg.code = StatusCodeFromWire(code);
  DTA_RETURN_IF_ERROR(r.Str(&msg.message));
  if (msg.code == StatusCode::kOk) {
    DTA_RETURN_IF_ERROR(r.F64(&msg.cost));
    DTA_RETURN_IF_ERROR(r.F64(&msg.simulated_ms));
    uint32_t missing = 0;
    DTA_RETURN_IF_ERROR(r.U32(&missing));
    for (uint32_t i = 0; i < missing; ++i) {
      stats::StatsKey key;
      DTA_RETURN_IF_ERROR(ReadStatsKey(&r, &key));
      msg.missing_stats.push_back(std::move(key));
    }
  }
  DTA_RETURN_IF_ERROR(r.Done());
  return msg;
}

std::string EncodeCreateStats(const CreateStatsMsg& msg) {
  Writer w;
  WriteStatsKey(&w, msg.key);
  return w.Take();
}

Result<CreateStatsMsg> DecodeCreateStats(const std::string& payload) {
  Reader r(payload);
  CreateStatsMsg msg;
  DTA_RETURN_IF_ERROR(ReadStatsKey(&r, &msg.key));
  DTA_RETURN_IF_ERROR(r.Done());
  return msg;
}

std::string EncodeCreateStatsAck(const CreateStatsAckMsg& msg) {
  Writer w;
  w.U32(StatusCodeToWire(msg.code));
  w.Str(msg.message);
  return w.Take();
}

Result<CreateStatsAckMsg> DecodeCreateStatsAck(const std::string& payload) {
  Reader r(payload);
  CreateStatsAckMsg msg;
  uint32_t code = 0;
  DTA_RETURN_IF_ERROR(r.U32(&code));
  msg.code = StatusCodeFromWire(code);
  DTA_RETURN_IF_ERROR(r.Str(&msg.message));
  DTA_RETURN_IF_ERROR(r.Done());
  return msg;
}

}  // namespace dta::rpc
