#include "dta/rpc/completion_queue.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "common/strings.h"

namespace dta::rpc {

namespace {
constexpr double kNoDeadline = std::numeric_limits<double>::infinity();
}  // namespace

// One Execute invocation. Lives on the caller's stack; registered in
// `live_` (and therefore reachable from other threads) only between
// registration and the caller observing `done` — every mutation happens
// under the queue mutex.
struct CompletionQueue::Call {
  enum class State { kIdle, kWaitingCredit, kInflight, kFinished };

  uint64_t id = 0;
  const tuner::WhatIfCall* what_if = nullptr;
  const std::vector<size_t>* ranking = nullptr;
  std::vector<bool> tried;
  int pass = 0;
  State state = State::kIdle;
  size_t shard = 0;         // shard of the current attempt
  uint64_t generation = 0;  // bumped per dispatch; stale completions differ
  double deadline_ms = 0;   // real monotonic clock
  Status last_error;
  bool done = false;
  Result<server::Server::WhatIfResult> result{
      Status::Internal("completion queue: unset result")};
};

CompletionQueue::CompletionQueue(std::vector<ShardChannel*> channels,
                                 CompletionQueueHooks hooks,
                                 CompletionQueueOptions options)
    : channels_(std::move(channels)),
      hooks_(std::move(hooks)),
      options_(options) {
  DTA_CHECK(!channels_.empty(), "completion queue needs at least one shard");
  for (const ShardChannel* channel : channels_) {
    DTA_CHECK(channel->async(),
              "completion queue requires asynchronous channels");
  }
  {
    MutexLock lock(mu_);
    credits_.assign(channels_.size(),
                    std::max(1, options_.max_inflight_per_shard));
    waiting_.resize(channels_.size());
  }
  if (options_.metrics != nullptr) {
    m_calls_ = options_.metrics->GetCounter("rpc.calls");
    m_requeues_ = options_.metrics->GetCounter("rpc.requeues");
    m_timeouts_ = options_.metrics->GetCounter("rpc.timeouts");
    m_late_ = options_.metrics->GetCounter("rpc.late_responses");
    m_latency_ = options_.metrics->GetHistogram("rpc.wire_latency_ms");
  }
  timer_ = std::thread([this] { TimerLoop(); });
}

CompletionQueue::~CompletionQueue() {
  {
    MutexLock lock(mu_);
    stop_ = true;
    cv_.NotifyAll();
  }
  timer_.join();
}

Result<server::Server::WhatIfResult> CompletionQueue::Execute(
    const tuner::WhatIfCall& call, const std::vector<size_t>& ranking) {
  Call state;
  std::vector<Launch> launches;
  {
    MutexLock lock(mu_);
    state.id = next_call_id_++;
    state.what_if = &call;
    state.ranking = &ranking;
    state.tried.assign(channels_.size(), false);
    state.last_error =
        Status::Unavailable("what-if call failed on every shard");
    live_[state.id] = &state;
    if (m_calls_ != nullptr) m_calls_->Increment();
    AdvanceLocked(&state, Status::Ok(), &launches);
  }
  RunLaunches(std::move(launches));
  MutexLock lock(mu_);
  while (!state.done) cv_.Wait(mu_);
  live_.erase(state.id);
  return state.result;
}

void CompletionQueue::AdvanceLocked(Call* call, Status failure,
                                    std::vector<Launch>* launches) {
  if (!failure.ok()) call->last_error = std::move(failure);
  size_t shard = NextShardLocked(*call);
  if (shard == channels_.size() && call->pass == 0) {
    call->pass = 1;
    shard = NextShardLocked(*call);
  }
  if (shard == channels_.size()) {
    FinishLocked(call, call->last_error);
    return;
  }
  // A non-first attempt is a requeue: the statement moved shards instead of
  // a worker thread sleeping through a backoff.
  if (call->generation > 0 && m_requeues_ != nullptr) {
    m_requeues_->Increment();
  }
  StartAttemptLocked(call, shard, launches);
}

size_t CompletionQueue::NextShardLocked(const Call& call) {
  for (size_t shard : *call.ranking) {
    if (shard >= channels_.size() || call.tried[shard]) continue;
    if (hooks_.admit && !hooks_.admit(shard, call.pass)) continue;
    return shard;
  }
  return channels_.size();
}

void CompletionQueue::StartAttemptLocked(Call* call, size_t shard,
                                         std::vector<Launch>* launches) {
  call->tried[shard] = true;
  call->shard = shard;
  if (credits_[shard] > 0) {
    DispatchLocked(call, shard, launches);
    return;
  }
  // Shard window saturated: wait for a returning credit, bounded by the
  // same attempt timeout so a hung worker strands credits, not callers.
  call->state = Call::State::kWaitingCredit;
  call->deadline_ms = MonotonicNowMs() + options_.attempt_timeout_ms;
  waiting_[shard].push_back(call->id);
  cv_.NotifyAll();  // timer: a new deadline exists
}

void CompletionQueue::DispatchLocked(Call* call, size_t shard,
                                     std::vector<Launch>* launches) {
  --credits_[shard];
  call->state = Call::State::kInflight;
  call->shard = shard;
  ++call->generation;
  const double now = MonotonicNowMs();
  call->deadline_ms = now + options_.attempt_timeout_ms;
  Launch launch;
  launch.channel = channels_[shard];
  launch.call = call->what_if;
  launch.done = [this, id = call->id, generation = call->generation, shard,
                 now](Result<server::Server::WhatIfResult> result) {
    OnCompletion(id, generation, shard, now, std::move(result));
  };
  launches->push_back(std::move(launch));
  cv_.NotifyAll();  // timer: a new deadline exists
}

void CompletionQueue::FinishLocked(
    Call* call, Result<server::Server::WhatIfResult> result) {
  call->result = std::move(result);
  call->state = Call::State::kFinished;
  call->done = true;
  cv_.NotifyAll();
}

void CompletionQueue::OnCompletion(
    uint64_t call_id, uint64_t generation, size_t shard,
    double dispatched_at_ms, Result<server::Server::WhatIfResult> result) {
  std::vector<Launch> launches;
  {
    MutexLock lock(mu_);
    const double wire_ms = MonotonicNowMs() - dispatched_at_ms;
    // Success-only latency samples, mirroring the synchronous path: a
    // failed attempt's timing says nothing about a healthy shard's speed.
    if (hooks_.latency && result.ok()) hooks_.latency(shard, wire_ms);
    if (hooks_.outcome) hooks_.outcome(shard, result.ok());
    if (m_latency_ != nullptr) m_latency_->Observe(wire_ms);
    ReleaseCreditLocked(shard, &launches);
    auto it = live_.find(call_id);
    if (it == live_.end() || it->second->generation != generation ||
        it->second->state != Call::State::kInflight) {
      // The attempt timed out and the call moved on (or already finished
      // elsewhere); the credit return above was this response's only job.
      if (m_late_ != nullptr) m_late_->Increment();
    } else if (result.ok()) {
      FinishLocked(it->second, std::move(result));
    } else {
      AdvanceLocked(it->second, result.status(), &launches);
    }
  }
  RunLaunches(std::move(launches));
}

void CompletionQueue::ReleaseCreditLocked(size_t shard,
                                          std::vector<Launch>* launches) {
  ++credits_[shard];
  while (credits_[shard] > 0 && !waiting_[shard].empty()) {
    const uint64_t waiter_id = waiting_[shard].front();
    waiting_[shard].pop_front();
    auto it = live_.find(waiter_id);
    if (it == live_.end()) continue;
    Call* waiter = it->second;
    // Stale queue entries (the call timed out of the wait, or was expired
    // and moved elsewhere) are skipped, not dispatched.
    if (waiter->state != Call::State::kWaitingCredit ||
        waiter->shard != shard) {
      continue;
    }
    DispatchLocked(waiter, shard, launches);
  }
}

void CompletionQueue::TimerLoop() {
  while (true) {
    std::vector<Launch> launches;
    {
      MutexLock lock(mu_);
      if (stop_) return;
      ExpireLocked(MonotonicNowMs(), &launches);
      if (launches.empty()) {
        const double next = NextDeadlineLocked();
        if (next == kNoDeadline) {
          cv_.Wait(mu_);
        } else {
          const double delay = next - MonotonicNowMs();
          if (delay > 0) cv_.WaitForMs(mu_, delay);
        }
      }
    }
    // Requeues born from expiry go on the wire with no lock held: Submit
    // can complete synchronously and completions take mu_.
    RunLaunches(std::move(launches));
  }
}

void CompletionQueue::ExpireLocked(double now_ms,
                                   std::vector<Launch>* launches) {
  // Credit waiters: FIFO order per shard is also deadline order (constant
  // timeout), so only fronts can expire.
  for (size_t shard = 0; shard < waiting_.size(); ++shard) {
    while (!waiting_[shard].empty()) {
      auto it = live_.find(waiting_[shard].front());
      if (it == live_.end()) {
        waiting_[shard].pop_front();
        continue;
      }
      Call* call = it->second;
      if (call->state != Call::State::kWaitingCredit ||
          call->shard != shard) {
        waiting_[shard].pop_front();  // stale entry
        continue;
      }
      if (call->deadline_ms > now_ms) break;
      waiting_[shard].pop_front();
      call->state = Call::State::kIdle;
      if (m_timeouts_ != nullptr) m_timeouts_->Increment();
      if (hooks_.outcome) hooks_.outcome(shard, false);
      AdvanceLocked(call,
                    Status::DeadlineExceeded(StrFormat(
                        "shard %s: no credit within %.0f ms",
                        channels_[shard]->name().c_str(),
                        options_.attempt_timeout_ms)),
                    launches);
    }
  }
  // In-flight attempts: abandon (credit stays with the wire; the late
  // response or loss sweep returns it) and requeue the call.
  for (auto& [id, call] : live_) {
    if (call->state != Call::State::kInflight ||
        call->deadline_ms > now_ms) {
      continue;
    }
    const size_t shard = call->shard;
    call->state = Call::State::kIdle;
    if (m_timeouts_ != nullptr) m_timeouts_->Increment();
    if (hooks_.outcome) hooks_.outcome(shard, false);
    AdvanceLocked(call,
                  Status::DeadlineExceeded(StrFormat(
                      "shard %s: no response within %.0f ms",
                      channels_[shard]->name().c_str(),
                      options_.attempt_timeout_ms)),
                  launches);
  }
}

double CompletionQueue::NextDeadlineLocked() const {
  double next = kNoDeadline;
  for (const auto& [id, call] : live_) {
    if (call->state == Call::State::kWaitingCredit ||
        call->state == Call::State::kInflight) {
      next = std::min(next, call->deadline_ms);
    }
  }
  return next;
}

void CompletionQueue::RunLaunches(std::vector<Launch> launches) {
  for (Launch& launch : launches) {
    launch.channel->Submit(*launch.call, std::move(launch.done));
  }
}

}  // namespace dta::rpc
