#include "dta/rpc/frame.h"

#include <cstring>

#include "common/strings.h"

namespace dta::rpc {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char bytes[4];
  bytes[0] = static_cast<char>(v & 0xff);
  bytes[1] = static_cast<char>((v >> 8) & 0xff);
  bytes[2] = static_cast<char>((v >> 16) & 0xff);
  bytes[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(bytes, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xffffffffull));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

}  // namespace

bool IsKnownFrameType(uint32_t raw) {
  return raw >= static_cast<uint32_t>(FrameType::kHello) &&
         raw <= static_cast<uint32_t>(FrameType::kShutdown);
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  PutU32(&out, kFrameMagic);
  PutU32(&out, static_cast<uint32_t>(frame.payload.size()));
  PutU32(&out, static_cast<uint32_t>(frame.type));
  PutU64(&out, frame.request_id);
  out.append(frame.payload);
  return out;
}

Status FrameDecoder::CheckHeaderAt(size_t at) const {
  const char* header = buffer_.data() + at;
  const uint32_t magic = GetU32(header);
  if (magic != kFrameMagic) {
    return Status::InvalidArgument(
        StrFormat("rpc frame has bad magic 0x%08x (peer is not speaking "
                  "DTR1)",
                  magic));
  }
  const uint32_t length = GetU32(header + 4);
  if (length > kMaxFramePayload) {
    return Status::InvalidArgument(
        StrFormat("rpc frame declares a %u-byte payload (limit %u); "
                  "garbage length prefix",
                  length, kMaxFramePayload));
  }
  const uint32_t type = GetU32(header + 8);
  if (!IsKnownFrameType(type)) {
    return Status::InvalidArgument(
        StrFormat("rpc frame has unknown type %u", type));
  }
  return Status::Ok();
}

Status FrameDecoder::Feed(const char* data, size_t size) {
  if (!error_.ok()) return error_;
  buffer_.append(data, size);
  // Validate every header that just became complete. Payload bytes may
  // still be missing; the point is to reject a malformed header *now*
  // rather than block on a payload length read from garbage.
  size_t at = consumed_;
  while (buffer_.size() - at >= kFrameHeaderBytes) {
    Status header_ok = CheckHeaderAt(at);
    if (!header_ok.ok()) {
      error_ = header_ok;
      return error_;
    }
    const size_t length = GetU32(buffer_.data() + at + 4);
    if (buffer_.size() - at < kFrameHeaderBytes + length) break;
    at += kFrameHeaderBytes + length;
  }
  return Status::Ok();
}

bool FrameDecoder::Next(Frame* frame) {
  if (!error_.ok()) return false;
  if (buffer_.size() - consumed_ < kFrameHeaderBytes) return false;
  const char* header = buffer_.data() + consumed_;
  const size_t length = GetU32(header + 4);
  if (buffer_.size() - consumed_ < kFrameHeaderBytes + length) return false;
  frame->type = static_cast<FrameType>(GetU32(header + 8));
  frame->request_id = GetU64(header + 12);
  frame->payload.assign(buffer_, consumed_ + kFrameHeaderBytes, length);
  consumed_ += kFrameHeaderBytes + length;
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  return true;
}

}  // namespace dta::rpc
