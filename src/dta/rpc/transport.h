// Client side of the costing RPC transport: one SocketChannel per shard,
// multiplexing every call for that shard over a single Unix-socket
// connection to a cost_server worker (rpc/worker.h).
//
// Concurrency model: Submit() registers the request id in a pending map and
// writes one frame; a dedicated reader thread decodes response frames and
// resolves the matching pending entry — responses may arrive in any order.
// A connection loss (EOF, recv error, poisoned decoder) fails every pending
// request with Unavailable in one sweep, which the completion queue above
// converts into requeues on other shards; nothing ever hangs on a dead
// worker. The next Submit after a loss attempts a fresh connect+handshake
// (bounded by reconnect_deadline_ms), which is exactly the router's probe
// path: a worker that comes back is rediscovered by the first probe routed
// at it.
//
// Locking: `mu_` guards connection state and the pending map; `write_mu_`
// serializes frame writes. They are never held together, and completions
// are always invoked with no channel lock held.

#ifndef DTA_DTA_RPC_TRANSPORT_H_
#define DTA_DTA_RPC_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "dta/rpc/channel.h"
#include "dta/rpc/frame.h"
#include "dta/rpc/socket_util.h"
#include "dta/rpc/wire.h"
#include "stats/statistics.h"

namespace dta::rpc {

struct SocketChannelOptions {
  // How long the initial Connect() waits for the worker's socket to appear
  // (a just-spawned worker process needs time to bind), and separately how
  // long its handshake may wait for the HelloAck.
  double connect_deadline_ms = 10000;
  // How long a post-loss reconnect attempt (a router probe at a downed
  // worker) waits. Kept short: a probe is supposed to be cheap.
  double reconnect_deadline_ms = 250;
  // Optional fleet-wide transport counters under "rpc." names. Connection
  // events are scheduling/timing dependent, so these never appear in
  // determinism-gated exports.
  MetricsRegistry* metrics = nullptr;
};

class SocketChannel : public ShardChannel {
 public:
  // Connects and completes the DTR1 handshake; fails (rather than
  // half-constructs) when the worker is unreachable or speaks the wrong
  // wire version.
  static Result<std::unique_ptr<SocketChannel>> Connect(
      std::string name, std::string socket_path,
      SocketChannelOptions options);

  ~SocketChannel() override;

  const std::string& name() const override { return name_; }
  bool async() const override { return true; }

  // Submit + wait; convenience for callers outside the completion queue.
  Result<server::Server::WhatIfResult> Call(
      const tuner::WhatIfCall& call) override;

  void Submit(const tuner::WhatIfCall& call, Done done) override;

  // Synchronous admin RPC: build one statistic on the worker (no-op there
  // if it already exists). Fails with Unavailable when the worker is down.
  Status CreateStatistics(const stats::StatsKey& key);

  // Best-effort: tells the worker to drain and exit. The worker owns its
  // lifetime; this just delivers the request.
  void SendShutdown() EXCLUDES(mu_, write_mu_);

  // Connections established over this channel's lifetime (1 after a
  // successful Connect; grows as probes revive a lost worker).
  size_t connects() const EXCLUDES(mu_);

 private:
  // Frame-level completion: the response frame, or the transport error
  // that killed the connection while the request was pending.
  using FrameDone = std::function<void(Result<Frame>)>;

  SocketChannel(std::string name, std::string socket_path,
                SocketChannelOptions options);

  // Connects + handshakes + starts the reader thread. Reclaims the previous
  // connection's reader thread and dead fd first (waiting, lock released,
  // for the reader's loss sweep and any in-flight send to finish — closing
  // an fd another thread is still using invites fd-reuse corruption).
  Status ConnectLocked(double deadline_ms) REQUIRES(mu_);
  // Reader-thread only: fails every pending request and retires the
  // connection. The fd is shut down but NOT closed (a racing send may still
  // hold its number); it parks in dead_fd_ until ConnectLocked or the
  // destructor can close it safely. Callbacks are invoked with no lock held.
  void HandleConnectionLoss(const Status& cause) EXCLUDES(mu_);
  // Registers a pending entry and writes the frame. `done` runs exactly
  // once: via the response, via the loss sweep, or directly here when the
  // channel is closed/unreachable.
  void SendRequest(FrameType type, std::string payload, FrameDone done)
      EXCLUDES(mu_, write_mu_);
  void ReaderLoop(int fd) EXCLUDES(mu_);

  std::string name_;
  std::string socket_path_;
  SocketChannelOptions options_;

  // Serializes frame writes on the connection's fd — it guards the write
  // stream itself, not a member, so there is nothing to GUARDED_BY. Lock
  // order: write_mu_ before mu_ (the fd snapshot under the write lock);
  // never the reverse.
  Mutex write_mu_;  // lint: unguarded-mutex, audit-guarded

  mutable Mutex mu_;
  CondVar cv_;
  OwnedFd fd_ GUARDED_BY(mu_);
  // Previous connection's fd, shut down but unclosed (see above).
  OwnedFd dead_fd_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
  // Set by the reader as its final act; ConnectLocked waits on it before
  // joining (joining earlier would deadlock against the loss sweep's mu_).
  bool reader_done_ GUARDED_BY(mu_) = false;
  int sends_in_flight_ GUARDED_BY(mu_) = 0;
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
  std::map<uint64_t, FrameDone> pending_ GUARDED_BY(mu_);
  std::thread reader_ GUARDED_BY(mu_);
  size_t connects_ GUARDED_BY(mu_) = 0;

  Counter* m_connects_ = nullptr;
  Counter* m_losses_ = nullptr;
};

}  // namespace dta::rpc

#endif  // DTA_DTA_RPC_TRANSPORT_H_
