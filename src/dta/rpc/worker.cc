#include "dta/rpc/worker.h"

#include <sys/socket.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "dta/rpc/wire.h"
#include "dta/xml_schema.h"
#include "sql/parser.h"
#include "xmlio/xml.h"

namespace dta::rpc {

CostWorker::CostWorker(server::Server* server, CostWorkerOptions options)
    : server_(server),
      options_(options),
      pool_(std::max(1, options.threads)) {}

CostWorker::~CostWorker() { Shutdown(); }

Status CostWorker::Listen(const std::string& socket_path) {
  DTA_CHECK(!serve_thread_.joinable(), "CostWorker::Listen called twice");
  auto fd = ListenUnix(socket_path);
  if (!fd.ok()) return fd.status();
  socket_path_ = socket_path;
  listen_fd_ = std::move(fd).value();
  serve_thread_ = std::thread([this] { ServeLoop(); });
  return Status::Ok();
}

void CostWorker::WaitForShutdown() {
  MutexLock lock(mu_);
  while (!shutdown_) cv_.Wait(mu_);
}

void CostWorker::Shutdown() {
  {
    MutexLock lock(mu_);
    if (shutdown_ && !serve_thread_.joinable()) return;
    shutdown_ = true;
    cv_.NotifyAll();
    // Unblock the serve thread wherever it sleeps: accept(2) on the listen
    // socket or recv(2) on the live connection.
    ShutdownFd(listen_fd_.get());
    ShutdownFd(conn_fd_);
  }
  if (serve_thread_.joinable()) serve_thread_.join();
}

void CostWorker::ServeLoop() {
  while (true) {
    {
      MutexLock lock(mu_);
      if (shutdown_) return;
    }
    const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) {
      MutexLock lock(mu_);
      // accept fails for good once Shutdown() tears the listen socket
      // down; anything else (EINTR, a client that vanished mid-handshake)
      // is worth another accept.
      if (shutdown_) return;
      continue;
    }
    OwnedFd conn(fd);
    {
      MutexLock lock(mu_);
      conn_fd_ = conn.get();
    }
    const bool keep_going = ServeConnection(conn.get());
    // Drain pool tasks that still hold this fd before closing it.
    {
      MutexLock lock(mu_);
      while (inflight_ > 0) cv_.Wait(mu_);
      conn_fd_ = -1;
    }
    if (!keep_going) {
      MutexLock lock(mu_);
      shutdown_ = true;
      cv_.NotifyAll();
      return;
    }
  }
}

bool CostWorker::ServeConnection(int fd) {
  FrameDecoder decoder;
  std::vector<char> buffer(64 * 1024);
  while (true) {
    auto n = RecvSome(fd, buffer.data(), buffer.size());
    if (!n.ok() || *n == 0) return true;  // client gone; accept the next one
    if (!decoder.Feed(buffer.data(), *n).ok()) {
      // A peer not speaking DTR1 poisons its connection, never the worker.
      return true;
    }
    Frame frame;
    while (decoder.Next(&frame)) {
      switch (frame.type) {
        case FrameType::kHello: {
          HelloAckMsg ack;
          ack.worker_name = server_->name();
          SendFrame(fd, Frame{FrameType::kHelloAck, frame.request_id,
                              EncodeHelloAck(ack)});
          break;
        }
        case FrameType::kWhatIfRequest: {
          {
            MutexLock lock(mu_);
            ++inflight_;
          }
          const uint64_t request_id = frame.request_id;
          std::string payload = std::move(frame.payload);
          pool_.Submit([this, fd, request_id,
                        payload = std::move(payload)]() mutable {
            HandleWhatIf(fd, request_id, std::move(payload));
          });
          break;
        }
        case FrameType::kCreateStats: {
          // Statistics mutate state every what-if call reads: barrier on
          // the in-flight executions before touching the store.
          {
            MutexLock lock(mu_);
            while (inflight_ > 0) cv_.Wait(mu_);
          }
          CreateStatsAckMsg ack;
          auto msg = DecodeCreateStats(frame.payload);
          if (!msg.ok()) {
            ack.code = msg.status().code();
            ack.message = msg.status().message();
          } else if (!server_->HasStatistics(msg->key)) {
            auto duration = server_->CreateStatistics(msg->key);
            if (!duration.ok()) {
              ack.code = duration.status().code();
              ack.message = duration.status().message();
            }
          }
          SendFrame(fd, Frame{FrameType::kCreateStatsAck, frame.request_id,
                              EncodeCreateStatsAck(ack)});
          break;
        }
        case FrameType::kShutdown:
          return false;
        default:
          // A conforming client never sends response-typed frames; drop
          // the connection rather than guess.
          return true;
      }
    }
  }
}

void CostWorker::HandleWhatIf(int fd, uint64_t request_id,
                              std::string payload) {
  WhatIfResponseMsg response;
  auto msg = DecodeWhatIfRequest(payload);
  if (!msg.ok()) {
    response.code = msg.status().code();
    response.message = msg.status().message();
  } else {
    auto stmt = sql::ParseStatement(msg->sql);
    auto config_root = xml::Parse(msg->config_xml);
    if (!stmt.ok()) {
      response.code = stmt.status().code();
      response.message = stmt.status().message();
    } else if (!config_root.ok()) {
      response.code = config_root.status().code();
      response.message = config_root.status().message();
    } else {
      auto config = tuner::ConfigurationFromXml(**config_root);
      if (!config.ok()) {
        response.code = config.status().code();
        response.message = config.status().message();
      } else {
        auto r = server_->WhatIfCost(
            *stmt, *config, msg->has_hardware ? &msg->hardware : nullptr,
            msg->call_key);
        if (!r.ok()) {
          response.code = r.status().code();
          response.message = r.status().message();
        } else {
          response.cost = r->cost;
          response.simulated_ms = r->simulated_ms;
          response.missing_stats.assign(r->missing_stats.begin(),
                                        r->missing_stats.end());
        }
      }
    }
  }
  SendFrame(fd, Frame{FrameType::kWhatIfResponse, request_id,
                      EncodeWhatIfResponse(response)});
  const size_t served =
      whatif_served_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options_.sever_after_calls > 0 &&
      served == options_.sever_after_calls) {
    // Chaos: die mid-stream. The client sees the connection drop with
    // its remaining in-flight calls unanswered and must requeue them.
    ShutdownFd(fd);
  }
  MutexLock lock(mu_);
  --inflight_;
  cv_.NotifyAll();
}

void CostWorker::SendFrame(int fd, const Frame& frame) {
  const std::string bytes = EncodeFrame(frame);
  MutexLock lock(write_mu_);
  // A send failure means the client is gone; the read loop will observe
  // the same condition and drop the connection.
  (void)SendAll(fd, bytes.data(), bytes.size());
}

}  // namespace dta::rpc
