#include "dta/rpc/socket_util.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/clock.h"
#include "common/strings.h"

namespace dta::rpc {

namespace {

Result<sockaddr_un> UnixAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        StrFormat("unix socket path too long (%zu bytes, limit %zu): %s",
                  path.size(), sizeof(addr.sun_path) - 1, path.c_str()));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void OwnedFd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<OwnedFd> ListenUnix(const std::string& path) {
  auto addr = UnixAddress(path);
  if (!addr.ok()) return addr.status();
  OwnedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Status::Internal(StrFormat("socket(AF_UNIX): %s",
                                      std::strerror(errno)));
  }
  // A stale socket file from a dead worker blocks bind; remove it.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof(*addr)) != 0) {
    return Status::Internal(StrFormat("bind(%s): %s", path.c_str(),
                                      std::strerror(errno)));
  }
  if (::listen(fd.get(), 16) != 0) {
    return Status::Internal(StrFormat("listen(%s): %s", path.c_str(),
                                      std::strerror(errno)));
  }
  return fd;
}

Result<OwnedFd> ConnectUnix(const std::string& path, double deadline_ms) {
  auto addr = UnixAddress(path);
  if (!addr.ok()) return addr.status();
  const Clock* clock = MonotonicClock::Instance();
  const double t0 = clock->NowMs();
  int last_errno = 0;
  do {
    OwnedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
      return Status::Internal(StrFormat("socket(AF_UNIX): %s",
                                        std::strerror(errno)));
    }
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
                  sizeof(*addr)) == 0) {
      return fd;
    }
    last_errno = errno;
    // The worker may still be starting up (no socket file yet, or a bound
    // but not yet listening endpoint): back off briefly and retry until
    // the deadline.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  } while (clock->NowMs() - t0 < deadline_ms);
  return Status::Unavailable(StrFormat("connect(%s): %s", path.c_str(),
                                       std::strerror(last_errno)));
}

Status SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(StrFormat("send: %s",
                                           std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<size_t> RecvSome(int fd, char* data, size_t size) {
  while (true) {
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return Status::Unavailable(StrFormat("recv: %s", std::strerror(errno)));
  }
}

Status SetRecvTimeout(int fd, double timeout_ms) {
  timeval tv{};
  if (timeout_ms > 0) {
    tv.tv_sec = static_cast<time_t>(timeout_ms / 1000.0);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
    // Zero means "blocking" to the kernel; round a sub-millisecond
    // timeout up instead of accidentally disabling it.
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1000;
  }
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::Internal(StrFormat("setsockopt(SO_RCVTIMEO): %s",
                                      std::strerror(errno)));
  }
  return Status::Ok();
}

void ShutdownFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace dta::rpc
