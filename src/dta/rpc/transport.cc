#include "dta/rpc/transport.h"

#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "dta/xml_schema.h"
#include "xmlio/xml.h"

namespace dta::rpc {

namespace {

// Completes the DTR1 handshake synchronously on `fd` (no reader thread is
// running yet): send kHello, read frames until the kHelloAck arrives.
Status Handshake(int fd) {
  HelloMsg hello;
  const std::string bytes =
      EncodeFrame(Frame{FrameType::kHello, 0, EncodeHello(hello)});
  DTA_RETURN_IF_ERROR(SendAll(fd, bytes.data(), bytes.size()));
  FrameDecoder decoder;
  char buffer[4096];
  while (true) {
    Frame frame;
    if (decoder.Next(&frame)) {
      if (frame.type != FrameType::kHelloAck) {
        return Status::FailedPrecondition(
            "worker sent a non-HelloAck frame during handshake");
      }
      DTA_ASSIGN_OR_RETURN(HelloAckMsg ack, DecodeHelloAck(frame.payload));
      if (ack.version != kWireVersion) {
        return Status::FailedPrecondition(
            StrFormat("wire version mismatch: client %u, worker %u",
                      kWireVersion, ack.version));
      }
      return Status::Ok();
    }
    DTA_ASSIGN_OR_RETURN(size_t n, RecvSome(fd, buffer, sizeof(buffer)));
    if (n == 0) {
      return Status::Unavailable("worker closed during handshake");
    }
    DTA_RETURN_IF_ERROR(decoder.Feed(buffer, n));
  }
}

// Maps a decoded what-if response back into the Result the in-process
// backend would have produced.
Result<server::Server::WhatIfResult> ResponseToResult(
    const WhatIfResponseMsg& msg) {
  if (msg.code != StatusCode::kOk) return Status(msg.code, msg.message);
  server::Server::WhatIfResult result;
  result.cost = msg.cost;
  result.simulated_ms = msg.simulated_ms;
  result.missing_stats.insert(msg.missing_stats.begin(),
                              msg.missing_stats.end());
  return result;
}

}  // namespace

Result<std::unique_ptr<SocketChannel>> SocketChannel::Connect(
    std::string name, std::string socket_path, SocketChannelOptions options) {
  // make_unique cannot reach the private constructor.  // lint: naked-new
  std::unique_ptr<SocketChannel> channel(new SocketChannel(
      std::move(name), std::move(socket_path), options));
  Status connected;
  {
    MutexLock lock(channel->mu_);
    connected = channel->ConnectLocked(options.connect_deadline_ms);
  }
  if (!connected.ok()) return connected;
  return channel;
}

SocketChannel::SocketChannel(std::string name, std::string socket_path,
                             SocketChannelOptions options)
    : name_(std::move(name)),
      socket_path_(std::move(socket_path)),
      options_(options) {
  if (options_.metrics != nullptr) {
    m_connects_ = options_.metrics->GetCounter("rpc.connects");
    m_losses_ = options_.metrics->GetCounter("rpc.connection_losses");
  }
}

SocketChannel::~SocketChannel() {
  std::thread reader;
  {
    MutexLock lock(mu_);
    closed_ = true;
    // Wake the reader out of recv(2); its loss sweep fails any pending
    // requests (there should be none by the time a channel is destroyed).
    if (fd_.valid()) ShutdownFd(fd_.get());
    reader = std::move(reader_);
  }
  if (reader.joinable()) reader.join();
}

Status SocketChannel::ConnectLocked(double deadline_ms) {
  if (reader_.joinable()) {
    // The previous reader must finish its loss sweep (which needs mu_)
    // before it can be joined; Wait releases mu_ while blocked.
    while (!reader_done_) cv_.Wait(mu_);
    reader_.join();
    reader_done_ = false;
  }
  // A send racing with the loss may still hold the dead fd's number; only
  // close it once no send is in flight.
  while (sends_in_flight_ > 0) cv_.Wait(mu_);
  dead_fd_.Close();
  auto fd = ConnectUnix(socket_path_, deadline_ms);
  if (!fd.ok()) return fd.status();
  // The handshake gets the same deadline as the connect: a peer that
  // accepts the connection but never answers (a wedged worker, a backlog
  // entry nobody will service) must fail the probe, not hang the session.
  DTA_RETURN_IF_ERROR(SetRecvTimeout(fd->get(), deadline_ms));
  if (Status hs = Handshake(fd->get()); !hs.ok()) {
    return Status::Unavailable(
        StrFormat("handshake with worker at %s failed: %s",
                  socket_path_.c_str(), hs.message().c_str()));
  }
  DTA_RETURN_IF_ERROR(SetRecvTimeout(fd->get(), 0));
  fd_ = std::move(fd).value();
  ++connects_;
  if (m_connects_ != nullptr) m_connects_->Increment();
  reader_ = std::thread([this, raw = fd_.get()] { ReaderLoop(raw); });
  return Status::Ok();
}

void SocketChannel::HandleConnectionLoss(const Status& cause) {
  std::vector<FrameDone> victims;
  {
    MutexLock lock(mu_);
    if (fd_.valid()) {
      ShutdownFd(fd_.get());
      dead_fd_ = std::move(fd_);
    }
    victims.reserve(pending_.size());
    for (auto& [id, done] : pending_) victims.push_back(std::move(done));
    pending_.clear();
  }
  if (!victims.empty() && m_losses_ != nullptr) m_losses_->Increment();
  const Status error = Status::Unavailable(
      StrFormat("shard %s: connection lost: %s", name_.c_str(),
                cause.message().c_str()));
  for (auto& done : victims) done(error);
}

void SocketChannel::ReaderLoop(int fd) {
  FrameDecoder decoder;
  std::vector<char> buffer(64 * 1024);
  Status cause = Status::Unavailable("worker closed the connection");
  while (true) {
    auto n = RecvSome(fd, buffer.data(), buffer.size());
    if (!n.ok()) {
      cause = n.status();
      break;
    }
    if (*n == 0) break;  // orderly EOF
    if (Status fed = decoder.Feed(buffer.data(), *n); !fed.ok()) {
      cause = fed;
      break;
    }
    Frame frame;
    while (decoder.Next(&frame)) {
      FrameDone done;
      {
        MutexLock lock(mu_);
        auto it = pending_.find(frame.request_id);
        if (it == pending_.end()) continue;  // reply already abandoned
        done = std::move(it->second);
        pending_.erase(it);
      }
      done(std::move(frame));
    }
  }
  HandleConnectionLoss(cause);
  MutexLock lock(mu_);
  reader_done_ = true;
  cv_.NotifyAll();
}

void SocketChannel::SendRequest(FrameType type, std::string payload,
                                FrameDone done) {
  uint64_t id = 0;
  Status rejected;
  {
    MutexLock lock(mu_);
    if (closed_) {
      rejected = Status::Unavailable(
          StrFormat("shard %s: channel closed", name_.c_str()));
    } else if (!fd_.valid()) {
      // First traffic since a loss — this submit IS the recovery probe.
      Status reconnect = ConnectLocked(options_.reconnect_deadline_ms);
      if (!reconnect.ok()) {
        rejected = Status::Unavailable(
            StrFormat("shard %s: %s", name_.c_str(),
                      reconnect.message().c_str()));
      }
    }
    if (rejected.ok()) {
      id = next_id_++;
      pending_.emplace(id, std::move(done));
    }
  }
  if (!rejected.ok()) {
    done(rejected);
    return;
  }
  // From here on the pending entry owns completion: the response resolves
  // it, or the reader's loss sweep fails it with Unavailable.
  const std::string bytes = EncodeFrame(Frame{type, id, std::move(payload)});
  Status sent;
  bool on_wire = false;
  {
    MutexLock lock(write_mu_);
    int fd = -1;
    {
      MutexLock state_lock(mu_);
      if (fd_.valid()) {
        fd = fd_.get();
        ++sends_in_flight_;
      }
    }
    // fd < 0: the loss sweep ran between registration and here and has
    // already failed our pending entry — nothing to send.
    if (fd >= 0) {
      on_wire = true;
      sent = SendAll(fd, bytes.data(), bytes.size());
      MutexLock state_lock(mu_);
      --sends_in_flight_;
      cv_.NotifyAll();
    }
  }
  if (on_wire && !sent.ok()) {
    // Write side died; the reader may still be parked in recv. Shut the
    // socket down so it wakes and sweeps (completing our entry too).
    MutexLock lock(mu_);
    if (fd_.valid()) ShutdownFd(fd_.get());
  }
}

void SocketChannel::Submit(const tuner::WhatIfCall& call, Done done) {
  WhatIfRequestMsg msg;
  msg.call_key = call.call_key;
  DTA_CHECK(call.text != nullptr,
            "socket transport requires the statement's source text");
  msg.sql = *call.text;
  msg.config_xml = tuner::ConfigurationToXml(*call.config)->ToString();
  if (call.simulate_hardware != nullptr) {
    msg.has_hardware = true;
    msg.hardware = *call.simulate_hardware;
  }
  SendRequest(FrameType::kWhatIfRequest, EncodeWhatIfRequest(msg),
              [done = std::move(done)](Result<Frame> frame) {
                if (!frame.ok()) {
                  done(frame.status());
                  return;
                }
                auto response = DecodeWhatIfResponse(frame->payload);
                if (!response.ok()) {
                  done(response.status());
                  return;
                }
                done(ResponseToResult(*response));
              });
}

Result<server::Server::WhatIfResult> SocketChannel::Call(
    const tuner::WhatIfCall& call) {
  struct Waiter {
    Mutex mu;
    CondVar cv;
    bool ready GUARDED_BY(mu) = false;
    Result<server::Server::WhatIfResult> result GUARDED_BY(mu) =
        Status::Internal("unset");
  };
  auto waiter = std::make_shared<Waiter>();
  Submit(call, [waiter](Result<server::Server::WhatIfResult> r) {
    MutexLock lock(waiter->mu);
    waiter->result = std::move(r);
    waiter->ready = true;
    waiter->cv.NotifyAll();
  });
  MutexLock lock(waiter->mu);
  while (!waiter->ready) waiter->cv.Wait(waiter->mu);
  return waiter->result;
}

Status SocketChannel::CreateStatistics(const stats::StatsKey& key) {
  CreateStatsMsg msg;
  msg.key = key;
  struct Waiter {
    Mutex mu;
    CondVar cv;
    bool ready GUARDED_BY(mu) = false;
    Status status GUARDED_BY(mu);
  };
  auto waiter = std::make_shared<Waiter>();
  SendRequest(FrameType::kCreateStats, EncodeCreateStats(msg),
              [waiter](Result<Frame> frame) {
                Status status;
                if (!frame.ok()) {
                  status = frame.status();
                } else {
                  auto ack = DecodeCreateStatsAck(frame->payload);
                  if (!ack.ok()) {
                    status = ack.status();
                  } else if (ack->code != StatusCode::kOk) {
                    status = Status(ack->code, ack->message);
                  }
                }
                MutexLock lock(waiter->mu);
                waiter->status = status;
                waiter->ready = true;
                waiter->cv.NotifyAll();
              });
  MutexLock lock(waiter->mu);
  // Completion is guaranteed: either the ack arrives or the loss sweep
  // fails the pending entry — no timeout needed to avoid a hang.
  while (!waiter->ready) waiter->cv.Wait(waiter->mu);
  return waiter->status;
}

void SocketChannel::SendShutdown() {
  const std::string bytes = EncodeFrame(Frame{FrameType::kShutdown, 0, ""});
  MutexLock lock(write_mu_);
  int fd = -1;
  {
    MutexLock state_lock(mu_);
    if (!fd_.valid()) return;
    fd = fd_.get();
    ++sends_in_flight_;
  }
  (void)SendAll(fd, bytes.data(), bytes.size());
  MutexLock state_lock(mu_);
  --sends_in_flight_;
  cv_.NotifyAll();
}

size_t SocketChannel::connects() const {
  MutexLock lock(mu_);
  return connects_;
}

}  // namespace dta::rpc
