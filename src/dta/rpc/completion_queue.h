// Event-driven dispatch for asynchronous shard channels.
//
// The synchronous router prices a statement by walking its rendezvous
// ranking and blocking the calling worker thread inside each shard attempt;
// a slow shard therefore parks a worker for the full attempt. The
// completion queue replaces that with a state machine per call:
//
//   queued ──credit──▶ in flight ──response──▶ finished
//      │                   │
//      └──── timeout ──────┴──failure/timeout──▶ requeued on the next
//                                                shard in the ranking
//
// Each shard has `max_inflight` wire credits. A call holds a credit only
// while its request is on the wire; when the shard is saturated the call
// waits in that shard's FIFO — and both waits are bounded by the attempt
// timeout, so a hung worker can strand at most `max_inflight` credits,
// never a caller. Timeouts and transport failures requeue the call on the
// next untried shard (two passes, mirroring the router: pass 0 admitted
// shards only, pass 1 anything untried) without any worker thread ever
// sleeping in a backoff. A timed-out attempt leaves its credit with the
// wire; the late response (or the channel's connection-loss sweep) returns
// it, and a generation counter on the call discards the stale result.
//
// Determinism: which shard answers never affects the cost (replicas are
// identical — the sharded-costing invariant), so requeue order, timeouts,
// and late-response discards affect only scheduling. All rpc.* metrics are
// timing-dependent and excluded from determinism-gated exports.
//
// Deadlines use the real monotonic clock, never the session clock: under
// FakeClock a deadline would simply never arrive.

#ifndef DTA_DTA_RPC_COMPLETION_QUEUE_H_
#define DTA_DTA_RPC_COMPLETION_QUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "dta/rpc/channel.h"

namespace dta::rpc {

struct CompletionQueueOptions {
  // Wire credits per shard: concurrent requests one connection pipelines.
  int max_inflight_per_shard = 4;
  // Per-attempt budget, covering both the credit wait and the wire time.
  // On expiry the call requeues on the next shard.
  double attempt_timeout_ms = 30000;
  // Optional "rpc." counters/histograms (never determinism-gated).
  MetricsRegistry* metrics = nullptr;
};

// Health/ranking hooks supplied by ShardRouter so queue-driven attempts
// feed the same admission, demotion, and latency bookkeeping as the
// synchronous path.
struct CompletionQueueHooks {
  // May shard `i` serve an attempt in `pass` (0 = admitted only)?
  std::function<bool(size_t, int)> admit;
  // Attempt outcome for health accounting (timeouts count as failures).
  std::function<void(size_t, bool)> outcome;
  // Wire latency of a genuine successful completion, in ms.
  std::function<void(size_t, double)> latency;
};

class CompletionQueue {
 public:
  // `channels` must all be async; borrowed, must outlive the queue.
  CompletionQueue(std::vector<ShardChannel*> channels,
                  CompletionQueueHooks hooks, CompletionQueueOptions options);
  ~CompletionQueue();

  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  // Prices `call` against the shards of `ranking` (all shard indices, best
  // first). Blocks the caller until a shard answers or every shard has been
  // tried in both passes; the thread parks on a condvar, never in a
  // backoff sleep. Thread-safe; any number of concurrent callers.
  Result<server::Server::WhatIfResult> Execute(
      const tuner::WhatIfCall& call, const std::vector<size_t>& ranking)
      EXCLUDES(mu_);

  size_t shard_count() const { return channels_.size(); }

 private:
  struct Call;  // one Execute invocation's state machine

  // A dispatch prepared under mu_ and launched lock-free: Submit may
  // complete synchronously, and its completion path takes mu_.
  struct Launch {
    ShardChannel* channel = nullptr;
    const tuner::WhatIfCall* call = nullptr;
    ShardChannel::Done done;
  };

  // Starts the next attempt for `call`, or finishes it when the plan is
  // exhausted. Appends any ready-to-go dispatch to `launches`.
  void AdvanceLocked(Call* call, Status failure,
                     std::vector<Launch>* launches) REQUIRES(mu_);
  // Picks the next untried shard honoring the pass policy; returns
  // channels_.size() when the current pass has nothing left.
  size_t NextShardLocked(const Call& call) REQUIRES(mu_);
  // Begins an attempt on `shard`: dispatches if a credit is free, else
  // queues on the shard FIFO with a deadline.
  void StartAttemptLocked(Call* call, size_t shard,
                          std::vector<Launch>* launches) REQUIRES(mu_);
  void DispatchLocked(Call* call, size_t shard,
                      std::vector<Launch>* launches) REQUIRES(mu_);
  void FinishLocked(Call* call, Result<server::Server::WhatIfResult> result)
      REQUIRES(mu_);
  // Wire completion for (call_id, generation) on `shard`. Late completions
  // only return the credit and feed latency/health.
  void OnCompletion(uint64_t call_id, uint64_t generation, size_t shard,
                    double dispatched_at_ms,
                    Result<server::Server::WhatIfResult> result)
      EXCLUDES(mu_);
  // Returns a freed credit to `shard` and dispatches its FIFO head.
  void ReleaseCreditLocked(size_t shard, std::vector<Launch>* launches)
      REQUIRES(mu_);
  void TimerLoop() EXCLUDES(mu_);
  // Fails every expired queued/in-flight attempt and requeues those calls.
  void ExpireLocked(double now_ms, std::vector<Launch>* launches)
      REQUIRES(mu_);
  double NextDeadlineLocked() const REQUIRES(mu_);
  void RunLaunches(std::vector<Launch> launches) EXCLUDES(mu_);

  std::vector<ShardChannel*> channels_;
  CompletionQueueHooks hooks_;
  CompletionQueueOptions options_;

  mutable Mutex mu_;
  // Broadcast on every state change: finishing calls wake their callers,
  // deadline changes wake the timer.
  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  uint64_t next_call_id_ GUARDED_BY(mu_) = 1;
  // Live Execute invocations by id; values point at caller stack frames,
  // valid exactly while registered.
  std::map<uint64_t, Call*> live_ GUARDED_BY(mu_);
  std::vector<int> credits_ GUARDED_BY(mu_);
  // Calls waiting for a credit, per shard, FIFO.
  std::vector<std::deque<uint64_t>> waiting_ GUARDED_BY(mu_);

  std::thread timer_;

  Counter* m_calls_ = nullptr;
  Counter* m_requeues_ = nullptr;
  Counter* m_timeouts_ = nullptr;
  Counter* m_late_ = nullptr;
  Histogram* m_latency_ = nullptr;
};

}  // namespace dta::rpc

#endif  // DTA_DTA_RPC_COMPLETION_QUEUE_H_
