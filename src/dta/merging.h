// The Merging step (paper §2.2): candidates chosen per-query can be
// over-specialized; merged structures trade per-query optimality for
// cross-query benefit, which matters under storage bounds and update-heavy
// workloads. Index merging follows [8], view merging [3], and merging of
// partitioned structures the techniques of [4] (boundary-set union).

#ifndef DTA_DTA_MERGING_H_
#define DTA_DTA_MERGING_H_

#include <optional>
#include <vector>

#include "dta/candidates.h"
#include "server/server.h"

namespace dta::tuner {

// Merges two nonclustered indexes on the same table: the merged key is a's
// key followed by b's key columns not already present; included columns are
// unioned. Returns nullopt when the inputs are not mergeable (different
// tables, clustered, or the merged index would be wider than `max_key_cols`).
std::optional<catalog::IndexDef> MergeIndexes(const catalog::IndexDef& a,
                                              const catalog::IndexDef& b,
                                              int max_key_columns = 6);

// Merges two view candidates over the same join (same tables, same join
// predicates): group-by columns and aggregates are unioned; predicates kept
// only when identical in both, otherwise dropped with their columns exposed
// through GROUP BY. Returns nullopt when not mergeable.
std::optional<catalog::ViewDef> MergeViews(const catalog::ViewDef& a,
                                           const catalog::ViewDef& b,
                                           server::Server* server);

// Merges two partition schemes on the same table and column by uniting
// their boundary sets (thinned to `max_boundaries`).
std::optional<catalog::PartitionScheme> MergePartitionSchemes(
    const catalog::PartitionScheme& a, const catalog::PartitionScheme& b,
    int max_boundaries = 16);

// One merging pass over the candidate pool: every mergeable pair (same
// table / same join signature) produces a merged candidate. Returns only
// the new candidates. `server` re-estimates merged view sizes.
std::vector<Candidate> MergeCandidatePool(const std::vector<Candidate>& pool,
                                          server::Server* server,
                                          size_t max_new = 64);

}  // namespace dta::tuner

#endif  // DTA_DTA_MERGING_H_
