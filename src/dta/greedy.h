// Greedy(m,k) search (Chaudhuri & Narasayya [8], used by both Candidate
// Selection and Enumeration, paper §2.2): exhaustively choose the best
// subset of size <= m, then greedily add structures (up to k total) while
// the objective keeps improving.

#ifndef DTA_DTA_GREEDY_H_
#define DTA_DTA_GREEDY_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"

namespace dta::tuner {

struct GreedyResult {
  std::vector<size_t> chosen;  // candidate indexes, in selection order
  double cost = 0;             // objective of the chosen subset
  size_t evaluations = 0;      // number of objective evaluations
};

// Resumable search state, snapshotted after the exhaustive phase and after
// every completed greedy round (crash-safe checkpointing). Restarting a
// search from a snapshot continues it exactly where it left off: `strikes`
// carries the two-strike elimination state, so the resumed rounds evaluate
// precisely the subsets the uninterrupted search would have evaluated.
struct GreedyState {
  bool phase1_done = false;
  std::vector<size_t> chosen;  // candidate indexes, in selection order
  double cost = 0;
  std::vector<int> strikes;  // per-candidate elimination strikes
};

// `eval` returns the objective (lower is better) for a subset of candidate
// indexes, or an error when the subset is infeasible (e.g. conflicting
// clustered indexes, storage bound exceeded) — infeasible subsets are
// skipped. `empty_cost` is the objective of the empty subset.
// `should_stop`, when provided, is polled between evaluations (time-bound
// tuning); when it returns true the best answer so far is returned.
// `min_relative_improvement`: the greedy extension stops when a round's
// best addition improves the objective by less than this fraction —
// structures with negligible benefit are not worth their storage and
// maintenance (and each round costs a sweep of what-if calls).
//
// When `pool` is provided, the independent evaluations of each phase — the
// size-<=m exhaustive sweep and every greedy round — are fanned out across
// the pool; `eval` must then be thread-safe. Winners are still picked by a
// serial scan in candidate order with the serial tie-breaking (first
// strictly better subset wins), so the chosen subsets and costs are
// identical to the single-threaded search (time-bounded runs excepted:
// threads poll `should_stop` independently, exactly as the serial loop
// polls it between evaluations).
//
// `resume`, when provided with phase1_done set, skips the exhaustive phase
// and continues the greedy rounds from the snapshot. `on_progress`, when
// provided, is invoked with a resumable snapshot after the exhaustive phase
// and after every round that extends the chosen subset.
GreedyResult GreedySearch(
    size_t candidate_count, int m, int k, double empty_cost,
    const std::function<Result<double>(const std::vector<size_t>&)>& eval,
    const std::function<bool()>& should_stop = nullptr,
    double min_relative_improvement = 1e-9, ThreadPool* pool = nullptr,
    const GreedyState* resume = nullptr,
    const std::function<void(const GreedyState&)>& on_progress = nullptr);

}  // namespace dta::tuner

#endif  // DTA_DTA_GREEDY_H_
