// Column-group restriction (paper §2.2): a pre-processing step that prunes
// the space of physical design structures by keeping only "interesting"
// column-groups — sets of columns that co-occur in a significant fraction of
// the workload by cost. Built bottom-up with the frequent-itemset (Apriori)
// idea of Agrawal & Srikant [5].

#ifndef DTA_DTA_COLUMN_GROUPS_H_
#define DTA_DTA_COLUMN_GROUPS_H_

#include <set>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "workload/workload.h"

namespace dta::tuner {

class InterestingColumnGroups {
 public:
  InterestingColumnGroups() = default;

  // A disabled instance admits every group (used when the restriction is
  // turned off).
  static InterestingColumnGroups Unrestricted();

  void Insert(const std::string& database, const std::string& table,
              std::vector<std::string> columns);
  // True when the (set of) columns is an interesting group of the table.
  bool Contains(const std::string& database, const std::string& table,
                std::vector<std::string> columns) const;
  size_t size() const { return groups_.size(); }
  bool unrestricted() const { return unrestricted_; }

 private:
  static std::string Key(const std::string& database,
                         const std::string& table,
                         std::vector<std::string> columns);
  std::set<std::string> groups_;
  bool unrestricted_ = false;
};

// Per-statement tunable columns of each referenced table (predicate, join,
// group-by, order-by columns — the columns index keys can be built from).
struct StatementColumnUsage {
  struct TableUsage {
    std::string database;
    std::string table;
    std::set<std::string> columns;
  };
  std::vector<TableUsage> tables;
};

Result<StatementColumnUsage> AnalyzeStatementColumns(
    const sql::Statement& stmt, const catalog::Catalog& catalog);

// Computes interesting column-groups for the workload. `statement_costs`
// are current-configuration costs (parallel to workload.statements());
// weights multiply in. Groups whose supporting statements carry less than
// `cost_fraction` of the total workload cost are pruned. Groups larger than
// `max_group_size` are not considered.
Result<InterestingColumnGroups> ComputeInterestingColumnGroups(
    const workload::Workload& workload,
    const std::vector<double>& statement_costs,
    const catalog::Catalog& catalog, double cost_fraction,
    int max_group_size);

}  // namespace dta::tuner

#endif  // DTA_DTA_COLUMN_GROUPS_H_
