#include "dta/tenant_driver.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace dta::tuner {

AdmissionController::AdmissionController(Options options)
    : options_(options) {
  options_.total_capacity = std::max(1, options_.total_capacity);
  options_.per_tenant_capacity = std::min(
      options_.total_capacity, std::max(1, options_.per_tenant_capacity));
}

int AdmissionController::RegisterTenant(const std::string& name,
                                        double weight) {
  MutexLock lock(mu_);
  auto tenant = std::make_unique<Tenant>();
  tenant->name = name;
  tenant->weight = weight > 0 ? weight : 1e-6;
  tenants_.push_back(std::move(tenant));
  return static_cast<int>(tenants_.size()) - 1;
}

bool AdmissionController::CanAdmit(int tenant) const {
  const Tenant& t = *tenants_[static_cast<size_t>(tenant)];
  if (total_inflight_ >= options_.total_capacity) return false;
  if (t.inflight >= options_.per_tenant_capacity) return false;
  // Weighted-fair dispatch: yield to any *eligible* waiter further behind
  // in virtual time. A waiter pinned by its own per-tenant cap is not
  // eligible and cannot hold the door shut for everyone else.
  for (size_t i = 0; i < tenants_.size(); ++i) {
    const Tenant& other = *tenants_[i];
    if (static_cast<int>(i) == tenant || other.waiting == 0) continue;
    if (other.inflight >= options_.per_tenant_capacity) continue;
    if (other.vtime < t.vtime ||
        (other.vtime == t.vtime && static_cast<int>(i) < tenant)) {
      return false;
    }
  }
  return true;
}

void AdmissionController::Acquire(int tenant) {
  MutexLock lock(mu_);
  Tenant& t = *tenants_[static_cast<size_t>(tenant)];
  ++t.waiting;
  bool waited = false;
  while (!CanAdmit(tenant)) {
    waited = true;
    cv_.Wait(mu_);
  }
  --t.waiting;
  if (waited) ++waits_;
  ++t.inflight;
  ++total_inflight_;
  ++t.admitted;
  t.vtime = static_cast<double>(t.admitted) / t.weight;
  peak_inflight_ = std::max(peak_inflight_,
                            static_cast<size_t>(total_inflight_));
}

void AdmissionController::Release(int tenant) {
  MutexLock lock(mu_);
  --tenants_[static_cast<size_t>(tenant)]->inflight;
  --total_inflight_;
  // Broadcast, not signal: the freed slot's rightful taker is the min-vtime
  // waiter, and only a full re-check finds it.
  cv_.NotifyAll();
}

size_t AdmissionController::tenant_count() const {
  MutexLock lock(mu_);
  return tenants_.size();
}

size_t AdmissionController::admitted(int tenant) const {
  MutexLock lock(mu_);
  return tenants_[static_cast<size_t>(tenant)]->admitted;
}

size_t AdmissionController::peak_inflight() const {
  MutexLock lock(mu_);
  return peak_inflight_;
}

size_t AdmissionController::waits() const {
  MutexLock lock(mu_);
  return waits_;
}

Status TenantDriver::ValidateTenants(
    const std::vector<TenantSpec>& tenants,
    const std::vector<server::Server*>& servers,
    bool require_workloads) const {
  if (tenants.empty()) {
    return Status::InvalidArgument("tenant driver needs at least one tenant");
  }
  if (servers.size() != tenants.size()) {
    return Status::InvalidArgument(StrFormat(
        "tenant driver got %zu tenants but %zu servers", tenants.size(),
        servers.size()));
  }
  for (size_t i = 0; i < tenants.size(); ++i) {
    if (require_workloads && tenants[i].workload == nullptr) {
      return Status::InvalidArgument(
          StrFormat("tenant '%s' has no workload", tenants[i].name.c_str()));
    }
    if (servers[i] == nullptr) {
      return Status::InvalidArgument(
          StrFormat("tenant '%s' has no server", tenants[i].name.c_str()));
    }
    for (size_t j = 0; j < i; ++j) {
      if (tenants[j].name == tenants[i].name) {
        return Status::InvalidArgument(StrFormat(
            "duplicate tenant name '%s'", tenants[i].name.c_str()));
      }
    }
  }
  return Status::Ok();
}

Result<std::vector<TenantOutcome>> TenantDriver::Run(
    const std::vector<TenantSpec>& tenants,
    const std::vector<server::Server*>& servers) {
  Status valid = ValidateTenants(tenants, servers, /*require_workloads=*/true);
  if (!valid.ok()) return valid;

  AdmissionController admission(options_.admission);
  std::vector<int> ids;
  ids.reserve(tenants.size());
  for (const TenantSpec& spec : tenants) {
    ids.push_back(admission.RegisterTenant(spec.name, spec.weight));
  }

  // Each tenant profiles into a private registry; the shared registry sees
  // them only after the join below, merged serially in tenant order.
  std::vector<std::unique_ptr<MetricsRegistry>> registries;
  registries.reserve(tenants.size());
  for (size_t i = 0; i < tenants.size(); ++i) {
    registries.push_back(options_.metrics != nullptr
                             ? std::make_unique<MetricsRegistry>()
                             : nullptr);
  }

  std::vector<TenantOutcome> outcomes(tenants.size());
  std::vector<std::thread> threads;
  threads.reserve(tenants.size());
  for (size_t i = 0; i < tenants.size(); ++i) {
    threads.emplace_back([&, i] {
      const TenantSpec& spec = tenants[i];
      outcomes[i].name = spec.name;
      TuningSession session(servers[i], spec.options);
      TuningSession::Observability obs;
      obs.metrics = registries[i].get();
      obs.clock = options_.clock;
      session.SetObservability(obs);
      TenantContext ctx;
      ctx.name = spec.name;
      ctx.admission = &admission;
      ctx.tenant_id = ids[i];
      session.SetTenantContext(ctx);
      auto result = session.Tune(*spec.workload);
      outcomes[i].status = result.status();
      if (result.ok()) outcomes[i].result = std::move(result).value();
    });
  }
  for (std::thread& t : threads) t.join();

  if (options_.metrics != nullptr) {
    for (size_t i = 0; i < tenants.size(); ++i) {
      options_.metrics->MergeFrom(*registries[i],
                                  "tenant." + tenants[i].name + ".");
    }
  }
  admission_waits_ = admission.waits();
  admission_peak_ = admission.peak_inflight();
  return outcomes;
}

Result<std::vector<ContinuousTenantOutcome>> TenantDriver::RunContinuous(
    const std::vector<TenantSpec>& tenants,
    const std::vector<server::Server*>& servers,
    const ContinuousFleetSpec& fleet) {
  Status valid =
      ValidateTenants(tenants, servers, /*require_workloads=*/false);
  if (!valid.ok()) return valid;
  if (fleet.retune_interval_events == 0 && fleet.retune_interval_ms <= 0) {
    return Status::InvalidArgument(
        "continuous fleet needs a retune cadence (events and/or ms)");
  }

  AdmissionController admission(options_.admission);
  std::vector<int> ids;
  ids.reserve(tenants.size());
  for (const TenantSpec& spec : tenants) {
    ids.push_back(admission.RegisterTenant(spec.name, spec.weight));
  }

  std::vector<std::unique_ptr<MetricsRegistry>> registries;
  registries.reserve(tenants.size());
  for (size_t i = 0; i < tenants.size(); ++i) {
    registries.push_back(options_.metrics != nullptr
                             ? std::make_unique<MetricsRegistry>()
                             : nullptr);
  }

  std::vector<ContinuousTenantOutcome> outcomes(tenants.size());
  std::vector<std::thread> threads;
  threads.reserve(tenants.size());
  for (size_t i = 0; i < tenants.size(); ++i) {
    threads.emplace_back([&, i] {
      const TenantSpec& spec = tenants[i];
      outcomes[i].name = spec.name;
      stream::ContinuousTuner::Config config;
      config.server = servers[i];
      config.options = spec.options;
      config.retune_interval_events = fleet.retune_interval_events;
      config.retune_interval_ms = fleet.retune_interval_ms;
      config.max_templates = fleet.max_templates;
      config.decay = fleet.decay;
      config.quarantine_rounds = fleet.quarantine_rounds;
      if (!fleet.checkpoint_prefix.empty()) {
        config.checkpoint_path =
            fleet.checkpoint_prefix + ".tenant." + spec.name;
      }
      config.compact_threshold_bytes = fleet.compact_threshold_bytes;
      config.metrics = registries[i].get();
      config.clock = options_.clock;
      config.tenant.name = spec.name;
      config.tenant.admission = &admission;
      config.tenant.tenant_id = ids[i];
      stream::ContinuousTuner service(std::move(config));
      Status status = service.Init();
      if (status.ok()) {
        service.ConsumeFeedback(fleet.feedback);
        status = service.Feed(fleet.capture);
      }
      if (status.ok()) status = service.Finish();
      outcomes[i].status = status;
      outcomes[i].delta_text = service.delta_text();
      outcomes[i].rounds = service.rounds();
      outcomes[i].resumed = service.resumed();
      outcomes[i].recommendation = service.recommendation();
    });
  }
  for (std::thread& t : threads) t.join();

  if (options_.metrics != nullptr) {
    for (size_t i = 0; i < tenants.size(); ++i) {
      options_.metrics->MergeFrom(*registries[i],
                                  "tenant." + tenants[i].name + ".");
    }
  }
  admission_waits_ = admission.waits();
  admission_peak_ = admission.peak_inflight();
  return outcomes;
}

}  // namespace dta::tuner
