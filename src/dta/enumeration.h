// The Enumeration step (paper §2.2): Greedy(m,k) over the union of
// candidates (including merged structures), pricing whole-workload cost via
// the what-if interface, subject to the storage bound and (optionally) the
// alignment constraint. Aligned candidate variants are introduced lazily
// during search (paper §4) unless eager expansion is requested (ablation).

#ifndef DTA_DTA_ENUMERATION_H_
#define DTA_DTA_ENUMERATION_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "catalog/physical_design.h"
#include "common/status.h"
#include "dta/candidates.h"
#include "dta/cost_service.h"
#include "dta/tuning_options.h"

namespace dta::tuner {

struct EnumerationResult {
  catalog::Configuration configuration;  // base + chosen candidates
  double cost = 0;                       // workload cost under it
  std::vector<std::string> chosen;       // candidate names, selection order
  size_t evaluations = 0;                // configurations priced
  size_t candidates_considered = 0;      // after any eager expansion
  double eval_work_ms = 0;               // summed per-evaluation wall time
};

// Resumable greedy state, expressed in candidate *names* so it can be
// serialized into a session checkpoint: chosen structures in selection
// order, the cost of that subset, and the two-strike elimination state over
// the (deterministically expanded) candidate pool.
struct EnumerationResume {
  bool phase1_done = false;
  std::vector<std::string> chosen;  // candidate names, selection order
  double cost = 0;
  std::vector<int> strikes;  // per expanded-pool candidate
};

// `base` contains structures that are always present (constraint-enforcing
// indexes and the user-specified configuration).
//
// When `pool` is given, the per-candidate evaluations inside each greedy
// round are priced in parallel; the chosen configuration and cost are
// identical to the serial search (see GreedySearch).
//
// `resume`, when provided with phase1_done set, continues an interrupted
// search (the greedy rounds pick up exactly where the snapshot left off);
// `on_progress`, when provided, receives a resumable snapshot after the
// exhaustive phase and after every completed greedy round — the tuning
// session persists these as crash-safe checkpoints.
Result<EnumerationResult> EnumerateConfiguration(
    CostService* costs, const std::vector<Candidate>& candidates,
    const catalog::Configuration& base, const TuningOptions& options,
    const std::function<bool()>& should_stop = nullptr,
    ThreadPool* thread_pool = nullptr,
    const EnumerationResume* resume = nullptr,
    const std::function<void(const EnumerationResume&)>& on_progress =
        nullptr);

// Builds base + subset into a full configuration, applying alignment
// rewrites when required. Fails on conflicts (duplicate clustered index,
// duplicate table partitioning).
Result<catalog::Configuration> BuildConfiguration(
    const catalog::Configuration& base,
    const std::vector<const Candidate*>& chosen, bool aligned);

}  // namespace dta::tuner

#endif  // DTA_DTA_ENUMERATION_H_
