// Physical design candidates and their per-statement generation.
//
// Candidate Selection (paper §2.2) works per statement: syntactically derive
// promising structures (indexes, materialized views, range partitionings)
// from the statement's predicates, joins, grouping and ordering — restricted
// to interesting column-groups — then pick the best small configuration for
// that statement with Greedy(m,k) what-if search. The union of picked
// structures forms the global candidate set.

#ifndef DTA_DTA_CANDIDATES_H_
#define DTA_DTA_CANDIDATES_H_

#include <functional>
#include <string>
#include <vector>

#include "catalog/physical_design.h"
#include "common/status.h"
#include "dta/column_groups.h"
#include "dta/tuning_options.h"
#include "server/server.h"

namespace dta::tuner {

struct Candidate {
  enum class Kind { kIndex, kView, kTablePartitioning };

  Kind kind = Kind::kIndex;
  catalog::IndexDef index;            // kIndex
  catalog::ViewDef view;              // kView
  std::string database;               // kTablePartitioning
  std::string table;                  // kTablePartitioning
  catalog::PartitionScheme scheme;    // kTablePartitioning

  std::string name;    // canonical identity
  uint64_t bytes = 0;  // additional storage estimate

  static Candidate MakeIndex(catalog::IndexDef index,
                             const catalog::Catalog& catalog);
  static Candidate MakeView(catalog::ViewDef view);
  static Candidate MakePartitioning(std::string database, std::string table,
                                    catalog::PartitionScheme scheme);

  // The table this candidate is "about" (partitioning/index target; views
  // return their first referenced table).
  const std::string& TargetTable() const;

  // Adds the structure to a configuration. When `aligned` and the
  // configuration partitions the target table, indexes take on the table's
  // scheme (lazy introduction of aligned variants, paper §4). Errors on
  // conflicts (duplicate structure, second clustered index).
  Status ApplyTo(catalog::Configuration* config, bool aligned) const;
};

// Supplies single-column statistics during candidate generation (partition
// boundary proposals). In the production/test-server scenario the fetcher
// creates statistics on the production server and imports them into the
// test server (paper §5.3); the default fetches from `server` directly.
using StatsFetcher =
    std::function<Result<const stats::Statistics*>(const stats::StatsKey&)>;

// Generated candidates for one statement, produced before what-if pricing.
// `statement_weight` > 1 marks a compression representative: view candidates
// then expose predicate columns through GROUP BY instead of baking in the
// representative's constants (an exact-constant view could not serve the
// cluster the representative stands for).
Result<std::vector<Candidate>> GenerateCandidatesForStatement(
    const sql::Statement& stmt, server::Server* server,
    const InterestingColumnGroups& groups, const TuningOptions& options,
    const StatsFetcher& fetch_stats = nullptr, double statement_weight = 1.0);

}  // namespace dta::tuner

#endif  // DTA_DTA_CANDIDATES_H_
