#include "dta/derived_cost.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace dta::tuner {

namespace {

// Fixed context: structures that describe the table organization itself and
// therefore belong in every atom. A clustered index (constraint-enforcing
// or not) decides heap-vs-clustered access for all paths of its table, and
// constraint-enforcing indexes are part of the raw configuration that every
// candidate configuration contains anyway.
bool IsContextIndex(const catalog::IndexDef& ix) {
  return ix.clustered || ix.constraint_enforcing;
}

catalog::Configuration MakeAtom(
    const RelevantSet& relevant,
    const std::vector<const catalog::IndexDef*>& variable_indexes,
    const catalog::ViewDef* view) {
  catalog::Configuration atom;
  for (const auto& ix : relevant.indexes) {
    if (IsContextIndex(ix)) (void)atom.AddIndex(ix);
  }
  for (const catalog::IndexDef* ix : variable_indexes) {
    (void)atom.AddIndex(*ix);
  }
  if (view != nullptr) (void)atom.AddView(*view);
  for (const auto& [table, scheme] : relevant.partitioning) {
    atom.SetTablePartitioning(table, scheme);
  }
  return atom;
}

}  // namespace

RelevantSet CollectRelevant(const std::set<std::string>& statement_tables,
                            const catalog::Configuration& config) {
  RelevantSet out;
  for (const auto& ix : config.indexes()) {
    if (statement_tables.count(ToLower(ix.table)) > 0) {
      out.indexes.push_back(ix);
    }
  }
  for (const auto& v : config.views()) {
    for (const auto& t : v.referenced_tables) {
      if (statement_tables.count(ToLower(t)) > 0) {
        out.views.push_back(v);
        break;
      }
    }
  }
  for (const auto& [table, scheme] : config.table_partitioning()) {
    if (statement_tables.count(table) > 0) {
      out.partitioning.emplace_back(table, scheme);
    }
  }
  std::sort(out.indexes.begin(), out.indexes.end(),
            [](const catalog::IndexDef& a, const catalog::IndexDef& b) {
              return a.CanonicalName() < b.CanonicalName();
            });
  std::sort(out.views.begin(), out.views.end(),
            [](const catalog::ViewDef& a, const catalog::ViewDef& b) {
              return a.CanonicalName() < b.CanonicalName();
            });
  // partitioning arrives from a std::map, already in table order.
  return out;
}

std::string FingerprintOf(const RelevantSet& relevant) {
  std::vector<std::string> parts;
  parts.reserve(relevant.indexes.size() + relevant.views.size() +
                relevant.partitioning.size());
  for (const auto& ix : relevant.indexes) parts.push_back(ix.CanonicalName());
  for (const auto& v : relevant.views) parts.push_back(v.CanonicalName());
  for (const auto& [table, scheme] : relevant.partitioning) {
    parts.push_back("tp:" + table + ":" + scheme.CanonicalString());
  }
  std::sort(parts.begin(), parts.end());
  return StrJoin(parts, "|");
}

Decomposition DecomposeConfiguration(sql::StatementKind statement_kind,
                                     const RelevantSet& relevant,
                                     size_t max_atoms) {
  Decomposition out;

  // Per-table groups of variable indexes. relevant.indexes is sorted by
  // canonical name, so group membership order — and with it the atom order
  // below — is a pure function of the relevant set.
  std::map<std::string, std::vector<const catalog::IndexDef*>> groups;
  for (const auto& ix : relevant.indexes) {
    if (!IsContextIndex(ix)) groups[ToLower(ix.table)].push_back(&ix);
  }

  size_t largest_group = 0;
  size_t variable_indexes = 0;
  for (const auto& [table, members] : groups) {
    largest_group = std::max(largest_group, members.size());
    variable_indexes += members.size();
  }

  // The configuration is its own atom when no table offers a choice between
  // variable indexes and views do not mix with anything: pricing it IS the
  // atomic what-if call.
  const bool trivial =
      largest_group <= 1 &&
      (relevant.views.empty() ||
       (relevant.views.size() == 1 && variable_indexes == 0));
  if (trivial) {
    out.outcome = Decomposition::Outcome::kTrivial;
    return out;
  }

  if (statement_kind != sql::StatementKind::kSelect) {
    out.outcome = Decomposition::Outcome::kUnsupportedStatement;
    return out;
  }

  // One-per-table combination count (the "+1" is "no index on this table").
  size_t combos = 1;
  bool overflow = false;
  for (const auto& [table, members] : groups) {
    if (combos > max_atoms) {
      overflow = true;
      break;
    }
    combos *= members.size() + 1;
  }
  if (overflow || combos + relevant.views.size() > max_atoms) {
    // Bounded form: the context atom plus one singleton atom per variable
    // structure, with the group ranges recorded for the error estimate.
    out.outcome = Decomposition::Outcome::kTooManyAtoms;
    out.atoms.push_back(MakeAtom(relevant, {}, nullptr));
    for (const auto& [table, members] : groups) {
      std::vector<size_t>& atom_ids = out.variable_group_atoms.emplace_back();
      for (const catalog::IndexDef* ix : members) {
        atom_ids.push_back(out.atoms.size());
        out.atoms.push_back(MakeAtom(relevant, {ix}, nullptr));
      }
    }
    for (const auto& v : relevant.views) {
      out.variable_group_atoms.push_back({out.atoms.size()});
      out.atoms.push_back(MakeAtom(relevant, {}, &v));
    }
    return out;
  }

  // Full decomposition: every one-index-per-table combination (mixed-radix
  // enumeration over the groups; digit 0 means "no index on this table"),
  // then each view as a whole-query alternative over the bare context.
  out.outcome = Decomposition::Outcome::kDerivable;
  std::vector<const std::vector<const catalog::IndexDef*>*> group_members;
  group_members.reserve(groups.size());
  for (const auto& [table, members] : groups) {
    group_members.push_back(&members);
  }
  std::vector<size_t> digits(group_members.size(), 0);
  for (bool done = false; !done;) {
    std::vector<const catalog::IndexDef*> chosen;
    for (size_t g = 0; g < digits.size(); ++g) {
      if (digits[g] > 0) chosen.push_back((*group_members[g])[digits[g] - 1]);
    }
    out.atoms.push_back(MakeAtom(relevant, chosen, nullptr));
    size_t g = 0;
    for (; g < digits.size(); ++g) {
      if (++digits[g] <= group_members[g]->size()) break;
      digits[g] = 0;  // carry into the next group
    }
    done = g == digits.size();
  }
  for (const auto& v : relevant.views) {
    out.atoms.push_back(MakeAtom(relevant, {}, &v));
  }
  return out;
}

double CombineAtomCosts(const std::vector<double>& atom_costs) {
  double best = 0;
  bool first = true;
  for (double c : atom_costs) {
    if (first || c < best) {
      best = c;
      first = false;
    }
  }
  return best;
}

double BoundedErrorEstimatePct(const Decomposition& decomposition,
                               const std::vector<double>& atom_costs) {
  if (atom_costs.empty()) return 0;
  const double upper = CombineAtomCosts(atom_costs);
  if (upper <= 0) return 0;
  // Additive lower bound: every group can at best contribute its own best
  // single-structure saving over the bare context.
  const double context_cost = atom_costs[0];
  double lower = context_cost;
  for (const auto& atom_ids : decomposition.variable_group_atoms) {
    double best_in_group = context_cost;
    for (size_t id : atom_ids) {
      if (id < atom_costs.size()) {
        best_in_group = std::min(best_in_group, atom_costs[id]);
      }
    }
    lower -= context_cost - best_in_group;
  }
  lower = std::max(lower, 0.0);
  if (lower >= upper) return 0;
  return 100.0 * (upper - lower) / upper;
}

}  // namespace dta::tuner
