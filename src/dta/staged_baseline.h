// Baseline: staged physical design selection (paper §3, Example 2) — first
// choose partitioning only, then indexes given that partitioning, then
// materialized views. The paper argues (and the ablation bench shows) that
// staging can lock in inferior designs because features interact.

#ifndef DTA_DTA_STAGED_BASELINE_H_
#define DTA_DTA_STAGED_BASELINE_H_

#include "dta/tuning_options.h"
#include "dta/tuning_session.h"

namespace dta::tuner {

struct StagedResult {
  TuningResult partitioning_stage;
  TuningResult index_stage;
  TuningResult view_stage;
  catalog::Configuration final_configuration;
  double current_cost = 0;
  double final_cost = 0;
  double ImprovementPercent() const {
    if (current_cost <= 0) return 0;
    return 100.0 * (current_cost - final_cost) / current_cost;
  }
  double total_tuning_ms = 0;
};

// Runs the three stages; each stage's chosen structures become the
// user-specified (locked) configuration of the next. `base_options`
// supplies constraints (storage bound, alignment) shared by all stages.
Result<StagedResult> TuneStaged(server::Server* production,
                                const workload::Workload& workload,
                                const TuningOptions& base_options = {});

}  // namespace dta::tuner

#endif  // DTA_DTA_STAGED_BASELINE_H_
