#include "dta/reduced_stats.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace dta::tuner {

namespace {

// Canonical string of a column *set* (order-insensitive).
std::string SetKey(const std::string& database, const std::string& table,
                   std::vector<std::string> columns) {
  std::sort(columns.begin(), columns.end());
  return database + "." + table + "{" + StrJoin(columns, ",") + "}";
}

std::string HistKey(const stats::StatsKey& key) {
  return key.database + "." + key.table + ":" + key.columns[0];
}

// All leading-prefix density sets of a statistic.
std::vector<std::string> DensityKeys(const stats::StatsKey& key) {
  std::vector<std::string> out;
  std::vector<std::string> prefix;
  for (const auto& c : key.columns) {
    prefix.push_back(c);
    out.push_back(SetKey(key.database, key.table, prefix));
  }
  return out;
}

}  // namespace

StatsCreationPlan PlanReducedStatistics(
    const std::set<stats::StatsKey>& requested,
    const std::vector<const stats::Statistics*>& already_present) {
  StatsCreationPlan plan;
  plan.naive_count = requested.size();
  if (requested.empty()) return plan;

  // Step 1: H-List and D-List — the distinct information still needed.
  std::set<std::string> h_list;
  std::set<std::string> d_list;
  for (const auto& key : requested) {
    if (key.columns.empty()) continue;
    h_list.insert(HistKey(key));
    for (const auto& d : DensityKeys(key)) d_list.insert(d);
  }
  // Existing statistics already provide some of it.
  for (const stats::Statistics* s : already_present) {
    if (s == nullptr || s->key.columns.empty()) continue;
    h_list.erase(HistKey(s->key));
    for (const auto& d : DensityKeys(s->key)) d_list.erase(d);
  }

  // Steps 2-4: greedily pick the statistic covering the most remaining
  // entries; ties broken toward wider statistics (they carry the most
  // information at essentially the same creation cost, §5.2).
  std::vector<stats::StatsKey> remaining(requested.begin(), requested.end());
  while (!h_list.empty() || !d_list.empty()) {
    size_t best = remaining.size();
    size_t best_cover = 0;
    for (size_t i = 0; i < remaining.size(); ++i) {
      const stats::StatsKey& key = remaining[i];
      if (key.columns.empty()) continue;
      size_t cover = h_list.count(HistKey(key));
      for (const auto& d : DensityKeys(key)) cover += d_list.count(d);
      if (cover > best_cover ||
          (cover == best_cover && cover > 0 && best < remaining.size() &&
           key.columns.size() > remaining[best].columns.size())) {
        best_cover = cover;
        best = i;
      }
    }
    if (best == remaining.size() || best_cover == 0) break;  // nothing covers
    const stats::StatsKey chosen = remaining[best];
    plan.to_create.push_back(chosen);
    h_list.erase(HistKey(chosen));
    for (const auto& d : DensityKeys(chosen)) d_list.erase(d);
    remaining.erase(remaining.begin() + static_cast<long>(best));
  }
  return plan;
}

}  // namespace dta::tuner
