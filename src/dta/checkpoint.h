// Crash-safe session checkpoints (robustness layer).
//
// A tuning session writes a resumable snapshot of its progress after every
// expensive phase — the current-cost pass, candidate pool finalization, the
// enumeration exhaustive phase, and each completed greedy round — so an
// interrupted session (crash, eviction, kill) restarts from the last
// checkpoint instead of from scratch and produces the *identical*
// recommendation an uninterrupted run would have produced.
//
// What makes resume bit-identical:
//   * the snapshot carries the full what-if cost cache, so re-driven search
//     steps hit the cache instead of re-pricing (and degraded entries stay
//     degraded);
//   * the keys of every statistic the interrupted run created are recorded;
//     resume re-creates them (statistics builds are deterministic in the
//     data) *before* importing the cache, so cached costs remain valid and
//     the stats-creation phases become no-ops that never clear the cache;
//   * the enumeration greedy state (chosen candidate names, objective,
//     two-strike elimination counters) restarts the search mid-stream.
//
// Checkpoints serialize to the project's XML vocabulary (xmlio). Costs are
// rendered as C99 hex floats so they round-trip bit-exactly. Files are
// written atomically: serialize to "<path>.tmp", then rename over <path> —
// a crash mid-write never corrupts the previous checkpoint.

#ifndef DTA_DTA_CHECKPOINT_H_
#define DTA_DTA_CHECKPOINT_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "dta/candidates.h"
#include "dta/cost_service.h"
#include "dta/enumeration.h"
#include "dta/tuning_options.h"
#include "stats/statistics.h"
#include "workload/workload.h"

namespace dta::tuner {

// Phase markers, ordered by pipeline progress.
inline constexpr int kCheckpointCurrentCosts = 1;  // current-cost pass done
inline constexpr int kCheckpointPoolReady = 2;     // candidate pool final
inline constexpr int kCheckpointEnumeration = 3;   // greedy state present

struct SessionCheckpoint {
  // Guard against resuming with a different workload or different options:
  // either would silently produce a recommendation that matches neither run.
  uint64_t workload_fingerprint = 0;
  uint64_t options_fingerprint = 0;
  int phase = kCheckpointCurrentCosts;
  // Shard topology of the writing session (informational guard). Cache
  // entries are keyed by (statement, fingerprint) — shard-agnostic — so a
  // resumed session deterministically remaps them onto its own topology;
  // a corrupt topology (< 1) is rejected with a clear status instead of
  // silently mis-routing entries.
  int shards = 1;
  // Costing transport of the writing session ("inproc" or "socket").
  // Informational, like `shards`: cache entries are transport-agnostic, so
  // a checkpoint written under one transport resumes under the other.
  std::string transport = "inproc";

  std::vector<double> current_costs;  // per tuned statement, in order
  std::set<stats::StatsKey> missing_stats;
  std::vector<stats::StatsKey> created_stats;  // creation order
  std::vector<CostService::CacheEntry> cache;
  // Statements whose pricing degraded to the heuristic estimate at any point
  // before the snapshot. Carried explicitly because the cost cache is
  // cleared when candidate structures are materialized: a degraded entry
  // from an earlier phase may no longer be in `cache`, and with derived
  // costing the resumed run may answer the same miss from atoms instead of
  // re-firing the fault — so the flag cannot be reconstructed from pricing.
  std::set<size_t> degraded_statements;

  std::vector<Candidate> pool;  // phase >= kCheckpointPoolReady

  EnumerationResume enumeration;  // phase == kCheckpointEnumeration

  // Report counters accumulated before the snapshot; restored verbatim so a
  // resumed session's report matches the uninterrupted one.
  size_t stats_requested = 0;
  size_t stats_created = 0;
  double stats_creation_ms = 0;
  size_t candidates_generated = 0;
};

// Fingerprint of the (compressed) workload actually tuned: statement texts
// and weights, order-sensitive.
uint64_t WorkloadFingerprint(const workload::Workload& workload);
// Fingerprint of every result-affecting tuning option. Deliberately excludes
// num_threads (recommendations are thread-count invariant) and the
// checkpoint/resume paths themselves.
uint64_t OptionsFingerprint(const TuningOptions& options);

std::string CheckpointToXml(const SessionCheckpoint& checkpoint);
// `catalog` rebuilds candidate identities (canonical names, storage
// estimates) for the restored pool.
Result<SessionCheckpoint> CheckpointFromXml(const std::string& xml_text,
                                            const catalog::Catalog& catalog);

// Atomic write: "<path>.tmp" + rename.
Status SaveCheckpoint(const std::string& path,
                      const SessionCheckpoint& checkpoint);
Result<SessionCheckpoint> LoadCheckpoint(const std::string& path,
                                         const catalog::Catalog& catalog);

// ---- Append-only delta checkpoints (format v3) ----------------------------
//
// A v2 checkpoint rewrites the whole document on every write; that is fine
// for a one-shot session but makes per-round persistence on a stream
// O(total state). Format v3 splits a checkpoint into one *base* snapshot
// record followed by zero or more appended *delta segments*, each carrying
// only the entries produced since the previous write — so a steady-state
// round appends O(new work) bytes. The payloads themselves are opaque to
// this layer (the continuous tuner serializes its stream state into them);
// this layer owns the on-disk framing and its crash semantics.
//
// Framing: each record is
//
//   DTAS3 <kind> <payload-bytes> <fnv64-checksum>\n<payload>\n
//
// where <kind> is "base" or "seg" and the checksum covers the payload
// bytes. The base is written atomically ("<path>.tmp" + rename), which
// also truncates every previous segment — that is compaction. Segments are
// appended in place; a crash mid-append leaves a torn tail record, which
// the reader detects (short payload, bad header, or checksum mismatch) and
// drops along with anything after it, recovering the longest valid prefix.
// The dropped round is simply re-run — by the same determinism contract
// that makes kill-at-a-boundary resume bit-exact.
struct DeltaLogContents {
  std::string base;
  std::vector<std::string> segments;
  // Torn or corrupt tail records ignored by the reader (0 on a clean file).
  size_t dropped_records = 0;
};

// Atomically replaces `path` with a fresh base record (compaction: any
// previously appended segments are gone).
Status WriteDeltaBase(const std::string& path, const std::string& base);
// Appends one segment record to `path` (which must already hold a base).
// On success `*appended_bytes` (optional) receives the full record size —
// the per-round persistence cost the delta-bytes gauge reports.
Status AppendDeltaSegment(const std::string& path, const std::string& segment,
                          size_t* appended_bytes = nullptr);
// Reads base + segments, dropping a torn/corrupt tail. Fails only when the
// file is unreadable or its base record is invalid.
Result<DeltaLogContents> ReadDeltaLog(const std::string& path);

// Bulk-encoding helpers shared by the v2 cost-cache blob and the stream
// checkpoint's memo blob: locale-free integer formatting and a C99
// hex-float encoder whose output strtod round-trips bit-exactly.
void AppendU64(std::string* out, uint64_t v);
void AppendHexDouble(std::string* out, double v);

}  // namespace dta::tuner

#endif  // DTA_DTA_CHECKPOINT_H_
