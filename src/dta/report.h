// Analysis reports (paper §6.3): per-statement cost changes, structure
// usage, and summary numbers, renderable as text or XML.

#ifndef DTA_DTA_REPORT_H_
#define DTA_DTA_REPORT_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "xmlio/xml.h"

namespace dta::tuner {

struct StatementReport {
  std::string sql;
  double weight = 1;
  double current_cost = 0;
  double recommended_cost = 0;
  // True when at least one of this statement's what-if pricings fell back
  // to the heuristic estimate (persistent optimizer failures): its cost
  // columns are approximations.
  bool degraded = false;

  double ImprovementPercent() const {
    if (current_cost <= 0) return 0;
    return 100.0 * (current_cost - recommended_cost) / current_cost;
  }
};

struct Report {
  std::vector<StatementReport> statements;
  // Canonical structure name -> number of statements whose recommended plan
  // uses it.
  std::map<std::string, int> structure_usage;

  double current_total = 0;
  double recommended_total = 0;

  // Parallel costing: worker threads applied and the achieved speedup of
  // the fanned-out costing phases (1 when tuning ran serially).
  int threads = 1;
  double parallel_speedup = 1;

  // Distributed costing: shard fan-out of the what-if backend (1 = single
  // server), the failed attempts that were rescued by failing over to
  // another shard, and the times the latency-based slowness detector
  // demoted a shard to probe-only routing.
  int shards = 1;
  size_t shard_failovers = 0;
  size_t shard_slow_demotions = 0;

  // Fault tolerance: retried what-if attempts, pricings that degraded to
  // the heuristic estimate, and the attempts-per-pricing distribution
  // (retry_histogram[n] = pricings that needed n + 1 attempts; empty when
  // no pricing ran).
  size_t whatif_retries = 0;
  size_t degraded_calls = 0;
  std::vector<size_t> retry_histogram;

  // Observability summary: what-if cost service efficacy, checkpoint I/O
  // cost, and per-phase wall-clock (name, ms) in pipeline order — filled
  // from the session's tracer when one was attached.
  size_t whatif_calls = 0;
  size_t whatif_cache_hits = 0;
  // Derived costing (CoPhy combine rule): misses answered by derivation,
  // misses that fell back to a real call despite a non-trivial
  // decomposition, and real what-if calls avoided.
  size_t derived_answers = 0;
  size_t derivation_fallbacks = 0;
  size_t whatif_calls_saved = 0;
  size_t checkpoint_writes = 0;
  double checkpoint_ms = 0;
  std::vector<std::pair<std::string, double>> phase_times;

  double ImprovementPercent() const {
    if (current_total <= 0) return 0;
    return 100.0 * (current_total - recommended_total) / current_total;
  }

  std::string ToText() const;
  xml::ElementPtr ToXml() const;
};

}  // namespace dta::tuner

#endif  // DTA_DTA_REPORT_H_
