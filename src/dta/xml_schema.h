// Public XML schema for physical database design (paper §6.1): DTA's inputs
// (workload, tuning options, user-specified configuration) and outputs
// (recommended configuration, reports) serialize to a stable, documented
// XML vocabulary so other tools can script DTA and exchange designs.
//
// Document shape:
//
//   <DTAXML>
//     <Input>
//       <Server Name="prod"/>
//       <Workload>
//         <Statement Weight="3">SELECT ...</Statement> ...
//       </Workload>
//       <TuningOptions Indexes="true" MaterializedViews="true"
//                      Partitioning="true" Alignment="false"
//                      StorageBytes="..." TimeLimitMs="...">
//         <UserSpecifiedConfiguration> ...structures... </...>
//       </TuningOptions>
//     </Input>
//     <Output>
//       <Configuration>
//         <Index Table="t" Clustered="false">
//           <KeyColumn>a</KeyColumn> <IncludedColumn>b</IncludedColumn>
//           <Partitioning Column="c"><Boundary>10</Boundary>...</Partitioning>
//         </Index>
//         <View EstimatedRows="100" EstimatedRowBytes="24">
//           <Definition>SELECT ...</Definition>
//         </View>
//         <TablePartitioning Table="t">
//           <Partitioning Column="c">...</Partitioning>
//         </TablePartitioning>
//       </Configuration>
//       <Report .../>
//     </Output>
//   </DTAXML>

#ifndef DTA_DTA_XML_SCHEMA_H_
#define DTA_DTA_XML_SCHEMA_H_

#include <string>

#include "catalog/physical_design.h"
#include "common/status.h"
#include "dta/report.h"
#include "dta/tuning_options.h"
#include "workload/workload.h"
#include "xmlio/xml.h"

namespace dta::tuner {

// ---- Configuration <-> XML ------------------------------------------------
xml::ElementPtr ConfigurationToXml(const catalog::Configuration& config);
Result<catalog::Configuration> ConfigurationFromXml(const xml::Element& elem);

// ---- Tuning input ----------------------------------------------------------
struct TuningInput {
  std::string server_name;
  workload::Workload workload;
  TuningOptions options;
};

std::string TuningInputToXml(const TuningInput& input);
Result<TuningInput> TuningInputFromXml(const std::string& xml_text);

// ---- Tuning output ---------------------------------------------------------
// Serializes a full DTAXML document carrying input echoes and the output
// configuration + report.
std::string TuningOutputToXml(const TuningInput& input,
                              const catalog::Configuration& recommendation,
                              const Report& report);
// Extracts the recommended configuration from a DTAXML output document.
Result<catalog::Configuration> RecommendationFromXml(
    const std::string& xml_text);

}  // namespace dta::tuner

#endif  // DTA_DTA_XML_SCHEMA_H_
