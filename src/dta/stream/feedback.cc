#include "dta/stream/feedback.h"

#include <cstdlib>
#include <utility>

namespace dta::tuner::stream {

namespace {

std::string Trim(const std::string& s) {
  size_t b = 0;
  while (b < s.size() && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  size_t e = s.size();
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

// Canonical names of `config`'s structures in print order: indexes, views,
// partitioned tables. Positional feedback targets index into this list.
std::vector<std::string> StructureNames(const catalog::Configuration& c) {
  std::vector<std::string> names;
  for (const auto& ix : c.indexes()) names.push_back(ix.CanonicalName());
  for (const auto& v : c.views()) names.push_back(v.CanonicalName());
  for (const auto& [table, scheme] : c.table_partitioning()) {
    names.push_back("partitioning:" + table);
  }
  return names;
}

}  // namespace

void FeedbackState::Consume(const std::string& text) {
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      // Unterminated trailing line: not consumed — the writer may still be
      // appending it; it will be re-read complete next time.
      break;
    }
    const std::string raw = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    if (line_no <= consumed_lines_) continue;  // already consumed
    ++consumed_lines_;
    std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;

    FeedbackDirective d;
    if (line[0] == '@') {
      char* end = nullptr;
      const uint64_t round = std::strtoull(line.c_str() + 1, &end, 10);
      if (end == line.c_str() + 1 || *end != ' ') {
        ++unknown_;
        continue;
      }
      d.round = round;
      line = Trim(std::string(end + 1));
    }
    const size_t space = line.find(' ');
    const std::string verb = line.substr(0, space);
    if (space == std::string::npos ||
        (verb != "accept" && verb != "reject")) {
      ++unknown_;
      continue;
    }
    d.accept = verb == "accept";
    d.target = Trim(line.substr(space + 1));
    if (d.target.empty()) {
      ++unknown_;
      continue;
    }
    pending_.push_back(std::move(d));
  }
}

void FeedbackState::ApplyBefore(uint64_t round,
                                const catalog::Configuration& previous,
                                uint64_t quarantine_rounds) {
  // Expired quarantines leave the table — the structure is eligible again
  // and stops riding along in every checkpoint segment.
  for (auto it = quarantine_.begin(); it != quarantine_.end();) {
    if (it->second <= round) {
      it = quarantine_.erase(it);
    } else {
      ++it;
    }
  }
  std::vector<FeedbackDirective> keep;
  for (const auto& d : pending_) {
    if (d.round <= round) {
      Apply(d, previous, round, quarantine_rounds);
    } else {
      keep.push_back(d);
    }
  }
  pending_ = std::move(keep);
}

void FeedbackState::Apply(const FeedbackDirective& d,
                          const catalog::Configuration& prev, uint64_t round,
                          uint64_t quarantine_rounds) {
  // Resolve the target to a canonical name (and, for accepts, to a position
  // in the previous recommendation — pinning needs the full definition).
  const std::vector<std::string> names = StructureNames(prev);
  size_t position = names.size();  // == invalid
  char* end = nullptr;
  const uint64_t parsed = std::strtoull(d.target.c_str(), &end, 10);
  const bool numeric = end != d.target.c_str() && *end == '\0';
  std::string name;
  if (numeric) {
    if (parsed < 1 || parsed > names.size()) {
      ++unknown_;
      return;
    }
    position = static_cast<size_t>(parsed - 1);
    name = names[position];
  } else {
    name = d.target;
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) {
        position = i;
        break;
      }
    }
  }

  if (!d.accept) {
    // Reject: quarantine by name through round + horizon - 1, and unpin if
    // previously accepted — latest word wins.
    quarantine_[name] = round + quarantine_rounds;
    (void)pinned_.RemoveStructure(name);
    ++rejected_;
    return;
  }

  // Accept: pin the structure's definition out of the previous
  // recommendation. A name that is not in it cannot be pinned (no
  // definition to pin) — counted unknown.
  if (position >= names.size()) {
    ++unknown_;
    return;
  }
  const size_t index_count = prev.indexes().size();
  const size_t view_count = prev.views().size();
  if (position < index_count) {
    (void)pinned_.AddIndex(prev.indexes()[position]);
  } else if (position < index_count + view_count) {
    (void)pinned_.AddView(prev.views()[position - index_count]);
  } else {
    size_t i = position - index_count - view_count;
    for (const auto& [table, scheme] : prev.table_partitioning()) {
      if (i == 0) {
        pinned_.SetTablePartitioning(table, scheme);
        break;
      }
      --i;
    }
  }
  quarantine_.erase(name);  // acceptance lifts a quarantine
  ++accepted_;
}

std::vector<std::string> FeedbackState::QuarantinedAt(uint64_t round) const {
  std::vector<std::string> out;
  for (const auto& [name, expires] : quarantine_) {
    if (round < expires) out.push_back(name);
  }
  return out;  // std::map iteration: already sorted
}

void FeedbackState::Restore(catalog::Configuration pinned,
                            std::map<std::string, uint64_t> quarantine,
                            std::vector<FeedbackDirective> pending,
                            size_t consumed_lines, size_t accepted,
                            size_t rejected, size_t unknown) {
  pinned_ = std::move(pinned);
  quarantine_ = std::move(quarantine);
  pending_ = std::move(pending);
  consumed_lines_ = consumed_lines;
  accepted_ = accepted;
  rejected_ = rejected;
  unknown_ = unknown;
}

}  // namespace dta::tuner::stream
