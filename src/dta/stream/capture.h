// Query-capture stream framing (continuous tuning service).
//
// A capture stream is the line-oriented feed a profiler writes: one SQL
// statement per line, `#` comment lines, and `@tick <ms>` directives that
// advance the service's fake clock (so a recorded capture replays with the
// original pacing under --fake-clock, deterministically). This layer does
// line framing only — accumulating arbitrary byte chunks into complete
// lines, classifying them, and surviving the same hostile inputs the RPC
// FrameDecoder does:
//
//   * a line longer than `max_line_bytes` poisons the stream — framing is
//     lost (the bound says this is not a capture file), so the reader stops
//     producing events instead of resynchronizing on garbage;
//   * an unterminated final line is torn: dropped and counted on Finish(),
//     never half-parsed;
//   * a malformed `@` directive is counted and skipped — one bad line never
//     takes down the service.
//
// SQL itself is NOT parsed here; StreamWorkload::Ingest owns that (and its
// error accounting). Everything is deterministic in the byte stream: chunk
// boundaries never affect the event sequence.
//
// Resume support: the reader counts complete lines consumed;
// a checkpoint stores that count at a round boundary and a resumed service
// calls SkipLines(n) before re-feeding the same capture, which discards
// exactly the already-processed prefix (comments, ticks, and garbage lines
// included — they were all consumed lines).

#ifndef DTA_DTA_STREAM_CAPTURE_H_
#define DTA_DTA_STREAM_CAPTURE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace dta::tuner::stream {

struct CaptureEvent {
  enum class Kind {
    kStatement,  // a (still unparsed) SQL statement line
    kTick,       // `@tick <ms>`: advance the service clock
  };
  Kind kind = Kind::kStatement;
  std::string text;    // kStatement: the raw line
  double tick_ms = 0;  // kTick: milliseconds to advance
};

class CaptureReader {
 public:
  static constexpr size_t kDefaultMaxLineBytes = 1 << 20;

  explicit CaptureReader(size_t max_line_bytes = kDefaultMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  // Accumulates raw capture bytes; complete lines become events retrievable
  // via Drain(). Safe to call with any chunking, including byte-at-a-time.
  void Consume(std::string_view bytes);

  // Signals end-of-stream. An unterminated trailing line is torn — dropped
  // and counted, never parsed (a crash mid-write produces exactly this).
  void Finish();

  // Moves out the events parsed since the last drain, in stream order.
  std::vector<CaptureEvent> Drain();

  // Resume: discard the next `n` complete lines instead of parsing them.
  void SkipLines(size_t n) { skip_lines_ += n; }
  // Resume: restore the error counters a checkpoint carried, so totals a
  // resumed service reports match the uninterrupted ones (skipped lines
  // re-produce no errors).
  void RestoreCounters(size_t parse_errors, size_t torn_lines) {
    parse_errors_ = parse_errors;
    torn_lines_ = torn_lines;
  }

  // True once an oversized line destroyed the framing; no further events
  // are produced.
  bool poisoned() const { return poisoned_; }
  // Complete lines consumed so far (every classification, skipped lines
  // included) — the resume cursor.
  size_t lines_consumed() const { return lines_consumed_; }
  size_t torn_lines() const { return torn_lines_; }
  // Malformed `@` directives (unknown verb, unparseable tick value).
  size_t parse_errors() const { return parse_errors_; }

 private:
  void ConsumeLine(std::string_view line);

  size_t max_line_bytes_;
  std::string partial_;
  std::vector<CaptureEvent> events_;
  size_t skip_lines_ = 0;
  size_t lines_consumed_ = 0;
  size_t torn_lines_ = 0;
  size_t parse_errors_ = 0;
  bool poisoned_ = false;
  bool finished_ = false;
};

}  // namespace dta::tuner::stream

#endif  // DTA_DTA_STREAM_CAPTURE_H_
