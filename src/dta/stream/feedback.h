// DBA feedback channel (semi-automatic tuning; continuous service mode).
//
// A DBA reviews each round's recommendation delta and answers through a
// feedback file of directives, one per line:
//
//   accept <target>          pin the structure: it joins the user-specified
//                            configuration of every later round, so a
//                            workload shift cannot silently drop it
//   reject <target>          quarantine the structure for the configured
//                            horizon: it leaves the candidate pool and
//                            cannot be recommended until the horizon
//                            expires (then it must re-earn its seat)
//   @<round> accept|reject … apply the directive before round <round>
//
// <target> is either a structure's canonical name or a 1-based position
// into the previous round's recommendation (indexes first, then views,
// then partitioned tables — the order the recommendation prints in).
//
// Determinism under kill/resume is the whole design: directives are
// *consumed* when read (a growing file re-reads from a consumed-lines
// cursor the checkpoint carries) but *applied* only at round boundaries —
// an untagged directive applies before the next round after it was
// consumed, a tagged one waits for its round. Both the pending list and the
// applied state (pinned configuration, quarantine horizons, counters)
// checkpoint, so a resumed service applies exactly the directives the
// uninterrupted one would have, in the same rounds.
//
// Unknown targets (no such name or position in the previous
// recommendation, unparseable verbs) are counted and dropped — feedback is
// advice, never a crash vector. An accept needs the structure's full
// definition, so it only resolves against the previous recommendation; a
// reject works by name alone. Accepting a quarantined structure lifts the
// quarantine; rejecting a pinned one unpins it — latest word wins.

#ifndef DTA_DTA_STREAM_FEEDBACK_H_
#define DTA_DTA_STREAM_FEEDBACK_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "catalog/physical_design.h"

namespace dta::tuner::stream {

struct FeedbackDirective {
  uint64_t round = 0;  // apply before this round; 0 = next opportunity
  bool accept = false;
  std::string target;  // canonical name or 1-based position
};

class FeedbackState {
 public:
  // Parses the feedback file's full text, consuming only lines past the
  // cursor — re-reading a growing file is idempotent. Blank lines and `#`
  // comments are consumed but ignored; unparseable lines count as unknown.
  void Consume(const std::string& text);
  size_t consumed_lines() const { return consumed_lines_; }

  // Applies every pending directive with round <= `round` (file order),
  // resolving positional targets against `previous` (the last round's
  // recommendation). Rejections quarantine through round
  // `round + quarantine_rounds - 1`.
  void ApplyBefore(uint64_t round, const catalog::Configuration& previous,
                   uint64_t quarantine_rounds);

  // Structures pinned by accepted feedback (joins user_specified).
  const catalog::Configuration& pinned() const { return pinned_; }
  // Canonical names quarantined at `round`, sorted.
  std::vector<std::string> QuarantinedAt(uint64_t round) const;

  size_t accepted() const { return accepted_; }
  size_t rejected() const { return rejected_; }
  size_t unknown() const { return unknown_; }

  // Checkpoint plumbing: full pending/quarantine state in deterministic
  // order, plus verbatim restore.
  const std::vector<FeedbackDirective>& pending() const { return pending_; }
  const std::map<std::string, uint64_t>& quarantine() const {
    return quarantine_;
  }
  void Restore(catalog::Configuration pinned,
               std::map<std::string, uint64_t> quarantine,
               std::vector<FeedbackDirective> pending, size_t consumed_lines,
               size_t accepted, size_t rejected, size_t unknown);

 private:
  void Apply(const FeedbackDirective& d, const catalog::Configuration& prev,
             uint64_t round, uint64_t quarantine_rounds);

  catalog::Configuration pinned_;
  std::map<std::string, uint64_t> quarantine_;  // name -> expires round
  std::vector<FeedbackDirective> pending_;      // file order
  size_t consumed_lines_ = 0;
  size_t accepted_ = 0;
  size_t rejected_ = 0;
  size_t unknown_ = 0;
};

}  // namespace dta::tuner::stream

#endif  // DTA_DTA_STREAM_FEEDBACK_H_
