#include "dta/stream/capture.h"

#include <cstdlib>
#include <utility>

namespace dta::tuner::stream {

namespace {

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  size_t e = s.size();
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

}  // namespace

void CaptureReader::Consume(std::string_view bytes) {
  if (poisoned_ || finished_) return;
  while (!bytes.empty()) {
    const size_t nl = bytes.find('\n');
    if (nl == std::string_view::npos) {
      partial_.append(bytes.data(), bytes.size());
      if (partial_.size() > max_line_bytes_) poisoned_ = true;
      return;
    }
    partial_.append(bytes.data(), nl);
    bytes.remove_prefix(nl + 1);
    if (partial_.size() > max_line_bytes_) {
      poisoned_ = true;
      return;
    }
    ++lines_consumed_;
    if (skip_lines_ > 0) {
      --skip_lines_;
    } else {
      ConsumeLine(partial_);
    }
    partial_.clear();
  }
}

void CaptureReader::Finish() {
  if (finished_) return;
  finished_ = true;
  if (!poisoned_ && !Trim(partial_).empty()) {
    // Unterminated trailing line: torn, not half-parsed. Deliberately NOT
    // counted into lines_consumed_ — a resumed service that re-feeds the
    // capture must not skip past a line the original never processed.
    ++torn_lines_;
  }
  partial_.clear();
}

std::vector<CaptureEvent> CaptureReader::Drain() {
  return std::move(events_);
}

void CaptureReader::ConsumeLine(std::string_view raw) {
  const std::string_view line = Trim(raw);
  if (line.empty() || line[0] == '#') return;
  if (line[0] == '@') {
    // Directive. Only `@tick <ms>` exists; anything else on an `@` line is
    // a malformed directive, counted and skipped.
    constexpr std::string_view kTick = "@tick ";
    if (line.size() > kTick.size() &&
        line.substr(0, kTick.size()) == kTick) {
      const std::string value(Trim(line.substr(kTick.size())));
      char* end = nullptr;
      const double ms = std::strtod(value.c_str(), &end);
      if (!value.empty() && end != nullptr && *end == '\0' && ms >= 0) {
        CaptureEvent ev;
        ev.kind = CaptureEvent::Kind::kTick;
        ev.tick_ms = ms;
        events_.push_back(std::move(ev));
        return;
      }
    }
    ++parse_errors_;
    return;
  }
  CaptureEvent ev;
  ev.kind = CaptureEvent::Kind::kStatement;
  ev.text.assign(line.data(), line.size());
  events_.push_back(std::move(ev));
}

}  // namespace dta::tuner::stream
