#include "dta/stream/stream_workload.h"

#include <utility>

#include "common/logging.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "sql/signature.h"

namespace dta::tuner::stream {

bool StreamWorkload::Ingest(const std::string& text) {
  auto stmt = sql::ParseStatement(text);
  if (!stmt.ok()) {
    ++parse_errors_;
    return false;
  }
  ++events_;
  const uint64_t signature = sql::SignatureHash(*stmt);
  auto it = entries_.find(signature);
  if (it == entries_.end()) {
    TemplateEntry entry;
    entry.signature = signature;
    entry.text = sql::ToSql(*stmt);
    entry.weight = 1.0;
    entry.first_seen = next_ordinal_++;
    entry.touch_round = round_;
    entries_.emplace(signature, std::move(entry));
    dirty_[signature] = true;
    if (entries_.size() > config_.max_templates) EvictLightest();
  } else {
    TemplateEntry& entry = it->second;
    // Roll the stored weight forward to the current epoch, then add the
    // event — from here the entry is "as of" this round.
    entry.weight = EffectiveWeight(entry) + 1.0;
    entry.touch_round = round_;
    dirty_[signature] = true;
  }
  return true;
}

void StreamWorkload::BeginRound(uint64_t round) {
  DTA_CHECK(round >= round_, "stream round epochs are monotonic");
  round_ = round;
}

double StreamWorkload::EffectiveWeight(const TemplateEntry& e) const {
  double w = e.weight;
  if (config_.decay != 1.0) {
    // Repeated multiplication, not std::pow: the same operation sequence on
    // every platform and on every resume, so weights stay bit-identical.
    for (uint64_t r = e.touch_round; r < round_; ++r) w *= config_.decay;
  }
  return w;
}

workload::Workload StreamWorkload::Snapshot() const {
  // Statements enter the workload in first-arrival order — stable across
  // rounds, so statement indexes (which key the cost cache) only ever shift
  // when a template is evicted or newly arrives.
  std::map<uint64_t, const TemplateEntry*> by_arrival;
  for (const auto& [sig, entry] : entries_) {
    by_arrival.emplace(entry.first_seen, &entry);
  }
  workload::Workload out;
  for (const auto& [ordinal, entry] : by_arrival) {
    auto stmt = sql::ParseStatement(entry->text);
    DTA_CHECK(stmt.ok(), "stored template text must re-parse");
    out.Add(std::move(*stmt), EffectiveWeight(*entry));
  }
  return out;
}

std::vector<uint64_t> StreamWorkload::TakeDirty() {
  std::vector<uint64_t> out;
  out.reserve(dirty_.size());
  for (const auto& [sig, touched] : dirty_) {
    // An entry both inserted and evicted between takes is no longer in the
    // table; the eviction list covers it.
    if (touched && entries_.count(sig) != 0) out.push_back(sig);
  }
  dirty_.clear();
  return out;
}

std::vector<uint64_t> StreamWorkload::TakeEvicted() {
  return std::move(evicted_);
}

void StreamWorkload::RestoreEntry(TemplateEntry entry) {
  if (entry.first_seen >= next_ordinal_) next_ordinal_ = entry.first_seen + 1;
  entries_[entry.signature] = std::move(entry);
}

void StreamWorkload::RestoreCounters(uint64_t next_ordinal, size_t events,
                                     size_t parse_errors, size_t evictions) {
  // The ordinal counter can exceed the max restored first_seen when the
  // most recent arrivals were evicted; restore it exactly.
  if (next_ordinal > next_ordinal_) next_ordinal_ = next_ordinal;
  events_ = events;
  parse_errors_ = parse_errors;
  evictions_ = evictions;
}

void StreamWorkload::EvictLightest() {
  // Lowest effective weight loses; ties evict the youngest (largest
  // first_seen) — long-lived templates have earned their seat.
  auto victim = entries_.end();
  double victim_weight = 0;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    const double w = EffectiveWeight(it->second);
    if (victim == entries_.end() || w < victim_weight ||
        (w == victim_weight &&
         it->second.first_seen > victim->second.first_seen)) {
      victim = it;
      victim_weight = w;
    }
  }
  DTA_CHECK(victim != entries_.end(), "eviction from a non-empty table");
  evicted_.push_back(victim->first);
  dirty_[victim->first] = true;
  entries_.erase(victim);
  ++evictions_;
}

}  // namespace dta::tuner::stream
