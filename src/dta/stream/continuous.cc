#include "dta/stream/continuous.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <set>

#include "common/hash.h"
#include "common/logging.h"
#include "common/strings.h"
#include "dta/checkpoint.h"
#include "dta/xml_schema.h"
#include "xmlio/xml.h"

namespace dta::tuner::stream {

namespace {

// Canonical names of a configuration's structures in print order — the
// vocabulary of recommendation deltas and positional feedback targets.
std::vector<std::string> StructureNames(const catalog::Configuration& c) {
  std::vector<std::string> names;
  for (const auto& ix : c.indexes()) names.push_back(ix.CanonicalName());
  for (const auto& v : c.views()) names.push_back(v.CanonicalName());
  for (const auto& [table, scheme] : c.table_partitioning()) {
    names.push_back("partitioning:" + table);
  }
  return names;
}

size_t StructureCount(const catalog::Configuration& c) {
  return c.indexes().size() + c.views().size() + c.table_partitioning().size();
}

// Result-affecting fingerprint of the whole service configuration: the base
// tuning options plus every stream parameter that shapes rounds. Guards a
// delta-log resume the same way the v2 options fingerprint guards a session
// resume.
uint64_t StreamFingerprint(const ContinuousTuner::Config& config) {
  return HashCombine(
      OptionsFingerprint(config.options),
      HashBytes(StrFormat(
          "%zu|%a|%llu|%zu|%a", config.retune_interval_events,
          config.retune_interval_ms,
          static_cast<unsigned long long>(config.quarantine_rounds),
          config.max_templates, config.decay)));
}

double ParseHexDouble(const std::string& s) {
  return std::strtod(s.c_str(), nullptr);
}

uint64_t ParseU64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

std::string U64Str(uint64_t v) {
  std::string out;
  AppendU64(&out, v);
  return out;
}

std::string HexStr(double v) {
  std::string out;
  AppendHexDouble(&out, v);
  return out;
}

void StatsKeyToXml(const stats::StatsKey& key, xml::Element* parent) {
  xml::Element* e = parent->AddChild("Stats");
  e->SetAttr("Database", key.database);
  e->SetAttr("Table", key.table);
  for (const auto& c : key.columns) e->AddTextChild("Column", c);
}

stats::StatsKey StatsKeyFromXml(const xml::Element& e) {
  std::vector<std::string> columns;
  for (const xml::Element* c : e.FindChildren("Column")) {
    columns.push_back(c->text());
  }
  return stats::StatsKey(e.Attr("Database"), e.Attr("Table"),
                         std::move(columns));
}

void TemplateToXml(const TemplateEntry& entry, xml::Element* parent) {
  xml::Element* t = parent->AddChild("T");
  t->SetAttr("Sig", U64Str(entry.signature));
  t->SetAttr("First", U64Str(entry.first_seen));
  t->SetAttr("Touch", U64Str(entry.touch_round));
  t->SetAttr("W", HexStr(entry.weight));
  t->AddTextChild("Text", entry.text);
}

TemplateEntry TemplateFromXml(const xml::Element& t) {
  TemplateEntry entry;
  entry.signature = ParseU64(t.Attr("Sig"));
  entry.first_seen = ParseU64(t.Attr("First"));
  entry.touch_round = ParseU64(t.Attr("Touch"));
  entry.weight = ParseHexDouble(t.Attr("W"));
  if (const xml::Element* text = t.FindChild("Text")) entry.text = text->text();
  return entry;
}

}  // namespace

ContinuousTuner::ContinuousTuner(Config config)
    : config_(std::move(config)),
      reader_(config_.max_line_bytes),
      workload_(StreamWorkload::Config{config_.max_templates, config_.decay}) {
}

Status ContinuousTuner::Init() {
  if (initialized_) {
    return Status::FailedPrecondition("ContinuousTuner::Init called twice");
  }
  if (config_.server == nullptr) {
    return Status::InvalidArgument("continuous tuning needs a server");
  }
  if (config_.retune_interval_events == 0 && config_.retune_interval_ms <= 0) {
    return Status::InvalidArgument(
        "continuous tuning needs a retune cadence (events and/or stream ms)");
  }
  if (config_.max_templates == 0) {
    return Status::InvalidArgument("max_templates must be positive");
  }
  if (config_.decay <= 0 || config_.decay > 1) {
    return Status::InvalidArgument("decay must be in (0, 1]");
  }
  if (!config_.checkpoint_path.empty()) {
    auto log = ReadDeltaLog(config_.checkpoint_path);
    if (log.ok()) {
      DTA_RETURN_IF_ERROR(LoadFromLog());
    } else if (log.status().code() != StatusCode::kNotFound) {
      return log.status();
    }
  }
  workload_.BeginRound(rounds_ + 1);
  initialized_ = true;
  return Status::Ok();
}

Status ContinuousTuner::Feed(std::string_view bytes) {
  if (!initialized_) {
    return Status::FailedPrecondition("ContinuousTuner::Init must run first");
  }
  pending_.append(bytes.data(), bytes.size());
  // One line at a time, so the reader's consumed-lines cursor is exact at
  // every round boundary — a kill at a boundary resumes by skipping exactly
  // the processed prefix.
  while (!stopped_) {
    const size_t nl = pending_.find('\n');
    if (nl == std::string::npos) break;
    const Status s = ProcessLine(std::string_view(pending_).substr(0, nl + 1));
    pending_.erase(0, nl + 1);
    if (!s.ok()) {
      stopped_ = true;
      return s;
    }
  }
  return Status::Ok();
}

Status ContinuousTuner::Finish() {
  if (!initialized_) {
    return Status::FailedPrecondition("ContinuousTuner::Init must run first");
  }
  if (!stopped_ && !pending_.empty()) {
    reader_.Consume(pending_);
    pending_.clear();
  }
  reader_.Finish();
  return Status::Ok();
}

void ContinuousTuner::ConsumeFeedback(const std::string& text) {
  feedback_.Consume(text);
}

Status ContinuousTuner::ProcessLine(std::string_view line_with_newline) {
  reader_.Consume(line_with_newline);
  if (reader_.poisoned()) {
    return Status::InvalidArgument(
        "capture stream poisoned: line exceeds the framing bound");
  }
  for (CaptureEvent& ev : reader_.Drain()) {
    if (ev.kind == CaptureEvent::Kind::kTick) {
      stream_ms_ += ev.tick_ms;
    } else {
      (void)workload_.Ingest(ev.text);
    }
    DTA_RETURN_IF_ERROR(MaybeRound());
    if (stopped_) break;
  }
  return Status::Ok();
}

Status ContinuousTuner::MaybeRound() {
  const bool events_due =
      config_.retune_interval_events > 0 &&
      workload_.events() - events_at_last_round_ >=
          config_.retune_interval_events;
  const bool time_due = config_.retune_interval_ms > 0 &&
                        stream_ms_ - round_started_ms_ >=
                            config_.retune_interval_ms;
  if (!events_due && !time_due) return Status::Ok();
  return RunRound();
}

Status ContinuousTuner::RunRound() {
  const uint64_t round = rounds_ + 1;
  DTA_TRACE_PHASE(config_.tracer, "stream_round");

  feedback_.ApplyBefore(round, previous_recommendation_,
                        config_.quarantine_rounds);

  const workload::Workload wl = workload_.Snapshot();
  const size_t parse_errors = workload_.parse_errors() +
                              reader_.parse_errors();

  std::string delta;
  delta += "== round ";
  AppendU64(&delta, round);
  delta += " ==\n";
  delta += "events=";
  AppendU64(&delta, workload_.events());
  delta += " templates=";
  AppendU64(&delta, wl.size());
  delta += " parse_errors=";
  AppendU64(&delta, parse_errors);
  delta += " evictions=";
  AppendU64(&delta, workload_.evictions());
  delta += " feedback(accepted=";
  AppendU64(&delta, feedback_.accepted());
  delta += " rejected=";
  AppendU64(&delta, feedback_.rejected());
  delta += " unknown=";
  AppendU64(&delta, feedback_.unknown());
  delta += ")\n";

  memo_dirty_last_round_.clear();
  created_stats_last_round_.clear();
  memo_cleared_last_round_ = false;

  if (wl.empty()) {
    delta += "= no templates; tuning skipped\n";
  } else {
    TuningOptions opts = config_.options;
    // The template table IS the compressed workload; per-round snapshots
    // must not re-compress (weights would collapse).
    opts.workload_compression = false;
    // The delta log owns persistence; the per-round session never writes
    // its own v2 checkpoints.
    opts.checkpoint_path.clear();
    opts.resume_path.clear();
    opts.export_session_state = true;
    // DBA feedback: pins join the user-specified configuration (duplicates
    // with the base options tolerated), quarantines filter the pool.
    for (const auto& ix : feedback_.pinned().indexes()) {
      (void)opts.user_specified.AddIndex(ix);
    }
    for (const auto& v : feedback_.pinned().views()) {
      (void)opts.user_specified.AddView(v);
    }
    for (const auto& [table, scheme] :
         feedback_.pinned().table_partitioning()) {
      opts.user_specified.SetTablePartitioning(table, scheme);
    }
    opts.quarantined_structures = feedback_.QuarantinedAt(round);

    TuningSession session(config_.server, opts);
    session.SetObservability(
        {config_.metrics, config_.tracer, config_.clock});
    session.SetTenantContext(config_.tenant);

    // Seed the session from the cross-round memo: map text hashes onto this
    // round's statement indexes (indexes shift as templates arrive and
    // evict; text hashes do not). Memo order is deterministic, so the seed
    // vector — and everything downstream — is too.
    std::map<uint64_t, size_t> index_by_hash;
    for (size_t i = 0; i < wl.statements().size(); ++i) {
      index_by_hash[HashBytes(wl.statements()[i].text)] = i;
    }
    std::vector<CostService::CacheEntry> seed;
    for (const auto& [key, entry] : memo_) {
      auto it = index_by_hash.find(key.first);
      if (it == index_by_hash.end()) continue;
      CostService::CacheEntry ce;
      ce.statement = it->second;
      ce.fingerprint = key.second;
      ce.cost = entry.cost;
      ce.degraded = entry.degraded;
      ce.derived = entry.derived;
      seed.push_back(std::move(ce));
    }
    session.SetSeedCache(std::move(seed));

    auto result = session.Tune(wl);
    if (!result.ok()) return result.status();

    // Recommendation delta vs the previous round, as sorted set differences
    // over canonical structure names.
    std::vector<std::string> prev_names =
        StructureNames(previous_recommendation_);
    std::vector<std::string> next_names =
        StructureNames(result->recommendation);
    std::sort(prev_names.begin(), prev_names.end());
    std::sort(next_names.begin(), next_names.end());
    std::vector<std::string> added;
    std::vector<std::string> removed;
    std::set_difference(next_names.begin(), next_names.end(),
                        prev_names.begin(), prev_names.end(),
                        std::back_inserter(added));
    std::set_difference(prev_names.begin(), prev_names.end(),
                        next_names.begin(), next_names.end(),
                        std::back_inserter(removed));
    for (const auto& name : added) delta += "+ " + name + "\n";
    for (const auto& name : removed) delta += "- " + name + "\n";
    if (added.empty() && removed.empty()) {
      delta += "= no configuration change\n";
    }
    delta += "current_cost=" + HexStr(result->current_cost) +
             " recommended_cost=" + HexStr(result->recommended_cost) +
             StrFormat(" improvement=%.2f%%\n",
                       result->ImprovementPercent());

    // Fold the round's final cache into the memo. A round that created
    // statistics cleared its cost cache mid-flight, so every older memo
    // entry is suspect — rebuild the memo from this round's final state
    // (self-limiting: statistics only appear when new templates bring new
    // candidate columns). Otherwise merge last-wins, tracking exactly what
    // changed — that set is the round's checkpoint segment.
    if (!result->created_stats.empty()) {
      memo_cleared_last_round_ = true;
      memo_.clear();
    }
    for (const auto& e : result->final_cache) {
      const MemoKey key(HashBytes(wl.statements()[e.statement].text),
                        e.fingerprint);
      MemoEntry entry;
      entry.cost = e.cost;
      entry.degraded = e.degraded;
      entry.derived = e.derived;
      auto it = memo_.find(key);
      if (it != memo_.end() && it->second.cost == entry.cost &&
          it->second.degraded == entry.degraded &&
          it->second.derived == entry.derived) {
        continue;
      }
      memo_[key] = entry;
      if (!memo_cleared_last_round_) memo_dirty_last_round_.push_back(key);
    }
    std::sort(memo_dirty_last_round_.begin(), memo_dirty_last_round_.end());
    created_stats_last_round_ = result->created_stats;
    for (const auto& key : result->created_stats) {
      created_stats_.push_back(key);
    }

    delta += "whatif_calls=";
    AppendU64(&delta, result->whatif_calls);
    delta += " seeded=";
    AppendU64(&delta, result->seeded_cache_entries);
    delta += " quarantined=";
    AppendU64(&delta, result->quarantined_candidates);
    delta += " pinned=";
    AppendU64(&delta, StructureCount(feedback_.pinned()));
    delta += " memo=";
    AppendU64(&delta, memo_.size());
    delta += "\n";

    previous_recommendation_ = result->recommendation;
  }

  // Round boundary: advance the cadence cursors and the decay epoch before
  // checkpointing, so the snapshot restores to exactly this state. Taking
  // the dirty/evicted template sets every round (checkpointing or not)
  // keeps them bounded by per-round churn.
  rounds_ = round;
  events_at_last_round_ = workload_.events();
  round_started_ms_ = stream_ms_;
  workload_.BeginRound(round + 1);
  dirty_templates_last_round_ = workload_.TakeDirty();
  evicted_templates_last_round_ = workload_.TakeEvicted();

  delta_text_ += delta;
  if (config_.delta_sink) config_.delta_sink(delta);

  DTA_RETURN_IF_ERROR(WriteCheckpoint(/*force_base=*/false, EncodeSegment()));
  ExportRoundMetrics();

  if (max_rounds_ != 0 && rounds_ >= max_rounds_) stopped_ = true;
  return Status::Ok();
}

// ---- Delta-log serialization ----------------------------------------------

namespace {

// Front-coded memo blob: "texthash cost flags shared suffix" per line, the
// fingerprint suffix front-coded against the previous line (the same codec
// as the v2 checkpoint's CostCache blob, keyed by text hash instead of
// statement index).
void AppendMemoLine(std::string* blob, uint64_t hash, double cost,
                    unsigned flags, const std::string& fingerprint,
                    const std::string** prev) {
  size_t shared = 0;
  if (*prev != nullptr) {
    const size_t limit = std::min((*prev)->size(), fingerprint.size());
    while (shared < limit && (**prev)[shared] == fingerprint[shared]) {
      ++shared;
    }
  }
  AppendU64(blob, hash);
  blob->push_back(' ');
  AppendHexDouble(blob, cost);
  blob->push_back(' ');
  AppendU64(blob, flags);
  blob->push_back(' ');
  AppendU64(blob, shared);
  blob->push_back(' ');
  blob->append(fingerprint.data() + shared, fingerprint.size() - shared);
  blob->push_back('\n');
  *prev = &fingerprint;
}

Status DecodeMemoBlob(
    const std::string& blob,
    std::vector<std::pair<std::pair<uint64_t, std::string>, double>>* keys,
    std::vector<unsigned>* flags) {
  const char* p = blob.c_str();
  const char* end = p + blob.size();
  std::string prev_fp;
  while (p < end) {
    char* q = nullptr;
    const uint64_t hash = std::strtoull(p, &q, 10);
    const double cost = std::strtod(q, &q);
    const unsigned f = static_cast<unsigned>(std::strtoul(q, &q, 10));
    const size_t shared = static_cast<size_t>(std::strtoull(q, &q, 10));
    if (q < end && *q == ' ') ++q;
    const char* nl = static_cast<const char*>(
        std::memchr(q, '\n', static_cast<size_t>(end - q)));
    if (nl == nullptr) nl = end;
    if (q > nl || shared > prev_fp.size()) {
      return Status::InvalidArgument("stream checkpoint has a malformed "
                                     "memo line");
    }
    std::string fp;
    fp.assign(prev_fp, 0, shared);
    fp.append(q, static_cast<size_t>(nl - q));
    prev_fp = fp;
    keys->emplace_back(std::make_pair(hash, std::move(fp)), cost);
    flags->push_back(f);
    p = nl + 1;
  }
  return Status::Ok();
}

void FeedbackToXml(const FeedbackState& feedback, xml::Element* root) {
  xml::Element* pinned = root->AddChild("Pinned");
  pinned->AddChild(ConfigurationToXml(feedback.pinned()));
  xml::Element* quarantine = root->AddChild("Quarantine");
  for (const auto& [name, expires] : feedback.quarantine()) {
    xml::Element* q = quarantine->AddChild("Q");
    q->SetAttr("Expires", U64Str(expires));
    q->AddTextChild("Name", name);
  }
  xml::Element* pending = root->AddChild("PendingFeedback");
  for (const auto& d : feedback.pending()) {
    xml::Element* f = pending->AddChild("F");
    f->SetAttr("Round", U64Str(d.round));
    f->SetAttr("Accept", d.accept ? "true" : "false");
    f->AddTextChild("Target", d.target);
  }
  root->SetAttr("FeedbackConsumed", U64Str(feedback.consumed_lines()));
  root->SetAttr("FeedbackAccepted", U64Str(feedback.accepted()));
  root->SetAttr("FeedbackRejected", U64Str(feedback.rejected()));
  root->SetAttr("FeedbackUnknown", U64Str(feedback.unknown()));
}

Result<catalog::Configuration> ConfigurationFromParent(
    const xml::Element& root, const char* name) {
  const xml::Element* parent = root.FindChild(name);
  if (parent == nullptr) return catalog::Configuration();
  const xml::Element* cfg = parent->FindChild("Configuration");
  if (cfg == nullptr) return catalog::Configuration();
  return ConfigurationFromXml(*cfg);
}

}  // namespace

std::string ContinuousTuner::EncodeBase() const {
  xml::Element root("DTAStream");
  root.SetAttr("Version", "3");
  root.SetAttr("Fingerprint", U64Str(StreamFingerprint(config_)));
  root.SetAttr("Round", U64Str(rounds_));
  root.SetAttr("LinesConsumed", U64Str(reader_.lines_consumed()));
  root.SetAttr("Events", U64Str(workload_.events()));
  root.SetAttr("SqlParseErrors", U64Str(workload_.parse_errors()));
  root.SetAttr("DirectiveErrors", U64Str(reader_.parse_errors()));
  root.SetAttr("TornLines", U64Str(reader_.torn_lines()));
  root.SetAttr("NextOrdinal", U64Str(workload_.next_ordinal()));
  root.SetAttr("Evictions", U64Str(workload_.evictions()));
  root.SetAttr("StreamMs", HexStr(stream_ms_));

  xml::Element* templates = root.AddChild("Templates");
  for (const auto& [sig, entry] : workload_.entries()) {
    TemplateToXml(entry, templates);
  }

  std::string blob;
  const std::string* prev = nullptr;
  for (const auto& [key, entry] : memo_) {
    AppendMemoLine(&blob, key.first, entry.cost,
                   (entry.degraded ? 1u : 0u) | (entry.derived ? 2u : 0u),
                   key.second, &prev);
  }
  if (!blob.empty()) blob.pop_back();
  root.AddTextChild("Memo", std::move(blob));

  xml::Element* created = root.AddChild("CreatedStats");
  for (const auto& key : created_stats_) StatsKeyToXml(key, created);

  xml::Element* rec = root.AddChild("Recommendation");
  rec->AddChild(ConfigurationToXml(previous_recommendation_));
  FeedbackToXml(feedback_, &root);
  return root.ToString(/*prolog=*/true);
}

std::string ContinuousTuner::EncodeSegment() const {
  xml::Element root("DTAStreamDelta");
  root.SetAttr("Round", U64Str(rounds_));
  root.SetAttr("LinesConsumed", U64Str(reader_.lines_consumed()));
  root.SetAttr("Events", U64Str(workload_.events()));
  root.SetAttr("SqlParseErrors", U64Str(workload_.parse_errors()));
  root.SetAttr("DirectiveErrors", U64Str(reader_.parse_errors()));
  root.SetAttr("TornLines", U64Str(reader_.torn_lines()));
  root.SetAttr("NextOrdinal", U64Str(workload_.next_ordinal()));
  root.SetAttr("Evictions", U64Str(workload_.evictions()));
  root.SetAttr("StreamMs", HexStr(stream_ms_));
  root.SetAttr("MemoCleared", memo_cleared_last_round_ ? "true" : "false");

  // Only the templates this round touched travel; evictions as signatures.
  // (TakeDirty/TakeEvicted are consumed by RunRound's caller — here we hold
  // the taken copies.)
  xml::Element* templates = root.AddChild("Templates");
  for (uint64_t sig : dirty_templates_last_round_) {
    auto it = workload_.entries().find(sig);
    if (it != workload_.entries().end()) TemplateToXml(it->second, templates);
  }
  xml::Element* evicted = root.AddChild("EvictedTemplates");
  for (uint64_t sig : evicted_templates_last_round_) {
    evicted->AddChild("E")->SetAttr("Sig", U64Str(sig));
  }

  // Memo delta: the changed entries — or the full memo after a clear.
  std::string blob;
  const std::string* prev = nullptr;
  if (memo_cleared_last_round_) {
    for (const auto& [key, entry] : memo_) {
      AppendMemoLine(&blob, key.first, entry.cost,
                     (entry.degraded ? 1u : 0u) | (entry.derived ? 2u : 0u),
                     key.second, &prev);
    }
  } else {
    for (const auto& key : memo_dirty_last_round_) {
      auto it = memo_.find(key);
      if (it == memo_.end()) continue;
      const MemoEntry& entry = it->second;
      AppendMemoLine(&blob, key.first, entry.cost,
                     (entry.degraded ? 1u : 0u) | (entry.derived ? 2u : 0u),
                     key.second, &prev);
    }
  }
  if (!blob.empty()) blob.pop_back();
  root.AddTextChild("Memo", std::move(blob));

  xml::Element* created = root.AddChild("CreatedStats");
  for (const auto& key : created_stats_last_round_) {
    StatsKeyToXml(key, created);
  }

  // Small, bounded state — carried whole: the recommendation and the
  // feedback tables are O(recommendation), not O(cache).
  xml::Element* rec = root.AddChild("Recommendation");
  rec->AddChild(ConfigurationToXml(previous_recommendation_));
  FeedbackToXml(feedback_, &root);
  return root.ToString(/*prolog=*/true);
}

Status ContinuousTuner::WriteCheckpoint(bool force_base,
                                        const std::string& segment) {
  if (config_.checkpoint_path.empty()) return Status::Ok();
  if (!base_written_ || force_base) {
    const std::string base = EncodeBase();
    DTA_RETURN_IF_ERROR(WriteDeltaBase(config_.checkpoint_path, base));
    base_written_ = true;
    segment_bytes_since_base_ = 0;
    base_bytes_history_.push_back(base.size());
    return Status::Ok();
  }
  size_t appended = 0;
  DTA_RETURN_IF_ERROR(
      AppendDeltaSegment(config_.checkpoint_path, segment, &appended));
  ++segments_written_;
  delta_bytes_history_.push_back(appended);
  segment_bytes_since_base_ += appended;
  if (segment_bytes_since_base_ > config_.compact_threshold_bytes) {
    // Compaction: fold every segment back into one base record. O(total
    // state), amortized by the byte threshold that triggered it.
    const std::string base = EncodeBase();
    DTA_RETURN_IF_ERROR(WriteDeltaBase(config_.checkpoint_path, base));
    segment_bytes_since_base_ = 0;
    base_bytes_history_.push_back(base.size());
    ++compactions_;
  }
  return Status::Ok();
}

Status ContinuousTuner::LoadFromLog() {
  auto log = ReadDeltaLog(config_.checkpoint_path);
  if (!log.ok()) return log.status();
  dropped_records_ = log->dropped_records;

  auto parsed = xml::Parse(log->base);
  if (!parsed.ok()) return parsed.status();
  const xml::Element& root = **parsed;
  if (root.name() != "DTAStream" || root.Attr("Version") != "3") {
    return Status::InvalidArgument("not a v3 DTAStream base record");
  }
  if (ParseU64(root.Attr("Fingerprint")) != StreamFingerprint(config_)) {
    return Status::FailedPrecondition(
        "delta log was written under different tuning options or stream "
        "parameters; refusing to resume");
  }
  DTA_RETURN_IF_ERROR(ApplyStateXml(root, /*is_base=*/true));
  for (const std::string& segment : log->segments) {
    auto seg = xml::Parse(segment);
    if (!seg.ok()) return seg.status();
    if ((*seg)->name() != "DTAStreamDelta") {
      return Status::InvalidArgument("not a DTAStreamDelta segment record");
    }
    DTA_RETURN_IF_ERROR(ApplyStateXml(**seg, /*is_base=*/false));
  }

  // The restored memo was priced under the statistics the original service
  // created; re-create them on this (fresh) server before the first round
  // — statistics builds are deterministic in the data, so the rebuilt
  // statistics match and the memo stays valid. Per-round sessions then find
  // them present and never clear the seeded cache.
  for (const auto& key : created_stats_) {
    if (!config_.server->HasStatistics(key)) {
      // Same tolerance as session resume: a table that cannot produce
      // statistics was skipped by the original run too.
      (void)config_.server->CreateStatistics(key);
    }
  }

  // Re-feeding the same capture: skip the already-processed prefix and
  // restore the reader's error totals (skipped lines re-produce nothing).
  reader_.SkipLines(restored_lines_consumed_);
  resumed_ = true;
  base_written_ = true;
  // Appending resumes where the log stands; compaction bookkeeping restarts
  // conservatively (worst case: one early compaction after resume).
  segment_bytes_since_base_ = 0;
  for (const std::string& segment : log->segments) {
    segment_bytes_since_base_ += segment.size();
  }
  return Status::Ok();
}

Status ContinuousTuner::ApplyStateXml(const xml::Element& root, bool is_base) {
  if (!is_base) {
    // Segment evictions first, then upserts — an evicted-then-reinserted
    // template must survive.
    if (const xml::Element* evicted = root.FindChild("EvictedTemplates")) {
      for (const xml::Element* e : evicted->FindChildren("E")) {
        workload_.EraseEntry(ParseU64(e->Attr("Sig")));
      }
    }
  }
  if (const xml::Element* templates = root.FindChild("Templates")) {
    for (const xml::Element* t : templates->FindChildren("T")) {
      workload_.RestoreEntry(TemplateFromXml(*t));
    }
  }
  workload_.RestoreCounters(ParseU64(root.Attr("NextOrdinal")),
                            ParseU64(root.Attr("Events")),
                            ParseU64(root.Attr("SqlParseErrors")),
                            ParseU64(root.Attr("Evictions")));
  reader_.RestoreCounters(ParseU64(root.Attr("DirectiveErrors")),
                          ParseU64(root.Attr("TornLines")));
  restored_lines_consumed_ = ParseU64(root.Attr("LinesConsumed"));
  stream_ms_ = ParseHexDouble(root.Attr("StreamMs"));
  round_started_ms_ = stream_ms_;
  events_at_last_round_ = workload_.events();
  rounds_ = ParseU64(root.Attr("Round"));

  if (const xml::Element* memo = root.FindChild("Memo")) {
    const bool cleared =
        is_base || root.Attr("MemoCleared") == "true";
    if (cleared) memo_.clear();
    std::vector<std::pair<std::pair<uint64_t, std::string>, double>> keys;
    std::vector<unsigned> flags;
    DTA_RETURN_IF_ERROR(DecodeMemoBlob(memo->text(), &keys, &flags));
    for (size_t i = 0; i < keys.size(); ++i) {
      MemoEntry entry;
      entry.cost = keys[i].second;
      entry.degraded = (flags[i] & 1) != 0;
      entry.derived = (flags[i] & 2) != 0;
      memo_[keys[i].first] = entry;
    }
  }

  if (const xml::Element* created = root.FindChild("CreatedStats")) {
    for (const xml::Element* s : created->FindChildren("Stats")) {
      created_stats_.push_back(StatsKeyFromXml(*s));
    }
  }

  auto rec = ConfigurationFromParent(root, "Recommendation");
  if (!rec.ok()) return rec.status();
  previous_recommendation_ = std::move(rec).value();

  auto pinned = ConfigurationFromParent(root, "Pinned");
  if (!pinned.ok()) return pinned.status();
  std::map<std::string, uint64_t> quarantine;
  if (const xml::Element* q = root.FindChild("Quarantine")) {
    for (const xml::Element* e : q->FindChildren("Q")) {
      const xml::Element* name = e->FindChild("Name");
      if (name != nullptr) {
        quarantine[name->text()] = ParseU64(e->Attr("Expires"));
      }
    }
  }
  std::vector<FeedbackDirective> pending;
  if (const xml::Element* p = root.FindChild("PendingFeedback")) {
    for (const xml::Element* f : p->FindChildren("F")) {
      FeedbackDirective d;
      d.round = ParseU64(f->Attr("Round"));
      d.accept = f->Attr("Accept") == "true";
      if (const xml::Element* target = f->FindChild("Target")) {
        d.target = target->text();
      }
      pending.push_back(std::move(d));
    }
  }
  feedback_.Restore(std::move(pinned).value(), std::move(quarantine),
                    std::move(pending), ParseU64(root.Attr("FeedbackConsumed")),
                    ParseU64(root.Attr("FeedbackAccepted")),
                    ParseU64(root.Attr("FeedbackRejected")),
                    ParseU64(root.Attr("FeedbackUnknown")));
  return Status::Ok();
}

void ContinuousTuner::ExportRoundMetrics() {
  if (config_.metrics == nullptr) return;
  MetricsRegistry* m = config_.metrics;
  const size_t events = workload_.events();
  const size_t parse = workload_.parse_errors() + reader_.parse_errors();
  const size_t evictions = workload_.evictions();
  m->GetCounter("stream.events")->Increment(events - exported_.events);
  m->GetCounter("stream.parse_errors")->Increment(parse - exported_.parse);
  m->GetCounter("stream.rounds")->Increment(1);
  m->GetCounter("stream.feedback.accepted")
      ->Increment(feedback_.accepted() - exported_.accepted);
  m->GetCounter("stream.feedback.rejected")
      ->Increment(feedback_.rejected() - exported_.rejected);
  m->GetCounter("stream.feedback.unknown")
      ->Increment(feedback_.unknown() - exported_.unknown);
  m->GetCounter("stream.evictions")->Increment(evictions - exported_.evictions);
  m->GetCounter("stream.checkpoint.segments")
      ->Increment(segments_written_ - exported_.segments);
  m->GetCounter("stream.checkpoint.compactions")
      ->Increment(compactions_ - exported_.compactions);
  exported_.events = events;
  exported_.parse = parse;
  exported_.accepted = feedback_.accepted();
  exported_.rejected = feedback_.rejected();
  exported_.unknown = feedback_.unknown();
  exported_.evictions = evictions;
  exported_.segments = segments_written_;
  exported_.compactions = compactions_;

  m->GetGauge("stream.templates")
      ->Set(static_cast<double>(workload_.entries().size()));
  m->GetGauge("stream.memo.entries")->Set(static_cast<double>(memo_.size()));
  if (!delta_bytes_history_.empty()) {
    double total = 0;
    for (size_t b : delta_bytes_history_) total += static_cast<double>(b);
    m->GetGauge("stream.checkpoint.delta_bytes_per_round")
        ->Set(total / static_cast<double>(delta_bytes_history_.size()));
    m->GetGauge("stream.checkpoint.delta_bytes_last_round")
        ->Set(static_cast<double>(delta_bytes_history_.back()));
  }
}

}  // namespace dta::tuner::stream
