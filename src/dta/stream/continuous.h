// Continuous tuning service (always-on mode; ROADMAP "Continuous tuning").
//
// The one-shot pipeline tunes a fixed workload once. This driver runs the
// same pipeline as a *service*: it ingests a query-capture stream
// (dta/stream/capture.h), folds events into an incrementally maintained
// compressed workload (dta/stream/stream_workload.h), re-tunes on a cadence
// (every N events and/or every T fake-clock milliseconds of `@tick` time),
// applies DBA feedback between rounds (dta/stream/feedback.h), and emits
// one *recommendation delta* per round — the structures added and dropped
// versus the previous round, plus the round's costs and counters.
//
// What keeps steady-state rounds cheap:
//   * a cross-round cost memo keyed on (statement text hash, configuration
//     fingerprint): each round's session is seeded from it
//     (TuningSession::SetSeedCache), so statements the stream did not
//     change re-price from cache, not the optimizer;
//   * statistics persist on the long-lived server, so later rounds' stats
//     phases are no-ops that never clear the seeded cache (a round that
//     DOES create statistics invalidates the memo — the session cleared
//     its cache, so the memo rebuilds from that round's final state);
//   * checkpoints are append-only delta segments (dta/checkpoint.h format
//     v3): a round appends only the templates it touched, the memo entries
//     it changed, and the (small) recommendation/feedback state — O(new
//     work), not O(total state) — with the log compacted back into one
//     base record past a byte threshold.
//
// The determinism contract extends the repo-wide one: with a fixed capture
// (and fake clock), the per-round delta text is byte-identical at any
// (threads × shards × tenants) combination, and a service killed at any
// round boundary and resumed from the delta log reproduces the remaining
// rounds bit-exactly. The replay and property tests in tests/ hold it.
//
// Single-threaded by design: one thread owns Feed()/Finish(); parallelism
// lives inside each round's TuningSession, which fans costing out across
// its own pool. No locks here.

#ifndef DTA_DTA_STREAM_CONTINUOUS_H_
#define DTA_DTA_STREAM_CONTINUOUS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "catalog/physical_design.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "dta/stream/capture.h"
#include "dta/stream/feedback.h"
#include "dta/stream/stream_workload.h"
#include "dta/tuning_options.h"
#include "dta/tuning_session.h"
#include "server/server.h"

namespace dta::xml {
class Element;
}  // namespace dta::xml

namespace dta::tuner::stream {

class ContinuousTuner {
 public:
  struct Config {
    server::Server* server = nullptr;  // long-lived tuning server
    TuningOptions options;             // base options for every round

    // Retune cadence: after this many successfully parsed statement events
    // (0 disables) and/or after this much accumulated `@tick` stream time
    // (0 disables). At least one must be set.
    size_t retune_interval_events = 0;
    double retune_interval_ms = 0;

    // Template table bounds (stream_workload.h).
    size_t max_templates = 256;
    double decay = 1.0;

    // Rejected structures stay quarantined for this many rounds.
    uint64_t quarantine_rounds = 3;

    // Delta-log checkpoint path (empty disables checkpointing) and the
    // cumulative-segment-bytes threshold past which the log is compacted
    // back into a single base record.
    std::string checkpoint_path;
    size_t compact_threshold_bytes = 256 * 1024;

    // Capture framing bound (capture.h).
    size_t max_line_bytes = CaptureReader::kDefaultMaxLineBytes;

    // Observability (all optional; clock only times in-session phases —
    // cadence time comes from `@tick` directives, never a real clock).
    MetricsRegistry* metrics = nullptr;
    Tracer* tracer = nullptr;
    const Clock* clock = nullptr;

    // Multi-tenant identity (tenant_driver.h); null admission = standalone.
    TenantContext tenant;

    // Invoked with each round's delta text as it is produced (the CLI
    // streams these to stdout). The same text also accumulates in
    // delta_text() regardless.
    std::function<void(const std::string&)> delta_sink;
  };

  explicit ContinuousTuner(Config config);

  // Validates the config and, when a delta log exists at checkpoint_path,
  // resumes from it: restores the stream state and re-creates the
  // accumulated statistics on the (fresh) server so the restored memo stays
  // valid. Call exactly once, before Feed.
  Status Init();

  // Feeds raw capture bytes; complete events are processed immediately and
  // tuning rounds run inline as the cadence fires. Returns the first
  // round's error, if any (the service stops there).
  Status Feed(std::string_view bytes);

  // End of capture: accounts a torn trailing line. Does NOT force a final
  // round — rounds fire on cadence only, so a partial window's events wait
  // (they are checkpointed as ingested state, not lost).
  Status Finish();

  // Feedback file contents (full text; consumed incrementally by line
  // cursor — see feedback.h). The CLI re-reads the file before each Feed.
  void ConsumeFeedback(const std::string& text);

  // ---- Round outputs.
  const std::string& delta_text() const { return delta_text_; }
  uint64_t rounds() const { return rounds_; }
  const catalog::Configuration& recommendation() const {
    return previous_recommendation_;
  }
  // True once the stream is poisoned or max_rounds was reached.
  bool stopped() const { return stopped_; }

  // ---- Test hooks.
  // Stop consuming input once `n` rounds have completed — a deterministic
  // "kill at round boundary n" for the replay/resume tests. 0 = unlimited.
  void set_max_rounds(uint64_t n) { max_rounds_ = n; }
  // Per-round appended segment bytes (base writes and compactions excluded
  // — those are O(total state) by design and amortized by the threshold).
  const std::vector<size_t>& delta_bytes_history() const {
    return delta_bytes_history_;
  }
  const std::vector<size_t>& base_bytes_history() const {
    return base_bytes_history_;
  }
  // True when Init() resumed from an existing delta log.
  bool resumed() const { return resumed_; }
  size_t memo_entries() const { return memo_.size(); }
  const StreamWorkload& stream_workload() const { return workload_; }
  const FeedbackState& feedback() const { return feedback_; }

 private:
  struct MemoEntry {
    double cost = 0;
    bool degraded = false;
    bool derived = false;
  };
  // Keyed by (statement text hash, configuration fingerprint) — statement
  // *indexes* shift as templates arrive and evict, text hashes do not.
  using MemoKey = std::pair<uint64_t, std::string>;

  Status ProcessLine(std::string_view line_with_newline);
  Status MaybeRound();
  Status RunRound();
  Status WriteCheckpoint(bool force_base, const std::string& segment);
  std::string EncodeBase() const;
  std::string EncodeSegment() const;
  Status LoadFromLog();
  // Restores state from a base record (is_base) or applies one segment.
  Status ApplyStateXml(const xml::Element& root, bool is_base);
  void ExportRoundMetrics();

  Config config_;
  CaptureReader reader_;
  StreamWorkload workload_;
  FeedbackState feedback_;

  std::string pending_;  // bytes not yet forming a complete line
  bool initialized_ = false;
  bool stopped_ = false;
  bool resumed_ = false;

  uint64_t rounds_ = 0;
  uint64_t max_rounds_ = 0;
  size_t events_at_last_round_ = 0;
  double stream_ms_ = 0;          // accumulated @tick time
  double round_started_ms_ = 0;   // stream_ms_ at the last round boundary

  std::map<MemoKey, MemoEntry> memo_;
  catalog::Configuration previous_recommendation_;
  std::vector<stats::StatsKey> created_stats_;  // accumulated, creation order

  std::string delta_text_;
  std::vector<size_t> delta_bytes_history_;
  std::vector<size_t> base_bytes_history_;
  size_t segment_bytes_since_base_ = 0;
  bool base_written_ = false;
  size_t compactions_ = 0;
  size_t segments_written_ = 0;

  // Per-round delta bookkeeping (what the last round's segment must carry):
  // set by RunRound for EncodeSegment.
  bool memo_cleared_last_round_ = false;
  std::vector<MemoKey> memo_dirty_last_round_;
  std::vector<stats::StatsKey> created_stats_last_round_;
  std::vector<uint64_t> dirty_templates_last_round_;
  std::vector<uint64_t> evicted_templates_last_round_;

  // Resume bookkeeping.
  size_t restored_lines_consumed_ = 0;
  size_t dropped_records_ = 0;

  // Last-exported absolutes, so per-round metric increments stay exact.
  struct Exported {
    size_t events = 0;
    size_t parse = 0;
    size_t accepted = 0;
    size_t rejected = 0;
    size_t unknown = 0;
    size_t evictions = 0;
    size_t segments = 0;
    size_t compactions = 0;
  };
  Exported exported_;
};

}  // namespace dta::tuner::stream

#endif  // DTA_DTA_STREAM_CONTINUOUS_H_
