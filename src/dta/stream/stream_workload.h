// Incrementally maintained compressed workload (continuous tuning service).
//
// The one-shot pipeline compresses a workload once, up front (§5.1): equal
// template signatures collapse into one weighted representative. A stream
// has no "up front", so this table maintains the compressed form
// incrementally: one entry per template signature, weight = (decayed) event
// count, bounded at `max_templates` entries with deterministic eviction of
// the lightest template.
//
// Recency decay without O(table) work per round — the epoch trick: an
// entry stores its weight as of the round it was last touched
// (`touch_round`); its effective weight at round R is
//
//   weight * decay^(R - touch_round)
//
// computed on demand (by repeated multiplication — identical operation
// sequence everywhere, unlike std::pow). A round boundary therefore never
// rewrites untouched entries; only entries actually touched by new events
// change state, which is what keeps per-round checkpoint deltas O(new
// work). Ingesting into an entry from an older epoch first rolls its weight
// forward to the current round, then adds the event.
//
// Everything is deterministic in the event sequence: the table is a
// std::map over signatures, eviction breaks weight ties by evicting the
// youngest entry (largest first_seen — old templates have earned their
// seat), and snapshots order statements by first arrival. State
// round-trips bit-exactly through RestoreEntry (weights travel as hex
// floats in the checkpoint layer above).

#ifndef DTA_DTA_STREAM_STREAM_WORKLOAD_H_
#define DTA_DTA_STREAM_STREAM_WORKLOAD_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "workload/workload.h"

namespace dta::tuner::stream {

struct TemplateEntry {
  uint64_t signature = 0;
  std::string text;          // normalized SQL of the first-arrived instance
  double weight = 0;         // raw weight, valid as of `touch_round`
  uint64_t first_seen = 0;   // global arrival ordinal (snapshot order)
  uint64_t touch_round = 0;  // epoch of `weight`
};

class StreamWorkload {
 public:
  struct Config {
    size_t max_templates = 256;
    // Per-round multiplicative decay of template weights; 1 disables decay.
    double decay = 1.0;
  };

  explicit StreamWorkload(Config config) : config_(config) {}

  // Parses one captured SQL line and folds it into the template table.
  // Returns false (and counts a parse error) on unparseable SQL — one bad
  // line never takes down the service.
  bool Ingest(const std::string& text);

  // Advances the decay epoch. Monotonic; called once per tuning round.
  void BeginRound(uint64_t round);
  uint64_t round() const { return round_; }

  // The compressed workload as of now: statements ordered by first arrival,
  // weighted by effective (decayed) weight. Re-parses the stored normalized
  // texts; parsing its own printer output cannot fail.
  workload::Workload Snapshot() const;

  // Effective weight of `e` at the current round.
  double EffectiveWeight(const TemplateEntry& e) const;

  const std::map<uint64_t, TemplateEntry>& entries() const {
    return entries_;
  }

  // Checkpoint-delta support: signatures inserted or updated since the last
  // take (sorted — std::set-free because the map is ordered), and
  // signatures evicted since the last take. Taking clears the sets.
  std::vector<uint64_t> TakeDirty();
  std::vector<uint64_t> TakeEvicted();

  // Restores one entry verbatim (checkpoint load). Also advances the
  // arrival-ordinal counter past first_seen so new arrivals stay unique.
  void RestoreEntry(TemplateEntry entry);
  // Removes one entry (checkpoint load: applies a segment's evictions).
  void EraseEntry(uint64_t signature) { entries_.erase(signature); }
  void RestoreCounters(uint64_t next_ordinal, size_t events,
                       size_t parse_errors, size_t evictions);

  size_t events() const { return events_; }
  size_t parse_errors() const { return parse_errors_; }
  size_t evictions() const { return evictions_; }
  uint64_t next_ordinal() const { return next_ordinal_; }

 private:
  void EvictLightest();

  Config config_;
  std::map<uint64_t, TemplateEntry> entries_;
  std::map<uint64_t, bool> dirty_;    // signature -> touched since last take
  std::vector<uint64_t> evicted_;     // since last take, in eviction order
  uint64_t round_ = 0;
  uint64_t next_ordinal_ = 0;
  size_t events_ = 0;
  size_t parse_errors_ = 0;
  size_t evictions_ = 0;
};

}  // namespace dta::tuner::stream

#endif  // DTA_DTA_STREAM_STREAM_WORKLOAD_H_
