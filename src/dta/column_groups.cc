#include "dta/column_groups.h"

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "optimizer/bound_query.h"

namespace dta::tuner {

InterestingColumnGroups InterestingColumnGroups::Unrestricted() {
  InterestingColumnGroups g;
  g.unrestricted_ = true;
  return g;
}

std::string InterestingColumnGroups::Key(const std::string& database,
                                         const std::string& table,
                                         std::vector<std::string> columns) {
  for (auto& c : columns) c = ToLower(c);
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  return ToLower(database) + "." + ToLower(table) + "{" +
         StrJoin(columns, ",") + "}";
}

void InterestingColumnGroups::Insert(const std::string& database,
                                     const std::string& table,
                                     std::vector<std::string> columns) {
  groups_.insert(Key(database, table, std::move(columns)));
}

bool InterestingColumnGroups::Contains(
    const std::string& database, const std::string& table,
    std::vector<std::string> columns) const {
  if (unrestricted_) return true;
  return groups_.count(Key(database, table, std::move(columns))) > 0;
}

Result<StatementColumnUsage> AnalyzeStatementColumns(
    const sql::Statement& stmt, const catalog::Catalog& catalog) {
  StatementColumnUsage usage;
  if (stmt.is_select()) {
    auto bound = optimizer::BindSelect(stmt.select(), catalog);
    if (!bound.ok()) return bound.status();
    const optimizer::BoundQuery& q = *bound;
    usage.tables.resize(q.tables.size());
    for (size_t t = 0; t < q.tables.size(); ++t) {
      usage.tables[t].database = q.tables[t].database->name();
      usage.tables[t].table = q.tables[t].schema->name();
    }
    auto add = [&](int t, int c) {
      usage.tables[static_cast<size_t>(t)].columns.insert(
          q.ColumnName(t, c));
    };
    for (const auto& atom : q.atoms) {
      add(atom.table, atom.column);
      if (atom.rhs_table >= 0) add(atom.rhs_table, atom.rhs_column);
    }
    for (const auto& [t, c] : q.group_by) add(t, c);
    for (const auto& o : q.order_by) add(o.table, o.column);
    // Drop tables with no tunable columns.
    usage.tables.erase(
        std::remove_if(usage.tables.begin(), usage.tables.end(),
                       [](const StatementColumnUsage::TableUsage& t) {
                         return t.columns.empty();
                       }),
        usage.tables.end());
    return usage;
  }
  // DML: the WHERE columns of the target table.
  auto dml = optimizer::BindDml(stmt, catalog);
  if (!dml.ok()) return dml.status();
  StatementColumnUsage::TableUsage tu;
  tu.database = dml->database->name();
  tu.table = dml->table->name();
  for (int c : dml->filter_columns) {
    tu.columns.insert(dml->table->column(c).name);
  }
  if (!tu.columns.empty()) usage.tables.push_back(std::move(tu));
  return usage;
}

Result<InterestingColumnGroups> ComputeInterestingColumnGroups(
    const workload::Workload& workload,
    const std::vector<double>& statement_costs,
    const catalog::Catalog& catalog, double cost_fraction,
    int max_group_size) {
  if (cost_fraction <= 0) return InterestingColumnGroups::Unrestricted();

  // Transactions: per statement, per table, the set of tunable columns,
  // weighted by the statement's share of workload cost.
  struct Txn {
    std::string key;  // db.table
    std::vector<std::string> columns;
    double cost = 0;
  };
  std::vector<Txn> txns;
  double total_cost = 0;
  for (size_t i = 0; i < workload.statements().size(); ++i) {
    const auto& ws = workload.statements()[i];
    double cost =
        (i < statement_costs.size() ? statement_costs[i] : 1.0) * ws.weight;
    total_cost += cost;
    auto usage = AnalyzeStatementColumns(ws.stmt, catalog);
    if (!usage.ok()) return usage.status();
    for (auto& tu : usage->tables) {
      Txn txn;
      txn.key = tu.database + "." + tu.table;
      txn.columns.assign(tu.columns.begin(), tu.columns.end());
      txn.cost = cost;
      txns.push_back(std::move(txn));
    }
  }
  const double threshold = std::max(1e-12, cost_fraction * total_cost);

  InterestingColumnGroups out;
  // Level 1: frequent singletons per table.
  std::map<std::string, std::map<std::string, double>> singleton_cost;
  for (const auto& txn : txns) {
    for (const auto& c : txn.columns) {
      singleton_cost[txn.key][c] += txn.cost;
    }
  }
  // frequent[table] = sorted list of frequent column-sets at current level.
  std::map<std::string, std::vector<std::vector<std::string>>> frequent;
  for (const auto& [table_key, cols] : singleton_cost) {
    for (const auto& [col, cost] : cols) {
      if (cost >= threshold) {
        frequent[table_key].push_back({col});
      }
    }
  }
  auto emit = [&out](const std::string& table_key,
                     const std::vector<std::string>& group) {
    auto dot = table_key.find('.');
    out.Insert(table_key.substr(0, dot), table_key.substr(dot + 1), group);
  };
  for (const auto& [table_key, groups] : frequent) {
    for (const auto& g : groups) emit(table_key, g);
  }

  // Levels 2..max: extend frequent (k-1)-groups with frequent singletons.
  for (int level = 2; level <= max_group_size; ++level) {
    std::map<std::string, std::vector<std::vector<std::string>>> next;
    for (const auto& [table_key, groups] : frequent) {
      const auto& singles = singleton_cost[table_key];
      // Candidate k-groups.
      std::map<std::string, std::pair<std::vector<std::string>, double>>
          cand_cost;
      for (const auto& g : groups) {
        if (static_cast<int>(g.size()) != level - 1) continue;
        for (const auto& [col, ccost] : singles) {
          if (ccost < threshold) continue;
          if (std::find(g.begin(), g.end(), col) != g.end()) continue;
          std::vector<std::string> extended = g;
          extended.push_back(col);
          std::sort(extended.begin(), extended.end());
          cand_cost.try_emplace(StrJoin(extended, ","),
                                std::make_pair(extended, 0.0));
        }
      }
      if (cand_cost.empty()) continue;
      // Count support.
      for (const auto& txn : txns) {
        if (txn.key != table_key) continue;
        for (auto& [key, entry] : cand_cost) {
          bool subset = true;
          for (const auto& col : entry.first) {
            if (std::find(txn.columns.begin(), txn.columns.end(), col) ==
                txn.columns.end()) {
              subset = false;
              break;
            }
          }
          if (subset) entry.second += txn.cost;
        }
      }
      for (const auto& [key, entry] : cand_cost) {
        if (entry.second >= threshold) {
          next[table_key].push_back(entry.first);
          emit(table_key, entry.first);
        }
      }
    }
    if (next.empty()) break;
    frequent = std::move(next);
  }
  return out;
}

}  // namespace dta::tuner
