#include "dta/enumeration.h"

#include <algorithm>
#include <atomic>
#include <map>

#include "common/strings.h"
#include "dta/greedy.h"

namespace dta::tuner {

Result<catalog::Configuration> BuildConfiguration(
    const catalog::Configuration& base,
    const std::vector<const Candidate*>& chosen, bool aligned) {
  catalog::Configuration config = base;
  // Partitionings first so indexes can take on the table scheme.
  for (const Candidate* c : chosen) {
    if (c->kind == Candidate::Kind::kTablePartitioning) {
      DTA_RETURN_IF_ERROR(c->ApplyTo(&config, aligned));
    }
  }
  for (const Candidate* c : chosen) {
    if (c->kind == Candidate::Kind::kIndex) {
      Status s = c->ApplyTo(&config, aligned);
      // Two candidates may collapse to the same aligned structure; that is
      // fine (it is already present).
      if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
    }
  }
  for (const Candidate* c : chosen) {
    if (c->kind == Candidate::Kind::kView) {
      Status s = c->ApplyTo(&config, aligned);
      if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
    }
  }
  if (aligned) {
    // Base structures on partitioned tables must be aligned as well;
    // Candidate::ApplyTo handled candidate-introduced partitionings, but a
    // base (user-specified) partitioning may require rewrites too.
    for (const auto& [table, scheme] : config.table_partitioning()) {
      if (config.IsAligned(table)) continue;
      std::vector<catalog::IndexDef> rewritten;
      for (const catalog::IndexDef* ix : config.IndexesOnTable(table)) {
        catalog::IndexDef copy = *ix;
        copy.partitioning = scheme;
        rewritten.push_back(std::move(copy));
      }
      std::vector<std::string> to_remove;
      for (const catalog::IndexDef* ix : config.IndexesOnTable(table)) {
        to_remove.push_back(ix->CanonicalName());
      }
      for (const auto& name : to_remove) config.RemoveStructure(name);
      for (auto& ix : rewritten) {
        Status s = config.AddIndex(std::move(ix));
        if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
      }
    }
  }
  return config;
}

Result<EnumerationResult> EnumerateConfiguration(
    CostService* costs, const std::vector<Candidate>& candidates,
    const catalog::Configuration& base, const TuningOptions& options,
    const std::function<bool()>& should_stop, ThreadPool* thread_pool,
    const EnumerationResume* resume,
    const std::function<void(const EnumerationResume&)>& on_progress) {
  // Eager alignment ablation (§4): pre-expand every index candidate with
  // every proposed partitioning of its table. Lazy mode introduces aligned
  // variants only as partitionings are chosen, keeping the pool small.
  std::vector<Candidate> pool = candidates;
  if (options.require_alignment && !options.lazy_alignment) {
    std::vector<Candidate> expanded;
    for (const Candidate& ix : candidates) {
      if (ix.kind != Candidate::Kind::kIndex || ix.index.clustered) continue;
      for (const Candidate& part : candidates) {
        if (part.kind != Candidate::Kind::kTablePartitioning) continue;
        if (!EqualsIgnoreCase(part.table, ix.index.table)) continue;
        catalog::IndexDef variant = ix.index;
        variant.partitioning = part.scheme;
        expanded.push_back(Candidate::MakeIndex(
            std::move(variant), costs->server()->catalog()));
      }
    }
    for (auto& c : expanded) pool.push_back(std::move(c));
  }

  auto base_cost = costs->WorkloadCost(base);
  if (!base_cost.ok()) return base_cost.status();

  const catalog::Catalog& catalog = costs->server()->catalog();
  // Summed wall time of the individual evaluations; with a worker pool this
  // exceeds the phase's elapsed time by roughly the parallel speedup. Timed
  // by the cost service's clock so an injected FakeClock zeroes it.
  const Clock* clock = costs->clock();
  std::atomic<double> eval_work_ms{0};
  auto eval = [&](const std::vector<size_t>& subset) -> Result<double> {
    const double t0 = clock->NowMs();
    std::vector<const Candidate*> chosen;
    chosen.reserve(subset.size());
    for (size_t i : subset) chosen.push_back(&pool[i]);
    auto config =
        BuildConfiguration(base, chosen, options.require_alignment);
    if (!config.ok()) return config.status();
    if (options.storage_bytes.has_value() &&
        config->EstimateBytes(catalog) > *options.storage_bytes) {
      return Status::OutOfRange("storage bound exceeded");
    }
    auto cost = costs->WorkloadCost(*config);
    eval_work_ms.fetch_add(clock->NowMs() - t0);
    return cost;
  };

  // Checkpoint snapshots name candidates rather than indexing them; the
  // pool expansion above is deterministic, so names resolve back to stable
  // indexes on resume.
  GreedyState seed;
  const GreedyState* seed_ptr = nullptr;
  if (resume != nullptr && resume->phase1_done) {
    std::map<std::string, size_t> index_by_name;
    for (size_t i = 0; i < pool.size(); ++i) {
      index_by_name.emplace(pool[i].name, i);
    }
    seed.phase1_done = true;
    seed.cost = resume->cost;
    seed.strikes = resume->strikes;
    for (const auto& name : resume->chosen) {
      auto it = index_by_name.find(name);
      if (it == index_by_name.end()) {
        return Status::FailedPrecondition(
            StrFormat("checkpoint names unknown candidate '%s'",
                      name.c_str()));
      }
      seed.chosen.push_back(it->second);
    }
    seed_ptr = &seed;
  }
  std::function<void(const GreedyState&)> progress;
  if (on_progress != nullptr) {
    progress = [&](const GreedyState& state) {
      EnumerationResume snapshot;
      snapshot.phase1_done = state.phase1_done;
      snapshot.cost = state.cost;
      snapshot.strikes = state.strikes;
      for (size_t i : state.chosen) snapshot.chosen.push_back(pool[i].name);
      on_progress(snapshot);
    };
  }

  GreedyResult greedy =
      GreedySearch(pool.size(), options.enumeration_m, options.enumeration_k,
                   *base_cost, eval, should_stop,
                   options.min_improvement_fraction, thread_pool, seed_ptr,
                   progress);

  EnumerationResult out;
  out.eval_work_ms = eval_work_ms.load();
  out.evaluations = greedy.evaluations;
  out.candidates_considered = pool.size();
  out.cost = greedy.cost;
  std::vector<const Candidate*> chosen;
  for (size_t i : greedy.chosen) {
    chosen.push_back(&pool[i]);
    out.chosen.push_back(pool[i].name);
  }
  auto config = BuildConfiguration(base, chosen, options.require_alignment);
  if (!config.ok()) return config.status();
  out.configuration = std::move(config).value();
  return out;
}

}  // namespace dta::tuner
