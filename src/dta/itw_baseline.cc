#include "dta/itw_baseline.h"

namespace dta::tuner {

TuningOptions ItwOptions() {
  TuningOptions o;
  o.tune_indexes = true;
  o.tune_materialized_views = true;
  o.tune_partitioning = false;       // ITW cannot recommend partitioning
  o.workload_compression = false;    // tunes every statement
  o.reduced_statistics = false;      // naive statistics creation
  o.column_group_cost_fraction = 0;  // no column-group restriction
  // Eager candidate generation: more structures per statement and a wider
  // per-query search.
  o.max_candidates_per_statement = 24;
  o.candidate_selection_k = 4;
  o.enumeration_m = 1;
  o.enumeration_k = 20;
  return o;
}

Result<TuningResult> TuneWithItw(server::Server* production,
                                 const workload::Workload& workload) {
  TuningSession session(production, ItwOptions());
  return session.Tune(workload);
}

}  // namespace dta::tuner
