#include "dta/greedy.h"

#include <algorithm>

namespace dta::tuner {

namespace {

// Outcome of evaluating one subset in a fanned-out batch.
struct Evaluation {
  bool ran = false;  // false when should_stop() preempted the evaluation
  bool ok = false;
  double cost = 0;
};

// Evaluates every subset of a batch, in parallel when a pool is given. The
// caller consumes the outcomes with a serial scan in batch order, which
// reproduces the single-threaded search's decisions exactly.
std::vector<Evaluation> EvaluateBatch(
    const std::vector<std::vector<size_t>>& subsets,
    const std::function<Result<double>(const std::vector<size_t>&)>& eval,
    const std::function<bool()>& should_stop, ThreadPool* pool) {
  std::vector<Evaluation> out(subsets.size());
  // `should_stop` doubles as ParallelFor's cancel predicate: workers stop
  // claiming new subsets once the deadline passes, instead of starting every
  // remaining evaluation just to bail inside it.
  ParallelFor(
      pool, subsets.size(),
      [&](size_t i) {
        if (should_stop != nullptr && should_stop()) return;
        auto c = eval(subsets[i]);
        out[i].ran = true;
        out[i].ok = c.ok();
        if (c.ok()) out[i].cost = *c;
      },
      should_stop);
  return out;
}

}  // namespace

GreedyResult GreedySearch(
    size_t candidate_count, int m, int k, double empty_cost,
    const std::function<Result<double>(const std::vector<size_t>&)>& eval,
    const std::function<bool()>& should_stop,
    double min_relative_improvement, ThreadPool* pool,
    const GreedyState* resume,
    const std::function<void(const GreedyState&)>& on_progress) {
  GreedyResult best;
  best.cost = empty_cost;

  auto stopped = [&]() { return should_stop != nullptr && should_stop(); };

  std::vector<int> strikes(candidate_count, 0);
  const bool resuming = resume != nullptr && resume->phase1_done;
  if (resuming) {
    best.chosen = resume->chosen;
    best.cost = resume->cost;
    for (size_t i = 0; i < resume->strikes.size() && i < candidate_count;
         ++i) {
      strikes[i] = resume->strikes[i];
    }
  }
  auto report_progress = [&]() {
    if (on_progress == nullptr) return;
    GreedyState state;
    state.phase1_done = true;
    state.chosen = best.chosen;
    state.cost = best.cost;
    state.strikes = strikes;
    on_progress(state);
  };

  // Phase 1: exhaustive over subsets of size <= m (m is small: 1 or 2).
  if (!resuming) {
    std::vector<std::vector<size_t>> subsets;
    if (m >= 1) {
      for (size_t i = 0; i < candidate_count; ++i) subsets.push_back({i});
    }
    if (m >= 2) {
      for (size_t i = 0; i < candidate_count; ++i) {
        for (size_t j = i + 1; j < candidate_count; ++j) {
          subsets.push_back({i, j});
        }
      }
    }
    std::vector<Evaluation> evals =
        EvaluateBatch(subsets, eval, should_stop, pool);
    for (size_t s = 0; s < subsets.size(); ++s) {
      if (!evals[s].ran) continue;
      ++best.evaluations;
      if (evals[s].ok && evals[s].cost < best.cost) {
        best.cost = evals[s].cost;
        best.chosen = subsets[s];
      }
    }
    report_progress();
  }

  // Phase 2: greedy extension up to k structures. Candidates whose marginal
  // benefit stays below the improvement threshold for two consecutive
  // rounds are dropped from further consideration — marginal benefits only
  // shrink as the configuration grows, so re-evaluating them every round
  // wastes what-if calls.
  while (static_cast<int>(best.chosen.size()) < k && !stopped()) {
    std::vector<size_t> contenders;
    std::vector<std::vector<size_t>> subsets;
    for (size_t i = 0; i < candidate_count; ++i) {
      if (strikes[i] >= 2) continue;
      if (std::find(best.chosen.begin(), best.chosen.end(), i) !=
          best.chosen.end()) {
        continue;
      }
      contenders.push_back(i);
      std::vector<size_t> subset = best.chosen;
      subset.push_back(i);
      subsets.push_back(std::move(subset));
    }
    std::vector<Evaluation> evals =
        EvaluateBatch(subsets, eval, should_stop, pool);

    double round_best_cost = best.cost;
    size_t round_best_candidate = candidate_count;
    for (size_t s = 0; s < contenders.size(); ++s) {
      const size_t i = contenders[s];
      if (!evals[s].ran) continue;
      ++best.evaluations;
      if (!evals[s].ok) {
        ++strikes[i];
        continue;
      }
      double improvement =
          (best.cost - evals[s].cost) / std::max(1e-12, best.cost);
      if (improvement < min_relative_improvement) {
        ++strikes[i];
      } else {
        strikes[i] = 0;
      }
      if (evals[s].cost < round_best_cost) {
        round_best_cost = evals[s].cost;
        round_best_candidate = i;
      }
    }
    if (round_best_candidate == candidate_count) break;  // no improvement
    double improvement = (best.cost - round_best_cost) /
                         std::max(1e-12, best.cost);
    if (improvement < min_relative_improvement) break;
    best.chosen.push_back(round_best_candidate);
    best.cost = round_best_cost;
    report_progress();
  }
  return best;
}

}  // namespace dta::tuner
