#include "dta/greedy.h"

#include <algorithm>

namespace dta::tuner {

GreedyResult GreedySearch(
    size_t candidate_count, int m, int k, double empty_cost,
    const std::function<Result<double>(const std::vector<size_t>&)>& eval,
    const std::function<bool()>& should_stop,
    double min_relative_improvement) {
  GreedyResult best;
  best.cost = empty_cost;

  auto stopped = [&]() { return should_stop != nullptr && should_stop(); };

  // Phase 1: exhaustive over subsets of size <= m (m is small: 1 or 2).
  if (m >= 1) {
    for (size_t i = 0; i < candidate_count && !stopped(); ++i) {
      std::vector<size_t> subset = {i};
      auto c = eval(subset);
      ++best.evaluations;
      if (c.ok() && *c < best.cost) {
        best.cost = *c;
        best.chosen = subset;
      }
    }
  }
  if (m >= 2) {
    for (size_t i = 0; i < candidate_count && !stopped(); ++i) {
      for (size_t j = i + 1; j < candidate_count && !stopped(); ++j) {
        std::vector<size_t> subset = {i, j};
        auto c = eval(subset);
        ++best.evaluations;
        if (c.ok() && *c < best.cost) {
          best.cost = *c;
          best.chosen = subset;
        }
      }
    }
  }

  // Phase 2: greedy extension up to k structures. Candidates whose marginal
  // benefit stays below the improvement threshold for two consecutive
  // rounds are dropped from further consideration — marginal benefits only
  // shrink as the configuration grows, so re-evaluating them every round
  // wastes what-if calls.
  std::vector<int> strikes(candidate_count, 0);
  while (static_cast<int>(best.chosen.size()) < k && !stopped()) {
    double round_best_cost = best.cost;
    size_t round_best_candidate = candidate_count;
    for (size_t i = 0; i < candidate_count; ++i) {
      if (strikes[i] >= 2) continue;
      if (std::find(best.chosen.begin(), best.chosen.end(), i) !=
          best.chosen.end()) {
        continue;
      }
      if (stopped()) break;
      std::vector<size_t> subset = best.chosen;
      subset.push_back(i);
      auto c = eval(subset);
      ++best.evaluations;
      if (!c.ok()) {
        ++strikes[i];
        continue;
      }
      double improvement =
          (best.cost - *c) / std::max(1e-12, best.cost);
      if (improvement < min_relative_improvement) {
        ++strikes[i];
      } else {
        strikes[i] = 0;
      }
      if (*c < round_best_cost) {
        round_best_cost = *c;
        round_best_candidate = i;
      }
    }
    if (round_best_candidate == candidate_count) break;  // no improvement
    double improvement = (best.cost - round_best_cost) /
                         std::max(1e-12, best.cost);
    if (improvement < min_relative_improvement) break;
    best.chosen.push_back(round_best_candidate);
    best.cost = round_best_cost;
  }
  return best;
}

}  // namespace dta::tuner
