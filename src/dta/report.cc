#include "dta/report.h"

#include "common/strings.h"

namespace dta::tuner {

std::string Report::ToText() const {
  std::string out;
  out += StrFormat("Workload cost: current=%.2f recommended=%.2f (%.1f%%)\n",
                   current_total, recommended_total, ImprovementPercent());
  if (threads > 1) {
    out += StrFormat("Parallel costing: %d threads, %.2fx speedup\n",
                     threads, parallel_speedup);
  }
  out += "Statements:\n";
  for (const auto& s : statements) {
    std::string sql = s.sql.size() > 72 ? s.sql.substr(0, 69) + "..." : s.sql;
    out += StrFormat("  [w=%.0f] %8.2f -> %8.2f  %5.1f%%  %s\n", s.weight,
                     s.current_cost, s.recommended_cost,
                     s.ImprovementPercent(), sql.c_str());
  }
  if (!structure_usage.empty()) {
    out += "Structure usage (statements):\n";
    for (const auto& [name, count] : structure_usage) {
      out += StrFormat("  %3d  %s\n", count, name.c_str());
    }
  }
  return out;
}

xml::ElementPtr Report::ToXml() const {
  auto root = std::make_unique<xml::Element>("Report");
  root->SetAttr("CurrentCost", StrFormat("%.4f", current_total));
  root->SetAttr("RecommendedCost", StrFormat("%.4f", recommended_total));
  root->SetAttr("ExpectedImprovementPercent",
                StrFormat("%.2f", ImprovementPercent()));
  if (threads > 1) {
    root->SetAttr("Threads", StrFormat("%d", threads));
    root->SetAttr("ParallelSpeedup", StrFormat("%.2f", parallel_speedup));
  }
  for (const auto& s : statements) {
    xml::Element* e = root->AddChild("Statement");
    e->SetAttr("Weight", StrFormat("%.2f", s.weight));
    e->SetAttr("CurrentCost", StrFormat("%.4f", s.current_cost));
    e->SetAttr("RecommendedCost", StrFormat("%.4f", s.recommended_cost));
    e->set_text(s.sql);
  }
  for (const auto& [name, count] : structure_usage) {
    xml::Element* e = root->AddChild("StructureUsage");
    e->SetAttr("Statements", StrFormat("%d", count));
    e->set_text(name);
  }
  return root;
}

}  // namespace dta::tuner
