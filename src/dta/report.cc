#include "dta/report.h"

#include "common/strings.h"

namespace dta::tuner {

std::string Report::ToText() const {
  std::string out;
  out += StrFormat("Workload cost: current=%.2f recommended=%.2f (%.1f%%)\n",
                   current_total, recommended_total, ImprovementPercent());
  if (threads > 1) {
    out += StrFormat("Parallel costing: %d threads, %.2fx speedup\n",
                     threads, parallel_speedup);
  }
  if (shards > 1) {
    out += StrFormat("Sharded costing: %d shards, %zu failovers\n", shards,
                     shard_failovers);
    if (shard_slow_demotions > 0) {
      out += StrFormat("  fail-slow isolation: %zu slow demotions\n",
                       shard_slow_demotions);
    }
  }
  if (whatif_retries > 0 || degraded_calls > 0) {
    out += StrFormat(
        "Fault tolerance: %zu what-if retries, %zu degraded pricings\n",
        whatif_retries, degraded_calls);
    for (size_t n = 1; n < retry_histogram.size(); ++n) {
      if (retry_histogram[n] == 0) continue;
      out += StrFormat("  %zu pricings needed %zu attempts\n",
                       retry_histogram[n], n + 1);
    }
  }
  if (whatif_calls > 0) {
    out += StrFormat(
        "What-if costing: %zu calls, %zu cache hits (%.1f%% hit rate)\n",
        whatif_calls, whatif_cache_hits,
        100.0 * static_cast<double>(whatif_cache_hits) /
            static_cast<double>(whatif_calls + whatif_cache_hits));
  }
  if (derived_answers > 0 || derivation_fallbacks > 0) {
    out += StrFormat(
        "Derived costing: %zu derived answers, %zu calls saved, "
        "%zu fallbacks\n",
        derived_answers, whatif_calls_saved, derivation_fallbacks);
  }
  if (checkpoint_writes > 0) {
    out += StrFormat("Checkpoints: %zu writes, %.2f ms total\n",
                     checkpoint_writes, checkpoint_ms);
  }
  if (!phase_times.empty()) {
    out += "Phase times:\n";
    for (const auto& [name, ms] : phase_times) {
      out += StrFormat("  %10.2f ms  %s\n", ms, name.c_str());
    }
  }
  out += "Statements:\n";
  for (const auto& s : statements) {
    std::string sql = s.sql.size() > 72 ? s.sql.substr(0, 69) + "..." : s.sql;
    out += StrFormat("  [w=%.0f] %8.2f -> %8.2f  %5.1f%%%s  %s\n", s.weight,
                     s.current_cost, s.recommended_cost,
                     s.ImprovementPercent(), s.degraded ? " (degraded)" : "",
                     sql.c_str());
  }
  if (!structure_usage.empty()) {
    out += "Structure usage (statements):\n";
    for (const auto& [name, count] : structure_usage) {
      out += StrFormat("  %3d  %s\n", count, name.c_str());
    }
  }
  return out;
}

xml::ElementPtr Report::ToXml() const {
  auto root = std::make_unique<xml::Element>("Report");
  root->SetAttr("CurrentCost", StrFormat("%.4f", current_total));
  root->SetAttr("RecommendedCost", StrFormat("%.4f", recommended_total));
  root->SetAttr("ExpectedImprovementPercent",
                StrFormat("%.2f", ImprovementPercent()));
  if (threads > 1) {
    root->SetAttr("Threads", StrFormat("%d", threads));
    root->SetAttr("ParallelSpeedup", StrFormat("%.2f", parallel_speedup));
  }
  if (shards > 1) {
    root->SetAttr("Shards", StrFormat("%d", shards));
    root->SetAttr("ShardFailovers", StrFormat("%zu", shard_failovers));
    if (shard_slow_demotions > 0) {
      root->SetAttr("ShardSlowDemotions",
                    StrFormat("%zu", shard_slow_demotions));
    }
  }
  if (whatif_retries > 0 || degraded_calls > 0) {
    root->SetAttr("WhatIfRetries", StrFormat("%zu", whatif_retries));
    root->SetAttr("DegradedCalls", StrFormat("%zu", degraded_calls));
    xml::Element* hist = root->AddChild("RetryHistogram");
    for (size_t n = 0; n < retry_histogram.size(); ++n) {
      if (retry_histogram[n] == 0) continue;
      xml::Element* b = hist->AddChild("Bucket");
      b->SetAttr("Attempts", StrFormat("%zu", n + 1));
      b->SetAttr("Pricings", StrFormat("%zu", retry_histogram[n]));
    }
  }
  if (whatif_calls > 0) {
    xml::Element* o = root->AddChild("Observability");
    o->SetAttr("WhatIfCalls", StrFormat("%zu", whatif_calls));
    o->SetAttr("WhatIfCacheHits", StrFormat("%zu", whatif_cache_hits));
    if (derived_answers > 0 || derivation_fallbacks > 0) {
      o->SetAttr("DerivedAnswers", StrFormat("%zu", derived_answers));
      o->SetAttr("DerivationFallbacks",
                 StrFormat("%zu", derivation_fallbacks));
      o->SetAttr("WhatIfCallsSaved", StrFormat("%zu", whatif_calls_saved));
    }
    if (checkpoint_writes > 0) {
      o->SetAttr("CheckpointWrites", StrFormat("%zu", checkpoint_writes));
      o->SetAttr("CheckpointMs", StrFormat("%.2f", checkpoint_ms));
    }
    for (const auto& [name, ms] : phase_times) {
      xml::Element* p = o->AddChild("Phase");
      p->SetAttr("Ms", StrFormat("%.2f", ms));
      p->set_text(name);
    }
  }
  for (const auto& s : statements) {
    xml::Element* e = root->AddChild("Statement");
    e->SetAttr("Weight", StrFormat("%.2f", s.weight));
    e->SetAttr("CurrentCost", StrFormat("%.4f", s.current_cost));
    e->SetAttr("RecommendedCost", StrFormat("%.4f", s.recommended_cost));
    if (s.degraded) e->SetAttr("Degraded", "true");
    e->set_text(s.sql);
  }
  for (const auto& [name, count] : structure_usage) {
    xml::Element* e = root->AddChild("StructureUsage");
    e->SetAttr("Statements", StrFormat("%d", count));
    e->set_text(name);
  }
  return root;
}

}  // namespace dta::tuner
