// Abstract syntax tree for the SQL subset understood by the substrate.
//
// Supported statements:
//   SELECT [DISTINCT] [TOP n] items FROM t1 [a1], t2 [a2], ...
//     [WHERE conj-of-atoms] [GROUP BY cols] [ORDER BY cols [ASC|DESC]]
//   (JOIN ... ON c1 = c2 sugar is folded into FROM + WHERE by the parser)
//   INSERT INTO t [(cols)] VALUES (...), (...)
//   UPDATE t SET c = lit, ... [WHERE conj]
//   DELETE FROM t [WHERE conj]
//
// WHERE clauses are conjunctions of atomic predicates: col op literal,
// col BETWEEN a AND b, col IN (list), col LIKE 'prefix%', col op col.
// Disjunctions/subqueries are out of scope; the workload generators express
// the paper's workloads within this subset.

#ifndef DTA_SQL_AST_H_
#define DTA_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "sql/value.h"

namespace dta::sql {

// Possibly-qualified column reference; `table` is an alias or table name and
// may be empty (resolved later against the catalog).
struct ColumnRef {
  std::string table;
  std::string column;

  bool operator==(const ColumnRef& o) const = default;
};

enum class BinaryOp { kAdd, kSub, kMul, kDiv };
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

// Scalar / aggregate expression tree.
struct Expr {
  enum class Kind {
    kConst,      // `value`
    kColumn,     // `column`
    kBinary,     // `op`, `left`, `right`
    kAggregate,  // `agg` over `left` (null left == COUNT(*)), `distinct`
  };

  Kind kind = Kind::kConst;
  Value value;
  ColumnRef column;
  BinaryOp op = BinaryOp::kAdd;
  AggFunc agg = AggFunc::kCount;
  bool distinct = false;  // COUNT(DISTINCT col)
  ExprPtr left;
  ExprPtr right;

  static ExprPtr Const(Value v) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kConst;
    e->value = std::move(v);
    return e;
  }
  static ExprPtr Column(ColumnRef c) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kColumn;
    e->column = std::move(c);
    return e;
  }
  static ExprPtr Column(std::string table, std::string column) {
    return Column(ColumnRef{std::move(table), std::move(column)});
  }
  static ExprPtr Binary(BinaryOp op, ExprPtr l, ExprPtr r) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kBinary;
    e->op = op;
    e->left = std::move(l);
    e->right = std::move(r);
    return e;
  }
  static ExprPtr Aggregate(AggFunc f, ExprPtr arg, bool distinct = false) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kAggregate;
    e->agg = f;
    e->left = std::move(arg);
    e->distinct = distinct;
    return e;
  }

  ExprPtr Clone() const;
  bool IsAggregate() const { return kind == Kind::kAggregate; }

  // Appends every column referenced in this expression (in order).
  void CollectColumns(std::vector<ColumnRef>* out) const;
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpSymbol(CompareOp op);

// Atomic WHERE predicate.
struct Predicate {
  enum class Kind {
    kCompare,        // column op value
    kBetween,        // column BETWEEN low AND high
    kIn,             // column IN (values)
    kLike,           // column LIKE pattern (prefix patterns only)
    kColumnCompare,  // column op rhs_column (equality => join predicate)
  };

  Kind kind = Kind::kCompare;
  ColumnRef column;
  CompareOp op = CompareOp::kEq;
  Value value;
  Value low, high;
  std::vector<Value> in_list;
  std::string like_pattern;
  ColumnRef rhs_column;

  static Predicate Compare(ColumnRef c, CompareOp op, Value v) {
    Predicate p;
    p.kind = Kind::kCompare;
    p.column = std::move(c);
    p.op = op;
    p.value = std::move(v);
    return p;
  }
  static Predicate Between(ColumnRef c, Value lo, Value hi) {
    Predicate p;
    p.kind = Kind::kBetween;
    p.column = std::move(c);
    p.low = std::move(lo);
    p.high = std::move(hi);
    return p;
  }
  static Predicate In(ColumnRef c, std::vector<Value> values) {
    Predicate p;
    p.kind = Kind::kIn;
    p.column = std::move(c);
    p.in_list = std::move(values);
    return p;
  }
  static Predicate Like(ColumnRef c, std::string pattern) {
    Predicate p;
    p.kind = Kind::kLike;
    p.column = std::move(c);
    p.like_pattern = std::move(pattern);
    return p;
  }
  static Predicate Join(ColumnRef a, ColumnRef b) {
    Predicate p;
    p.kind = Kind::kColumnCompare;
    p.column = std::move(a);
    p.op = CompareOp::kEq;
    p.rhs_column = std::move(b);
    return p;
  }

  // True for predicates of shape column-op-column with op '='.
  bool IsJoin() const {
    return kind == Kind::kColumnCompare && op == CompareOp::kEq;
  }
  // True for single-table predicates restricting a column to one value
  // (equality; IN handled separately).
  bool IsEquality() const {
    return kind == Kind::kCompare && op == CompareOp::kEq;
  }
  // True for range-style predicates (<,<=,>,>=, BETWEEN).
  bool IsRange() const {
    return kind == Kind::kBetween ||
           (kind == Kind::kCompare && op != CompareOp::kEq &&
            op != CompareOp::kNe);
  }
};

struct TableRef {
  std::string database;  // optional
  std::string table;
  std::string alias;  // empty => table name is the alias

  const std::string& EffectiveAlias() const {
    return alias.empty() ? table : alias;
  }
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;
};

struct OrderByItem {
  ColumnRef column;
  bool ascending = true;
};

struct SelectStatement {
  bool distinct = false;
  int64_t top = -1;  // -1 == no TOP
  bool select_star = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::vector<Predicate> where;
  std::vector<ColumnRef> group_by;
  std::vector<OrderByItem> order_by;

  bool HasAggregates() const {
    for (const auto& item : items) {
      if (item.expr != nullptr && item.expr->IsAggregate()) return true;
    }
    return false;
  }

  SelectStatement Clone() const;
};

struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;        // empty => all columns in order
  std::vector<std::vector<Value>> rows;    // literal rows
};

struct UpdateStatement {
  std::string table;
  std::vector<std::pair<std::string, Value>> assignments;
  std::vector<Predicate> where;
};

struct DeleteStatement {
  std::string table;
  std::vector<Predicate> where;
};

enum class StatementKind { kSelect, kInsert, kUpdate, kDelete };

struct Statement {
  std::variant<SelectStatement, InsertStatement, UpdateStatement,
               DeleteStatement>
      node;

  StatementKind kind() const {
    return static_cast<StatementKind>(node.index());
  }
  bool is_select() const { return kind() == StatementKind::kSelect; }
  bool is_update_kind() const { return !is_select(); }

  const SelectStatement& select() const {
    return std::get<SelectStatement>(node);
  }
  SelectStatement& select() { return std::get<SelectStatement>(node); }
  const InsertStatement& insert() const {
    return std::get<InsertStatement>(node);
  }
  const UpdateStatement& update() const {
    return std::get<UpdateStatement>(node);
  }
  const DeleteStatement& del() const { return std::get<DeleteStatement>(node); }

  Statement Clone() const;
};

}  // namespace dta::sql

#endif  // DTA_SQL_AST_H_
