// Statement signatures (templatization), per §5.1 of the paper: two
// statements have the same signature iff they are identical in all respects
// except for the constants they reference.

#ifndef DTA_SQL_SIGNATURE_H_
#define DTA_SQL_SIGNATURE_H_

#include <cstdint>
#include <string>

#include "sql/ast.h"

namespace dta::sql {

// Canonical anonymized text: literals replaced by '?', identifiers
// lower-cased. Statements with equal signature text belong to the same
// template.
std::string SignatureText(const Statement& stmt);

// 64-bit hash of SignatureText (cheap partition key).
uint64_t SignatureHash(const Statement& stmt);

}  // namespace dta::sql

#endif  // DTA_SQL_SIGNATURE_H_
