#include "sql/printer.h"

#include <sstream>

#include "common/strings.h"

namespace dta::sql {

namespace {

std::string Ident(const std::string& name, const PrintOptions& opts) {
  return opts.normalize_identifiers ? ToLower(name) : name;
}

std::string ColRef(const ColumnRef& c, const PrintOptions& opts) {
  if (c.table.empty()) return Ident(c.column, opts);
  return Ident(c.table, opts) + "." + Ident(c.column, opts);
}

std::string Lit(const Value& v, const PrintOptions& opts) {
  return opts.anonymize_literals ? "?" : v.ToSqlLiteral();
}

const char* AggName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

const char* BinOpSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
  }
  return "?";
}

void PrintExpr(const Expr& e, const PrintOptions& opts, std::string* out) {
  switch (e.kind) {
    case Expr::Kind::kConst:
      *out += Lit(e.value, opts);
      break;
    case Expr::Kind::kColumn:
      *out += ColRef(e.column, opts);
      break;
    case Expr::Kind::kBinary:
      *out += "(";
      PrintExpr(*e.left, opts, out);
      *out += " ";
      *out += BinOpSymbol(e.op);
      *out += " ";
      PrintExpr(*e.right, opts, out);
      *out += ")";
      break;
    case Expr::Kind::kAggregate:
      *out += AggName(e.agg);
      *out += "(";
      if (e.distinct) *out += "DISTINCT ";
      if (e.left == nullptr) {
        *out += "*";
      } else {
        PrintExpr(*e.left, opts, out);
      }
      *out += ")";
      break;
  }
}

void PrintWhere(const std::vector<Predicate>& where, const PrintOptions& opts,
                std::string* out) {
  if (where.empty()) return;
  *out += " WHERE ";
  for (size_t i = 0; i < where.size(); ++i) {
    if (i > 0) *out += " AND ";
    *out += PredicateToSql(where[i], opts);
  }
}

}  // namespace

std::string ExprToSql(const Expr& expr, const PrintOptions& opts) {
  std::string out;
  PrintExpr(expr, opts, &out);
  return out;
}

std::string PredicateToSql(const Predicate& p, const PrintOptions& opts) {
  std::string out = ColRef(p.column, opts);
  switch (p.kind) {
    case Predicate::Kind::kCompare:
      out += " ";
      out += CompareOpSymbol(p.op);
      out += " ";
      out += Lit(p.value, opts);
      break;
    case Predicate::Kind::kBetween:
      out += " BETWEEN " + Lit(p.low, opts) + " AND " + Lit(p.high, opts);
      break;
    case Predicate::Kind::kIn: {
      out += " IN (";
      for (size_t i = 0; i < p.in_list.size(); ++i) {
        if (i > 0) out += ", ";
        out += Lit(p.in_list[i], opts);
      }
      out += ")";
      break;
    }
    case Predicate::Kind::kLike:
      out += " LIKE ";
      out += opts.anonymize_literals
                 ? "?"
                 : Value::String(p.like_pattern).ToSqlLiteral();
      break;
    case Predicate::Kind::kColumnCompare:
      out += " ";
      out += CompareOpSymbol(p.op);
      out += " ";
      out += ColRef(p.rhs_column, opts);
      break;
  }
  return out;
}

std::string ToSql(const SelectStatement& s, const PrintOptions& opts) {
  std::string out = "SELECT ";
  if (s.distinct) out += "DISTINCT ";
  if (s.top >= 0) out += StrFormat("TOP %lld ", static_cast<long long>(s.top));
  if (s.select_star) {
    out += "*";
  } else {
    for (size_t i = 0; i < s.items.size(); ++i) {
      if (i > 0) out += ", ";
      PrintExpr(*s.items[i].expr, opts, &out);
      if (!s.items[i].alias.empty()) {
        out += " AS " + Ident(s.items[i].alias, opts);
      }
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < s.from.size(); ++i) {
    if (i > 0) out += ", ";
    const TableRef& t = s.from[i];
    if (!t.database.empty()) out += Ident(t.database, opts) + ".";
    out += Ident(t.table, opts);
    if (!t.alias.empty()) out += " " + Ident(t.alias, opts);
  }
  PrintWhere(s.where, opts, &out);
  if (!s.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < s.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += ColRef(s.group_by[i], opts);
    }
  }
  if (!s.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < s.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += ColRef(s.order_by[i].column, opts);
      if (!s.order_by[i].ascending) out += " DESC";
    }
  }
  return out;
}

std::string ToSql(const Statement& stmt, const PrintOptions& opts) {
  switch (stmt.kind()) {
    case StatementKind::kSelect:
      return ToSql(stmt.select(), opts);
    case StatementKind::kInsert: {
      const InsertStatement& ins = stmt.insert();
      std::string out = "INSERT INTO " + Ident(ins.table, opts);
      if (!ins.columns.empty()) {
        out += " (";
        for (size_t i = 0; i < ins.columns.size(); ++i) {
          if (i > 0) out += ", ";
          out += Ident(ins.columns[i], opts);
        }
        out += ")";
      }
      out += " VALUES ";
      for (size_t r = 0; r < ins.rows.size(); ++r) {
        if (r > 0) out += ", ";
        out += "(";
        for (size_t i = 0; i < ins.rows[r].size(); ++i) {
          if (i > 0) out += ", ";
          out += Lit(ins.rows[r][i], opts);
        }
        out += ")";
      }
      return out;
    }
    case StatementKind::kUpdate: {
      const UpdateStatement& upd = stmt.update();
      std::string out = "UPDATE " + Ident(upd.table, opts) + " SET ";
      for (size_t i = 0; i < upd.assignments.size(); ++i) {
        if (i > 0) out += ", ";
        out += Ident(upd.assignments[i].first, opts) + " = " +
               Lit(upd.assignments[i].second, opts);
      }
      PrintWhere(upd.where, opts, &out);
      return out;
    }
    case StatementKind::kDelete: {
      const DeleteStatement& del = stmt.del();
      std::string out = "DELETE FROM " + Ident(del.table, opts);
      PrintWhere(del.where, opts, &out);
      return out;
    }
  }
  return "";
}

}  // namespace dta::sql
