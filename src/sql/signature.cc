#include "sql/signature.h"

#include "common/hash.h"
#include "sql/printer.h"

namespace dta::sql {

std::string SignatureText(const Statement& stmt) {
  PrintOptions opts;
  opts.anonymize_literals = true;
  opts.normalize_identifiers = true;
  return ToSql(stmt, opts);
}

uint64_t SignatureHash(const Statement& stmt) {
  return HashBytes(SignatureText(stmt));
}

}  // namespace dta::sql
