#include "sql/value.h"

#include <cmath>

#include "common/hash.h"
#include "common/strings.h"

namespace dta::sql {

std::string Value::ToSqlLiteral() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return StrFormat("%lld", static_cast<long long>(AsInt()));
    case ValueType::kDouble:
      return CompactDouble(AsDoubleStrict());
    case ValueType::kString: {
      std::string out = "'";
      for (char c : AsString()) {
        if (c == '\'') out += "''";
        else out.push_back(c);
      }
      out += "'";
      return out;
    }
  }
  return "NULL";
}

std::string Value::ToDisplayString() const {
  if (type() == ValueType::kString) return AsString();
  return ToSqlLiteral();
}

int Value::Compare(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  if (a == ValueType::kNull || b == ValueType::kNull) {
    if (a == b) return 0;
    return a == ValueType::kNull ? -1 : 1;
  }
  if (is_numeric() && other.is_numeric()) {
    // Exact path when both are ints avoids double rounding for large keys.
    if (a == ValueType::kInt && b == ValueType::kInt) {
      int64_t x = AsInt(), y = other.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = ToDouble(), y = other.ToDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a == ValueType::kString && b == ValueType::kString) {
    int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Type mismatch between numeric and string: order by type tag.
  return static_cast<int>(a) < static_cast<int>(b) ? -1 : 1;
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9d3f;
    case ValueType::kInt: {
      // Hash ints as doubles when they are exactly representable so that
      // Int(5) and Double(5.0) (which compare equal) hash equal too.
      double d = static_cast<double>(AsInt());
      if (static_cast<int64_t>(d) == AsInt()) {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(d));
        return HashCombine(0x11, bits);
      }
      return HashCombine(0x11, static_cast<uint64_t>(AsInt()));
    }
    case ValueType::kDouble: {
      double d = AsDoubleStrict();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      uint64_t bits;
      __builtin_memcpy(&bits, &d, sizeof(d));
      return HashCombine(0x11, bits);
    }
    case ValueType::kString:
      return HashBytes(AsString());
  }
  return 0;
}

}  // namespace dta::sql
