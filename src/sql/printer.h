// SQL rendering for statements and expressions.

#ifndef DTA_SQL_PRINTER_H_
#define DTA_SQL_PRINTER_H_

#include <string>

#include "sql/ast.h"

namespace dta::sql {

struct PrintOptions {
  // Replace every literal with '?' (used for statement signatures, §5.1 of
  // the paper: two statements share a signature if they are identical except
  // for constants).
  bool anonymize_literals = false;
  // Lower-case identifiers so signatures are case-insensitive.
  bool normalize_identifiers = false;
};

std::string ToSql(const Statement& stmt, const PrintOptions& opts = {});
std::string ToSql(const SelectStatement& stmt, const PrintOptions& opts = {});
std::string ExprToSql(const Expr& expr, const PrintOptions& opts = {});
std::string PredicateToSql(const Predicate& pred,
                           const PrintOptions& opts = {});

}  // namespace dta::sql

#endif  // DTA_SQL_PRINTER_H_
