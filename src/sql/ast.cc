#include "sql/ast.h"

namespace dta::sql {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->value = value;
  e->column = column;
  e->op = op;
  e->agg = agg;
  e->distinct = distinct;
  if (left != nullptr) e->left = left->Clone();
  if (right != nullptr) e->right = right->Clone();
  return e;
}

void Expr::CollectColumns(std::vector<ColumnRef>* out) const {
  if (kind == Kind::kColumn) out->push_back(column);
  if (left != nullptr) left->CollectColumns(out);
  if (right != nullptr) right->CollectColumns(out);
}

SelectStatement SelectStatement::Clone() const {
  SelectStatement s;
  s.distinct = distinct;
  s.top = top;
  s.select_star = select_star;
  s.items.reserve(items.size());
  for (const auto& item : items) {
    SelectItem copy;
    copy.expr = item.expr != nullptr ? item.expr->Clone() : nullptr;
    copy.alias = item.alias;
    s.items.push_back(std::move(copy));
  }
  s.from = from;
  s.where = where;
  s.group_by = group_by;
  s.order_by = order_by;
  return s;
}

Statement Statement::Clone() const {
  Statement out;
  switch (kind()) {
    case StatementKind::kSelect:
      out.node = select().Clone();
      break;
    case StatementKind::kInsert:
      out.node = insert();
      break;
    case StatementKind::kUpdate:
      out.node = update();
      break;
    case StatementKind::kDelete:
      out.node = del();
      break;
  }
  return out;
}

}  // namespace dta::sql
