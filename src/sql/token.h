// Tokenizer for the SQL subset.

#ifndef DTA_SQL_TOKEN_H_
#define DTA_SQL_TOKEN_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dta::sql {

enum class TokenType {
  kIdentifier,  // unquoted name or [bracketed name]
  kKeyword,     // recognized SQL keyword, normalized upper-case in `text`
  kInt,         // integer literal
  kDouble,      // floating-point literal
  kString,      // 'quoted' string literal, unescaped in `text`
  kOperator,    // = < > <= >= <> != + - * / . , ( ) ;
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // normalized content (keywords upper-cased)
  size_t offset = 0;  // byte offset into the original statement

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsOp(std::string_view op) const {
    return type == TokenType::kOperator && text == op;
  }
};

// Tokenizes a statement. Keywords are matched case-insensitively against the
// fixed keyword set and normalized to upper case; identifiers preserve case
// but compare case-insensitively elsewhere.
Result<std::vector<Token>> Tokenize(std::string_view input);

// True if `word` (upper-cased) is a recognized keyword.
bool IsSqlKeyword(std::string_view upper_word);

}  // namespace dta::sql

#endif  // DTA_SQL_TOKEN_H_
