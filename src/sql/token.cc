#include "sql/token.h"

#include <array>
#include <cctype>

#include "common/strings.h"

namespace dta::sql {

namespace {

constexpr std::array kKeywords = {
    "SELECT", "FROM",   "WHERE",  "GROUP",   "BY",     "ORDER",  "HAVING",
    "AND",    "OR",     "NOT",    "AS",      "ASC",    "DESC",   "BETWEEN",
    "IN",     "LIKE",   "IS",     "NULL",    "INSERT", "INTO",   "VALUES",
    "UPDATE", "SET",    "DELETE", "DISTINCT", "TOP",   "JOIN",   "INNER",
    "ON",     "COUNT",  "SUM",    "AVG",     "MIN",    "MAX",    "DATE",
};

}  // namespace

bool IsSqlKeyword(std::string_view upper_word) {
  for (const char* kw : kKeywords) {
    if (upper_word == kw) return true;
  }
  return false;
}

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word(input.substr(start, i - start));
      std::string upper = ToUpper(word);
      if (IsSqlKeyword(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = std::move(upper);
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = std::move(word);
      }
    } else if (c == '[') {
      // [bracketed identifier]
      size_t end = input.find(']', i + 1);
      if (end == std::string_view::npos) {
        return Status::InvalidArgument(
            StrFormat("sql: unterminated [identifier at offset %zu", i));
      }
      tok.type = TokenType::kIdentifier;
      tok.text = std::string(input.substr(i + 1, end - i - 1));
      i = end + 1;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      tok.type = is_double ? TokenType::kDouble : TokenType::kInt;
      tok.text = std::string(input.substr(start, i - start));
    } else if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            i += 2;
          } else {
            closed = true;
            ++i;
            break;
          }
        } else {
          text.push_back(input[i++]);
        }
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrFormat("sql: unterminated string literal at offset %zu",
                      tok.offset));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(text);
    } else {
      // Operators and punctuation (longest match first).
      static constexpr std::array kTwoChar = {"<=", ">=", "<>", "!="};
      std::string_view two = input.substr(i, 2);
      bool matched = false;
      for (const char* op : kTwoChar) {
        if (two == op) {
          tok.type = TokenType::kOperator;
          tok.text = std::string(two);
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        static constexpr std::string_view kSingles = "=<>+-*/.,();";
        if (kSingles.find(c) == std::string_view::npos) {
          return Status::InvalidArgument(
              StrFormat("sql: unexpected character '%c' at offset %zu", c, i));
        }
        tok.type = TokenType::kOperator;
        tok.text = std::string(1, c);
        ++i;
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace dta::sql
