// Recursive-descent parser for the SQL subset (see ast.h for the grammar).

#ifndef DTA_SQL_PARSER_H_
#define DTA_SQL_PARSER_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"

namespace dta::sql {

// Parses exactly one statement (a trailing ';' is allowed).
Result<Statement> ParseStatement(std::string_view text);

// Parses a ';'-separated script into individual statements. Empty statements
// are skipped.
Result<std::vector<Statement>> ParseScript(std::string_view text);

}  // namespace dta::sql

#endif  // DTA_SQL_PARSER_H_
