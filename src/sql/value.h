// Runtime value type for the SQL subset.
//
// Dates are represented as ISO-8601 strings ('1994-01-01'); lexicographic
// comparison on that format is identical to chronological comparison, which
// keeps the value model down to {null, int, double, string}.

#ifndef DTA_SQL_VALUE_H_
#define DTA_SQL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace dta::sql {

enum class ValueType { kNull, kInt, kDouble, kString };

class Value {
 public:
  Value() : v_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }

  ValueType type() const {
    switch (v_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDoubleStrict() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  // Numeric view: ints promote to double; non-numerics return 0.
  double ToDouble() const {
    switch (type()) {
      case ValueType::kInt:
        return static_cast<double>(AsInt());
      case ValueType::kDouble:
        return AsDoubleStrict();
      default:
        return 0.0;
    }
  }

  // SQL literal rendering ('quoted' strings, bare numerics, NULL).
  std::string ToSqlLiteral() const;
  // Bare rendering (no quotes) for display.
  std::string ToDisplayString() const;

  // Three-way comparison with numeric promotion. Null sorts first.
  // Comparing a numeric with a string compares type tags only (stable but
  // arbitrary), which never happens for well-typed queries.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  // Hash consistent with operator== for well-typed comparisons.
  uint64_t Hash() const;

 private:
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  std::variant<std::monostate, int64_t, double, std::string> v_;
};

}  // namespace dta::sql

#endif  // DTA_SQL_VALUE_H_
