#include "sql/parser.h"

#include <cstdlib>

#include "common/strings.h"
#include "sql/token.h"

namespace dta::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseOne() {
    auto stmt = ParseStatementInternal();
    if (!stmt.ok()) return stmt.status();
    // Optional trailing semicolon.
    if (Cur().IsOp(";")) Advance();
    if (Cur().type != TokenType::kEnd) {
      return Err("trailing tokens after statement");
    }
    return stmt;
  }

  Result<std::vector<Statement>> ParseAll() {
    std::vector<Statement> out;
    while (true) {
      while (Cur().IsOp(";")) Advance();
      if (Cur().type == TokenType::kEnd) break;
      auto stmt = ParseStatementInternal();
      if (!stmt.ok()) return stmt.status();
      out.push_back(std::move(stmt).value());
      if (Cur().IsOp(";")) {
        Advance();
      } else if (Cur().type != TokenType::kEnd) {
        return Err("expected ';' between statements");
      }
    }
    return out;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& LookAhead(size_t k) const {
    size_t i = pos_ + k;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Err(std::string_view what) const {
    return Status::InvalidArgument(
        StrFormat("sql parse error at offset %zu (near '%s'): %.*s",
                  Cur().offset, Cur().text.c_str(),
                  static_cast<int>(what.size()), what.data()));
  }

  bool ConsumeKeyword(std::string_view kw) {
    if (Cur().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  bool ConsumeOp(std::string_view op) {
    if (Cur().IsOp(op)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!ConsumeKeyword(kw)) return Err(StrFormat("expected %.*s",
                                                  static_cast<int>(kw.size()),
                                                  kw.data()));
    return Status::Ok();
  }

  Status ExpectOp(std::string_view op) {
    if (!ConsumeOp(op)) return Err(StrFormat("expected '%.*s'",
                                             static_cast<int>(op.size()),
                                             op.data()));
    return Status::Ok();
  }

  Result<std::string> ExpectIdentifier() {
    if (Cur().type != TokenType::kIdentifier) return Err("expected identifier");
    std::string name = Cur().text;
    Advance();
    return name;
  }

  Result<Statement> ParseStatementInternal() {
    if (Cur().IsKeyword("SELECT")) {
      auto s = ParseSelect();
      if (!s.ok()) return s.status();
      Statement stmt;
      stmt.node = std::move(s).value();
      return stmt;
    }
    if (Cur().IsKeyword("INSERT")) return ParseInsert();
    if (Cur().IsKeyword("UPDATE")) return ParseUpdate();
    if (Cur().IsKeyword("DELETE")) return ParseDelete();
    return Err("expected SELECT, INSERT, UPDATE or DELETE");
  }

  // ---------------------------------------------------------------- SELECT

  Result<SelectStatement> ParseSelect() {
    DTA_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectStatement sel;
    if (ConsumeKeyword("DISTINCT")) sel.distinct = true;
    if (ConsumeKeyword("TOP")) {
      if (Cur().type != TokenType::kInt) return Err("expected TOP count");
      sel.top = std::strtoll(Cur().text.c_str(), nullptr, 10);
      Advance();
    }
    // Select list.
    if (ConsumeOp("*")) {
      sel.select_star = true;
    } else {
      while (true) {
        SelectItem item;
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        item.expr = std::move(e).value();
        if (ConsumeKeyword("AS")) {
          auto alias = ExpectIdentifier();
          if (!alias.ok()) return alias.status();
          item.alias = std::move(alias).value();
        } else if (Cur().type == TokenType::kIdentifier) {
          item.alias = Cur().text;
          Advance();
        }
        sel.items.push_back(std::move(item));
        if (!ConsumeOp(",")) break;
      }
    }
    DTA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    // FROM list with optional JOIN ... ON sugar.
    {
      auto tr = ParseTableRef();
      if (!tr.ok()) return tr.status();
      sel.from.push_back(std::move(tr).value());
    }
    while (true) {
      if (ConsumeOp(",")) {
        auto tr = ParseTableRef();
        if (!tr.ok()) return tr.status();
        sel.from.push_back(std::move(tr).value());
        continue;
      }
      if (Cur().IsKeyword("JOIN") || Cur().IsKeyword("INNER")) {
        ConsumeKeyword("INNER");
        DTA_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        auto tr2 = ParseTableRef();
        if (!tr2.ok()) return tr2.status();
        sel.from.push_back(std::move(tr2).value());
        DTA_RETURN_IF_ERROR(ExpectKeyword("ON"));
        auto pred = ParsePredicate();
        if (!pred.ok()) return pred.status();
        sel.where.push_back(std::move(pred).value());
        // Allow chained ANDed ON conditions.
        while (ConsumeKeyword("AND")) {
          // Heuristic: conditions after ON's AND still belong to WHERE
          // semantics in our conjunctive model.
          auto more = ParsePredicate();
          if (!more.ok()) return more.status();
          sel.where.push_back(std::move(more).value());
        }
        continue;
      }
      break;
    }
    if (ConsumeKeyword("WHERE")) {
      DTA_RETURN_IF_ERROR(ParseConjunction(&sel.where));
    }
    if (ConsumeKeyword("GROUP")) {
      DTA_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        auto c = ParseColumnRef();
        if (!c.ok()) return c.status();
        sel.group_by.push_back(std::move(c).value());
        if (!ConsumeOp(",")) break;
      }
    }
    if (ConsumeKeyword("ORDER")) {
      DTA_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        OrderByItem item;
        auto c = ParseColumnRef();
        if (!c.ok()) return c.status();
        item.column = std::move(c).value();
        if (ConsumeKeyword("DESC")) {
          item.ascending = false;
        } else {
          ConsumeKeyword("ASC");
        }
        sel.order_by.push_back(std::move(item));
        if (!ConsumeOp(",")) break;
      }
    }
    return sel;
  }

  Result<TableRef> ParseTableRef() {
    auto name = ExpectIdentifier();
    if (!name.ok()) return name.status();
    TableRef tr;
    tr.table = std::move(name).value();
    if (ConsumeOp(".")) {
      // db.table form.
      auto tbl = ExpectIdentifier();
      if (!tbl.ok()) return tbl.status();
      tr.database = std::move(tr.table);
      tr.table = std::move(tbl).value();
    }
    if (ConsumeKeyword("AS")) {
      auto alias = ExpectIdentifier();
      if (!alias.ok()) return alias.status();
      tr.alias = std::move(alias).value();
    } else if (Cur().type == TokenType::kIdentifier) {
      tr.alias = Cur().text;
      Advance();
    }
    return tr;
  }

  Result<ColumnRef> ParseColumnRef() {
    auto first = ExpectIdentifier();
    if (!first.ok()) return first.status();
    ColumnRef ref;
    ref.column = std::move(first).value();
    if (ConsumeOp(".")) {
      auto second = ExpectIdentifier();
      if (!second.ok()) return second.status();
      ref.table = std::move(ref.column);
      ref.column = std::move(second).value();
    }
    return ref;
  }

  // ------------------------------------------------------------ predicates

  Status ParseConjunction(std::vector<Predicate>* out) {
    while (true) {
      auto pred = ParsePredicate();
      if (!pred.ok()) return pred.status();
      out->push_back(std::move(pred).value());
      if (!ConsumeKeyword("AND")) break;
    }
    return Status::Ok();
  }

  Result<Predicate> ParsePredicate() {
    auto col = ParseColumnRef();
    if (!col.ok()) return col.status();
    ColumnRef lhs = std::move(col).value();
    if (ConsumeKeyword("BETWEEN")) {
      auto lo = ParseLiteral();
      if (!lo.ok()) return lo.status();
      DTA_RETURN_IF_ERROR(ExpectKeyword("AND"));
      auto hi = ParseLiteral();
      if (!hi.ok()) return hi.status();
      return Predicate::Between(std::move(lhs), std::move(lo).value(),
                                std::move(hi).value());
    }
    if (ConsumeKeyword("IN")) {
      DTA_RETURN_IF_ERROR(ExpectOp("("));
      std::vector<Value> values;
      while (true) {
        auto v = ParseLiteral();
        if (!v.ok()) return v.status();
        values.push_back(std::move(v).value());
        if (!ConsumeOp(",")) break;
      }
      DTA_RETURN_IF_ERROR(ExpectOp(")"));
      return Predicate::In(std::move(lhs), std::move(values));
    }
    if (ConsumeKeyword("LIKE")) {
      if (Cur().type != TokenType::kString) {
        return Err("expected string pattern after LIKE");
      }
      std::string pattern = Cur().text;
      Advance();
      return Predicate::Like(std::move(lhs), std::move(pattern));
    }
    CompareOp op;
    if (ConsumeOp("=")) {
      op = CompareOp::kEq;
    } else if (ConsumeOp("<>") || ConsumeOp("!=")) {
      op = CompareOp::kNe;
    } else if (ConsumeOp("<=")) {
      op = CompareOp::kLe;
    } else if (ConsumeOp(">=")) {
      op = CompareOp::kGe;
    } else if (ConsumeOp("<")) {
      op = CompareOp::kLt;
    } else if (ConsumeOp(">")) {
      op = CompareOp::kGt;
    } else {
      return Err("expected comparison operator");
    }
    // RHS: literal or column.
    if (Cur().type == TokenType::kIdentifier) {
      auto rhs = ParseColumnRef();
      if (!rhs.ok()) return rhs.status();
      Predicate p;
      p.kind = Predicate::Kind::kColumnCompare;
      p.column = std::move(lhs);
      p.op = op;
      p.rhs_column = std::move(rhs).value();
      return p;
    }
    auto v = ParseLiteral();
    if (!v.ok()) return v.status();
    return Predicate::Compare(std::move(lhs), op, std::move(v).value());
  }

  Result<Value> ParseLiteral() {
    if (ConsumeKeyword("DATE")) {
      if (Cur().type != TokenType::kString) {
        return Err("expected string after DATE");
      }
      Value v = Value::String(Cur().text);
      Advance();
      return v;
    }
    if (ConsumeKeyword("NULL")) return Value::Null();
    bool negative = false;
    if (Cur().IsOp("-")) {
      negative = true;
      Advance();
    }
    if (Cur().type == TokenType::kInt) {
      int64_t v = std::strtoll(Cur().text.c_str(), nullptr, 10);
      Advance();
      return Value::Int(negative ? -v : v);
    }
    if (Cur().type == TokenType::kDouble) {
      double v = std::strtod(Cur().text.c_str(), nullptr);
      Advance();
      return Value::Double(negative ? -v : v);
    }
    if (negative) return Err("expected number after '-'");
    if (Cur().type == TokenType::kString) {
      Value v = Value::String(Cur().text);
      Advance();
      return v;
    }
    return Err("expected literal");
  }

  // ----------------------------------------------------------- expressions

  Result<ExprPtr> ParseExpr() { return ParseAdditive(); }

  Result<ExprPtr> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs.status();
    ExprPtr e = std::move(lhs).value();
    while (true) {
      BinaryOp op;
      if (Cur().IsOp("+")) {
        op = BinaryOp::kAdd;
      } else if (Cur().IsOp("-")) {
        op = BinaryOp::kSub;
      } else {
        break;
      }
      Advance();
      auto rhs = ParseMultiplicative();
      if (!rhs.ok()) return rhs.status();
      e = Expr::Binary(op, std::move(e), std::move(rhs).value());
    }
    return e;
  }

  Result<ExprPtr> ParseMultiplicative() {
    auto lhs = ParsePrimary();
    if (!lhs.ok()) return lhs.status();
    ExprPtr e = std::move(lhs).value();
    while (true) {
      BinaryOp op;
      if (Cur().IsOp("*")) {
        op = BinaryOp::kMul;
      } else if (Cur().IsOp("/")) {
        op = BinaryOp::kDiv;
      } else {
        break;
      }
      Advance();
      auto rhs = ParsePrimary();
      if (!rhs.ok()) return rhs.status();
      e = Expr::Binary(op, std::move(e), std::move(rhs).value());
    }
    return e;
  }

  Result<ExprPtr> ParsePrimary() {
    if (ConsumeOp("(")) {
      auto inner = ParseExpr();
      if (!inner.ok()) return inner.status();
      DTA_RETURN_IF_ERROR(ExpectOp(")"));
      return inner;
    }
    // Aggregates.
    static constexpr std::pair<const char*, AggFunc> kAggs[] = {
        {"COUNT", AggFunc::kCount}, {"SUM", AggFunc::kSum},
        {"AVG", AggFunc::kAvg},     {"MIN", AggFunc::kMin},
        {"MAX", AggFunc::kMax},
    };
    for (const auto& [kw, fn] : kAggs) {
      if (Cur().IsKeyword(kw)) {
        Advance();
        DTA_RETURN_IF_ERROR(ExpectOp("("));
        bool distinct = ConsumeKeyword("DISTINCT");
        ExprPtr arg;
        if (ConsumeOp("*")) {
          if (fn != AggFunc::kCount) return Err("'*' only valid in COUNT");
          arg = nullptr;
        } else {
          auto e = ParseExpr();
          if (!e.ok()) return e.status();
          arg = std::move(e).value();
        }
        DTA_RETURN_IF_ERROR(ExpectOp(")"));
        return Expr::Aggregate(fn, std::move(arg), distinct);
      }
    }
    if (Cur().type == TokenType::kIdentifier) {
      auto c = ParseColumnRef();
      if (!c.ok()) return c.status();
      return Expr::Column(std::move(c).value());
    }
    auto lit = ParseLiteral();
    if (!lit.ok()) return lit.status();
    return Expr::Const(std::move(lit).value());
  }

  // ------------------------------------------------------------------ DML

  Result<Statement> ParseInsert() {
    DTA_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    DTA_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStatement ins;
    auto tbl = ExpectIdentifier();
    if (!tbl.ok()) return tbl.status();
    ins.table = std::move(tbl).value();
    if (ConsumeOp("(")) {
      while (true) {
        auto col = ExpectIdentifier();
        if (!col.ok()) return col.status();
        ins.columns.push_back(std::move(col).value());
        if (!ConsumeOp(",")) break;
      }
      DTA_RETURN_IF_ERROR(ExpectOp(")"));
    }
    DTA_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      DTA_RETURN_IF_ERROR(ExpectOp("("));
      std::vector<Value> row;
      while (true) {
        auto v = ParseLiteral();
        if (!v.ok()) return v.status();
        row.push_back(std::move(v).value());
        if (!ConsumeOp(",")) break;
      }
      DTA_RETURN_IF_ERROR(ExpectOp(")"));
      ins.rows.push_back(std::move(row));
      if (!ConsumeOp(",")) break;
    }
    Statement stmt;
    stmt.node = std::move(ins);
    return stmt;
  }

  Result<Statement> ParseUpdate() {
    DTA_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    UpdateStatement upd;
    auto tbl = ExpectIdentifier();
    if (!tbl.ok()) return tbl.status();
    upd.table = std::move(tbl).value();
    DTA_RETURN_IF_ERROR(ExpectKeyword("SET"));
    while (true) {
      auto col = ExpectIdentifier();
      if (!col.ok()) return col.status();
      DTA_RETURN_IF_ERROR(ExpectOp("="));
      auto v = ParseLiteral();
      if (!v.ok()) return v.status();
      upd.assignments.emplace_back(std::move(col).value(),
                                   std::move(v).value());
      if (!ConsumeOp(",")) break;
    }
    if (ConsumeKeyword("WHERE")) {
      DTA_RETURN_IF_ERROR(ParseConjunction(&upd.where));
    }
    Statement stmt;
    stmt.node = std::move(upd);
    return stmt;
  }

  Result<Statement> ParseDelete() {
    DTA_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    DTA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStatement del;
    auto tbl = ExpectIdentifier();
    if (!tbl.ok()) return tbl.status();
    del.table = std::move(tbl).value();
    if (ConsumeKeyword("WHERE")) {
      DTA_RETURN_IF_ERROR(ParseConjunction(&del.where));
    }
    Statement stmt;
    stmt.node = std::move(del);
    return stmt;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseOne();
}

Result<std::vector<Statement>> ParseScript(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseAll();
}

}  // namespace dta::sql
