#include "workloads/customer.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "sql/parser.h"
#include "storage/datagen.h"

namespace dta::workloads {

using catalog::ColumnType;
using storage::ColumnSpec;

CustomerProfile Cust1() {
  CustomerProfile p;
  p.name = "cust1";
  p.databases = 1;
  p.tables = 40;
  p.total_gb = 9;
  p.events = 15000;
  p.templates = 60;
  p.update_fraction = 0.10;
  p.hand_tuned = CustomerProfile::HandTunedStyle::kReasonable;
  p.seed = 101;
  return p;
}

CustomerProfile Cust2() {
  CustomerProfile p;
  p.name = "cust2";
  p.databases = 2;
  p.tables = 120;
  p.total_gb = 30;
  p.events = 252000;
  p.templates = 80;
  p.update_fraction = 0.05;
  p.hand_tuned = CustomerProfile::HandTunedStyle::kSparse;
  p.seed = 202;
  return p;
}

CustomerProfile Cust3() {
  CustomerProfile p;
  p.name = "cust3";
  p.databases = 1;
  p.tables = 60;
  p.total_gb = 120;
  p.events = 176000;
  p.templates = 45;
  p.update_fraction = 0.55;
  p.hand_tuned = CustomerProfile::HandTunedStyle::kOverIndexed;
  p.oltp_reads = true;
  p.seed = 303;
  return p;
}

CustomerProfile Cust4() {
  CustomerProfile p;
  p.name = "cust4";
  p.databases = 1;
  p.tables = 15;
  p.total_gb = 0.6;
  p.events = 9000;
  p.templates = 25;
  p.update_fraction = 0.15;
  p.hand_tuned = CustomerProfile::HandTunedStyle::kPkOnly;
  p.seed = 404;
  return p;
}

namespace {

// Every customer table has the same generic shape; what varies is scale and
// value distributions.
//   id   : dense primary key
//   fk   : skewed foreign-key-like column
//   cat  : low-cardinality category
//   dt   : date
//   val  : measure
//   txt  : wide-ish text attribute
struct TablePlan {
  std::string database;
  std::string table;
  uint64_t rows;
};

std::vector<TablePlan> PlanTables(const CustomerProfile& p) {
  std::vector<TablePlan> out;
  const double row_bytes = 66.0;  // schema width incl. header
  double total_rows = p.total_gb * 1e9 / row_bytes;
  // Zipf-ish size distribution: table k gets weight 1/(k+1).
  double weight_sum = 0;
  for (int k = 0; k < p.tables; ++k) weight_sum += 1.0 / (k + 1);
  for (int k = 0; k < p.tables; ++k) {
    TablePlan plan;
    int db_index = k % p.databases;
    plan.database = p.databases > 1
                        ? StrFormat("%sdb%d", p.name.c_str(), db_index)
                        : p.name;
    plan.table = StrFormat("tab%03d", k);
    plan.rows = std::max<uint64_t>(
        1000, static_cast<uint64_t>(total_rows * (1.0 / (k + 1)) /
                                    weight_sum));
    out.push_back(std::move(plan));
  }
  return out;
}

std::vector<ColumnSpec> TableSpecs(uint64_t rows, uint64_t seed_mix) {
  int64_t fk_domain =
      std::max<int64_t>(10, static_cast<int64_t>(rows / 20));
  return {ColumnSpec::Sequential(),
          ColumnSpec::ZipfInt(1, fk_domain, 0.6 + (seed_mix % 5) * 0.1),
          ColumnSpec::UniformInt(1, 20 + static_cast<int64_t>(seed_mix % 80)),
          ColumnSpec::Date("2000-01-01", 1500),
          ColumnSpec::UniformReal(0, 100000),
          ColumnSpec::StringPool("tx", 1000)};
}

}  // namespace

Status AttachCustomer(server::Server* server,
                      const CustomerProfile& profile) {
  std::vector<TablePlan> plans = PlanTables(profile);
  // Group by database.
  std::map<std::string, std::vector<const TablePlan*>> by_db;
  for (const auto& plan : plans) by_db[plan.database].push_back(&plan);

  for (const auto& [db_name, tables] : by_db) {
    catalog::Database db(db_name);
    for (const TablePlan* plan : tables) {
      catalog::TableSchema t(plan->table,
                             {{"id", ColumnType::kInt, 8},
                              {"fk", ColumnType::kInt, 8},
                              {"cat", ColumnType::kInt, 8},
                              {"dt", ColumnType::kString, 10},
                              {"val", ColumnType::kDouble, 8},
                              {"txt", ColumnType::kString, 15}});
      t.set_row_count(plan->rows);
      t.SetPrimaryKey({"id"});
      DTA_RETURN_IF_ERROR(db.AddTable(std::move(t)));
    }
    DTA_RETURN_IF_ERROR(server->AttachDatabase(std::move(db)));
  }
  uint64_t mix = profile.seed;
  for (const auto& plan : plans) {
    DTA_RETURN_IF_ERROR(server->RegisterColumnSpecs(
        plan.database, plan.table, TableSpecs(plan.rows, mix++)));
  }
  return server->ImplementConfiguration(
      CustomerRawConfiguration(profile, *server));
}

catalog::Configuration CustomerRawConfiguration(
    const CustomerProfile& profile, const server::Server& server) {
  (void)server;
  catalog::Configuration raw;
  for (const auto& plan : PlanTables(profile)) {
    catalog::IndexDef pk;
    pk.database = plan.database;
    pk.table = plan.table;
    pk.key_columns = {"id"};
    pk.constraint_enforcing = true;
    Status s = raw.AddIndex(std::move(pk));
    (void)s;
  }
  return raw;
}

workload::Workload CustomerWorkload(const CustomerProfile& profile,
                                    const server::Server& server,
                                    size_t max_events) {
  (void)server;
  Random rng(profile.seed * 7919 + 13);
  std::vector<TablePlan> plans = PlanTables(profile);
  size_t events = max_events > 0 ? max_events : profile.events;

  // A template fixes a statement kind and its target table(s); instances
  // vary constants. Hot templates target the big (low-index) tables.
  struct Template {
    int kind;  // 0 point, 1 fk lookup, 2 range-agg, 3 group-by, 4 join,
               // 5 update, 6 insert, 7 delete
    size_t table_a;
    size_t table_b;
  };
  std::vector<Template> templates;
  size_t update_templates = static_cast<size_t>(
      std::max(1.0, profile.update_fraction * profile.templates));
  for (size_t t = 0; t < profile.templates; ++t) {
    Template tpl;
    bool is_update = t < update_templates;
    if (is_update) {
      tpl.kind = 5 + static_cast<int>(rng.Uniform(0, 2));
    } else if (profile.oltp_reads) {
      tpl.kind = 0;  // primary-key point lookups only
    } else {
      tpl.kind = static_cast<int>(rng.Uniform(0, 4));
    }
    // Bias toward big tables (they dominate cost).
    tpl.table_a = static_cast<size_t>(rng.Zipf(plans.size(), 0.9)) - 1;
    tpl.table_b = static_cast<size_t>(rng.Zipf(plans.size(), 0.9)) - 1;
    if (tpl.table_b == tpl.table_a) {
      tpl.table_b = (tpl.table_a + 1) % plans.size();
    }
    templates.push_back(tpl);
  }

  workload::Workload w;
  for (size_t i = 0; i < events; ++i) {
    const Template& tpl = templates[i % templates.size()];
    const TablePlan& ta = plans[tpl.table_a];
    const TablePlan& tb = plans[tpl.table_b];
    int64_t fk_domain =
        std::max<int64_t>(10, static_cast<int64_t>(ta.rows / 20));
    std::string text;
    switch (tpl.kind) {
      case 0:
        text = StrFormat("SELECT val, txt FROM %s.%s WHERE id = %lld",
                         ta.database.c_str(), ta.table.c_str(),
                         static_cast<long long>(rng.Uniform(1, ta.rows)));
        break;
      case 1:
        text = StrFormat("SELECT id, val FROM %s.%s WHERE fk = %lld",
                         ta.database.c_str(), ta.table.c_str(),
                         static_cast<long long>(rng.Zipf(fk_domain, 0.8)));
        break;
      case 2: {
        std::string lo = storage::DateString(
            "2000-01-01", static_cast<int>(rng.Uniform(0, 1300)));
        text = StrFormat(
            "SELECT SUM(val), COUNT(*) FROM %s.%s WHERE dt BETWEEN '%s' "
            "AND '%s'",
            ta.database.c_str(), ta.table.c_str(), lo.c_str(),
            storage::DateString(lo, 60).c_str());
        break;
      }
      case 3:
        text = StrFormat(
            "SELECT cat, COUNT(*), SUM(val) FROM %s.%s WHERE dt >= '%s' "
            "GROUP BY cat",
            ta.database.c_str(), ta.table.c_str(),
            storage::DateString("2000-01-01",
                                static_cast<int>(rng.Uniform(0, 1300)))
                .c_str());
        break;
      case 4: {
        // Joins stay within one database; when the paired table landed in
        // another database, fall back to a same-database sibling.
        const TablePlan* join_b = &tb;
        if (tb.database != ta.database) {
          for (const auto& candidate : plans) {
            if (candidate.database == ta.database &&
                candidate.table != ta.table) {
              join_b = &candidate;
              break;
            }
          }
        }
        text = StrFormat(
            "SELECT a.val FROM %s.%s a, %s.%s b WHERE a.fk = b.id AND "
            "b.cat = %lld",
            ta.database.c_str(), ta.table.c_str(), join_b->database.c_str(),
            join_b->table.c_str(),
            static_cast<long long>(rng.Uniform(1, 20)));
        break;
      }
      case 5:
        text = StrFormat("UPDATE %s SET val = %lld WHERE id = %lld",
                         ta.table.c_str(),
                         static_cast<long long>(rng.Uniform(1, 100000)),
                         static_cast<long long>(rng.Uniform(1, ta.rows)));
        break;
      case 6:
        text = StrFormat(
            "INSERT INTO %s VALUES (%lld, %lld, %lld, '%s', %lld, 'tx%06d')",
            ta.table.c_str(), static_cast<long long>(ta.rows + i),
            static_cast<long long>(rng.Zipf(fk_domain, 0.8)),
            static_cast<long long>(rng.Uniform(1, 20)),
            storage::DateString("2004-01-01",
                                static_cast<int>(rng.Uniform(0, 100)))
                .c_str(),
            static_cast<long long>(rng.Uniform(1, 100000)),
            static_cast<int>(rng.Uniform(0, 999)));
        break;
      default:
        text = StrFormat("DELETE FROM %s WHERE id = %lld", ta.table.c_str(),
                         static_cast<long long>(rng.Uniform(1, ta.rows)));
        break;
    }
    auto stmt = sql::ParseStatement(text);
    if (stmt.ok()) w.Add(std::move(stmt).value());
  }
  return w;
}

catalog::Configuration HandTunedConfiguration(const CustomerProfile& profile,
                                              const server::Server& server) {
  catalog::Configuration config =
      CustomerRawConfiguration(profile, server);
  std::vector<TablePlan> plans = PlanTables(profile);
  auto add = [&config](catalog::IndexDef ix) {
    Status s = config.AddIndex(std::move(ix));
    (void)s;
  };
  switch (profile.hand_tuned) {
    case CustomerProfile::HandTunedStyle::kReasonable:
      // Competent DBA: fk and date indexes on the big (hot) tables, a few
      // covering ones.
      for (size_t k = 0; k < plans.size() && k < 12; ++k) {
        add({.database = plans[k].database,
             .table = plans[k].table,
             .key_columns = {"fk"},
             .included_columns = {"val"}});
        add({.database = plans[k].database,
             .table = plans[k].table,
             .key_columns = {"dt"},
             .included_columns = {"val", "cat"}});
      }
      break;
    case CustomerProfile::HandTunedStyle::kSparse:
      // Only a couple of narrow indexes; most of the workload unserved.
      for (size_t k = 2; k < plans.size() && k < 5; ++k) {
        add({.database = plans[k].database,
             .table = plans[k].table,
             .key_columns = {"fk"}});
      }
      break;
    case CustomerProfile::HandTunedStyle::kOverIndexed:
      // Wide indexes on rarely-queried columns of the update-hot tables:
      // all maintenance cost, no read benefit.
      for (size_t k = 0; k < plans.size() && k < 6; ++k) {
        add({.database = plans[k].database,
             .table = plans[k].table,
             .key_columns = {"txt", "cat"},
             .included_columns = {"val", "dt"}});
      }
      break;
    case CustomerProfile::HandTunedStyle::kPkOnly:
      break;
  }
  return config;
}

}  // namespace dta::workloads
