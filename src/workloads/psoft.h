// PSOFT: a PeopleSoft-style customer database and workload (paper §7.4):
// an ERP-ish schema (~0.75 GB logical) and a heavily templatized workload
// of ~6000 statements — queries, inserts, updates and deletes issued
// through stored-procedure-style templates with skewed constants.

#ifndef DTA_WORKLOADS_PSOFT_H_
#define DTA_WORKLOADS_PSOFT_H_

#include "common/status.h"
#include "server/server.h"
#include "workload/workload.h"

namespace dta::workloads {

// Attaches the "psoft" database (metadata + generator specs).
Status AttachPsoft(server::Server* server, uint64_t seed);

// Generates the `n_statements` workload (default profile ~6000).
workload::Workload PsoftWorkload(size_t n_statements, uint64_t seed);

}  // namespace dta::workloads

#endif  // DTA_WORKLOADS_PSOFT_H_
