// SYNT1: a synthetic database conforming to the Set Query benchmark schema
// (paper §7.4) — one wide BENCH table whose kN columns have exactly N
// distinct values — plus a workload of SPJ queries with grouping and
// aggregation drawn from a configurable number of distinct templates
// (default ~100), each instantiated with random constants.

#ifndef DTA_WORKLOADS_SYNT1_H_
#define DTA_WORKLOADS_SYNT1_H_

#include "common/status.h"
#include "server/server.h"
#include "workload/workload.h"

namespace dta::workloads {

// Attaches the "synt1" database: the BENCH table (`rows` rows) and a small
// DIM dimension table for join templates. Metadata + generator specs only
// (statistics work; execution is not needed for the compression and ITW
// experiments).
Status AttachSynt1(server::Server* server, uint64_t rows, uint64_t seed);

// Generates `n_queries` statements from `n_templates` distinct templates.
workload::Workload Synt1Workload(size_t n_queries, size_t n_templates,
                                 uint64_t seed);

}  // namespace dta::workloads

#endif  // DTA_WORKLOADS_SYNT1_H_
