#include "workloads/synt1.h"

#include <array>

#include "common/strings.h"
#include "sql/parser.h"
#include "storage/datagen.h"

namespace dta::workloads {

using catalog::ColumnType;
using storage::ColumnSpec;

namespace {

// Set Query k-columns: name and distinct-value count.
struct KCol {
  const char* name;
  int64_t distinct;
};
constexpr std::array<KCol, 10> kColumns = {{
    {"k2", 2},
    {"k4", 4},
    {"k5", 5},
    {"k10", 10},
    {"k25", 25},
    {"k100", 100},
    {"k1k", 1000},
    {"k10k", 10000},
    {"k40k", 40000},
    {"k100k", 100000},
}};

}  // namespace

Status AttachSynt1(server::Server* server, uint64_t rows, uint64_t seed) {
  (void)seed;
  std::vector<catalog::Column> cols = {{"kseq", ColumnType::kInt, 8}};
  std::vector<ColumnSpec> specs = {ColumnSpec::Sequential()};
  for (const KCol& k : kColumns) {
    cols.push_back({k.name, ColumnType::kInt, 8});
    specs.push_back(ColumnSpec::UniformInt(1, k.distinct));
  }
  cols.push_back({"v1", ColumnType::kDouble, 8});
  cols.push_back({"v2", ColumnType::kDouble, 8});
  specs.push_back(ColumnSpec::UniformReal(0, 1000));
  specs.push_back(ColumnSpec::UniformReal(0, 1));

  catalog::TableSchema bench("bench", cols);
  bench.set_row_count(rows);
  bench.SetPrimaryKey({"kseq"});

  catalog::TableSchema dim("dim", {{"d_key", ColumnType::kInt, 8},
                                   {"d_group", ColumnType::kInt, 8},
                                   {"d_label", ColumnType::kString, 12}});
  dim.set_row_count(1000);
  dim.SetPrimaryKey({"d_key"});

  catalog::Database db("synt1");
  DTA_RETURN_IF_ERROR(db.AddTable(bench));
  DTA_RETURN_IF_ERROR(db.AddTable(dim));
  DTA_RETURN_IF_ERROR(server->AttachDatabase(std::move(db)));
  DTA_RETURN_IF_ERROR(server->RegisterColumnSpecs("synt1", "bench", specs));
  DTA_RETURN_IF_ERROR(server->RegisterColumnSpecs(
      "synt1", "dim",
      {ColumnSpec::Sequential(), ColumnSpec::UniformInt(1, 50),
       ColumnSpec::StringPool("lbl", 200)}));

  catalog::Configuration raw;
  catalog::IndexDef pk;
  pk.database = "synt1";
  pk.table = "bench";
  pk.key_columns = {"kseq"};
  pk.constraint_enforcing = true;
  DTA_RETURN_IF_ERROR(raw.AddIndex(std::move(pk)));
  return server->ImplementConfiguration(std::move(raw));
}

workload::Workload Synt1Workload(size_t n_queries, size_t n_templates,
                                 uint64_t seed) {
  Random rng(seed);
  // A template fixes: selection columns (1-2), grouping column, aggregated
  // column/function, and whether the dim table is joined. Instances vary
  // the constants.
  struct Template {
    int sel_a, sel_b;  // indexes into kColumns; sel_b may be -1
    int group_col;     // index into kColumns
    int agg_func;      // 0=COUNT(*), 1=SUM(v1), 2=AVG(v1), 3=MAX(v2)
    bool range_pred;   // range vs equality on sel_a
    bool join_dim;     // join via k1k = d_key
  };
  std::vector<Template> templates;
  templates.reserve(n_templates);
  for (size_t t = 0; t < n_templates; ++t) {
    Template tpl;
    tpl.sel_a = static_cast<int>(rng.Uniform(0, kColumns.size() - 1));
    tpl.sel_b = rng.Bernoulli(0.5)
                    ? static_cast<int>(rng.Uniform(0, kColumns.size() - 1))
                    : -1;
    if (tpl.sel_b == tpl.sel_a) tpl.sel_b = -1;
    tpl.group_col = static_cast<int>(rng.Uniform(0, 5));  // low-card groups
    tpl.agg_func = static_cast<int>(rng.Uniform(0, 3));
    tpl.range_pred = rng.Bernoulli(0.5);
    tpl.join_dim = rng.Bernoulli(0.15);
    templates.push_back(tpl);
  }

  auto agg_text = [](int f) {
    switch (f) {
      case 0:
        return "COUNT(*)";
      case 1:
        return "SUM(v1)";
      case 2:
        return "AVG(v1)";
      default:
        return "MAX(v2)";
    }
  };

  workload::Workload w;
  for (size_t i = 0; i < n_queries; ++i) {
    const Template& tpl = templates[i % templates.size()];
    const KCol& a = kColumns[static_cast<size_t>(tpl.sel_a)];
    const KCol& g = kColumns[static_cast<size_t>(tpl.group_col)];
    std::string where;
    if (tpl.range_pred) {
      int64_t lo = rng.Uniform(1, a.distinct);
      int64_t hi = std::min(a.distinct,
                            lo + std::max<int64_t>(1, a.distinct / 10));
      where = StrFormat("%s BETWEEN %lld AND %lld", a.name,
                        static_cast<long long>(lo),
                        static_cast<long long>(hi));
    } else {
      where = StrFormat("%s = %lld", a.name,
                        static_cast<long long>(rng.Uniform(1, a.distinct)));
    }
    if (tpl.sel_b >= 0) {
      const KCol& b = kColumns[static_cast<size_t>(tpl.sel_b)];
      where += StrFormat(" AND %s = %lld", b.name,
                         static_cast<long long>(rng.Uniform(1, b.distinct)));
    }
    std::string text;
    if (tpl.join_dim) {
      text = StrFormat(
          "SELECT d_group, %s FROM bench, dim WHERE k1k = d_key AND %s "
          "GROUP BY d_group",
          agg_text(tpl.agg_func), where.c_str());
    } else {
      text = StrFormat("SELECT %s, %s FROM bench WHERE %s GROUP BY %s",
                       g.name, agg_text(tpl.agg_func), where.c_str(),
                       g.name);
    }
    auto stmt = sql::ParseStatement(text);
    if (stmt.ok()) w.Add(std::move(stmt).value());
  }
  return w;
}

}  // namespace dta::workloads
