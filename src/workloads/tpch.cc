#include "workloads/tpch.h"

#include <cmath>

#include "common/strings.h"
#include "sql/parser.h"
#include "storage/datagen.h"

namespace dta::workloads {

using catalog::ColumnType;
using storage::ColumnSpec;
using storage::TableGenSpec;

namespace {

uint64_t Scaled(double base, double sf) {
  return static_cast<uint64_t>(std::max(1.0, base * sf));
}

TableGenSpec MakeTable(const std::string& name,
                       std::vector<catalog::Column> columns,
                       std::vector<ColumnSpec> specs, uint64_t rows,
                       std::vector<std::string> pk = {}) {
  TableGenSpec t;
  t.schema = catalog::TableSchema(name, std::move(columns));
  t.schema.set_row_count(rows);
  if (!pk.empty()) t.schema.SetPrimaryKey(pk);
  t.column_specs = std::move(specs);
  t.rows = rows;
  return t;
}

}  // namespace

std::vector<storage::TableGenSpec> TpchTableSpecs(double sf) {
  std::vector<TableGenSpec> out;
  const uint64_t suppliers = Scaled(10000, sf);
  const uint64_t customers = Scaled(150000, sf);
  const uint64_t parts = Scaled(200000, sf);
  const uint64_t partsupps = Scaled(800000, sf);
  const uint64_t orders = Scaled(1500000, sf);
  const uint64_t lineitems = Scaled(6000000, sf);
  const int kDateDays = 2406;  // 1992-01-01 .. 1998-08-02

  out.push_back(MakeTable(
      "region",
      {{"r_regionkey", ColumnType::kInt, 8},
       {"r_name", ColumnType::kString, 12}},
      {ColumnSpec::Sequential(), ColumnSpec::StringPool("region", 5)}, 5,
      {"r_regionkey"}));

  out.push_back(MakeTable(
      "nation",
      {{"n_nationkey", ColumnType::kInt, 8},
       {"n_name", ColumnType::kString, 16},
       {"n_regionkey", ColumnType::kInt, 8}},
      {ColumnSpec::Sequential(), ColumnSpec::StringPool("nation", 25),
       ColumnSpec::UniformInt(1, 5)},
      25, {"n_nationkey"}));

  out.push_back(MakeTable(
      "supplier",
      {{"s_suppkey", ColumnType::kInt, 8},
       {"s_name", ColumnType::kString, 18},
       {"s_nationkey", ColumnType::kInt, 8},
       {"s_acctbal", ColumnType::kDouble, 8}},
      {ColumnSpec::Sequential(), ColumnSpec::StringPool("supp", 1000000),
       ColumnSpec::UniformInt(1, 25), ColumnSpec::UniformReal(-999, 9999)},
      suppliers, {"s_suppkey"}));

  out.push_back(MakeTable(
      "customer",
      {{"c_custkey", ColumnType::kInt, 8},
       {"c_nationkey", ColumnType::kInt, 8},
       {"c_mktsegment", ColumnType::kString, 10},
       {"c_acctbal", ColumnType::kDouble, 8}},
      {ColumnSpec::Sequential(), ColumnSpec::UniformInt(1, 25),
       ColumnSpec::StringPool("seg", 5), ColumnSpec::UniformReal(-999, 9999)},
      customers, {"c_custkey"}));

  out.push_back(MakeTable(
      "part",
      {{"p_partkey", ColumnType::kInt, 8},
       {"p_brand", ColumnType::kString, 10},
       {"p_type", ColumnType::kString, 25},
       {"p_size", ColumnType::kInt, 8},
       {"p_container", ColumnType::kString, 10},
       {"p_retailprice", ColumnType::kDouble, 8}},
      {ColumnSpec::Sequential(), ColumnSpec::StringPool("brand", 25),
       ColumnSpec::StringPool("type", 150), ColumnSpec::UniformInt(1, 50),
       ColumnSpec::StringPool("cont", 40), ColumnSpec::UniformReal(900, 2100)},
      parts, {"p_partkey"}));

  out.push_back(MakeTable(
      "partsupp",
      {{"ps_partkey", ColumnType::kInt, 8},
       {"ps_suppkey", ColumnType::kInt, 8},
       {"ps_availqty", ColumnType::kInt, 8},
       {"ps_supplycost", ColumnType::kDouble, 8}},
      {ColumnSpec::UniformInt(1, static_cast<int64_t>(parts)),
       ColumnSpec::UniformInt(1, static_cast<int64_t>(suppliers)),
       ColumnSpec::UniformInt(1, 9999), ColumnSpec::UniformReal(1, 1000)},
      partsupps));

  out.push_back(MakeTable(
      "orders",
      {{"o_orderkey", ColumnType::kInt, 8},
       {"o_custkey", ColumnType::kInt, 8},
       {"o_orderstatus", ColumnType::kString, 2},
       {"o_totalprice", ColumnType::kDouble, 8},
       {"o_orderdate", ColumnType::kString, 10},
       {"o_orderpriority", ColumnType::kString, 12},
       {"o_shippriority", ColumnType::kInt, 8}},
      {ColumnSpec::Sequential(),
       ColumnSpec::UniformInt(1, static_cast<int64_t>(customers)),
       ColumnSpec::StringPool("st", 3), ColumnSpec::UniformReal(900, 500000),
       ColumnSpec::Date("1992-01-01", kDateDays),
       ColumnSpec::StringPool("prio", 5), ColumnSpec::UniformInt(0, 1)},
      orders, {"o_orderkey"}));

  out.push_back(MakeTable(
      "lineitem",
      {{"l_orderkey", ColumnType::kInt, 8},
       {"l_partkey", ColumnType::kInt, 8},
       {"l_suppkey", ColumnType::kInt, 8},
       {"l_quantity", ColumnType::kDouble, 8},
       {"l_extendedprice", ColumnType::kDouble, 8},
       {"l_discount", ColumnType::kDouble, 8},
       {"l_returnflag", ColumnType::kString, 2},
       {"l_linestatus", ColumnType::kString, 2},
       {"l_shipdate", ColumnType::kString, 10},
       {"l_commitdate", ColumnType::kString, 10},
       {"l_receiptdate", ColumnType::kString, 10},
       {"l_shipmode", ColumnType::kString, 10}},
      {ColumnSpec::UniformInt(1, static_cast<int64_t>(orders)),
       ColumnSpec::UniformInt(1, static_cast<int64_t>(parts)),
       ColumnSpec::UniformInt(1, static_cast<int64_t>(suppliers)),
       ColumnSpec::UniformReal(1, 50), ColumnSpec::UniformReal(900, 105000),
       ColumnSpec::UniformReal(0.0, 0.1), ColumnSpec::StringPool("rf", 3),
       ColumnSpec::StringPool("ls", 2),
       ColumnSpec::Date("1992-01-01", kDateDays),
       ColumnSpec::Date("1992-01-15", kDateDays),
       ColumnSpec::Date("1992-01-20", kDateDays),
       ColumnSpec::StringPool("mode", 7)},
      lineitems));

  return out;
}

catalog::Configuration TpchRawConfiguration() {
  catalog::Configuration raw;
  for (const char* spec : {"region:r_regionkey", "nation:n_nationkey",
                           "supplier:s_suppkey", "customer:c_custkey",
                           "part:p_partkey", "orders:o_orderkey"}) {
    std::string s(spec);
    auto pos = s.find(':');
    catalog::IndexDef ix;
    ix.database = "tpch";
    ix.table = s.substr(0, pos);
    ix.key_columns = {s.substr(pos + 1)};
    ix.constraint_enforcing = true;
    Status st = raw.AddIndex(std::move(ix));
    (void)st;
  }
  return raw;
}

Status AttachTpch(server::Server* server, double scale_factor, bool with_data,
                  uint64_t seed) {
  std::vector<TableGenSpec> specs = TpchTableSpecs(scale_factor);
  catalog::Database db("tpch");
  for (const auto& spec : specs) {
    DTA_RETURN_IF_ERROR(db.AddTable(spec.schema));
  }
  DTA_RETURN_IF_ERROR(server->AttachDatabase(std::move(db)));
  Random rng(seed);
  for (const auto& spec : specs) {
    if (with_data) {
      auto data = storage::GenerateTable(spec, &rng);
      if (!data.ok()) return data.status();
      DTA_RETURN_IF_ERROR(
          server->AttachTableData("tpch", std::move(data).value()));
    } else {
      DTA_RETURN_IF_ERROR(server->RegisterColumnSpecs(
          "tpch", spec.schema.name(), spec.column_specs));
    }
  }
  return server->ImplementConfiguration(TpchRawConfiguration());
}

namespace {

// Renders the 22 templates. Where the original uses features outside our
// SQL subset, the comment notes the simplification.
std::vector<std::string> TpchQueryTexts(Random* rng) {
  auto date = [&](const char* base, int spread_days) {
    return storage::DateString(base,
                               static_cast<int>(rng->Uniform(0, spread_days)));
  };
  std::vector<std::string> q;

  // Q1: pricing summary report.
  q.push_back(StrFormat(
      "SELECT l_returnflag, l_linestatus, SUM(l_quantity), "
      "SUM(l_extendedprice), SUM(l_extendedprice * (1 - l_discount)), "
      "AVG(l_quantity), AVG(l_extendedprice), AVG(l_discount), COUNT(*) "
      "FROM lineitem WHERE l_shipdate <= '%s' "
      "GROUP BY l_returnflag, l_linestatus "
      "ORDER BY l_returnflag, l_linestatus",
      date("1998-08-01", 60).c_str()));

  // Q2: minimum-cost supplier (correlated subquery dropped; the join and
  // filter pattern is preserved).
  q.push_back(StrFormat(
      "SELECT s_acctbal, s_name, n_name, p_partkey FROM part, supplier, "
      "partsupp, nation, region WHERE p_partkey = ps_partkey AND s_suppkey "
      "= ps_suppkey AND s_nationkey = n_nationkey AND n_regionkey = "
      "r_regionkey AND p_size = %lld AND r_name = 'region%06d' "
      "ORDER BY s_acctbal DESC",
      static_cast<long long>(rng->Uniform(1, 50)),
      static_cast<int>(rng->Uniform(0, 4))));

  // Q3: shipping priority.
  q.push_back(StrFormat(
      "SELECT TOP 10 l_orderkey, SUM(l_extendedprice * (1 - l_discount)), "
      "o_orderdate, o_shippriority FROM customer, orders, lineitem WHERE "
      "c_mktsegment = 'seg%06d' AND c_custkey = o_custkey AND l_orderkey = "
      "o_orderkey AND o_orderdate < '%s' AND l_shipdate > '%s' GROUP BY "
      "l_orderkey, o_orderdate, o_shippriority ORDER BY o_orderdate",
      static_cast<int>(rng->Uniform(0, 4)), date("1995-03-01", 28).c_str(),
      date("1995-03-01", 28).c_str()));

  // Q4: order priority checking (EXISTS folded into a join with the
  // commit/receipt comparison).
  q.push_back(StrFormat(
      "SELECT o_orderpriority, COUNT(*) FROM orders, lineitem WHERE "
      "l_orderkey = o_orderkey AND o_orderdate >= '%s' AND o_orderdate < "
      "'%s' AND l_commitdate < l_receiptdate GROUP BY o_orderpriority "
      "ORDER BY o_orderpriority",
      "1993-07-01", "1993-10-01"));

  // Q5: local supplier volume.
  q.push_back(StrFormat(
      "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) FROM "
      "customer, orders, lineitem, supplier, nation, region WHERE c_custkey "
      "= o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey "
      "AND c_nationkey = s_nationkey AND s_nationkey = n_nationkey AND "
      "n_regionkey = r_regionkey AND r_name = 'region%06d' AND o_orderdate "
      ">= '%s' AND o_orderdate < '%s' GROUP BY n_name",
      static_cast<int>(rng->Uniform(0, 4)), "1994-01-01", "1995-01-01"));

  // Q6: forecasting revenue change.
  q.push_back(StrFormat(
      "SELECT SUM(l_extendedprice * l_discount) FROM lineitem WHERE "
      "l_shipdate >= '%s' AND l_shipdate < '%s' AND l_discount BETWEEN "
      "0.05 AND 0.07 AND l_quantity < 24",
      "1994-01-01", "1995-01-01"));

  // Q7: volume shipping (nation-pair OR reduced to one direction).
  q.push_back(StrFormat(
      "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) FROM "
      "supplier, lineitem, orders, customer, nation WHERE s_suppkey = "
      "l_suppkey AND o_orderkey = l_orderkey AND c_custkey = o_custkey AND "
      "s_nationkey = n_nationkey AND n_name = 'nation%06d' AND l_shipdate "
      "BETWEEN '1995-01-01' AND '1996-12-31' GROUP BY n_name",
      static_cast<int>(rng->Uniform(0, 24))));

  // Q8: national market share (CASE dropped; share numerator pattern kept).
  q.push_back(StrFormat(
      "SELECT o_orderdate, SUM(l_extendedprice * (1 - l_discount)) FROM "
      "part, lineitem, orders, customer, nation, region WHERE p_partkey = "
      "l_partkey AND l_orderkey = o_orderkey AND o_custkey = c_custkey AND "
      "c_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name "
      "= 'region%06d' AND o_orderdate BETWEEN '1995-01-01' AND "
      "'1996-12-31' AND p_type = 'type%06d' GROUP BY o_orderdate",
      static_cast<int>(rng->Uniform(0, 4)),
      static_cast<int>(rng->Uniform(0, 149))));

  // Q9: product type profit (LIKE on p_type).
  q.push_back(StrFormat(
      "SELECT n_name, SUM(l_extendedprice * (1 - l_discount) - "
      "ps_supplycost * l_quantity) FROM part, supplier, lineitem, partsupp, "
      "nation WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey AND "
      "ps_partkey = l_partkey AND p_partkey = l_partkey AND s_nationkey = "
      "n_nationkey AND p_type LIKE 'type0000%%' GROUP BY n_name"));

  // Q10: returned item reporting.
  q.push_back(StrFormat(
      "SELECT TOP 20 c_custkey, SUM(l_extendedprice * (1 - l_discount)), "
      "c_acctbal, n_name FROM customer, orders, lineitem, nation WHERE "
      "c_custkey = o_custkey AND l_orderkey = o_orderkey AND c_nationkey = "
      "n_nationkey AND o_orderdate >= '%s' AND o_orderdate < '%s' AND "
      "l_returnflag = 'rf%06d' GROUP BY c_custkey, c_acctbal, n_name "
      "ORDER BY c_custkey",
      "1993-10-01", "1994-01-01", static_cast<int>(rng->Uniform(0, 2))));

  // Q11: important stock identification (HAVING dropped).
  q.push_back(StrFormat(
      "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) FROM partsupp, "
      "supplier, nation WHERE ps_suppkey = s_suppkey AND s_nationkey = "
      "n_nationkey AND n_name = 'nation%06d' GROUP BY ps_partkey",
      static_cast<int>(rng->Uniform(0, 24))));

  // Q12: shipping modes (CASE dropped; counts by mode).
  q.push_back(StrFormat(
      "SELECT l_shipmode, COUNT(*) FROM orders, lineitem WHERE o_orderkey "
      "= l_orderkey AND l_shipmode IN ('mode%06d', 'mode%06d') AND "
      "l_commitdate < l_receiptdate AND l_receiptdate >= '%s' AND "
      "l_receiptdate < '%s' GROUP BY l_shipmode ORDER BY l_shipmode",
      static_cast<int>(rng->Uniform(0, 6)),
      static_cast<int>(rng->Uniform(0, 6)), "1994-01-01", "1995-01-01"));

  // Q13: customer distribution (outer join approximated by inner join).
  q.push_back(
      "SELECT c_custkey, COUNT(*) FROM customer, orders WHERE c_custkey = "
      "o_custkey GROUP BY c_custkey");

  // Q14: promotion effect (CASE dropped).
  q.push_back(StrFormat(
      "SELECT SUM(l_extendedprice * (1 - l_discount)) FROM lineitem, part "
      "WHERE l_partkey = p_partkey AND l_shipdate >= '%s' AND l_shipdate < "
      "'%s'",
      "1995-09-01", "1995-10-01"));

  // Q15: top supplier (view + subquery folded into per-supplier revenue).
  q.push_back(StrFormat(
      "SELECT l_suppkey, SUM(l_extendedprice * (1 - l_discount)) FROM "
      "lineitem WHERE l_shipdate >= '%s' AND l_shipdate < '%s' GROUP BY "
      "l_suppkey",
      "1996-01-01", "1996-04-01"));

  // Q16: parts/supplier relationship (NOT IN subquery dropped).
  q.push_back(StrFormat(
      "SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) FROM "
      "partsupp, part WHERE p_partkey = ps_partkey AND p_brand <> "
      "'brand%06d' AND p_size IN (%lld, %lld, %lld) GROUP BY p_brand, "
      "p_type, p_size",
      static_cast<int>(rng->Uniform(0, 24)),
      static_cast<long long>(rng->Uniform(1, 50)),
      static_cast<long long>(rng->Uniform(1, 50)),
      static_cast<long long>(rng->Uniform(1, 50))));

  // Q17: small-quantity-order revenue (AVG subquery approximated by a
  // constant threshold).
  q.push_back(StrFormat(
      "SELECT SUM(l_extendedprice) FROM lineitem, part WHERE p_partkey = "
      "l_partkey AND p_brand = 'brand%06d' AND p_container = 'cont%06d' "
      "AND l_quantity < 10",
      static_cast<int>(rng->Uniform(0, 24)),
      static_cast<int>(rng->Uniform(0, 39))));

  // Q18: large volume customer (IN subquery folded into join + filter).
  q.push_back(
      "SELECT TOP 100 c_custkey, o_orderkey, o_orderdate, o_totalprice, "
      "SUM(l_quantity) FROM customer, orders, lineitem WHERE c_custkey = "
      "o_custkey AND o_orderkey = l_orderkey AND o_totalprice > 400000 "
      "GROUP BY c_custkey, o_orderkey, o_orderdate, o_totalprice "
      "ORDER BY o_totalprice DESC");

  // Q19: discounted revenue (one OR branch kept).
  q.push_back(StrFormat(
      "SELECT SUM(l_extendedprice * (1 - l_discount)) FROM lineitem, part "
      "WHERE p_partkey = l_partkey AND p_brand = 'brand%06d' AND "
      "l_quantity BETWEEN 10 AND 20 AND p_size BETWEEN 1 AND 15",
      static_cast<int>(rng->Uniform(0, 24))));

  // Q20: potential part promotion (nested subqueries folded to joins).
  q.push_back(StrFormat(
      "SELECT s_name, s_acctbal FROM supplier, nation, partsupp, part "
      "WHERE s_suppkey = ps_suppkey AND ps_partkey = p_partkey AND "
      "s_nationkey = n_nationkey AND n_name = 'nation%06d' AND p_type "
      "LIKE 'type000%%' ORDER BY s_name",
      static_cast<int>(rng->Uniform(0, 24))));

  // Q21: suppliers who kept orders waiting (EXISTS/NOT EXISTS folded).
  q.push_back(StrFormat(
      "SELECT s_name, COUNT(*) FROM supplier, lineitem, orders, nation "
      "WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND "
      "s_nationkey = n_nationkey AND o_orderstatus = 'st%06d' AND "
      "l_receiptdate > l_commitdate AND n_name = 'nation%06d' GROUP BY "
      "s_name",
      static_cast<int>(rng->Uniform(0, 2)),
      static_cast<int>(rng->Uniform(0, 24))));

  // Q22: global sales opportunity (substring country codes approximated by
  // account-balance range on customers without orders -> plain filter).
  q.push_back(
      "SELECT c_nationkey, COUNT(*), SUM(c_acctbal) FROM customer WHERE "
      "c_acctbal > 7000 GROUP BY c_nationkey ORDER BY c_nationkey");

  return q;
}

}  // namespace

workload::Workload TpchQueries(uint64_t seed) {
  Random rng(seed);
  workload::Workload w;
  for (const std::string& text : TpchQueryTexts(&rng)) {
    auto stmt = sql::ParseStatement(text);
    if (!stmt.ok()) {
      // Template bugs surface loudly in tests; keep going for robustness.
      continue;
    }
    w.Add(std::move(stmt).value());
  }
  return w;
}

workload::Workload TpchQueriesPrefix(size_t n, uint64_t seed) {
  workload::Workload all = TpchQueries(seed);
  workload::Workload out;
  for (size_t i = 0; i < n && i < all.size(); ++i) {
    out.Add(all.statements()[i].stmt.Clone(), all.statements()[i].weight);
  }
  return out;
}

}  // namespace dta::workloads
