#include "workloads/psoft.h"

#include "common/strings.h"
#include "sql/parser.h"
#include "storage/datagen.h"

namespace dta::workloads {

using catalog::ColumnType;
using storage::ColumnSpec;

namespace {

constexpr uint64_t kEmployees = 50000;
constexpr uint64_t kDepartments = 500;
constexpr uint64_t kJobs = 2000;
constexpr uint64_t kPaychecks = 400000;
constexpr uint64_t kLedger = 900000;
constexpr uint64_t kVouchers = 150000;

}  // namespace

Status AttachPsoft(server::Server* server, uint64_t seed) {
  (void)seed;
  catalog::Database db("psoft");

  catalog::TableSchema employees(
      "ps_employees", {{"emplid", ColumnType::kInt, 8},
                       {"deptid", ColumnType::kInt, 8},
                       {"jobcode", ColumnType::kInt, 8},
                       {"status", ColumnType::kString, 2},
                       {"hire_date", ColumnType::kString, 10},
                       {"salary", ColumnType::kDouble, 8}});
  employees.set_row_count(kEmployees);
  employees.SetPrimaryKey({"emplid"});
  DTA_RETURN_IF_ERROR(db.AddTable(employees));

  catalog::TableSchema depts("ps_depts",
                             {{"deptid", ColumnType::kInt, 8},
                              {"dept_name", ColumnType::kString, 20},
                              {"location", ColumnType::kString, 12}});
  depts.set_row_count(kDepartments);
  depts.SetPrimaryKey({"deptid"});
  DTA_RETURN_IF_ERROR(db.AddTable(depts));

  catalog::TableSchema jobs("ps_jobs", {{"jobcode", ColumnType::kInt, 8},
                                        {"job_family", ColumnType::kInt, 8},
                                        {"grade", ColumnType::kInt, 8}});
  jobs.set_row_count(kJobs);
  jobs.SetPrimaryKey({"jobcode"});
  DTA_RETURN_IF_ERROR(db.AddTable(jobs));

  catalog::TableSchema paychecks(
      "ps_paychecks", {{"check_id", ColumnType::kInt, 8},
                       {"emplid", ColumnType::kInt, 8},
                       {"pay_period", ColumnType::kString, 10},
                       {"gross", ColumnType::kDouble, 8},
                       {"net", ColumnType::kDouble, 8}});
  paychecks.set_row_count(kPaychecks);
  paychecks.SetPrimaryKey({"check_id"});
  DTA_RETURN_IF_ERROR(db.AddTable(paychecks));

  catalog::TableSchema ledger(
      "ps_ledger", {{"entry_id", ColumnType::kInt, 8},
                    {"account", ColumnType::kInt, 8},
                    {"deptid", ColumnType::kInt, 8},
                    {"fiscal_period", ColumnType::kString, 10},
                    {"amount", ColumnType::kDouble, 8},
                    {"posted", ColumnType::kString, 2}});
  ledger.set_row_count(kLedger);
  ledger.SetPrimaryKey({"entry_id"});
  DTA_RETURN_IF_ERROR(db.AddTable(ledger));

  catalog::TableSchema vouchers(
      "ps_vouchers", {{"voucher_id", ColumnType::kInt, 8},
                      {"vendor", ColumnType::kInt, 8},
                      {"voucher_date", ColumnType::kString, 10},
                      {"amount", ColumnType::kDouble, 8},
                      {"approved", ColumnType::kString, 2}});
  vouchers.set_row_count(kVouchers);
  vouchers.SetPrimaryKey({"voucher_id"});
  DTA_RETURN_IF_ERROR(db.AddTable(vouchers));

  DTA_RETURN_IF_ERROR(server->AttachDatabase(std::move(db)));

  DTA_RETURN_IF_ERROR(server->RegisterColumnSpecs(
      "psoft", "ps_employees",
      {ColumnSpec::Sequential(),
       ColumnSpec::ZipfInt(1, kDepartments, 0.8),
       ColumnSpec::ZipfInt(1, kJobs, 0.9), ColumnSpec::StringPool("st", 3),
       ColumnSpec::Date("1985-01-01", 7000),
       ColumnSpec::UniformReal(30000, 250000)}));
  DTA_RETURN_IF_ERROR(server->RegisterColumnSpecs(
      "psoft", "ps_depts",
      {ColumnSpec::Sequential(), ColumnSpec::StringPool("dept", 500),
       ColumnSpec::StringPool("loc", 40)}));
  DTA_RETURN_IF_ERROR(server->RegisterColumnSpecs(
      "psoft", "ps_jobs",
      {ColumnSpec::Sequential(), ColumnSpec::UniformInt(1, 50),
       ColumnSpec::UniformInt(1, 12)}));
  DTA_RETURN_IF_ERROR(server->RegisterColumnSpecs(
      "psoft", "ps_paychecks",
      {ColumnSpec::Sequential(), ColumnSpec::ZipfInt(1, kEmployees, 0.5),
       ColumnSpec::Date("2001-01-01", 1100),
       ColumnSpec::UniformReal(1000, 12000),
       ColumnSpec::UniformReal(800, 9000)}));
  DTA_RETURN_IF_ERROR(server->RegisterColumnSpecs(
      "psoft", "ps_ledger",
      {ColumnSpec::Sequential(), ColumnSpec::ZipfInt(1000, 3000, 0.7),
       ColumnSpec::ZipfInt(1, kDepartments, 0.8),
       ColumnSpec::Date("2001-01-01", 1100),
       ColumnSpec::UniformReal(-50000, 50000),
       ColumnSpec::StringPool("p", 2)}));
  DTA_RETURN_IF_ERROR(server->RegisterColumnSpecs(
      "psoft", "ps_vouchers",
      {ColumnSpec::Sequential(), ColumnSpec::ZipfInt(1, 5000, 1.0),
       ColumnSpec::Date("2001-01-01", 1100),
       ColumnSpec::UniformReal(10, 100000),
       ColumnSpec::StringPool("ap", 2)}));

  // Raw configuration: PK constraint indexes.
  catalog::Configuration raw;
  for (const char* spec :
       {"ps_employees:emplid", "ps_depts:deptid", "ps_jobs:jobcode",
        "ps_paychecks:check_id", "ps_ledger:entry_id",
        "ps_vouchers:voucher_id"}) {
    std::string s(spec);
    auto pos = s.find(':');
    catalog::IndexDef ix;
    ix.database = "psoft";
    ix.table = s.substr(0, pos);
    ix.key_columns = {s.substr(pos + 1)};
    ix.constraint_enforcing = true;
    DTA_RETURN_IF_ERROR(raw.AddIndex(std::move(ix)));
  }
  return server->ImplementConfiguration(std::move(raw));
}

workload::Workload PsoftWorkload(size_t n_statements, uint64_t seed) {
  Random rng(seed);
  workload::Workload w;
  auto period = [&]() {
    return storage::DateString("2001-01-01",
                               static_cast<int>(rng.Uniform(0, 1000)));
  };
  // Stored-procedure-style templates with weights: lookups dominate,
  // reports and modifications mix in (~25% updates by volume).
  std::vector<double> weights = {18, 12, 10, 8, 7, 6, 5, 5, 3, 9, 8, 5, 4};
  for (size_t i = 0; i < n_statements; ++i) {
    std::string text;
    switch (rng.Weighted(weights)) {
      case 0:  // employee lookup by id
        text = StrFormat(
            "SELECT deptid, jobcode, salary FROM ps_employees WHERE emplid "
            "= %lld",
            static_cast<long long>(rng.Zipf(kEmployees, 0.6)));
        break;
      case 1:  // paychecks of an employee
        text = StrFormat(
            "SELECT pay_period, gross, net FROM ps_paychecks WHERE emplid "
            "= %lld ORDER BY pay_period",
            static_cast<long long>(rng.Zipf(kEmployees, 0.6)));
        break;
      case 2:  // ledger range scan by period + account
        text = StrFormat(
            "SELECT SUM(amount) FROM ps_ledger WHERE fiscal_period = '%s' "
            "AND account = %lld",
            period().c_str(),
            static_cast<long long>(rng.Zipf(3000, 0.7) + 999));
        break;
      case 3:  // department roster join
        text = StrFormat(
            "SELECT e.emplid, d.dept_name FROM ps_employees e, ps_depts d "
            "WHERE e.deptid = d.deptid AND d.deptid = %lld",
            static_cast<long long>(rng.Zipf(kDepartments, 0.8)));
        break;
      case 4:  // payroll report per department
        text = StrFormat(
            "SELECT e.deptid, COUNT(*), SUM(p.gross) FROM ps_employees e, "
            "ps_paychecks p WHERE e.emplid = p.emplid AND p.pay_period = "
            "'%s' GROUP BY e.deptid",
            period().c_str());
        break;
      case 5:  // open vouchers by vendor
        text = StrFormat(
            "SELECT voucher_id, amount FROM ps_vouchers WHERE vendor = "
            "%lld AND approved = 'ap%06d'",
            static_cast<long long>(rng.Zipf(5000, 1.0)),
            static_cast<int>(rng.Uniform(0, 1)));
        break;
      case 6:  // job grade report
        text = StrFormat(
            "SELECT j.grade, COUNT(*) FROM ps_employees e, ps_jobs j WHERE "
            "e.jobcode = j.jobcode AND e.status = 'st%06d' GROUP BY "
            "j.grade",
            static_cast<int>(rng.Uniform(0, 2)));
        break;
      case 7:  // ledger by department, recent periods
        text = StrFormat(
            "SELECT account, SUM(amount) FROM ps_ledger WHERE deptid = "
            "%lld AND fiscal_period >= '%s' GROUP BY account",
            static_cast<long long>(rng.Zipf(kDepartments, 0.8)),
            period().c_str());
        break;
      case 8:  // salary band scan
        text = StrFormat(
            "SELECT emplid, salary FROM ps_employees WHERE salary BETWEEN "
            "%lld AND %lld",
            static_cast<long long>(rng.Uniform(3, 20) * 10000),
            static_cast<long long>(rng.Uniform(21, 25) * 10000));
        break;
      case 9:  // post a ledger entry
        text = StrFormat(
            "INSERT INTO ps_ledger VALUES (%lld, %lld, %lld, '%s', %lld, "
            "'p%06d')",
            static_cast<long long>(kLedger + i),
            static_cast<long long>(rng.Zipf(3000, 0.7) + 999),
            static_cast<long long>(rng.Zipf(kDepartments, 0.8)),
            period().c_str(), static_cast<long long>(rng.Uniform(1, 50000)),
            static_cast<int>(rng.Uniform(0, 1)));
        break;
      case 10:  // approve a voucher
        text = StrFormat(
            "UPDATE ps_vouchers SET approved = 'ap%06d' WHERE voucher_id = "
            "%lld",
            static_cast<int>(rng.Uniform(0, 1)),
            static_cast<long long>(rng.Uniform(1, kVouchers)));
        break;
      case 11:  // employee transfer
        text = StrFormat(
            "UPDATE ps_employees SET deptid = %lld WHERE emplid = %lld",
            static_cast<long long>(rng.Zipf(kDepartments, 0.8)),
            static_cast<long long>(rng.Uniform(1, kEmployees)));
        break;
      default: {  // purge one day of unposted ledger rows
        std::string day = storage::DateString(
            "2001-01-01", static_cast<int>(rng.Uniform(0, 200)));
        text = StrFormat(
            "DELETE FROM ps_ledger WHERE fiscal_period = '%s' AND posted = "
            "'p%06d'",
            day.c_str(), static_cast<int>(rng.Uniform(0, 1)));
        break;
      }
    }
    auto stmt = sql::ParseStatement(text);
    if (stmt.ok()) w.Add(std::move(stmt).value());
  }
  return w;
}

}  // namespace dta::workloads
