// TPC-H-like benchmark substrate: the 8-table schema, a scale-factor-driven
// data generator, and the 22 query templates expressed in this project's
// SQL subset.
//
// Substitution note (see DESIGN.md): the original TPC-H queries use SQL
// features outside our subset (subqueries, EXISTS, CASE, OR, HAVING). Each
// template here preserves the original query's *access pattern* — the
// tables joined, the predicate columns and selectivities, the grouping and
// ordering — which is what drives physical design selection. Simplifications
// are noted per query in tpch.cc.

#ifndef DTA_WORKLOADS_TPCH_H_
#define DTA_WORKLOADS_TPCH_H_

#include <vector>

#include "common/status.h"
#include "server/server.h"
#include "workload/workload.h"

namespace dta::workloads {

// Table generation specs for the given scale factor (SF 1.0 == the paper's
// 1GB-class database; row counts scale linearly).
std::vector<storage::TableGenSpec> TpchTableSpecs(double scale_factor);

// Attaches the TPC-H database ("tpch") to a server. With `with_data`,
// actual rows are generated (execution becomes possible); otherwise only
// generator specs are registered (statistics can still be created).
// The server's current configuration is set to the raw design: primary-key
// constraint indexes only (paper §7.2 methodology).
Status AttachTpch(server::Server* server, double scale_factor, bool with_data,
                  uint64_t seed);

// The 22-query benchmark workload (deterministic for a given seed).
workload::Workload TpchQueries(uint64_t seed);

// First `n` queries only (e.g. TPCHQ1 for Figure 3).
workload::Workload TpchQueriesPrefix(size_t n, uint64_t seed);

// Raw configuration: constraint-enforcing PK indexes only.
catalog::Configuration TpchRawConfiguration();

}  // namespace dta::workloads

#endif  // DTA_WORKLOADS_TPCH_H_
