// Synthetic "customer" databases and workloads reproducing the shapes of
// the paper's Table 1 / Table 2 evaluation (§7.1).
//
// The real customer databases (CUST1..CUST4) are proprietary; these
// generators reproduce the characteristics the paper reports as driving the
// outcomes: overall scale, number of databases/tables, workload size and
// templatization, update fraction, and the style of each DBA's hand-tuned
// design:
//   CUST1 — mid-size, read-mostly, competently hand-tuned (DTA comparable);
//   CUST2 — large, heavily templatized, sparsely tuned (DTA much better);
//   CUST3 — very large, update-heavy, over-indexed by hand (hand-tuned is
//            *worse* than raw; DTA correctly recommends nothing);
//   CUST4 — small, primary-key indexes only (DTA finds easy wins).
// Exact sizes are synthesized (documented in DESIGN.md); results are
// reported as cost reductions relative to the raw configuration, as in the
// paper.

#ifndef DTA_WORKLOADS_CUSTOMER_H_
#define DTA_WORKLOADS_CUSTOMER_H_

#include <string>

#include "common/status.h"
#include "server/server.h"
#include "workload/workload.h"

namespace dta::workloads {

struct CustomerProfile {
  std::string name;
  int databases = 1;
  int tables = 20;           // total across databases
  double total_gb = 1.0;     // logical data size
  size_t events = 10000;     // workload statements
  size_t templates = 50;
  double update_fraction = 0.1;
  enum class HandTunedStyle {
    kReasonable,   // sensible indexes on hot paths
    kSparse,       // a few narrow indexes, most queries unserved
    kOverIndexed,  // many wide indexes on update-hot, rarely-read columns
    kPkOnly,       // nothing beyond primary keys
  };
  HandTunedStyle hand_tuned = HandTunedStyle::kReasonable;
  // OLTP read profile: reads are point lookups on the primary key (already
  // served by the constraint index), so additional structures can only add
  // maintenance cost. Models CUST3, where DTA correctly recommends nothing.
  bool oltp_reads = false;
  uint64_t seed = 1;
};

CustomerProfile Cust1();
CustomerProfile Cust2();
CustomerProfile Cust3();
CustomerProfile Cust4();

// Attaches the profile's databases (metadata + generator specs; no data —
// these model production databases tuned via statistics). The current
// configuration is set to the raw design (PK constraint indexes).
Status AttachCustomer(server::Server* server, const CustomerProfile& profile);

// Generates the profile's workload. `max_events` (0 == profile default)
// allows scaled-down runs.
workload::Workload CustomerWorkload(const CustomerProfile& profile,
                                    const server::Server& server,
                                    size_t max_events = 0);

// The DBA's hand-tuned physical design for this profile (includes the PK
// constraint indexes).
catalog::Configuration HandTunedConfiguration(const CustomerProfile& profile,
                                              const server::Server& server);

// The raw configuration (PK constraint indexes only).
catalog::Configuration CustomerRawConfiguration(
    const CustomerProfile& profile, const server::Server& server);

}  // namespace dta::workloads

#endif  // DTA_WORKLOADS_CUSTOMER_H_
