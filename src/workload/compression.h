// Workload compression (paper §5.1, after Chaudhuri/Gupta/Narasayya [7]):
// partition the workload by statement signature (template), then pick a
// small set of representatives per partition with a clustering method over
// the statements' constants, weighting each representative by the number of
// statements it stands for.

#ifndef DTA_WORKLOAD_COMPRESSION_H_
#define DTA_WORKLOAD_COMPRESSION_H_

#include <cstddef>

#include "workload/workload.h"

namespace dta::workload {

struct CompressionOptions {
  // Workloads smaller than this are returned unchanged (compression cannot
  // help and may hurt, cf. TPCH22 in Table 3).
  size_t min_workload_size = 30;
  // k-center clustering: representatives are added until every statement is
  // within this normalized distance of one, up to max_representatives.
  double distance_threshold = 0.25;
  size_t max_representatives_per_template = 8;
};

struct CompressionStats {
  size_t original_statements = 0;
  size_t compressed_statements = 0;
  size_t templates = 0;
  double CompressionRatio() const {
    return compressed_statements > 0
               ? static_cast<double>(original_statements) /
                     static_cast<double>(compressed_statements)
               : 1.0;
  }
};

// Returns the compressed workload; each representative carries the summed
// weight of the statements it replaces.
Workload CompressWorkload(const Workload& input,
                          const CompressionOptions& options = {},
                          CompressionStats* stats = nullptr);

}  // namespace dta::workload

#endif  // DTA_WORKLOAD_COMPRESSION_H_
