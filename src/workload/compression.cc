#include "workload/compression.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace dta::workload {

namespace {

// Maps a value to a real number preserving order within a type: numerics by
// value, strings by the first eight bytes interpreted as a base-256 number.
double ValueFeature(const sql::Value& v) {
  switch (v.type()) {
    case sql::ValueType::kInt:
      return static_cast<double>(v.AsInt());
    case sql::ValueType::kDouble:
      return v.AsDoubleStrict();
    case sql::ValueType::kString: {
      double acc = 0;
      const std::string& s = v.AsString();
      for (size_t i = 0; i < 8; ++i) {
        double c = i < s.size() ? static_cast<unsigned char>(s[i]) : 0;
        acc = acc * 256.0 + c;
      }
      return acc;
    }
    case sql::ValueType::kNull:
      return 0;
  }
  return 0;
}

void CollectPredicateFeatures(const std::vector<sql::Predicate>& preds,
                              std::vector<double>* out) {
  for (const auto& p : preds) {
    switch (p.kind) {
      case sql::Predicate::Kind::kCompare:
        out->push_back(ValueFeature(p.value));
        break;
      case sql::Predicate::Kind::kBetween:
        out->push_back(ValueFeature(p.low));
        out->push_back(ValueFeature(p.high));
        break;
      case sql::Predicate::Kind::kIn:
        if (!p.in_list.empty()) out->push_back(ValueFeature(p.in_list[0]));
        break;
      case sql::Predicate::Kind::kLike:
        out->push_back(ValueFeature(sql::Value::String(p.like_pattern)));
        break;
      case sql::Predicate::Kind::kColumnCompare:
        break;
    }
  }
}

// Feature vector of one statement: its constants, in syntactic order.
// Statements with the same signature produce vectors of equal arity.
std::vector<double> Features(const sql::Statement& stmt) {
  std::vector<double> out;
  switch (stmt.kind()) {
    case sql::StatementKind::kSelect:
      CollectPredicateFeatures(stmt.select().where, &out);
      break;
    case sql::StatementKind::kInsert:
      for (const auto& row : stmt.insert().rows) {
        for (const auto& v : row) out.push_back(ValueFeature(v));
      }
      break;
    case sql::StatementKind::kUpdate:
      for (const auto& [col, v] : stmt.update().assignments) {
        out.push_back(ValueFeature(v));
      }
      CollectPredicateFeatures(stmt.update().where, &out);
      break;
    case sql::StatementKind::kDelete:
      CollectPredicateFeatures(stmt.del().where, &out);
      break;
  }
  return out;
}

}  // namespace

Workload CompressWorkload(const Workload& input,
                          const CompressionOptions& options,
                          CompressionStats* stats) {
  if (stats != nullptr) {
    stats->original_statements = input.size();
    stats->compressed_statements = input.size();
    stats->templates = input.DistinctTemplates();
  }
  if (input.size() < options.min_workload_size) {
    Workload copy;
    for (const auto& ws : input.statements()) {
      copy.Add(ws.stmt.Clone(), ws.weight);
    }
    return copy;
  }

  // Partition by signature.
  std::map<uint64_t, std::vector<size_t>> partitions;
  for (size_t i = 0; i < input.statements().size(); ++i) {
    partitions[input.statements()[i].signature].push_back(i);
  }

  Workload out;
  for (const auto& [sig, members] : partitions) {
    if (members.size() == 1) {
      const auto& ws = input.statements()[members[0]];
      out.Add(ws.stmt.Clone(), ws.weight);
      continue;
    }
    // Normalized feature vectors.
    std::vector<std::vector<double>> feats;
    feats.reserve(members.size());
    size_t dims = 0;
    for (size_t idx : members) {
      feats.push_back(Features(input.statements()[idx].stmt));
      dims = std::max(dims, feats.back().size());
    }
    for (auto& f : feats) f.resize(dims, 0.0);
    for (size_t d = 0; d < dims; ++d) {
      double lo = feats[0][d], hi = feats[0][d];
      for (const auto& f : feats) {
        lo = std::min(lo, f[d]);
        hi = std::max(hi, f[d]);
      }
      double span = hi - lo;
      for (auto& f : feats) f[d] = span > 0 ? (f[d] - lo) / span : 0.0;
    }
    auto dist = [&](size_t a, size_t b) {
      double acc = 0;
      for (size_t d = 0; d < dims; ++d) {
        double diff = feats[a][d] - feats[b][d];
        acc += diff * diff;
      }
      return dims > 0 ? std::sqrt(acc / static_cast<double>(dims)) : 0.0;
    };

    // Greedy k-center: seed with the first statement, repeatedly add the
    // farthest statement until everything is within the threshold or the
    // cap is reached.
    std::vector<size_t> centers = {0};
    std::vector<double> nearest(members.size(),
                                std::numeric_limits<double>::infinity());
    auto update_nearest = [&](size_t center) {
      for (size_t i = 0; i < members.size(); ++i) {
        nearest[i] = std::min(nearest[i], dist(i, center));
      }
    };
    update_nearest(0);
    while (centers.size() < options.max_representatives_per_template) {
      size_t far = 0;
      for (size_t i = 1; i < members.size(); ++i) {
        if (nearest[i] > nearest[far]) far = i;
      }
      if (nearest[far] <= options.distance_threshold) break;
      centers.push_back(far);
      update_nearest(far);
    }
    // Assign every member to its closest center; weight accumulates.
    std::vector<double> weights(centers.size(), 0.0);
    for (size_t i = 0; i < members.size(); ++i) {
      size_t best = 0;
      double best_d = dist(i, centers[0]);
      for (size_t c = 1; c < centers.size(); ++c) {
        double d = dist(i, centers[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      weights[best] += input.statements()[members[i]].weight;
    }
    for (size_t c = 0; c < centers.size(); ++c) {
      if (weights[c] <= 0) continue;
      const auto& ws = input.statements()[members[centers[c]]];
      out.Add(ws.stmt.Clone(), weights[c]);
    }
  }

  if (stats != nullptr) stats->compressed_statements = out.size();
  return out;
}

}  // namespace dta::workload
