// Workload model: an ordered multiset of SQL statements with weights.
//
// A workload is what DTA tunes (paper §2.1): a set of queries and updates
// captured by a profiler or supplied as a SQL file. Weights exist so that
// workload compression (§5.1) can replace a cluster of statements with one
// weighted representative.

#ifndef DTA_WORKLOAD_WORKLOAD_H_
#define DTA_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"

namespace dta::workload {

struct WorkloadStatement {
  sql::Statement stmt;
  std::string text;        // original SQL text
  double weight = 1.0;     // multiplicity (compression representatives > 1)
  uint64_t signature = 0;  // template hash (filled on construction)
};

class Workload {
 public:
  Workload() = default;

  // Parses a ';'-separated SQL script.
  static Result<Workload> FromScript(const std::string& sql_text);
  // Takes ownership of parsed statements.
  static Workload FromStatements(std::vector<sql::Statement> statements);

  void Add(sql::Statement stmt, double weight = 1.0);

  const std::vector<WorkloadStatement>& statements() const {
    return statements_;
  }
  std::vector<WorkloadStatement>& statements() { return statements_; }
  size_t size() const { return statements_.size(); }
  bool empty() const { return statements_.empty(); }
  // Sum of weights == number of original events represented.
  double TotalWeight() const;
  // Number of distinct templates (signatures).
  size_t DistinctTemplates() const;
  // Fraction of statements that are INSERT/UPDATE/DELETE, by weight.
  double UpdateFraction() const;

 private:
  std::vector<WorkloadStatement> statements_;
};

}  // namespace dta::workload

#endif  // DTA_WORKLOAD_WORKLOAD_H_
