#include "workload/workload.h"

#include <set>

#include "sql/parser.h"
#include "sql/printer.h"
#include "sql/signature.h"

namespace dta::workload {

Result<Workload> Workload::FromScript(const std::string& sql_text) {
  auto statements = sql::ParseScript(sql_text);
  if (!statements.ok()) return statements.status();
  return FromStatements(std::move(statements).value());
}

Workload Workload::FromStatements(std::vector<sql::Statement> statements) {
  Workload w;
  for (auto& stmt : statements) {
    w.Add(std::move(stmt));
  }
  return w;
}

void Workload::Add(sql::Statement stmt, double weight) {
  WorkloadStatement ws;
  ws.signature = sql::SignatureHash(stmt);
  ws.text = sql::ToSql(stmt);
  ws.stmt = std::move(stmt);
  ws.weight = weight;
  statements_.push_back(std::move(ws));
}

double Workload::TotalWeight() const {
  double total = 0;
  for (const auto& s : statements_) total += s.weight;
  return total;
}

size_t Workload::DistinctTemplates() const {
  std::set<uint64_t> sigs;
  for (const auto& s : statements_) sigs.insert(s.signature);
  return sigs.size();
}

double Workload::UpdateFraction() const {
  double updates = 0, total = 0;
  for (const auto& s : statements_) {
    total += s.weight;
    if (!s.stmt.is_select()) updates += s.weight;
  }
  return total > 0 ? updates / total : 0;
}

}  // namespace dta::workload
