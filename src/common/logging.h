// Minimal leveled logging to stderr. Verbosity is a process-wide setting;
// benchmarks and tests keep it at kWarning to stay quiet.

#ifndef DTA_COMMON_LOGGING_H_
#define DTA_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace dta {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << Name(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
  ~LogMessage() {
    if (level_ >= GetLogLevel()) {
      stream_ << "\n";
      std::cerr << stream_.str();
    }
  }
  std::ostream& stream() { return stream_; }

 private:
  static const char* Name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "D";
      case LogLevel::kInfo:
        return "I";
      case LogLevel::kWarning:
        return "W";
      case LogLevel::kError:
        return "E";
    }
    return "?";
  }
  static const char* Basename(const char* file) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace dta

#define DTA_LOG(level)                                                  \
  ::dta::internal_logging::LogMessage(::dta::LogLevel::k##level, __FILE__, \
                                      __LINE__)                         \
      .stream()

// Invariant check that stays on in release builds (tier-1 runs
// RelWithDebInfo, where assert() is compiled out). Guards cheap invariants
// whose violation means a concurrency-discipline bug, e.g. a ParallelFor
// cancel predicate invoked under the pool queue lock.
#define DTA_CHECK(cond, msg)                              \
  do {                                                    \
    if (!(cond)) {                                        \
      DTA_LOG(Error) << "CHECK failed: " #cond ": " << (msg); \
      std::abort();                                       \
    }                                                     \
  } while (0)

#endif  // DTA_COMMON_LOGGING_H_
