// Deterministic fault injection for what-if optimizer calls.
//
// Production tuning runs for hours against a live (or test) server; optimizer
// calls time out, fail transiently under load, or fail permanently for
// individual statements. The simulated server consults a FaultInjector before
// each what-if call so tests, benches, and CI can script those failure
// scenarios and exercise the tuner's retry/degradation paths.
//
// Determinism: every decision is a pure hash of (seed, call key, attempt
// number) — not a draw from a shared RNG stream — so the outcome of a given
// call is identical no matter how many threads interleave, and a transient
// failure deterministically clears after the same number of retries on every
// run. Per-key attempt counters are the only mutable state (mutex-guarded).

#ifndef DTA_COMMON_FAULT_INJECTOR_H_
#define DTA_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dta {

// Parsed form of the "--fault-spec" / TuningOptions::fault_spec string:
// comma-separated key=value pairs, e.g.
//   "seed=42,transient=0.1,permanent=0.01,latency_ms=0.5,down_after=100"
//   "table=lineitem,transient=0.3"
//   "latency_ms=0.05,slow_after=5,slow_factor=200"
// Unknown keys, trailing garbage, leading whitespace/signs, and out-of-range
// literals are rejected; probabilities must lie in [0, 1].
struct FaultSpec {
  uint64_t seed = 1;
  double transient_probability = 0;  // per-attempt Unavailable failure
  double permanent_probability = 0;  // per-call-key Internal failure
  double latency_ms = 0;             // extra latency added to every call

  // Richer incident shapes, modeled on the injector's matched-call ordinal
  // (0-based; every call when no `table` filter is set, only the calls the
  // filter targets otherwise). Exact ordinals are only meaningful on a
  // serially driven injector; under concurrency the *set* of affected calls
  // depends on scheduling, and callers rely on retry/failover to make
  // results independent of which calls land in the window.
  //
  // Node death: every call from ordinal `down_after` onward fails
  // Unavailable (the server became unreachable); -1 disables, 0 means the
  // server is down from its first call.
  int64_t down_after = -1;
  // Burst outage: calls with ordinals in [burst_start, burst_start +
  // burst_len) fail Unavailable; burst_len == 0 disables.
  uint64_t burst_start = 0;
  uint64_t burst_len = 0;

  // Fail-slow: from ordinal `slow_after` onward every call's injected
  // latency is latency_ms * slow_factor — responses stay successful, just
  // late (the fleet failure mode crash-stop health tracking cannot see).
  // -1 disables; 0 makes the node slow from its first call.
  int64_t slow_after = -1;
  double slow_factor = 1;  // latency multiplier once slow; must be >= 1

  // Per-table targeting: when non-empty, only calls whose statement
  // references this table (lowercased) are subject to faults; other calls
  // pass through untouched and do not advance the matched-call ordinal.
  std::string table;

  bool Enabled() const {
    return transient_probability > 0 || permanent_probability > 0 ||
           latency_ms > 0 || down_after >= 0 || burst_len > 0 ||
           slow_after >= 0;
  }

  static Result<FaultSpec> Parse(const std::string& text);
  std::string ToString() const;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec) : spec_(spec) {}

  const FaultSpec& spec() const { return spec_; }

  // Outcome of one injected call. `latency_ms` applies whether or not the
  // call fails (a slow failure is the common production case).
  struct Outcome {
    Status status;  // OK, Unavailable (transient), or Internal (permanent)
    double latency_ms = 0;
  };

  // Decides the fate of the next attempt of the call identified by `key`.
  // Keys must be stable across runs (hash of statement + relevant
  // configuration); attempts of the same key are numbered internally.
  // The two-argument form supplies the statement's referenced tables for
  // the spec's `table` filter; the one-argument form never matches a
  // table-filtered spec.
  Outcome Decide(uint64_t key) EXCLUDES(mu_);
  Outcome Decide(uint64_t key, const std::set<std::string>& tables)
      EXCLUDES(mu_);

  // Counters, for tests and reports.
  size_t calls() const EXCLUDES(mu_);
  size_t transient_failures() const EXCLUDES(mu_);
  size_t permanent_failures() const EXCLUDES(mu_);
  // Failures injected by the down_after / burst window shapes (a subset of
  // neither counter above: outages model unreachability, not optimizer
  // errors, though they surface as Unavailable just the same).
  size_t outage_failures() const EXCLUDES(mu_);
  // Calls whose latency was amplified by the fail-slow window (a slow node
  // is slow for failures too, so this counts failed calls as well).
  size_t slow_calls() const EXCLUDES(mu_);
  // Calls the `table` filter exempted from injection.
  size_t skipped_calls() const EXCLUDES(mu_);

 private:
  FaultSpec spec_;
  mutable Mutex mu_;
  std::map<uint64_t, int> attempts_ GUARDED_BY(mu_);
  size_t calls_ GUARDED_BY(mu_) = 0;
  // Calls that passed the table filter; the ordinal stream the window
  // shapes (down_after/burst/slow_after) are modeled on.
  size_t matched_calls_ GUARDED_BY(mu_) = 0;
  size_t transient_ GUARDED_BY(mu_) = 0;
  size_t permanent_ GUARDED_BY(mu_) = 0;
  size_t outage_ GUARDED_BY(mu_) = 0;
  size_t slow_ GUARDED_BY(mu_) = 0;
};

}  // namespace dta

#endif  // DTA_COMMON_FAULT_INJECTOR_H_
