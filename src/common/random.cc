#include "common/random.h"

#include <cassert>
#include <cmath>

namespace dta {

int64_t Random::Zipf(int64_t n, double theta) {
  assert(n >= 1);
  if (theta <= 0.0) return Uniform(1, n);
  // Standard CDF-inversion approximation (Gray et al., "Quickly Generating
  // Billion-Record Synthetic Databases"). Valid for theta != 1; for theta
  // near 1 we nudge it slightly to keep the closed forms finite.
  double t = theta;
  if (std::fabs(t - 1.0) < 1e-6) t = 1.0 + 1e-6;
  double u = UniformReal(0.0, 1.0);
  // zeta(n, t) approximated by the integral; adequate for data generation.
  auto zeta_approx = [t](double m) {
    return (std::pow(m, 1.0 - t) - 1.0) / (1.0 - t) + 1.0;
  };
  double zn = zeta_approx(static_cast<double>(n));
  double x = u * zn;
  double v;
  if (x <= 1.0) {
    v = 1.0;
  } else {
    v = std::pow((x - 1.0) * (1.0 - t) + 1.0, 1.0 / (1.0 - t));
  }
  int64_t r = static_cast<int64_t>(v);
  if (r < 1) r = 1;
  if (r > n) r = n;
  return r;
}

size_t Random::Weighted(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  double x = UniformReal(0.0, total);
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;
}

std::string Random::AlphaString(size_t length) {
  std::string s(length, 'a');
  for (char& c : s) {
    c = static_cast<char>('a' + Uniform(0, 25));
  }
  return s;
}

}  // namespace dta
