#include "common/fault_injector.h"

#include <cstdlib>

#include "common/hash.h"
#include "common/strings.h"

namespace dta {

namespace {

// Uniform double in [0, 1) from a 64-bit hash (53 mantissa bits).
double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

uint64_t Mix(uint64_t seed, uint64_t key, uint64_t salt) {
  uint64_t h = HashCombine(seed, key);
  h = HashCombine(h, salt);
  // Final avalanche (splitmix64) so low-entropy keys still spread.
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

}  // namespace

Result<FaultSpec> FaultSpec::Parse(const std::string& text) {
  FaultSpec spec;
  for (const std::string& part : StrSplit(text, ',')) {
    if (part.empty()) continue;
    size_t eq = part.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault spec entry missing '=': " + part);
    }
    std::string key = part.substr(0, eq);
    std::string value = part.substr(eq + 1);
    char* end = nullptr;
    if (key == "seed") {
      spec.seed = strtoull(value.c_str(), &end, 10);
    } else if (key == "transient") {
      spec.transient_probability = std::strtod(value.c_str(), &end);
    } else if (key == "permanent") {
      spec.permanent_probability = std::strtod(value.c_str(), &end);
    } else if (key == "latency_ms") {
      spec.latency_ms = std::strtod(value.c_str(), &end);
    } else if (key == "down_after") {
      spec.down_after = strtoll(value.c_str(), &end, 10);
    } else if (key == "burst_start") {
      spec.burst_start = strtoull(value.c_str(), &end, 10);
    } else if (key == "burst_len") {
      spec.burst_len = strtoull(value.c_str(), &end, 10);
    } else {
      return Status::InvalidArgument("unknown fault spec key: " + key);
    }
    if (end == value.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad fault spec value: " + part);
    }
  }
  if (spec.transient_probability < 0 || spec.transient_probability > 1 ||
      spec.permanent_probability < 0 || spec.permanent_probability > 1) {
    return Status::InvalidArgument("fault probabilities must lie in [0, 1]");
  }
  if (spec.latency_ms < 0) {
    return Status::InvalidArgument("latency_ms must be >= 0");
  }
  if (spec.down_after < -1) {
    return Status::InvalidArgument("down_after must be >= 0 (or -1 = off)");
  }
  return spec;
}

std::string FaultSpec::ToString() const {
  std::string out =
      StrFormat("seed=%llu,transient=%g,permanent=%g,latency_ms=%g",
                static_cast<unsigned long long>(seed), transient_probability,
                permanent_probability, latency_ms);
  if (down_after >= 0) {
    out += StrFormat(",down_after=%lld", static_cast<long long>(down_after));
  }
  if (burst_len > 0) {
    out += StrFormat(",burst_start=%llu,burst_len=%llu",
                     static_cast<unsigned long long>(burst_start),
                     static_cast<unsigned long long>(burst_len));
  }
  return out;
}

FaultInjector::Outcome FaultInjector::Decide(uint64_t key) {
  int attempt;
  uint64_t ordinal;
  {
    MutexLock lock(mu_);
    attempt = attempts_[key]++;
    ordinal = calls_++;
  }
  Outcome out;
  out.latency_ms = spec_.latency_ms;
  // Outage shapes come first: an unreachable server fails every call in the
  // window regardless of the per-key draws below.
  const bool node_down =
      spec_.down_after >= 0 &&
      ordinal >= static_cast<uint64_t>(spec_.down_after);
  const bool in_burst = spec_.burst_len > 0 && ordinal >= spec_.burst_start &&
                        ordinal < spec_.burst_start + spec_.burst_len;
  if (node_down || in_burst) {
    MutexLock lock(mu_);
    ++outage_;
    out.status = Status::Unavailable(
        node_down ? "injected node death: server unreachable"
                  : "injected burst outage: server unreachable");
    return out;
  }
  // Permanent failures are a property of the call key alone: every attempt
  // fails, so retrying is futile and the caller must degrade.
  if (spec_.permanent_probability > 0 &&
      HashToUnit(Mix(spec_.seed, key, /*salt=*/0x7065726dull)) <
          spec_.permanent_probability) {
    MutexLock lock(mu_);
    ++permanent_;
    out.status = Status::Internal("injected permanent optimizer failure");
    return out;
  }
  // Transient failures draw fresh per attempt, so a retry of the same call
  // deterministically succeeds once the attempt's hash clears the threshold.
  if (spec_.transient_probability > 0 &&
      HashToUnit(Mix(spec_.seed, key, 0x7472616eull + attempt)) <
          spec_.transient_probability) {
    MutexLock lock(mu_);
    ++transient_;
    out.status = Status::Unavailable("injected transient optimizer failure");
    return out;
  }
  return out;
}

size_t FaultInjector::calls() const {
  MutexLock lock(mu_);
  return calls_;
}

size_t FaultInjector::transient_failures() const {
  MutexLock lock(mu_);
  return transient_;
}

size_t FaultInjector::permanent_failures() const {
  MutexLock lock(mu_);
  return permanent_;
}

size_t FaultInjector::outage_failures() const {
  MutexLock lock(mu_);
  return outage_;
}

}  // namespace dta
