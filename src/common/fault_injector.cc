#include "common/fault_injector.h"

#include <cerrno>
#include <cstdlib>

#include "common/hash.h"
#include "common/strings.h"

namespace dta {

namespace {

// Uniform double in [0, 1) from a 64-bit hash (53 mantissa bits).
double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

uint64_t Mix(uint64_t seed, uint64_t key, uint64_t salt) {
  uint64_t h = HashCombine(seed, key);
  h = HashCombine(h, salt);
  // Final avalanche (splitmix64) so low-entropy keys still spread.
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

// Strict numeric parsing. The spec strings come from CLI flags and CI
// scripts, where a mis-typed "0.3x" or "1e" must fail loudly, not run a
// silently different chaos scenario: the strto* family alone accepts
// leading whitespace, partially consumed values, "inf"/"nan", hex floats,
// and (via wraparound) negative values for the unsigned parsers. Each
// helper demands one complete, plain, in-range literal.
bool StrictUint64(const std::string& v, uint64_t* out) {
  if (v.empty()) return false;
  for (char c : v) {
    if (!IsDigit(c)) return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  if (errno == ERANGE || end != v.c_str() + v.size()) return false;
  *out = static_cast<uint64_t>(parsed);
  return true;
}

bool StrictInt64(const std::string& v, int64_t* out) {
  const size_t start = (!v.empty() && v[0] == '-') ? 1 : 0;
  if (v.size() == start) return false;
  for (size_t i = start; i < v.size(); ++i) {
    if (!IsDigit(v[i])) return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (errno == ERANGE || end != v.c_str() + v.size()) return false;
  *out = static_cast<int64_t>(parsed);
  return true;
}

bool StrictDouble(const std::string& v, double* out) {
  if (v.empty()) return false;
  const char c0 = v[0];
  if (c0 != '-' && c0 != '.' && !IsDigit(c0)) return false;
  for (char c : v) {
    // Decimal literals with an optional exponent only: no "inf"/"nan", no
    // hex floats, no embedded whitespace.
    if (!IsDigit(c) && c != '.' && c != 'e' && c != 'E' && c != '+' &&
        c != '-') {
      return false;
    }
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (errno == ERANGE || end != v.c_str() + v.size()) return false;
  *out = parsed;
  return true;
}

}  // namespace

Result<FaultSpec> FaultSpec::Parse(const std::string& text) {
  FaultSpec spec;
  for (const std::string& part : StrSplit(text, ',')) {
    if (part.empty()) continue;
    size_t eq = part.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault spec entry missing '=': " + part);
    }
    std::string key = part.substr(0, eq);
    std::string value = part.substr(eq + 1);
    bool ok = false;
    if (key == "seed") {
      ok = StrictUint64(value, &spec.seed);
    } else if (key == "transient") {
      ok = StrictDouble(value, &spec.transient_probability);
    } else if (key == "permanent") {
      ok = StrictDouble(value, &spec.permanent_probability);
    } else if (key == "latency_ms") {
      ok = StrictDouble(value, &spec.latency_ms);
    } else if (key == "down_after") {
      ok = StrictInt64(value, &spec.down_after);
    } else if (key == "burst_start") {
      ok = StrictUint64(value, &spec.burst_start);
    } else if (key == "burst_len") {
      ok = StrictUint64(value, &spec.burst_len);
    } else if (key == "slow_after") {
      ok = StrictInt64(value, &spec.slow_after);
    } else if (key == "slow_factor") {
      ok = StrictDouble(value, &spec.slow_factor);
    } else if (key == "table") {
      // Identifier characters only — a stray ',' or ':' already split
      // elsewhere, so this catches the rest (spaces, quotes, '=').
      ok = !value.empty();
      for (char c : value) {
        if (!(IsDigit(c) || (c >= 'a' && c <= 'z') ||
              (c >= 'A' && c <= 'Z') || c == '_')) {
          ok = false;
        }
      }
      if (ok) spec.table = ToLower(value);
    } else {
      return Status::InvalidArgument("unknown fault spec key: " + key);
    }
    if (!ok) {
      return Status::InvalidArgument("bad fault spec value: " + part);
    }
  }
  if (spec.transient_probability < 0 || spec.transient_probability > 1 ||
      spec.permanent_probability < 0 || spec.permanent_probability > 1) {
    return Status::InvalidArgument("fault probabilities must lie in [0, 1]");
  }
  if (spec.latency_ms < 0) {
    return Status::InvalidArgument("latency_ms must be >= 0");
  }
  if (spec.down_after < -1) {
    return Status::InvalidArgument("down_after must be >= 0 (or -1 = off)");
  }
  if (spec.slow_after < -1) {
    return Status::InvalidArgument("slow_after must be >= 0 (or -1 = off)");
  }
  if (spec.slow_factor < 1) {
    return Status::InvalidArgument("slow_factor must be >= 1");
  }
  return spec;
}

std::string FaultSpec::ToString() const {
  std::string out =
      StrFormat("seed=%llu,transient=%g,permanent=%g,latency_ms=%g",
                static_cast<unsigned long long>(seed), transient_probability,
                permanent_probability, latency_ms);
  if (down_after >= 0) {
    out += StrFormat(",down_after=%lld", static_cast<long long>(down_after));
  }
  if (burst_len > 0) {
    out += StrFormat(",burst_start=%llu,burst_len=%llu",
                     static_cast<unsigned long long>(burst_start),
                     static_cast<unsigned long long>(burst_len));
  }
  if (slow_after >= 0) {
    out += StrFormat(",slow_after=%lld,slow_factor=%g",
                     static_cast<long long>(slow_after), slow_factor);
  }
  if (!table.empty()) {
    out += ",table=" + table;
  }
  return out;
}

FaultInjector::Outcome FaultInjector::Decide(uint64_t key) {
  static const std::set<std::string> kNoTables;
  return Decide(key, kNoTables);
}

FaultInjector::Outcome FaultInjector::Decide(
    uint64_t key, const std::set<std::string>& tables) {
  const bool matched =
      spec_.table.empty() || tables.count(spec_.table) > 0;
  Outcome out;
  int attempt;
  uint64_t ordinal;
  {
    MutexLock lock(mu_);
    ++calls_;
    // A filtered-out call passes through untouched: no latency, no failure,
    // and no ordinal advance — the window shapes describe the targeted
    // table's call stream, not the whole server's.
    if (!matched) return out;
    attempt = attempts_[key]++;
    ordinal = matched_calls_++;
  }
  out.latency_ms = spec_.latency_ms;
  // Fail-slow comes before the failure draws: a slow node is slow for every
  // response it still manages to produce, successful or not.
  if (spec_.slow_after >= 0 &&
      ordinal >= static_cast<uint64_t>(spec_.slow_after)) {
    out.latency_ms *= spec_.slow_factor;
    MutexLock lock(mu_);
    ++slow_;
  }
  // Outage shapes next: an unreachable server fails every call in the
  // window regardless of the per-key draws below.
  const bool node_down =
      spec_.down_after >= 0 &&
      ordinal >= static_cast<uint64_t>(spec_.down_after);
  const bool in_burst = spec_.burst_len > 0 && ordinal >= spec_.burst_start &&
                        ordinal < spec_.burst_start + spec_.burst_len;
  if (node_down || in_burst) {
    MutexLock lock(mu_);
    ++outage_;
    out.status = Status::Unavailable(
        node_down ? "injected node death: server unreachable"
                  : "injected burst outage: server unreachable");
    return out;
  }
  // Permanent failures are a property of the call key alone: every attempt
  // fails, so retrying is futile and the caller must degrade.
  if (spec_.permanent_probability > 0 &&
      HashToUnit(Mix(spec_.seed, key, /*salt=*/0x7065726dull)) <
          spec_.permanent_probability) {
    MutexLock lock(mu_);
    ++permanent_;
    out.status = Status::Internal("injected permanent optimizer failure");
    return out;
  }
  // Transient failures draw fresh per attempt, so a retry of the same call
  // deterministically succeeds once the attempt's hash clears the threshold.
  if (spec_.transient_probability > 0 &&
      HashToUnit(Mix(spec_.seed, key, 0x7472616eull + attempt)) <
          spec_.transient_probability) {
    MutexLock lock(mu_);
    ++transient_;
    out.status = Status::Unavailable("injected transient optimizer failure");
    return out;
  }
  return out;
}

size_t FaultInjector::calls() const {
  MutexLock lock(mu_);
  return calls_;
}

size_t FaultInjector::transient_failures() const {
  MutexLock lock(mu_);
  return transient_;
}

size_t FaultInjector::permanent_failures() const {
  MutexLock lock(mu_);
  return permanent_;
}

size_t FaultInjector::outage_failures() const {
  MutexLock lock(mu_);
  return outage_;
}

size_t FaultInjector::slow_calls() const {
  MutexLock lock(mu_);
  return slow_;
}

size_t FaultInjector::skipped_calls() const {
  MutexLock lock(mu_);
  return calls_ - matched_calls_;
}

}  // namespace dta
