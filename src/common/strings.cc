#include "common/strings.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace dta {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view StrTrim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string CompactDouble(double v) {
  if (std::floor(v) == v && std::fabs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  std::string s = StrFormat("%.6g", v);
  return s;
}

}  // namespace dta
