// Small string utilities (join/split/trim/case/format) used project-wide.

#ifndef DTA_COMMON_STRINGS_H_
#define DTA_COMMON_STRINGS_H_

#include <cstdarg>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace dta {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Joins elements with `sep`, using operator<< to render each element.
template <typename Container>
std::string StrJoin(const Container& parts, std::string_view sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out << sep;
    first = false;
    out << p;
  }
  return out.str();
}

// Splits on a single character; empty tokens are kept.
std::vector<std::string> StrSplit(std::string_view s, char sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Renders a double compactly ("12", "12.5", "0.033").
std::string CompactDouble(double v);

}  // namespace dta

#endif  // DTA_COMMON_STRINGS_H_
