// Error-handling primitives used across the dta codebase.
//
// We do not use exceptions across API boundaries (database-domain idiom, cf.
// RocksDB). Fallible functions return `dta::Status` or `dta::Result<T>`.

#ifndef DTA_COMMON_STATUS_H_
#define DTA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace dta {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  // Transient failure of a dependency (e.g. a what-if optimizer call on a
  // loaded server); retrying the same operation may succeed.
  kUnavailable,
  // The operation ran out of its time budget.
  kDeadlineExceeded,
  // The operation was deliberately interrupted (e.g. a tuning session killed
  // after writing a checkpoint); resumable, not an internal error.
  kAborted,
};

// True for codes that describe transient conditions worth retrying.
inline bool IsTransientCode(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}

// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A cheap value type describing the outcome of an operation.
class Status {
 public:
  // Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

}  // namespace dta

// Propagates a non-OK Status from an expression returning Status.
#define DTA_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::dta::Status _dta_status = (expr);          \
    if (!_dta_status.ok()) return _dta_status;   \
  } while (false)

// Evaluates an expression returning Result<T>; on error propagates the
// Status, otherwise assigns the value to `lhs`.
#define DTA_ASSIGN_OR_RETURN(lhs, expr)             \
  auto DTA_CONCAT_(_dta_result_, __LINE__) = (expr);                \
  if (!DTA_CONCAT_(_dta_result_, __LINE__).ok())                    \
    return DTA_CONCAT_(_dta_result_, __LINE__).status();            \
  lhs = std::move(DTA_CONCAT_(_dta_result_, __LINE__)).value()

#define DTA_CONCAT_INNER_(a, b) a##b
#define DTA_CONCAT_(a, b) DTA_CONCAT_INNER_(a, b)

#endif  // DTA_COMMON_STATUS_H_
