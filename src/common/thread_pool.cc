#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace dta {

void WaitGroup::Add(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  count_ += n;
}

void WaitGroup::Done() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--count_ <= 0) cv_.notify_all();
}

void WaitGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return count_ <= 0; });
}

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(0, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn,
                 const std::function<bool()>& cancel) {
  if (n == 0) return;
  auto cancelled = [&cancel] { return cancel != nullptr && cancel(); };
  const size_t workers =
      pool == nullptr ? 0 : static_cast<size_t>(pool->num_workers());
  if (workers == 0 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      if (cancelled()) return;
      fn(i);
    }
    return;
  }

  std::atomic<size_t> next{0};
  auto run = [&next, &fn, &cancelled, n] {
    while (!cancelled()) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };

  // The caller takes one claim loop itself, so only n - 1 helpers are ever
  // useful. Helpers reference stack state; Wait() below keeps it alive.
  const size_t helpers = std::min(workers, n - 1);
  WaitGroup wg;
  wg.Add(static_cast<int>(helpers));
  for (size_t i = 0; i < helpers; ++i) {
    pool->Submit([&run, &wg] {
      run();
      wg.Done();
    });
  }
  run();
  wg.Wait();
}

}  // namespace dta
