#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/logging.h"

namespace dta {

void WaitGroup::Add(int n) {
  MutexLock lock(mu_);
  count_ += n;
}

void WaitGroup::Done() {
  MutexLock lock(mu_);
  if (--count_ <= 0) cv_.NotifyAll();
}

void WaitGroup::Wait() {
  MutexLock lock(mu_);
  while (count_ > 0) cv_.Wait(mu_);
}

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(0, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ set and drained
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn,
                 const std::function<bool()>& cancel) {
  if (n == 0) return;
  auto cancelled = [&cancel, pool] {
    if (cancel == nullptr) return false;
    // The predicate may block or take locks of its own; invoking it under
    // the pool queue lock would be a latent self-deadlock. Checked at
    // every poll so the violation is deterministic, not interleaving-luck.
    DTA_CHECK(pool == nullptr || !pool->QueueLockHeldByCurrentThread(),
              "ParallelFor cancel predicate invoked under the pool queue "
              "lock");
    return cancel();
  };
  const size_t workers =
      pool == nullptr ? 0 : static_cast<size_t>(pool->num_workers());
  if (workers == 0 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      if (cancelled()) return;
      fn(i);
    }
    return;
  }

  std::atomic<size_t> next{0};
  auto run = [&next, &fn, &cancelled, n] {
    while (!cancelled()) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };

  // The caller takes one claim loop itself, so only n - 1 helpers are ever
  // useful. Helpers reference stack state; Wait() below keeps it alive.
  const size_t helpers = std::min(workers, n - 1);
  WaitGroup wg;
  wg.Add(static_cast<int>(helpers));
  for (size_t i = 0; i < helpers; ++i) {
    pool->Submit([&run, &wg] {
      run();
      wg.Done();
    });
  }
  run();
  wg.Wait();
}

}  // namespace dta
