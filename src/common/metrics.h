// Thread-safe metrics: counters, gauges, and fixed log-scale histograms,
// collected in a MetricsRegistry and exported as deterministic sorted JSON.
//
// DTA's scalability story is told in counted quantities — what-if optimizer
// invocations, cache hits, retries, per-phase latencies (paper §6 reports
// call counts and tuning wall-clock) — so they are first-class measured
// values here rather than ad-hoc struct fields. Every pipeline layer
// (CostService, Optimizer, TuningSession, benches) reports through one
// registry, and CI diffs the exported JSON run-over-run.
//
// Determinism contract: all state is integral (counters, bucket counts) or
// fixed-point (histogram sums accrue in integer microseconds), so any
// interleaving of the same logical updates yields byte-identical exports —
// the registry never makes a thread-count-invariant pipeline observable as
// thread-count-variant. Export order is sorted by metric name.
//
// Handles returned by GetCounter/GetGauge/GetHistogram are stable for the
// registry's lifetime and safe to update from any thread without locks.

#ifndef DTA_COMMON_METRICS_H_
#define DTA_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dta {

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins scalar (phase durations, derived ratios). Writers are
// expected to be single-owner (the session/bench thread); reads are safe
// from anywhere.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

// Histogram with fixed log2-scale buckets, tuned for millisecond latencies:
//   bucket 0            value < 1
//   bucket i (1..N-2)   2^(i-1) <= value < 2^i
//   bucket N-1          value >= 2^(N-2)  (overflow absorber)
// The sum accrues in integer microseconds so concurrent observers cannot
// introduce order-dependent floating-point rounding.
class Histogram {
 public:
  static constexpr size_t kBuckets = 24;  // last finite bound: 2^22 ms ≈ 70 min

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_micros() const {
    return sum_micros_.load(std::memory_order_relaxed);
  }
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Exclusive upper bound of bucket i; +infinity for the last bucket.
  static double BucketUpperBound(size_t i);

  // Folds a snapshot of another histogram into this one (bucketwise integer
  // addition, so merging preserves the determinism contract).
  void Merge(const struct HistogramSnapshot& snap);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
};

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum_micros = 0;
  std::vector<uint64_t> buckets;  // kBuckets entries
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by name. A name registers exactly one metric kind;
  // requesting it as another kind aborts (metric names are compile-time
  // constants, so a collision is a programming error, not input).
  Counter* GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name) EXCLUDES(mu_);

  // Sorted snapshots (std::map order == export order).
  std::map<std::string, uint64_t> CounterValues() const EXCLUDES(mu_);
  std::map<std::string, double> GaugeValues() const EXCLUDES(mu_);
  std::map<std::string, HistogramSnapshot> HistogramValues() const
      EXCLUDES(mu_);

  // Appends `"counters":{...},"gauges":{...},"histograms":{...}` (no outer
  // braces) to `out`, names sorted, values formatted with fixed precision —
  // byte-identical for identical logical contents. See ObservabilityJson
  // (common/trace.h) for the full document.
  void AppendJsonBody(std::string* out, const std::string& indent) const;

  // Folds a snapshot of `other` into this registry, every metric renamed to
  // `prefix + name` (counters add, gauges last-write-win, histograms merge
  // bucketwise). The multi-tenant driver merges each tenant's private
  // registry under "tenant.<name>." this way — serially, after the tenant
  // threads join, so the merged export is deterministic whenever the
  // per-tenant registries are.
  void MergeFrom(const MetricsRegistry& other, const std::string& prefix)
      EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

// Minimal JSON string escaping for metric/span names.
std::string JsonEscape(const std::string& s);

}  // namespace dta

#endif  // DTA_COMMON_METRICS_H_
