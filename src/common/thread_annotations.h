// Clang Thread Safety Analysis annotation macros.
//
// These expand to Clang's thread-safety attributes when the compiler
// supports them and to nothing everywhere else (GCC, MSVC), so annotated
// code builds unchanged on every toolchain while `clang++ -Wthread-safety
// -Werror` turns lock-discipline violations into compile errors.
//
// Conventions in this repo (see DESIGN.md "Static analysis"):
//   * Every mutex-protected member is annotated GUARDED_BY(its mutex).
//   * Functions that must be called with a lock held are REQUIRES(mu);
//     functions that acquire a lock internally are EXCLUDES(mu) so callers
//     cannot re-enter while holding it.
//   * Raw std::mutex / std::lock_guard are invisible to the analysis; use
//     dta::Mutex / dta::MutexLock / dta::CondVar from common/mutex.h
//     (enforced by the raw-mutex rule in tools/dta_lint.cc).

#ifndef DTA_COMMON_THREAD_ANNOTATIONS_H_
#define DTA_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define DTA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DTA_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// Type attributes ----------------------------------------------------------

// Marks a class as a lockable capability (e.g. a mutex wrapper).
#define CAPABILITY(x) DTA_THREAD_ANNOTATION(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases a
// capability (e.g. a scoped lock guard).
#define SCOPED_CAPABILITY DTA_THREAD_ANNOTATION(scoped_lockable)

// Data-member attributes ---------------------------------------------------

// The member may only be accessed while holding the given capability.
#define GUARDED_BY(x) DTA_THREAD_ANNOTATION(guarded_by(x))

// The pointee may only be accessed while holding the given capability.
#define PT_GUARDED_BY(x) DTA_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock-ordering declarations (deadlock prevention).
#define ACQUIRED_BEFORE(...) DTA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) DTA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function attributes ------------------------------------------------------

// The function must be called with the given capabilities held.
#define REQUIRES(...) \
  DTA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  DTA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// The function acquires/releases the given capabilities.
#define ACQUIRE(...) DTA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  DTA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) DTA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  DTA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

// The function acquires the capability iff it returns `val`.
#define TRY_ACQUIRE(val, ...) \
  DTA_THREAD_ANNOTATION(try_acquire_capability(val, __VA_ARGS__))

// The function must NOT be called with the given capabilities held (it
// acquires them itself; re-entry would self-deadlock).
#define EXCLUDES(...) DTA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Asserts at runtime that the capability is held, and tells the analysis so.
#define ASSERT_CAPABILITY(x) DTA_THREAD_ANNOTATION(assert_capability(x))

// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) DTA_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: disables the analysis for one function. Use only for code
// whose locking pattern the analysis cannot express, and say why.
#define NO_THREAD_SAFETY_ANALYSIS \
  DTA_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // DTA_COMMON_THREAD_ANNOTATIONS_H_
