#include "common/clock.h"

#include <chrono>

namespace dta {

double MonotonicClock::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

MonotonicClock* MonotonicClock::Instance() {
  static MonotonicClock clock;
  return &clock;
}

double MonotonicNowMs() { return MonotonicClock::Instance()->NowMs(); }

}  // namespace dta
