// Hash-combining helpers (FNV-1a based) for building signatures and keys.

#ifndef DTA_COMMON_HASH_H_
#define DTA_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace dta {

inline constexpr uint64_t kFnvOffset = 14695981039346656037ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t HashBytes(std::string_view bytes, uint64_t seed = kFnvOffset) {
  uint64_t h = seed;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  // boost::hash_combine-style mix over 64 bits.
  a ^= b + 0x9e3779b97f4a7c15ull + (a << 12) + (a >> 4);
  return a;
}

}  // namespace dta

#endif  // DTA_COMMON_HASH_H_
