// Deterministic pseudo-random generation helpers for synthetic data and
// workload generators. All generators are seeded explicitly so experiments
// are reproducible run-to-run.

#ifndef DTA_COMMON_RANDOM_H_
#define DTA_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace dta {

class Random {
 public:
  explicit Random(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Uniform double in [lo, hi).
  double UniformReal(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  // True with probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  // Zipf-distributed value in [1, n] with skew parameter `theta` (>0).
  // theta=0 degenerates to uniform. Uses the rejection-inversion-free
  // cumulative method with a cached normalization constant for small n and
  // the approximation of Gray et al. for large n.
  int64_t Zipf(int64_t n, double theta);

  // Picks an index in [0, weights.size()) proportionally to weights.
  size_t Weighted(const std::vector<double>& weights);

  // Random lowercase ASCII string of the given length.
  std::string AlphaString(size_t length);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dta

#endif  // DTA_COMMON_RANDOM_H_
