// Annotated mutex, scoped lock, and condition variable wrappers.
//
// std::mutex / std::lock_guard / std::condition_variable are invisible to
// Clang Thread Safety Analysis (libstdc++ carries no capability
// annotations), so code using them gets no compile-time lock checking. The
// wrappers here are thin, allocation-free shims over the standard types
// that carry the annotations from common/thread_annotations.h:
//
//   Mutex mu;                      // a CAPABILITY the analysis tracks
//   int shared GUARDED_BY(mu);    // compile error if touched without mu
//   { MutexLock lock(mu); ... }   // SCOPED_CAPABILITY guard
//   cv.Wait(mu);                  // REQUIRES(mu); atomically releases and
//                                 // re-acquires around the sleep
//
// dta_lint's raw-mutex rule forbids the unannotated std types outside this
// header, so every lock in src/ is visible to `clang++ -Wthread-safety`.
//
// Mutex additionally tracks its owning thread (two relaxed atomic stores
// per lock/unlock), which powers runtime assertions that complement the
// static analysis where it cannot reach — e.g. ThreadPool asserts that
// ParallelFor cancel predicates never run under the pool queue lock.

#ifndef DTA_COMMON_MUTEX_H_
#define DTA_COMMON_MUTEX_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/thread_annotations.h"

namespace dta {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // BasicLockable interface (std names, so std::condition_variable_any and
  // std::unique_lock<Mutex> both work), annotated for the analysis.
  void lock() ACQUIRE() {
    mu_.lock();
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }
  void unlock() RELEASE() {
    owner_.store(std::thread::id(), std::memory_order_relaxed);
    mu_.unlock();
  }

  // True iff the calling thread currently holds this mutex. Exact for the
  // calling thread: only it can have stored its own id (under the lock),
  // and it clears the id before unlocking.
  bool HeldByCurrentThread() const {
    return owner_.load(std::memory_order_relaxed) ==
           std::this_thread::get_id();
  }

  // Runtime complement of REQUIRES(this): aborts if the caller does not
  // hold the mutex, and informs the static analysis that it is held.
  void AssertHeld() const ASSERT_CAPABILITY(this) {
    DTA_CHECK(HeldByCurrentThread(),
              "mutex required to be held by the calling thread");
  }

 private:
  friend class CondVar;
  std::mutex mu_;  // lint: raw-mutex, unguarded-mutex (the wrapper itself)
  std::atomic<std::thread::id> owner_{};
};

// RAII guard; the only sanctioned way to lock a Mutex. Guard variables must
// be named with a `lock` suffix (dta_lint lock-naming rule).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to Mutex. Wait takes the Mutex itself (which the
// caller must hold — REQUIRES makes that a compile-time obligation under
// Clang) rather than a std::unique_lock, so waiting call sites stay fully
// visible to the analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu` and blocks until notified; `mu` is re-held on
  // return. Subject to spurious wakeups: always call in a predicate loop.
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  // Timed wait: blocks until notified or `timeout_ms` has elapsed, whichever
  // comes first; `mu` is re-held on return. Returns false iff the wait timed
  // out. A relative duration, not a wall-clock read, so determinism-gated
  // outputs must never depend on which branch returned — callers use it only
  // to bound sleeps (RPC deadline sweeps), never to derive results.
  bool WaitForMs(Mutex& mu, double timeout_ms) REQUIRES(mu) {
    return cv_.wait_for(mu, std::chrono::duration<double, std::milli>(
                                timeout_ms)) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;  // lint: raw-mutex (the wrapper itself)
};

}  // namespace dta

#endif  // DTA_COMMON_MUTEX_H_
