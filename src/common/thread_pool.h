// A small fixed-size worker pool with submit/wait-group semantics and a
// ParallelFor helper.
//
// DTA's hot path is what-if costing, and most of it is embarrassingly
// parallel: the current-cost pass, per-statement candidate selection and the
// per-candidate evaluations of a greedy round are all independent. The pool
// fans that work out across threads.
//
// Design notes:
//   * Tasks must not throw; Status-style error handling is expected (store
//     a Status per work item and check after the join).
//   * ParallelFor lets the calling thread participate, so a pool with N
//     workers applies N + 1 threads to a loop, and a null pool (or an empty
//     loop) degrades to the plain serial loop — bit-for-bit identical to
//     single-threaded execution.
//   * The pool is agnostic to iteration order; callers that need
//     deterministic results must make their per-item work order-independent
//     (write to slot i, reduce serially afterwards).
//   * Locking is annotated for Clang Thread Safety Analysis (see
//     common/thread_annotations.h); `clang++ -Wthread-safety -Werror`
//     rejects any access to the queue or stop flag without the queue lock.

#ifndef DTA_COMMON_THREAD_POOL_H_
#define DTA_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dta {

// Counts outstanding work items; Wait blocks until the count drops to zero.
class WaitGroup {
 public:
  void Add(int n) EXCLUDES(mu_);
  void Done() EXCLUDES(mu_);
  void Wait() EXCLUDES(mu_);

 private:
  Mutex mu_;
  CondVar cv_;
  int count_ GUARDED_BY(mu_) = 0;
};

class ThreadPool {
 public:
  // Spawns up to `num_threads` workers (negative values clamp to zero; a
  // pool with zero workers is legal and makes ParallelFor run serially).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task for execution on some worker thread. Acquires the queue
  // lock; must not be called while holding it (EXCLUDES), so a task that
  // submits follow-up work cannot self-deadlock.
  void Submit(std::function<void()> fn) EXCLUDES(mu_);

  // True iff the calling thread holds the pool's queue lock. The pool never
  // runs caller code (tasks, cancel predicates) under that lock; ParallelFor
  // enforces this with a DTA_CHECK before every cancel-predicate call.
  bool QueueLockHeldByCurrentThread() const {
    return mu_.HeldByCurrentThread();
  }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

// Runs fn(0) ... fn(n - 1) across the pool's workers plus the calling
// thread and blocks until every call has finished. Iterations are claimed
// dynamically (atomic counter), so uneven work still balances. With a null
// or worker-less pool this is exactly the serial loop.
//
// When `cancel` is provided, every worker polls it before claiming the next
// iteration and stops claiming once it returns true (iterations already
// started run to completion). This is how time-bounded tuning stops a
// fanned-out phase mid-flight instead of only at phase boundaries; callers
// must treat unclaimed slots as "not run". The serial path polls identically.
//
// The cancel predicate runs on pool worker threads and on the calling
// thread, always *outside* the pool's queue lock — a predicate is free to
// block, take its own locks, or inspect the pool without self-deadlocking.
// ParallelFor checks this invariant (DTA_CHECK) on every poll, so a future
// scheduler refactor that moves the poll under the queue lock fails fast
// and deterministically rather than deadlocking under load.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn,
                 const std::function<bool()>& cancel = nullptr);

}  // namespace dta

#endif  // DTA_COMMON_THREAD_POOL_H_
