// A small fixed-size worker pool with submit/wait-group semantics and a
// ParallelFor helper.
//
// DTA's hot path is what-if costing, and most of it is embarrassingly
// parallel: the current-cost pass, per-statement candidate selection and the
// per-candidate evaluations of a greedy round are all independent. The pool
// fans that work out across threads.
//
// Design notes:
//   * Tasks must not throw; Status-style error handling is expected (store
//     a Status per work item and check after the join).
//   * ParallelFor lets the calling thread participate, so a pool with N
//     workers applies N + 1 threads to a loop, and a null pool (or an empty
//     loop) degrades to the plain serial loop — bit-for-bit identical to
//     single-threaded execution.
//   * The pool is agnostic to iteration order; callers that need
//     deterministic results must make their per-item work order-independent
//     (write to slot i, reduce serially afterwards).

#ifndef DTA_COMMON_THREAD_POOL_H_
#define DTA_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dta {

// Counts outstanding work items; Wait blocks until the count drops to zero.
class WaitGroup {
 public:
  void Add(int n);
  void Done();
  void Wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_ = 0;
};

class ThreadPool {
 public:
  // Spawns up to `num_threads` workers (negative values clamp to zero; a
  // pool with zero workers is legal and makes ParallelFor run serially).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task for execution on some worker thread.
  void Submit(std::function<void()> fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// Runs fn(0) ... fn(n - 1) across the pool's workers plus the calling
// thread and blocks until every call has finished. Iterations are claimed
// dynamically (atomic counter), so uneven work still balances. With a null
// or worker-less pool this is exactly the serial loop.
//
// When `cancel` is provided, every worker polls it before claiming the next
// iteration and stops claiming once it returns true (iterations already
// started run to completion). This is how time-bounded tuning stops a
// fanned-out phase mid-flight instead of only at phase boundaries; callers
// must treat unclaimed slots as "not run". The serial path polls identically.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn,
                 const std::function<bool()>& cancel = nullptr);

}  // namespace dta

#endif  // DTA_COMMON_THREAD_POOL_H_
