#include "common/metrics.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/strings.h"

namespace dta {

namespace {

size_t BucketIndex(double value) {
  if (!(value >= 1.0)) return 0;  // negatives, zero, NaN, sub-millisecond
  // ilogb(v) = floor(log2(v)) exactly for finite v >= 1.
  const int l = std::ilogb(value);
  const size_t idx = static_cast<size_t>(l) + 1;
  return idx < Histogram::kBuckets ? idx : Histogram::kBuckets - 1;
}

}  // namespace

void Histogram::Observe(double value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Accrue in integer microseconds: integer addition is associative, so the
  // sum is independent of observation interleaving.
  double micros = value * 1000.0;
  if (micros > 0) {
    sum_micros_.fetch_add(static_cast<uint64_t>(std::llround(micros)),
                          std::memory_order_relaxed);
  }
}

double Histogram::BucketUpperBound(size_t i) {
  if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i));  // 2^i
}

void Histogram::Merge(const HistogramSnapshot& snap) {
  for (size_t i = 0; i < kBuckets && i < snap.buckets.size(); ++i) {
    if (snap.buckets[i] > 0) {
      buckets_[i].fetch_add(snap.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(snap.count, std::memory_order_relaxed);
  sum_micros_.fetch_add(snap.sum_micros, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    DTA_CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0,
              "metric name already registered with a different kind");
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    DTA_CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0,
              "metric name already registered with a different kind");
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    DTA_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0,
              "metric name already registered with a different kind");
    it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
  }
  return it->second.get();
}

std::map<std::string, uint64_t> MetricsRegistry::CounterValues() const {
  MutexLock lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::map<std::string, double> MetricsRegistry::GaugeValues() const {
  MutexLock lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  return out;
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::HistogramValues()
    const {
  MutexLock lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap;
    snap.count = h->count();
    snap.sum_micros = h->sum_micros();
    snap.buckets.reserve(Histogram::kBuckets);
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      snap.buckets.push_back(h->bucket_count(i));
    }
    out.emplace(name, std::move(snap));
  }
  return out;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other,
                                const std::string& prefix) {
  // Snapshot first: the Get* calls below take this registry's lock, and
  // snapshots keep the two registries' locks strictly sequenced (never held
  // together), so self-merge aside, no lock-order issue can arise.
  const auto counters = other.CounterValues();
  const auto gauges = other.GaugeValues();
  const auto histograms = other.HistogramValues();
  for (const auto& [name, value] : counters) {
    // Zero counters merge too: the merged export must carry every name the
    // tenant registry carried, or exports would differ by which counters
    // happened to fire.
    GetCounter(prefix + name)->Increment(value);
  }
  for (const auto& [name, value] : gauges) {
    GetGauge(prefix + name)->Set(value);
  }
  for (const auto& [name, snap] : histograms) {
    GetHistogram(prefix + name)->Merge(snap);
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void MetricsRegistry::AppendJsonBody(std::string* out,
                                     const std::string& indent) const {
  const auto counters = CounterValues();
  const auto gauges = GaugeValues();
  const auto histograms = HistogramValues();

  auto object = [&](const char* key, size_t size, auto&& emit_entries) {
    *out += indent + "\"" + key + "\": {";
    if (size == 0) {
      *out += "},\n";
      return;
    }
    *out += "\n";
    emit_entries();
    *out += indent + "},\n";
  };

  object("counters", counters.size(), [&] {
    size_t i = 0;
    for (const auto& [name, value] : counters) {
      *out += indent + "  \"" + JsonEscape(name) + "\": " +
              StrFormat("%llu", static_cast<unsigned long long>(value)) +
              (++i < counters.size() ? ",\n" : "\n");
    }
  });
  object("gauges", gauges.size(), [&] {
    size_t i = 0;
    for (const auto& [name, value] : gauges) {
      *out += indent + "  \"" + JsonEscape(name) +
              "\": " + StrFormat("%.3f", value) +
              (++i < gauges.size() ? ",\n" : "\n");
    }
  });
  // Histograms close without a trailing comma: callers append "spans" next.
  *out += indent + "\"histograms\": {";
  if (histograms.empty()) {
    *out += "}";
  } else {
    *out += "\n";
    size_t i = 0;
    for (const auto& [name, snap] : histograms) {
      *out += indent + "  \"" + JsonEscape(name) + "\": {\"count\": " +
              StrFormat("%llu", static_cast<unsigned long long>(snap.count)) +
              ", \"sum_ms\": " +
              StrFormat("%.3f", static_cast<double>(snap.sum_micros) / 1000.0) +
              ", \"buckets\": [";
      bool first = true;
      for (size_t b = 0; b < snap.buckets.size(); ++b) {
        if (snap.buckets[b] == 0) continue;  // sparse: empty buckets elided
        if (!first) *out += ", ";
        first = false;
        const double ub = Histogram::BucketUpperBound(b);
        *out += "{\"le\": ";
        *out += std::isinf(ub) ? std::string("\"+inf\"")
                               : StrFormat("%.0f", ub);
        *out += StrFormat(
            ", \"count\": %llu}",
            static_cast<unsigned long long>(snap.buckets[b]));
      }
      *out += "]}";
      *out += (++i < histograms.size() ? ",\n" : "\n");
    }
    *out += indent + "}";
  }
}

}  // namespace dta
