// Injectable monotonic clocks.
//
// Every duration the tuner measures (phase spans, what-if latency, tuning
// wall-clock, retry deadlines) flows through a dta::Clock so tests and the
// golden-file observability checks can substitute a deterministic clock and
// get byte-identical metric exports at any thread count. The dta_lint
// wall-clock rule forbids std::chrono::steady_clock outside this module:
// these two files are the only sanctioned call sites.
//
//   Clock* clock = MonotonicClock::Instance();   // real time (default)
//   FakeClock fake(100.0);                        // tests: fixed / scripted
//   double t0 = clock->NowMs(); ...; double dt = clock->NowMs() - t0;
//
// NowMs() is milliseconds on an arbitrary monotonic epoch — only differences
// are meaningful. All clocks are safe to read from any thread.

#ifndef DTA_COMMON_CLOCK_H_
#define DTA_COMMON_CLOCK_H_

#include <atomic>

namespace dta {

class Clock {
 public:
  virtual ~Clock() = default;
  // Monotonic milliseconds since an arbitrary epoch. Thread-safe.
  virtual double NowMs() const = 0;
};

// The real monotonic clock (std::chrono::steady_clock). Stateless; use the
// shared instance rather than constructing one per caller.
class MonotonicClock : public Clock {
 public:
  double NowMs() const override;
  static MonotonicClock* Instance();
};

// Convenience for call sites that only ever want real time (benches, the
// executor's measured elapsed time).
double MonotonicNowMs();

// A manually advanced clock. Time stands still unless AdvanceMs is called,
// so durations measured against it are exact functions of the advances a
// test scripts — independent of scheduling, thread count, or machine speed.
class FakeClock : public Clock {
 public:
  explicit FakeClock(double start_ms = 0) : now_ms_(start_ms) {}

  double NowMs() const override {
    return now_ms_.load(std::memory_order_relaxed);
  }
  void AdvanceMs(double delta_ms) {
    // fetch_add on atomic<double> needs C++20; a CAS loop keeps this C++17.
    double cur = now_ms_.load(std::memory_order_relaxed);
    while (!now_ms_.compare_exchange_weak(cur, cur + delta_ms,
                                          std::memory_order_relaxed)) {
    }
  }
  void SetMs(double now_ms) {
    now_ms_.store(now_ms, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> now_ms_;
};

}  // namespace dta

#endif  // DTA_COMMON_CLOCK_H_
