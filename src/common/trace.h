// Phase-scoped tracing: a parent/child span tree with monotonic timings.
//
// The tuning pipeline is a fixed sequence of phases (current-cost pass,
// candidate generation/selection, merging, enumeration) with checkpoint
// writes interleaved; the tracer records that structure as nested spans so
// a tuning run's time budget is attributable — which phase spent it, and
// how much of it was robustness overhead (checkpoint spans vs the root
// span). Usage:
//
//   Tracer tracer(clock);                 // clock injectable for tests
//   {
//     DTA_TRACE_PHASE(&tracer, "enumeration");   // RAII span
//     ...
//   }
//
// Spans are opened and closed by one logical thread of control (the session
// thread): Begin/End are strictly LIFO, checked at runtime. Fan-out inside
// a phase is reported through histograms/counters (MetricsRegistry), not
// per-worker spans, which keeps the span tree deterministic at any thread
// count. Timings come from the injected Clock; under a FakeClock the whole
// tree (structure and durations) is byte-identical run-to-run, which the
// golden observability test pins down.

#ifndef DTA_COMMON_TRACE_H_
#define DTA_COMMON_TRACE_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dta {

class Tracer {
 public:
  // Null clock means the real monotonic clock.
  explicit Tracer(const Clock* clock = nullptr)
      : clock_(clock != nullptr ? clock : MonotonicClock::Instance()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Opens a span as a child of the innermost open span (or a root). Returns
  // the span id to pass to EndSpan. Prefer DTA_TRACE_PHASE.
  int BeginSpan(const std::string& name) EXCLUDES(mu_);
  // Closes the span; must be the innermost open one (LIFO, checked).
  void EndSpan(int id) EXCLUDES(mu_);

  // Pre-order flattened view for tests and report summaries. Start times
  // are relative to the first span ever begun; still-open spans report a
  // negative duration.
  struct SpanView {
    std::string name;
    int depth = 0;  // 0 = root
    double start_ms = 0;
    double duration_ms = 0;
  };
  std::vector<SpanView> Spans() const EXCLUDES(mu_);

  // Total duration of closed spans with this exact name (e.g. summed
  // "checkpoint" spans = robustness overhead).
  double TotalDurationMs(const std::string& name) const EXCLUDES(mu_);

  // Appends the span forest as a JSON array (deterministic: creation order,
  // fixed precision, start times relative to the first span).
  void AppendJson(std::string* out, const std::string& indent) const
      EXCLUDES(mu_);

 private:
  struct Span {
    std::string name;
    double start_ms = 0;
    double duration_ms = -1;  // -1 while open
    int parent = -1;
    std::vector<int> children;
  };

  void AppendSpanJson(const std::vector<Span>& spans, int id, double origin,
                      std::string* out, const std::string& indent) const;

  const Clock* clock_;
  mutable Mutex mu_;
  std::vector<Span> spans_ GUARDED_BY(mu_);
  std::vector<int> stack_ GUARDED_BY(mu_);
};

// RAII span scope; tolerates a null tracer (the whole layer is opt-in).
class TraceScope {
 public:
  TraceScope(Tracer* tracer, const char* name) : tracer_(tracer) {
    if (tracer_ != nullptr) id_ = tracer_->BeginSpan(name);
  }
  ~TraceScope() {
    if (tracer_ != nullptr) tracer_->EndSpan(id_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Tracer* tracer_;
  int id_ = -1;
};

#define DTA_TRACE_CONCAT_INNER(a, b) a##b
#define DTA_TRACE_CONCAT(a, b) DTA_TRACE_CONCAT_INNER(a, b)
#define DTA_TRACE_PHASE(tracer, name) \
  ::dta::TraceScope DTA_TRACE_CONCAT(trace_scope_, __LINE__)((tracer), (name))

// The full observability document: metrics body + span forest, stable
// schema ("dta-observability-v1"), sorted and fixed-precision throughout.
// `tracer` may be null (empty span array). This is the format dta_cli
// --metrics-json writes and bench/baseline.json compares against.
std::string ObservabilityJson(const MetricsRegistry& metrics,
                              const Tracer* tracer);

}  // namespace dta

#endif  // DTA_COMMON_TRACE_H_
