#include "common/trace.h"

#include "common/logging.h"
#include "common/strings.h"

namespace dta {

int Tracer::BeginSpan(const std::string& name) {
  const double now = clock_->NowMs();
  MutexLock lock(mu_);
  const int id = static_cast<int>(spans_.size());
  Span span;
  span.name = name;
  span.start_ms = now;
  if (!stack_.empty()) {
    span.parent = stack_.back();
    spans_[static_cast<size_t>(span.parent)].children.push_back(id);
  }
  spans_.push_back(std::move(span));
  stack_.push_back(id);
  return id;
}

void Tracer::EndSpan(int id) {
  const double now = clock_->NowMs();
  MutexLock lock(mu_);
  DTA_CHECK(!stack_.empty() && stack_.back() == id,
            "EndSpan out of order: spans close strictly LIFO");
  Span& span = spans_[static_cast<size_t>(id)];
  span.duration_ms = now - span.start_ms;
  stack_.pop_back();
}

std::vector<Tracer::SpanView> Tracer::Spans() const {
  MutexLock lock(mu_);
  std::vector<SpanView> out;
  out.reserve(spans_.size());
  const double origin = spans_.empty() ? 0 : spans_[0].start_ms;
  // Pre-order walk over the roots in creation order.
  struct Item {
    int id;
    int depth;
  };
  std::vector<Item> pending;
  for (size_t i = spans_.size(); i > 0; --i) {
    if (spans_[i - 1].parent == -1) {
      pending.push_back(Item{static_cast<int>(i - 1), 0});
    }
  }
  while (!pending.empty()) {
    Item item = pending.back();
    pending.pop_back();
    const Span& span = spans_[static_cast<size_t>(item.id)];
    out.push_back(SpanView{span.name, item.depth, span.start_ms - origin,
                           span.duration_ms});
    for (size_t c = span.children.size(); c > 0; --c) {
      pending.push_back(Item{span.children[c - 1], item.depth + 1});
    }
  }
  return out;
}

double Tracer::TotalDurationMs(const std::string& name) const {
  MutexLock lock(mu_);
  double total = 0;
  for (const Span& span : spans_) {
    if (span.name == name && span.duration_ms >= 0) {
      total += span.duration_ms;
    }
  }
  return total;
}

void Tracer::AppendSpanJson(const std::vector<Span>& spans, int id,
                            double origin, std::string* out,
                            const std::string& indent) const {
  const Span& span = spans[static_cast<size_t>(id)];
  *out += indent + "{\"name\": \"" + JsonEscape(span.name) + "\"" +
          StrFormat(", \"start_ms\": %.3f", span.start_ms - origin) +
          StrFormat(", \"duration_ms\": %.3f",
                    span.duration_ms < 0 ? 0.0 : span.duration_ms);
  if (!span.children.empty()) {
    *out += ", \"children\": [\n";
    for (size_t c = 0; c < span.children.size(); ++c) {
      AppendSpanJson(spans, span.children[c], origin, out, indent + "  ");
      *out += (c + 1 < span.children.size() ? ",\n" : "\n");
    }
    *out += indent + "]";
  }
  *out += "}";
}

void Tracer::AppendJson(std::string* out, const std::string& indent) const {
  std::vector<Span> spans;
  {
    MutexLock lock(mu_);
    spans = spans_;
  }
  const double origin = spans.empty() ? 0 : spans[0].start_ms;
  std::vector<int> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent == -1) roots.push_back(static_cast<int>(i));
  }
  *out += indent + "\"spans\": [";
  for (size_t r = 0; r < roots.size(); ++r) {
    *out += r == 0 ? "\n" : ",\n";
    AppendSpanJson(spans, roots[r], origin, out, indent + "  ");
  }
  if (!roots.empty()) *out += "\n" + indent;
  *out += "]";
}

std::string ObservabilityJson(const MetricsRegistry& metrics,
                              const Tracer* tracer) {
  std::string out = "{\n  \"schema\": \"dta-observability-v1\",\n";
  metrics.AppendJsonBody(&out, "  ");
  out += ",\n";
  if (tracer != nullptr) {
    tracer->AppendJson(&out, "  ");
  } else {
    out += "  \"spans\": []";
  }
  out += "\n}\n";
  return out;
}

}  // namespace dta
