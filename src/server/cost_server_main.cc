// cost_server — standalone what-if costing worker for the socket transport.
//
// Builds a server from a ServerMetadata XML script (the same script the
// tuning session uses, so both sides of the wire cost against bit-identical
// catalogs), binds a Unix socket, and serves DTR1 frames (dta/rpc/frame.h)
// until a client sends a kShutdown frame or the process is signalled.
//
// Usage:
//   cost_server --metadata server.xml --listen /path/worker.sock
//               [--name NAME] [--threads N] [--fault-spec SPEC]
//               [--sever-after-calls N] [--quiet]
//
//   --metadata    ServerMetadata XML: databases, tables, columns, rows.
//   --listen      Unix socket path to bind (stale files are unlinked).
//   --name        Server name reported in the HELLO handshake (default
//                 "cost-worker").
//   --threads     Concurrent what-if executions (default 4).
//   --fault-spec  Attach a deterministic fault injector to the server
//                 (same grammar as dta_cli --fault-spec) — lets the driver
//                 place chaos on an individual worker process.
//   --sever-after-calls
//                 Abruptly drop the client connection after N what-if
//                 responses (worker stays alive and accepts reconnects);
//                 models a mid-stream worker crash for transport tests.
//   --quiet       Suppress startup/shutdown lines on stderr.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "common/fault_injector.h"
#include "common/status.h"
#include "dta/rpc/worker.h"
#include "optimizer/hardware.h"
#include "server/server.h"

namespace {

dta::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return dta::Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --metadata server.xml --listen /path/worker.sock "
               "[--name NAME] [--threads N] [--fault-spec SPEC] "
               "[--sever-after-calls N] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metadata_path, listen_path, fault_spec;
  std::string name = "cost-worker";
  int threads = 4;
  long sever_after = 0;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--metadata") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      metadata_path = v;
    } else if (arg == "--listen") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      listen_path = v;
    } else if (arg == "--name") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      name = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      threads = std::atoi(v);
    } else if (arg == "--fault-spec") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      fault_spec = v;
    } else if (arg == "--sever-after-calls") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      sever_after = std::atol(v);
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (metadata_path.empty() || listen_path.empty()) return Usage(argv[0]);

  auto metadata = ReadFile(metadata_path);
  if (!metadata.ok()) {
    std::fprintf(stderr, "%s\n", metadata.status().ToString().c_str());
    return 1;
  }
  auto server = dta::server::Server::FromMetadataScript(
      *metadata, name, dta::optimizer::HardwareParams());
  if (!server.ok()) {
    std::fprintf(stderr, "bad server metadata: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }

  std::unique_ptr<dta::FaultInjector> injector;
  if (!fault_spec.empty()) {
    auto spec = dta::FaultSpec::Parse(fault_spec);
    if (!spec.ok()) {
      std::fprintf(stderr, "bad --fault-spec: %s\n",
                   spec.status().ToString().c_str());
      return 1;
    }
    injector = std::make_unique<dta::FaultInjector>(*spec);
    server->get()->set_fault_injector(injector.get());
  }

  dta::rpc::CostWorkerOptions options;
  options.threads = threads > 0 ? threads : 4;
  options.sever_after_calls =
      sever_after > 0 ? static_cast<size_t>(sever_after) : 0;
  dta::rpc::CostWorker worker(server->get(), options);
  if (auto listening = worker.Listen(listen_path); !listening.ok()) {
    std::fprintf(stderr, "cannot listen on %s: %s\n", listen_path.c_str(),
                 listening.ToString().c_str());
    return 1;
  }
  if (!quiet) {
    std::fprintf(stderr, "cost_server '%s' serving on %s (%d threads)\n",
                 name.c_str(), listen_path.c_str(), options.threads);
  }
  worker.WaitForShutdown();
  if (!quiet) {
    std::fprintf(stderr, "cost_server '%s' exiting after %zu what-if calls\n",
                 name.c_str(), worker.whatif_frames_served());
  }
  return 0;
}
