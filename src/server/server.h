// A simulated database server instance: catalog + statistics + optimizer +
// execution engine + an overhead meter.
//
// The Server exposes exactly the interfaces DTA needs from Microsoft SQL
// Server in the paper:
//   * the what-if optimizer interface [9]: cost a statement under a
//     hypothetical configuration, optionally simulating *another* server's
//     hardware parameters (paper §5.3);
//   * CREATE STATISTICS (sampled), with a simulated duration;
//   * metadata scripting (schema only, no data) for the production/test
//     server scenario, plus statistics export/import;
//   * implementing a configuration and executing queries against actual
//     data (paper §7.2).
//
// Every statement submitted to a server (what-if optimizations, statistics
// creation, query executions) accrues simulated elapsed time on that
// server's overhead meter — the quantity Figure 3 of the paper reports.

#ifndef DTA_SERVER_SERVER_H_
#define DTA_SERVER_SERVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "catalog/physical_design.h"
#include "catalog/schema.h"
#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/executor.h"
#include "optimizer/hardware.h"
#include "optimizer/optimizer.h"
#include "stats/builder.h"
#include "stats/statistics.h"
#include "storage/datagen.h"
#include "storage/table_data.h"
#include "workload/workload.h"

namespace dta::server {

class Server : public engine::DataSource {
 public:
  Server(std::string name, optimizer::HardwareParams hardware);
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const std::string& name() const { return name_; }
  const optimizer::HardwareParams& hardware() const { return hardware_; }
  const catalog::Catalog& catalog() const { return catalog_; }
  const stats::StatsManager& stats_manager() const { return stats_; }

  // ---- Setup -----------------------------------------------------------
  Status AttachDatabase(catalog::Database db) EXCLUDES(simulated_mu_);
  // Attaches actual data for a table (enables execution and data-driven
  // statistics).
  Status AttachTableData(const std::string& database,
                         storage::TableData data);
  // Registers generator specs for a table; used to synthesize statistics
  // when no data is attached (large "customer" databases are modeled this
  // way).
  Status RegisterColumnSpecs(const std::string& database,
                             const std::string& table,
                             std::vector<storage::ColumnSpec> specs);

  // engine::DataSource:
  const storage::TableData* Table(const std::string& database,
                                  const std::string& table) const override;

  // ---- Statistics ------------------------------------------------------
  bool HasStatistics(const stats::StatsKey& key) const;
  // CREATE STATISTICS ... WITH SAMPLE. Returns the simulated duration (ms),
  // which is also accrued on this server's overhead meter.
  Result<double> CreateStatistics(const stats::StatsKey& key);
  // Returns the stored statistic (creating it first if absent).
  Result<const stats::Statistics*> GetOrCreateStatistics(
      const stats::StatsKey& key);
  // Imports a statistic from another server without touching data. No
  // overhead accrues here (catalog-only operation), mirroring §5.3.
  void ImportStatistics(const stats::Statistics& statistics);
  std::vector<const stats::Statistics*> ExportStatistics() const;

  // ---- What-if optimizer interface (paper [9], extended per §5.3) -------
  struct WhatIfResult {
    double cost = 0;
    // Simulated optimizer time for this call (what the overhead meter
    // accrued). Deterministic in the statement and configuration, so the
    // profiling layer can histogram it reproducibly.
    double simulated_ms = 0;
    std::set<stats::StatsKey> missing_stats;  // wanted but absent
  };
  // Costs `stmt` under hypothetical configuration `config`. When
  // `simulate_hardware` is provided, the optimizer models that hardware
  // instead of this server's own (test server simulating production).
  // Accrues a simulated optimization duration on this server.
  //
  // Thread-safe against concurrent WhatIfCost calls (the tuner's worker
  // pool fans costing out); setup mutations (AttachDatabase, statistics
  // creation/import, ImplementConfiguration) must still be serialized
  // against costing, which the tuning pipeline's phase structure does.
  //
  // When a fault injector is attached, each call first consults it: injected
  // latency accrues on the overhead meter (and really elapses), and injected
  // failures return Unavailable (transient) or Internal (permanent) without
  // producing a cost. `fault_key` identifies the logical call for the
  // injector's deterministic per-key decisions; 0 derives a key from the
  // statement and configuration. Failed attempts still count as what-if
  // calls and accrue the optimization duration — a failing server is not a
  // free server.
  Result<WhatIfResult> WhatIfCost(
      const sql::Statement& stmt, const catalog::Configuration& config,
      const optimizer::HardwareParams* simulate_hardware = nullptr,
      uint64_t fault_key = 0) EXCLUDES(simulated_mu_);

  // Attaches (or clears, with nullptr) a fault injector consulted by every
  // WhatIfCost call. The injector must outlive the server or be cleared
  // first; WhatIfPlan and statistics calls are not injected.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_ = injector;
  }
  FaultInjector* fault_injector() const { return fault_injector_; }

  // Attaches (or clears, with nullptr) a metrics registry: the optimizer's
  // per-call profiling counters and the server's statistics accounting
  // report into it. Like set_fault_injector, must not race active costing —
  // the tuning session attaches it before any fan-out starts.
  void SetMetrics(MetricsRegistry* metrics) EXCLUDES(simulated_mu_);

  // Full plan variant (same accounting).
  Result<optimizer::Optimizer::QueryPlan> WhatIfPlan(
      const sql::SelectStatement& stmt, const catalog::Configuration& config,
      const optimizer::HardwareParams* simulate_hardware = nullptr);

  size_t whatif_call_count() const {
    return whatif_calls_.load(std::memory_order_relaxed);
  }

  // ---- Implemented configuration and execution --------------------------
  // Makes `config` the server's actual physical design (drops previously
  // materialized structures).
  Status ImplementConfiguration(catalog::Configuration config);
  const catalog::Configuration& current_configuration() const {
    return current_config_;
  }
  // Optimizes under the *current* configuration and executes on actual
  // data. Accrues the plan's estimated cost as execution overhead and
  // reports the measured wall-clock duration in `elapsed_ms`.
  Result<engine::QueryResult> ExecuteSelect(const sql::SelectStatement& stmt,
                                            double* elapsed_ms = nullptr);

  // ---- Metadata scripting (§5.3 Step 1) ---------------------------------
  // XML description of all databases: tables, columns, row counts, primary
  // keys. Contains no data.
  std::string ScriptMetadata() const;
  // Creates a metadata-only server (no data, no specs, no statistics) from
  // a metadata script.
  static Result<std::unique_ptr<Server>> FromMetadataScript(
      const std::string& xml_text, std::string name,
      optimizer::HardwareParams hardware);

  // ---- Multi-instance lifecycle (sharded costing) -----------------------
  // Deep replica of this server: same hardware, catalog, attached data,
  // generator specs, statistics, and implemented configuration — everything
  // the optimizer reads — so the clone prices any what-if call bit-identically
  // to the original. Runtime state (overhead meter, fault injector, metrics,
  // capture) starts fresh. The ShardRouter builds its shard fleet from these.
  Result<std::unique_ptr<Server>> Clone(std::string name) const;

  // ---- Workload capture (the paper's SQL Server Profiler, §2.1) ---------
  // While capture is active, every statement executed through
  // ExecuteSelect/ExecuteStatement is recorded. StopWorkloadCapture returns
  // the captured trace as a tunable workload.
  void StartWorkloadCapture();
  workload::Workload StopWorkloadCapture();
  bool capturing() const { return capturing_; }

  // Cost-only execution entry point for DML (the engine executes SELECTs;
  // data modification is modeled, not applied). Accrues the statement's
  // estimated cost as overhead and records it when capturing.
  Result<double> ExecuteStatement(const sql::Statement& stmt);

  // ---- Overhead metering -------------------------------------------------
  double overhead_ms() const EXCLUDES(meter_mu_) {
    MutexLock lock(meter_mu_);
    return overhead_ms_;
  }
  void ResetOverhead() EXCLUDES(meter_mu_) {
    MutexLock lock(meter_mu_);
    overhead_ms_ = 0;
    whatif_calls_.store(0, std::memory_order_relaxed);
  }

 private:
  // Simulated duration of one optimizer invocation, deterministic in the
  // statement's complexity and configuration size.
  double SimulatedOptimizeDurationMs(const sql::Statement& stmt,
                                     const catalog::Configuration& config)
      const;

  std::string name_;
  optimizer::HardwareParams hardware_;
  catalog::Catalog catalog_;
  stats::StatsManager stats_;
  std::map<std::string, storage::TableData> data_;  // "db.table"
  std::map<std::string, std::vector<storage::ColumnSpec>> specs_;

  // Accrues simulated elapsed time from concurrent what-if calls.
  void AccrueOverhead(double ms) EXCLUDES(meter_mu_) {
    MutexLock lock(meter_mu_);
    overhead_ms_ += ms;
  }

  std::unique_ptr<optimizer::StatsProvider> provider_;
  std::unique_ptr<optimizer::Optimizer> optimizer_;
  // Optimizers for simulated hardware are built per distinct parameter set,
  // lazily and possibly from concurrent what-if calls (guarded by
  // simulated_mu_; unique_ptr values keep handed-out pointers stable).
  Mutex simulated_mu_;
  std::map<std::string, std::unique_ptr<optimizer::Optimizer>> simulated_
      GUARDED_BY(simulated_mu_);

  catalog::Configuration current_config_;
  std::unique_ptr<engine::Executor> executor_;
  FaultInjector* fault_injector_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  Counter* m_stats_created_ = nullptr;

  mutable Mutex meter_mu_;
  double overhead_ms_ GUARDED_BY(meter_mu_) = 0;
  std::atomic<size_t> whatif_calls_{0};

  bool capturing_ = false;
  workload::Workload captured_;
};

}  // namespace dta::server

#endif  // DTA_SERVER_SERVER_H_
