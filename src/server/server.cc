#include "server/server.h"

#include <chrono>
#include <thread>

#include "common/clock.h"
#include "common/hash.h"
#include "common/strings.h"
#include "sql/printer.h"
#include "xmlio/xml.h"

namespace dta::server {

Server::Server(std::string name, optimizer::HardwareParams hardware)
    : name_(std::move(name)), hardware_(hardware) {
  provider_ = std::make_unique<optimizer::StatsProvider>(&stats_);
  optimizer_ =
      std::make_unique<optimizer::Optimizer>(catalog_, *provider_, hardware_);
  executor_ = std::make_unique<engine::Executor>(catalog_, this);
}

Server::~Server() = default;

Status Server::AttachDatabase(catalog::Database db) {
  DTA_RETURN_IF_ERROR(catalog_.AddDatabase(std::move(db)));
  // Optimizers cache bound queries referencing catalog objects; rebuild to
  // avoid any staleness after catalog changes.
  optimizer_ =
      std::make_unique<optimizer::Optimizer>(catalog_, *provider_, hardware_);
  optimizer_->set_metrics(metrics_);
  {
    MutexLock lock(simulated_mu_);
    simulated_.clear();
  }
  executor_ = std::make_unique<engine::Executor>(catalog_, this);
  return Status::Ok();
}

Status Server::AttachTableData(const std::string& database,
                               storage::TableData data) {
  auto resolved = catalog_.ResolveTable(database, data.table_name());
  if (!resolved.ok()) return resolved.status();
  if (data.row_count() != resolved->table->row_count()) {
    return Status::InvalidArgument(StrFormat(
        "data row count %zu != catalog row count %llu for table '%s'",
        data.row_count(),
        static_cast<unsigned long long>(resolved->table->row_count()),
        data.table_name().c_str()));
  }
  std::string key = resolved->database->name() + "." + data.table_name();
  data_.insert_or_assign(key, std::move(data));
  return Status::Ok();
}

Status Server::RegisterColumnSpecs(const std::string& database,
                                   const std::string& table,
                                   std::vector<storage::ColumnSpec> specs) {
  auto resolved = catalog_.ResolveTable(database, table);
  if (!resolved.ok()) return resolved.status();
  if (specs.size() != resolved->table->columns().size()) {
    return Status::InvalidArgument(
        StrFormat("%zu specs for %zu columns of '%s'", specs.size(),
                  resolved->table->columns().size(),
                  resolved->table->name().c_str()));
  }
  specs_[resolved->database->name() + "." + resolved->table->name()] =
      std::move(specs);
  return Status::Ok();
}

const storage::TableData* Server::Table(const std::string& database,
                                        const std::string& table) const {
  auto it = data_.find(ToLower(database) + "." + ToLower(table));
  return it != data_.end() ? &it->second : nullptr;
}

bool Server::HasStatistics(const stats::StatsKey& key) const {
  return stats_.Contains(key);
}

Result<double> Server::CreateStatistics(const stats::StatsKey& key) {
  if (stats_.Contains(key)) return 0.0;
  auto resolved = catalog_.ResolveTable(key.database, key.table);
  if (!resolved.ok()) return resolved.status();
  const catalog::TableSchema& schema = *resolved->table;
  std::string data_key = resolved->database->name() + "." + schema.name();

  Result<stats::Statistics> built = Status::Internal("unset");
  auto data_it = data_.find(data_key);
  if (data_it != data_.end()) {
    built = stats::BuildFromData(resolved->database->name(), schema,
                                 data_it->second, key.columns);
  } else {
    auto spec_it = specs_.find(data_key);
    if (spec_it == specs_.end()) {
      return Status::FailedPrecondition(StrFormat(
          "server '%s' has neither data nor generator specs for '%s'; "
          "import statistics instead",
          name_.c_str(), schema.name().c_str()));
    }
    // Seed deterministically from the leading column so a statistic's
    // histogram is identical no matter which (and in what order) wider
    // statistics carry it — reduced statistics creation (§5.2) must yield
    // exactly the same information as the naive strategy.
    Random rng(HashBytes(data_key + "/" + key.columns[0]));
    built = stats::SynthesizeFromSpecs(resolved->database->name(), schema,
                                       spec_it->second, key.columns, &rng);
  }
  if (!built.ok()) return built.status();
  double duration = built->build_duration_ms;
  stats_.Put(std::move(built).value());
  AccrueOverhead(duration);
  if (m_stats_created_ != nullptr) m_stats_created_->Increment();
  return duration;
}

Result<const stats::Statistics*> Server::GetOrCreateStatistics(
    const stats::StatsKey& key) {
  if (!stats_.Contains(key)) {
    auto created = CreateStatistics(key);
    if (!created.ok()) return created.status();
  }
  const stats::Statistics* s = stats_.Find(key);
  if (s == nullptr) return Status::Internal("statistics vanished");
  return s;
}

void Server::ImportStatistics(const stats::Statistics& statistics) {
  stats_.Put(statistics);
}

std::vector<const stats::Statistics*> Server::ExportStatistics() const {
  return stats_.All();
}

double Server::SimulatedOptimizeDurationMs(
    const sql::Statement& stmt, const catalog::Configuration& config) const {
  // Calibrated against typical SQL Server compile times: ~10ms for a
  // single-table statement, growing quadratically with the join count
  // (plan-space size) and mildly with the number of hypothetical
  // structures the optimizer must consider.
  if (!stmt.is_select()) return 8.0;
  const sql::SelectStatement& sel = stmt.select();
  double tables = static_cast<double>(sel.from.size());
  double base = 22.0 + 1.5 * tables * tables +
                (sel.group_by.empty() ? 0.0 : 3.0);
  base += 0.3 * static_cast<double>(config.StructureCount());
  return base;
}

Result<Server::WhatIfResult> Server::WhatIfCost(
    const sql::Statement& stmt, const catalog::Configuration& config,
    const optimizer::HardwareParams* simulate_hardware, uint64_t fault_key) {
  if (fault_injector_ != nullptr) {
    if (fault_key == 0) {
      uint64_t h = HashBytes(sql::ToSql(stmt));
      for (const auto& ix : config.indexes()) {
        h = HashCombine(h, HashBytes(ix.CanonicalName()));
      }
      for (const auto& v : config.views()) {
        h = HashCombine(h, HashBytes(v.CanonicalName()));
      }
      for (const auto& [table, scheme] : config.table_partitioning()) {
        h = HashCombine(h, HashBytes(table + scheme.CanonicalString()));
      }
      fault_key = h == 0 ? 1 : h;
    }
    FaultInjector::Outcome outcome;
    if (!fault_injector_->spec().table.empty()) {
      // Table-targeted spec: tell the injector which tables this statement
      // touches so it can exempt unrelated calls. Computed only on this
      // path — untargeted specs never pay for the set.
      std::set<std::string> tables;
      switch (stmt.kind()) {
        case sql::StatementKind::kSelect:
          for (const auto& tr : stmt.select().from) {
            tables.insert(ToLower(tr.table));
          }
          break;
        case sql::StatementKind::kInsert:
          tables.insert(ToLower(stmt.insert().table));
          break;
        case sql::StatementKind::kUpdate:
          tables.insert(ToLower(stmt.update().table));
          break;
        case sql::StatementKind::kDelete:
          tables.insert(ToLower(stmt.del().table));
          break;
      }
      outcome = fault_injector_->Decide(fault_key, tables);
    } else {
      outcome = fault_injector_->Decide(fault_key);
    }
    if (outcome.latency_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(outcome.latency_ms));
      AccrueOverhead(outcome.latency_ms);
    }
    if (!outcome.status.ok()) {
      // The server burned a (failed) optimization: meter it like a real one.
      AccrueOverhead(SimulatedOptimizeDurationMs(stmt, config));
      whatif_calls_.fetch_add(1, std::memory_order_relaxed);
      return outcome.status;
    }
  }
  const optimizer::Optimizer* opt = optimizer_.get();
  if (simulate_hardware != nullptr) {
    std::string key = StrFormat(
        "%d/%.0f/%.3f/%.3f", simulate_hardware->cpu_count,
        simulate_hardware->memory_mb, simulate_hardware->seq_page_ms,
        simulate_hardware->rand_page_ms);
    MutexLock lock(simulated_mu_);
    auto it = simulated_.find(key);
    if (it == simulated_.end()) {
      it = simulated_
               .emplace(key, std::make_unique<optimizer::Optimizer>(
                                 catalog_, *provider_, *simulate_hardware))
               .first;
      it->second->set_metrics(metrics_);
    }
    opt = it->second.get();
  }
  WhatIfResult out;
  // The recorder is thread-local: concurrent callers each collect their own
  // missing-statistics set.
  provider_->set_missing_recorder(&out.missing_stats);
  auto cost = opt->CostStatement(stmt, config);
  provider_->set_missing_recorder(nullptr);
  out.simulated_ms = SimulatedOptimizeDurationMs(stmt, config);
  AccrueOverhead(out.simulated_ms);
  whatif_calls_.fetch_add(1, std::memory_order_relaxed);
  if (!cost.ok()) return cost.status();
  out.cost = *cost;
  return out;
}

void Server::SetMetrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  m_stats_created_ =
      metrics != nullptr ? metrics->GetCounter("server.stats_created")
                         : nullptr;
  optimizer_->set_metrics(metrics);
  MutexLock lock(simulated_mu_);
  for (auto& [key, opt] : simulated_) opt->set_metrics(metrics);
}

Result<optimizer::Optimizer::QueryPlan> Server::WhatIfPlan(
    const sql::SelectStatement& stmt, const catalog::Configuration& config,
    const optimizer::HardwareParams* simulate_hardware) {
  (void)simulate_hardware;  // plan shape is hardware-sensitive only via cost
  sql::Statement wrapper;
  wrapper.node = stmt.Clone();
  AccrueOverhead(SimulatedOptimizeDurationMs(wrapper, config));
  whatif_calls_.fetch_add(1, std::memory_order_relaxed);
  return optimizer_->OptimizeSelect(stmt, config);
}

Status Server::ImplementConfiguration(catalog::Configuration config) {
  current_config_ = std::move(config);
  executor_->ClearStructureCache();
  return Status::Ok();
}

Result<engine::QueryResult> Server::ExecuteSelect(
    const sql::SelectStatement& stmt, double* elapsed_ms) {
  const double start_ms = MonotonicNowMs();
  auto result = executor_->ExecuteSelect(stmt, current_config_, *optimizer_);
  double ms = MonotonicNowMs() - start_ms;
  if (elapsed_ms != nullptr) *elapsed_ms = ms;
  AccrueOverhead(ms);
  if (capturing_ && result.ok()) {
    sql::Statement wrapper;
    wrapper.node = stmt.Clone();
    captured_.Add(std::move(wrapper));
  }
  return result;
}

void Server::StartWorkloadCapture() {
  capturing_ = true;
  captured_ = workload::Workload();
}

workload::Workload Server::StopWorkloadCapture() {
  capturing_ = false;
  workload::Workload out = std::move(captured_);
  captured_ = workload::Workload();
  return out;
}

Result<double> Server::ExecuteStatement(const sql::Statement& stmt) {
  if (stmt.is_select()) {
    double ms = 0;
    auto r = ExecuteSelect(stmt.select(), &ms);
    if (!r.ok()) return r.status();
    return ms;
  }
  // DML: modeled, not applied — the estimated cost stands in for execution.
  auto cost = optimizer_->CostStatement(stmt, current_config_);
  if (!cost.ok()) return cost.status();
  AccrueOverhead(*cost);
  if (capturing_) {
    captured_.Add(stmt.Clone());
  }
  return *cost;
}

std::string Server::ScriptMetadata() const {
  xml::Element root("ServerMetadata");
  root.SetAttr("Name", name_);
  for (const auto& [db_name, db] : catalog_.databases()) {
    xml::Element* dbe = root.AddChild("Database");
    dbe->SetAttr("Name", db_name);
    for (const auto& [t_name, table] : db.tables()) {
      xml::Element* te = dbe->AddChild("Table");
      te->SetAttr("Name", t_name);
      te->SetAttr("RowCount",
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        table.row_count())));
      for (const auto& col : table.columns()) {
        xml::Element* ce = te->AddChild("Column");
        ce->SetAttr("Name", col.name);
        ce->SetAttr("Type", catalog::ColumnTypeName(col.type));
        ce->SetAttr("Width", StrFormat("%d", col.width_bytes));
      }
      if (!table.primary_key().empty()) {
        xml::Element* pk = te->AddChild("PrimaryKey");
        for (int c : table.primary_key()) {
          pk->AddTextChild("Column", table.column(c).name);
        }
      }
    }
  }
  return root.ToString(/*prolog=*/true);
}

Result<std::unique_ptr<Server>> Server::FromMetadataScript(
    const std::string& xml_text, std::string name,
    optimizer::HardwareParams hardware) {
  auto parsed = xml::Parse(xml_text);
  if (!parsed.ok()) return parsed.status();
  const xml::Element& root = **parsed;
  if (root.name() != "ServerMetadata") {
    return Status::InvalidArgument("not a ServerMetadata document");
  }
  auto server = std::make_unique<Server>(std::move(name), hardware);
  for (const xml::Element* dbe : root.FindChildren("Database")) {
    catalog::Database db(dbe->Attr("Name"));
    for (const xml::Element* te : dbe->FindChildren("Table")) {
      std::vector<catalog::Column> columns;
      for (const xml::Element* ce : te->FindChildren("Column")) {
        auto type = catalog::ColumnTypeFromName(ce->Attr("Type"));
        if (!type.ok()) return type.status();
        catalog::Column col;
        col.name = ce->Attr("Name");
        col.type = *type;
        col.width_bytes = std::max(1, atoi(ce->Attr("Width").c_str()));
        columns.push_back(std::move(col));
      }
      catalog::TableSchema table(te->Attr("Name"), std::move(columns));
      table.set_row_count(
          strtoull(te->Attr("RowCount").c_str(), nullptr, 10));
      const xml::Element* pk = te->FindChild("PrimaryKey");
      if (pk != nullptr) {
        std::vector<std::string> key_cols;
        for (const xml::Element* kc : pk->FindChildren("Column")) {
          key_cols.push_back(kc->text());
        }
        table.SetPrimaryKey(key_cols);
      }
      DTA_RETURN_IF_ERROR(db.AddTable(std::move(table)));
    }
    DTA_RETURN_IF_ERROR(server->AttachDatabase(std::move(db)));
  }
  return server;
}

Result<std::unique_ptr<Server>> Server::Clone(std::string name) const {
  auto replica = std::make_unique<Server>(std::move(name), hardware_);
  for (const auto& [db_name, db] : catalog_.databases()) {
    DTA_RETURN_IF_ERROR(replica->AttachDatabase(db));
  }
  // data_/specs_ keys are "<resolved db>.<table>"; re-attaching through the
  // public setters revalidates against the replica's catalog and rebuilds
  // the exact same keys.
  for (const auto& [key, data] : data_) {
    DTA_RETURN_IF_ERROR(
        replica->AttachTableData(key.substr(0, key.find('.')), data));
  }
  for (const auto& [key, specs] : specs_) {
    const size_t dot = key.find('.');
    DTA_RETURN_IF_ERROR(replica->RegisterColumnSpecs(
        key.substr(0, dot), key.substr(dot + 1), specs));
  }
  for (const stats::Statistics* s : ExportStatistics()) {
    replica->ImportStatistics(*s);
  }
  DTA_RETURN_IF_ERROR(replica->ImplementConfiguration(current_config_));
  return replica;
}

}  // namespace dta::server
