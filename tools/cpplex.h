// cpplex: the shared C++ lexing layer under dta_lint and dta_analyze.
//
// Both tools reason about source *code*, not about comments, string
// literals, or preprocessor-dead regions — a rule keyword inside a doc
// comment, a raw string, or an `#if 0` block is not a finding. Rather than
// each tool carrying its own half-correct stripper, this library owns the
// lexical phase once:
//
//   PreprocessSource   raw lines -> SourceLine{code, comment, markers}.
//                      Strips line and block comments (block state carries
//                      across lines), blanks the contents of string, char,
//                      and raw string literals (raw strings may span lines
//                      and contain quotes), skips digit separators
//                      (1'000'000 is a number, not a char literal), blanks
//                      preprocessor directive lines and their backslash
//                      continuations, and blanks regions disabled by a
//                      literal `#if 0` / `#if false` (or the dead branch of
//                      `#if 1`), honoring nesting. Suppression (`lint:`)
//                      and expectation (`expect:`) markers are parsed out
//                      of the surviving // comments.
//
//   Tokenize           SourceLine code -> identifier/number/punctuation
//                      tokens with line numbers; multi-character operators
//                      (`::`, `->`, `<<`, `+=`, ...) arrive as one token,
//                      which is what dta_analyze's scope and call scanning
//                      keys on.
//
// Plus the small driver plumbing every lexical tool repeats: finding
// records, input expansion (files/directories with root-relative
// exclusions), and the two-way `expect:` fixture diff.
//
// The library is intentionally dependency-free (std only): the lint tools
// must build and run before anything else in the tree is healthy.

#ifndef DTA_TOOLS_CPPLEX_H_
#define DTA_TOOLS_CPPLEX_H_

#include <filesystem>
#include <iosfwd>
#include <set>
#include <string>
#include <vector>

namespace dta::lex {

// One source line after lexical preprocessing.
struct SourceLine {
  // Code text with comments removed and literal contents blanked (the
  // delimiting quotes remain, so "a string is here" stays visible as "").
  // Empty for preprocessor directives, their continuations, and lines in
  // preprocessor-disabled regions.
  std::string code;
  // For a live preprocessor directive line: its lexed text (comments
  // removed, literal contents blanked), e.g. `#include <unordered_map>`.
  // Empty elsewhere, including in disabled regions — most rules should
  // ignore directives entirely, but e.g. dta_lint's unordered-output rule
  // wants to flag the include itself.
  std::string directive;
  // Text of the trailing // comment, if any (empty in disabled regions).
  std::string comment;
  // Rule names from a `lint: a, b` marker in the comment.
  std::set<std::string> suppressed;
  // Rule names from an `expect: a, b` marker in the comment.
  std::set<std::string> expected;
};

std::vector<SourceLine> PreprocessSource(const std::vector<std::string>& raw);

// Splits a marker payload ("a, b c") into rule-name tokens (identifier
// characters plus '-').
std::set<std::string> ParseRuleList(const std::string& text);

struct Token {
  enum class Kind { kIdentifier, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  size_t line = 0;  // 0-based index into the SourceLine vector

  bool Is(const char* t) const { return text == t; }
  bool IsIdent() const { return kind == Kind::kIdentifier; }
};

std::vector<Token> Tokenize(const std::vector<SourceLine>& lines);

// ---- Shared driver plumbing ----------------------------------------------

struct Finding {
  std::string file;  // repo-relative path
  size_t line = 0;   // 1-based
  std::string rule;
  std::string message;

  bool operator<(const Finding& o) const;
};

bool HasLintableExtension(const std::filesystem::path& p);

// Expands files/directories (resolved against `root`) into a sorted,
// de-duplicated file list, dropping files whose root-relative path starts
// with an excluded prefix (matched on path-component boundaries). On a
// missing input, stores a message in `error` and returns false.
bool CollectFiles(const std::filesystem::path& root,
                  const std::vector<std::string>& inputs,
                  const std::vector<std::string>& excluded,
                  std::set<std::filesystem::path>* files, std::string* error);

// Reads a file into lines; false if it cannot be opened.
bool ReadLines(const std::filesystem::path& path,
               std::vector<std::string>* out);

// `path` relative to `root`, or `path` itself when not under it.
std::string RelPath(const std::filesystem::path& path,
                    const std::filesystem::path& root);

// Two-way diff between findings and `expect:` markers: prints unexpected
// findings and expected-but-silent rules to `out`, returns the number of
// mismatches (0 == fixtures exactly match). Sorts both vectors in place.
size_t DiffExpectations(std::vector<Finding>* findings,
                        std::vector<Finding>* expectations, std::ostream& out);

}  // namespace dta::lex

#endif  // DTA_TOOLS_CPPLEX_H_
